# Empty compiler generated dependencies file for market_session.
# This may be replaced when dependencies are built.
