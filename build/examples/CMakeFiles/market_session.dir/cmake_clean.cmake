file(REMOVE_RECURSE
  "CMakeFiles/market_session.dir/market_session.cpp.o"
  "CMakeFiles/market_session.dir/market_session.cpp.o.d"
  "market_session"
  "market_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
