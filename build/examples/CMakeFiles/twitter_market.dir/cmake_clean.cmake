file(REMOVE_RECURSE
  "CMakeFiles/twitter_market.dir/twitter_market.cpp.o"
  "CMakeFiles/twitter_market.dir/twitter_market.cpp.o.d"
  "twitter_market"
  "twitter_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
