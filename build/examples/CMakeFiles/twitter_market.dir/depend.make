# Empty dependencies file for twitter_market.
# This may be replaced when dependencies are built.
