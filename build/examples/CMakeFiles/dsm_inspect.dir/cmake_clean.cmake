file(REMOVE_RECURSE
  "CMakeFiles/dsm_inspect.dir/dsm_inspect.cpp.o"
  "CMakeFiles/dsm_inspect.dir/dsm_inspect.cpp.o.d"
  "dsm_inspect"
  "dsm_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
