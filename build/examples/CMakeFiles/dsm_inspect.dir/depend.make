# Empty dependencies file for dsm_inspect.
# This may be replaced when dependencies are built.
