# Empty dependencies file for live_maintenance.
# This may be replaced when dependencies are built.
