file(REMOVE_RECURSE
  "CMakeFiles/live_maintenance.dir/live_maintenance.cpp.o"
  "CMakeFiles/live_maintenance.dir/live_maintenance.cpp.o.d"
  "live_maintenance"
  "live_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
