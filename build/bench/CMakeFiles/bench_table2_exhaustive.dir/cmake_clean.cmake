file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_exhaustive.dir/table2_exhaustive.cc.o"
  "CMakeFiles/bench_table2_exhaustive.dir/table2_exhaustive.cc.o.d"
  "bench_table2_exhaustive"
  "bench_table2_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
