file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_worst_case.dir/fig4_worst_case.cc.o"
  "CMakeFiles/bench_fig4_worst_case.dir/fig4_worst_case.cc.o.d"
  "bench_fig4_worst_case"
  "bench_fig4_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
