# Empty compiler generated dependencies file for bench_fig4_worst_case.
# This may be replaced when dependencies are built.
