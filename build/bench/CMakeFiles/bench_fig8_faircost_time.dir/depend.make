# Empty dependencies file for bench_fig8_faircost_time.
# This may be replaced when dependencies are built.
