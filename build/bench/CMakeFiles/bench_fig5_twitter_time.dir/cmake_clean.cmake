file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_twitter_time.dir/fig5_twitter_time.cc.o"
  "CMakeFiles/bench_fig5_twitter_time.dir/fig5_twitter_time.cc.o.d"
  "bench_fig5_twitter_time"
  "bench_fig5_twitter_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_twitter_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
