
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/dsm.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/dsm.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/table_def.cc" "src/CMakeFiles/dsm.dir/catalog/table_def.cc.o" "gcc" "src/CMakeFiles/dsm.dir/catalog/table_def.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/dsm.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dsm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dsm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dsm.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dsm.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dsm.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dsm.dir/common/string_util.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/dsm.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/default_cost_model.cc" "src/CMakeFiles/dsm.dir/cost/default_cost_model.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cost/default_cost_model.cc.o.d"
  "/root/repo/src/cost/table_cost_model.cc" "src/CMakeFiles/dsm.dir/cost/table_cost_model.cc.o" "gcc" "src/CMakeFiles/dsm.dir/cost/table_cost_model.cc.o.d"
  "/root/repo/src/costing/containment_dag.cc" "src/CMakeFiles/dsm.dir/costing/containment_dag.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/containment_dag.cc.o.d"
  "/root/repo/src/costing/costing_session.cc" "src/CMakeFiles/dsm.dir/costing/costing_session.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/costing_session.cc.o.d"
  "/root/repo/src/costing/even_split.cc" "src/CMakeFiles/dsm.dir/costing/even_split.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/even_split.cc.o.d"
  "/root/repo/src/costing/fair_cost.cc" "src/CMakeFiles/dsm.dir/costing/fair_cost.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/fair_cost.cc.o.d"
  "/root/repo/src/costing/fairness_metrics.cc" "src/CMakeFiles/dsm.dir/costing/fairness_metrics.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/fairness_metrics.cc.o.d"
  "/root/repo/src/costing/lpc.cc" "src/CMakeFiles/dsm.dir/costing/lpc.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/lpc.cc.o.d"
  "/root/repo/src/costing/savings.cc" "src/CMakeFiles/dsm.dir/costing/savings.cc.o" "gcc" "src/CMakeFiles/dsm.dir/costing/savings.cc.o.d"
  "/root/repo/src/expr/histogram.cc" "src/CMakeFiles/dsm.dir/expr/histogram.cc.o" "gcc" "src/CMakeFiles/dsm.dir/expr/histogram.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/CMakeFiles/dsm.dir/expr/predicate.cc.o" "gcc" "src/CMakeFiles/dsm.dir/expr/predicate.cc.o.d"
  "/root/repo/src/expr/selectivity.cc" "src/CMakeFiles/dsm.dir/expr/selectivity.cc.o" "gcc" "src/CMakeFiles/dsm.dir/expr/selectivity.cc.o.d"
  "/root/repo/src/expr/view_key.cc" "src/CMakeFiles/dsm.dir/expr/view_key.cc.o" "gcc" "src/CMakeFiles/dsm.dir/expr/view_key.cc.o.d"
  "/root/repo/src/globalplan/global_plan.cc" "src/CMakeFiles/dsm.dir/globalplan/global_plan.cc.o" "gcc" "src/CMakeFiles/dsm.dir/globalplan/global_plan.cc.o.d"
  "/root/repo/src/io/market_io.cc" "src/CMakeFiles/dsm.dir/io/market_io.cc.o" "gcc" "src/CMakeFiles/dsm.dir/io/market_io.cc.o.d"
  "/root/repo/src/maintain/delta_engine.cc" "src/CMakeFiles/dsm.dir/maintain/delta_engine.cc.o" "gcc" "src/CMakeFiles/dsm.dir/maintain/delta_engine.cc.o.d"
  "/root/repo/src/maintain/relation.cc" "src/CMakeFiles/dsm.dir/maintain/relation.cc.o" "gcc" "src/CMakeFiles/dsm.dir/maintain/relation.cc.o.d"
  "/root/repo/src/maintain/value.cc" "src/CMakeFiles/dsm.dir/maintain/value.cc.o" "gcc" "src/CMakeFiles/dsm.dir/maintain/value.cc.o.d"
  "/root/repo/src/market/data_market.cc" "src/CMakeFiles/dsm.dir/market/data_market.cc.o" "gcc" "src/CMakeFiles/dsm.dir/market/data_market.cc.o.d"
  "/root/repo/src/market/simulation.cc" "src/CMakeFiles/dsm.dir/market/simulation.cc.o" "gcc" "src/CMakeFiles/dsm.dir/market/simulation.cc.o.d"
  "/root/repo/src/online/exhaustive.cc" "src/CMakeFiles/dsm.dir/online/exhaustive.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/exhaustive.cc.o.d"
  "/root/repo/src/online/greedy.cc" "src/CMakeFiles/dsm.dir/online/greedy.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/greedy.cc.o.d"
  "/root/repo/src/online/managed_risk.cc" "src/CMakeFiles/dsm.dir/online/managed_risk.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/managed_risk.cc.o.d"
  "/root/repo/src/online/normalize.cc" "src/CMakeFiles/dsm.dir/online/normalize.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/normalize.cc.o.d"
  "/root/repo/src/online/planner.cc" "src/CMakeFiles/dsm.dir/online/planner.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/planner.cc.o.d"
  "/root/repo/src/online/regret_tracker.cc" "src/CMakeFiles/dsm.dir/online/regret_tracker.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/regret_tracker.cc.o.d"
  "/root/repo/src/online/replanner.cc" "src/CMakeFiles/dsm.dir/online/replanner.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/replanner.cc.o.d"
  "/root/repo/src/online/speculative.cc" "src/CMakeFiles/dsm.dir/online/speculative.cc.o" "gcc" "src/CMakeFiles/dsm.dir/online/speculative.cc.o.d"
  "/root/repo/src/plan/enumerator.cc" "src/CMakeFiles/dsm.dir/plan/enumerator.cc.o" "gcc" "src/CMakeFiles/dsm.dir/plan/enumerator.cc.o.d"
  "/root/repo/src/plan/explain.cc" "src/CMakeFiles/dsm.dir/plan/explain.cc.o" "gcc" "src/CMakeFiles/dsm.dir/plan/explain.cc.o.d"
  "/root/repo/src/plan/join_graph.cc" "src/CMakeFiles/dsm.dir/plan/join_graph.cc.o" "gcc" "src/CMakeFiles/dsm.dir/plan/join_graph.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/dsm.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/dsm.dir/plan/plan.cc.o.d"
  "/root/repo/src/sharing/sharing.cc" "src/CMakeFiles/dsm.dir/sharing/sharing.cc.o" "gcc" "src/CMakeFiles/dsm.dir/sharing/sharing.cc.o.d"
  "/root/repo/src/workload/adversarial.cc" "src/CMakeFiles/dsm.dir/workload/adversarial.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workload/adversarial.cc.o.d"
  "/root/repo/src/workload/predicate_gen.cc" "src/CMakeFiles/dsm.dir/workload/predicate_gen.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workload/predicate_gen.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/dsm.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/twitter.cc" "src/CMakeFiles/dsm.dir/workload/twitter.cc.o" "gcc" "src/CMakeFiles/dsm.dir/workload/twitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
