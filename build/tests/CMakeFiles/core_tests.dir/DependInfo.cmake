
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog/catalog_test.cc" "tests/CMakeFiles/core_tests.dir/catalog/catalog_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/catalog/catalog_test.cc.o.d"
  "/root/repo/tests/catalog/table_set_test.cc" "tests/CMakeFiles/core_tests.dir/catalog/table_set_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/catalog/table_set_test.cc.o.d"
  "/root/repo/tests/cluster/cluster_test.cc" "tests/CMakeFiles/core_tests.dir/cluster/cluster_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/cluster/cluster_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/core_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/core_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/expr/histogram_test.cc" "tests/CMakeFiles/core_tests.dir/expr/histogram_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/expr/histogram_test.cc.o.d"
  "/root/repo/tests/expr/predicate_test.cc" "tests/CMakeFiles/core_tests.dir/expr/predicate_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/expr/predicate_test.cc.o.d"
  "/root/repo/tests/expr/selectivity_test.cc" "tests/CMakeFiles/core_tests.dir/expr/selectivity_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/expr/selectivity_test.cc.o.d"
  "/root/repo/tests/expr/view_key_test.cc" "tests/CMakeFiles/core_tests.dir/expr/view_key_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/expr/view_key_test.cc.o.d"
  "/root/repo/tests/sharing/sharing_test.cc" "tests/CMakeFiles/core_tests.dir/sharing/sharing_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/sharing/sharing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
