file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/catalog/catalog_test.cc.o"
  "CMakeFiles/core_tests.dir/catalog/catalog_test.cc.o.d"
  "CMakeFiles/core_tests.dir/catalog/table_set_test.cc.o"
  "CMakeFiles/core_tests.dir/catalog/table_set_test.cc.o.d"
  "CMakeFiles/core_tests.dir/cluster/cluster_test.cc.o"
  "CMakeFiles/core_tests.dir/cluster/cluster_test.cc.o.d"
  "CMakeFiles/core_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/core_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/core_tests.dir/common/status_test.cc.o"
  "CMakeFiles/core_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/core_tests.dir/expr/histogram_test.cc.o"
  "CMakeFiles/core_tests.dir/expr/histogram_test.cc.o.d"
  "CMakeFiles/core_tests.dir/expr/predicate_test.cc.o"
  "CMakeFiles/core_tests.dir/expr/predicate_test.cc.o.d"
  "CMakeFiles/core_tests.dir/expr/selectivity_test.cc.o"
  "CMakeFiles/core_tests.dir/expr/selectivity_test.cc.o.d"
  "CMakeFiles/core_tests.dir/expr/view_key_test.cc.o"
  "CMakeFiles/core_tests.dir/expr/view_key_test.cc.o.d"
  "CMakeFiles/core_tests.dir/sharing/sharing_test.cc.o"
  "CMakeFiles/core_tests.dir/sharing/sharing_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
