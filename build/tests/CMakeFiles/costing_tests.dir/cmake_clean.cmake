file(REMOVE_RECURSE
  "CMakeFiles/costing_tests.dir/costing/containment_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/containment_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/costing_session_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/costing_session_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/even_split_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/even_split_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/fair_cost_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/fair_cost_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/faircost_property_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/faircost_property_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/fairness_criteria_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/fairness_criteria_test.cc.o.d"
  "CMakeFiles/costing_tests.dir/costing/lpc_test.cc.o"
  "CMakeFiles/costing_tests.dir/costing/lpc_test.cc.o.d"
  "costing_tests"
  "costing_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
