# Empty dependencies file for costing_tests.
# This may be replaced when dependencies are built.
