
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/costing/containment_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/containment_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/containment_test.cc.o.d"
  "/root/repo/tests/costing/costing_session_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/costing_session_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/costing_session_test.cc.o.d"
  "/root/repo/tests/costing/even_split_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/even_split_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/even_split_test.cc.o.d"
  "/root/repo/tests/costing/fair_cost_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/fair_cost_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/fair_cost_test.cc.o.d"
  "/root/repo/tests/costing/faircost_property_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/faircost_property_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/faircost_property_test.cc.o.d"
  "/root/repo/tests/costing/fairness_criteria_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/fairness_criteria_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/fairness_criteria_test.cc.o.d"
  "/root/repo/tests/costing/lpc_test.cc" "tests/CMakeFiles/costing_tests.dir/costing/lpc_test.cc.o" "gcc" "tests/CMakeFiles/costing_tests.dir/costing/lpc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
