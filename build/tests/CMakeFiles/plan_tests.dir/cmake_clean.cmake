file(REMOVE_RECURSE
  "CMakeFiles/plan_tests.dir/cost/breakdown_test.cc.o"
  "CMakeFiles/plan_tests.dir/cost/breakdown_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/cost/cost_model_test.cc.o"
  "CMakeFiles/plan_tests.dir/cost/cost_model_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/globalplan/global_plan_property_test.cc.o"
  "CMakeFiles/plan_tests.dir/globalplan/global_plan_property_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/globalplan/global_plan_test.cc.o"
  "CMakeFiles/plan_tests.dir/globalplan/global_plan_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/globalplan/reuse_chain_test.cc.o"
  "CMakeFiles/plan_tests.dir/globalplan/reuse_chain_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/enumerator_property_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/enumerator_property_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/enumerator_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/enumerator_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/explain_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/explain_test.cc.o.d"
  "CMakeFiles/plan_tests.dir/plan/join_graph_test.cc.o"
  "CMakeFiles/plan_tests.dir/plan/join_graph_test.cc.o.d"
  "plan_tests"
  "plan_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
