
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost/breakdown_test.cc" "tests/CMakeFiles/plan_tests.dir/cost/breakdown_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/cost/breakdown_test.cc.o.d"
  "/root/repo/tests/cost/cost_model_test.cc" "tests/CMakeFiles/plan_tests.dir/cost/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/cost/cost_model_test.cc.o.d"
  "/root/repo/tests/globalplan/global_plan_property_test.cc" "tests/CMakeFiles/plan_tests.dir/globalplan/global_plan_property_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/globalplan/global_plan_property_test.cc.o.d"
  "/root/repo/tests/globalplan/global_plan_test.cc" "tests/CMakeFiles/plan_tests.dir/globalplan/global_plan_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/globalplan/global_plan_test.cc.o.d"
  "/root/repo/tests/globalplan/reuse_chain_test.cc" "tests/CMakeFiles/plan_tests.dir/globalplan/reuse_chain_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/globalplan/reuse_chain_test.cc.o.d"
  "/root/repo/tests/plan/enumerator_property_test.cc" "tests/CMakeFiles/plan_tests.dir/plan/enumerator_property_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/plan/enumerator_property_test.cc.o.d"
  "/root/repo/tests/plan/enumerator_test.cc" "tests/CMakeFiles/plan_tests.dir/plan/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/plan/enumerator_test.cc.o.d"
  "/root/repo/tests/plan/explain_test.cc" "tests/CMakeFiles/plan_tests.dir/plan/explain_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/plan/explain_test.cc.o.d"
  "/root/repo/tests/plan/join_graph_test.cc" "tests/CMakeFiles/plan_tests.dir/plan/join_graph_test.cc.o" "gcc" "tests/CMakeFiles/plan_tests.dir/plan/join_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
