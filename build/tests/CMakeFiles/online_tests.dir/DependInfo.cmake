
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/online/ablation_traps_test.cc" "tests/CMakeFiles/online_tests.dir/online/ablation_traps_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/ablation_traps_test.cc.o.d"
  "/root/repo/tests/online/exhaustive_test.cc" "tests/CMakeFiles/online_tests.dir/online/exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/exhaustive_test.cc.o.d"
  "/root/repo/tests/online/extensions_test.cc" "tests/CMakeFiles/online_tests.dir/online/extensions_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/extensions_test.cc.o.d"
  "/root/repo/tests/online/paper_examples_test.cc" "tests/CMakeFiles/online_tests.dir/online/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/paper_examples_test.cc.o.d"
  "/root/repo/tests/online/planner_test.cc" "tests/CMakeFiles/online_tests.dir/online/planner_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/planner_test.cc.o.d"
  "/root/repo/tests/online/regret_tracker_test.cc" "tests/CMakeFiles/online_tests.dir/online/regret_tracker_test.cc.o" "gcc" "tests/CMakeFiles/online_tests.dir/online/regret_tracker_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
