file(REMOVE_RECURSE
  "CMakeFiles/online_tests.dir/online/ablation_traps_test.cc.o"
  "CMakeFiles/online_tests.dir/online/ablation_traps_test.cc.o.d"
  "CMakeFiles/online_tests.dir/online/exhaustive_test.cc.o"
  "CMakeFiles/online_tests.dir/online/exhaustive_test.cc.o.d"
  "CMakeFiles/online_tests.dir/online/extensions_test.cc.o"
  "CMakeFiles/online_tests.dir/online/extensions_test.cc.o.d"
  "CMakeFiles/online_tests.dir/online/paper_examples_test.cc.o"
  "CMakeFiles/online_tests.dir/online/paper_examples_test.cc.o.d"
  "CMakeFiles/online_tests.dir/online/planner_test.cc.o"
  "CMakeFiles/online_tests.dir/online/planner_test.cc.o.d"
  "CMakeFiles/online_tests.dir/online/regret_tracker_test.cc.o"
  "CMakeFiles/online_tests.dir/online/regret_tracker_test.cc.o.d"
  "online_tests"
  "online_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
