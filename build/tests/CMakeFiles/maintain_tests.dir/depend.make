# Empty dependencies file for maintain_tests.
# This may be replaced when dependencies are built.
