file(REMOVE_RECURSE
  "CMakeFiles/maintain_tests.dir/maintain/delta_engine_test.cc.o"
  "CMakeFiles/maintain_tests.dir/maintain/delta_engine_test.cc.o.d"
  "CMakeFiles/maintain_tests.dir/maintain/projection_test.cc.o"
  "CMakeFiles/maintain_tests.dir/maintain/projection_test.cc.o.d"
  "CMakeFiles/maintain_tests.dir/maintain/relation_test.cc.o"
  "CMakeFiles/maintain_tests.dir/maintain/relation_test.cc.o.d"
  "maintain_tests"
  "maintain_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
