file(REMOVE_RECURSE
  "CMakeFiles/workload_market_tests.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/workload_market_tests.dir/integration/planner_invariants_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/integration/planner_invariants_test.cc.o.d"
  "CMakeFiles/workload_market_tests.dir/io/market_io_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/io/market_io_test.cc.o.d"
  "CMakeFiles/workload_market_tests.dir/market/data_market_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/market/data_market_test.cc.o.d"
  "CMakeFiles/workload_market_tests.dir/market/simulation_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/market/simulation_test.cc.o.d"
  "CMakeFiles/workload_market_tests.dir/workload/workload_test.cc.o"
  "CMakeFiles/workload_market_tests.dir/workload/workload_test.cc.o.d"
  "workload_market_tests"
  "workload_market_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_market_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
