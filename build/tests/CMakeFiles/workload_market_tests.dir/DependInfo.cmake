
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/workload_market_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/planner_invariants_test.cc" "tests/CMakeFiles/workload_market_tests.dir/integration/planner_invariants_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/integration/planner_invariants_test.cc.o.d"
  "/root/repo/tests/io/market_io_test.cc" "tests/CMakeFiles/workload_market_tests.dir/io/market_io_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/io/market_io_test.cc.o.d"
  "/root/repo/tests/market/data_market_test.cc" "tests/CMakeFiles/workload_market_tests.dir/market/data_market_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/market/data_market_test.cc.o.d"
  "/root/repo/tests/market/simulation_test.cc" "tests/CMakeFiles/workload_market_tests.dir/market/simulation_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/market/simulation_test.cc.o.d"
  "/root/repo/tests/workload/workload_test.cc" "tests/CMakeFiles/workload_market_tests.dir/workload/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_market_tests.dir/workload/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
