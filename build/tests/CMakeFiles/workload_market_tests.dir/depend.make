# Empty dependencies file for workload_market_tests.
# This may be replaced when dependencies are built.
