# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(plan_tests "/root/repo/build/tests/plan_tests")
set_tests_properties(plan_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;24;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(online_tests "/root/repo/build/tests/online_tests")
set_tests_properties(online_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(costing_tests "/root/repo/build/tests/costing_tests")
set_tests_properties(costing_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;45;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(maintain_tests "/root/repo/build/tests/maintain_tests")
set_tests_properties(maintain_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;55;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_market_tests "/root/repo/build/tests/workload_market_tests")
set_tests_properties(workload_market_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;61;dsm_test;/root/repo/tests/CMakeLists.txt;0;")
