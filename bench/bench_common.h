// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table/figure of the paper's evaluation (Section 6) and
// prints the corresponding rows/series. Set DSM_BENCH_FULL=1 for the
// paper-scale parameter sweeps (slower); the default is a reduced sweep
// with the same shape.

#ifndef DSM_BENCH_BENCH_COMMON_H_
#define DSM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cost/default_cost_model.h"
#include "obs/json.h"
#include "cost/table_cost_model.h"
#include "globalplan/global_plan.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "plan/enumerator.h"
#include "workload/synthetic.h"
#include "workload/twitter.h"

namespace dsm {
namespace bench {

inline bool FullScale() {
  const char* env = std::getenv("DSM_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// A self-contained Twitter planning stack.
struct TwitterStack {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> global_plan;
  PlannerContext ctx;
};

inline std::unique_ptr<TwitterStack> MakeTwitterStack(
    size_t machines = 6, EnumeratorOptions enum_options = {}) {
  auto stack = std::make_unique<TwitterStack>();
  const auto tables = BuildTwitterCatalog(&stack->catalog);
  if (!tables.ok()) return nullptr;
  stack->tables = *tables;
  for (size_t i = 0; i < machines; ++i) {
    stack->cluster.AddServer("m" + std::to_string(i));
  }
  stack->cluster.PlaceRoundRobin(stack->catalog.num_tables());
  stack->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(stack->catalog));
  stack->model = std::make_unique<DefaultCostModel>(&stack->catalog,
                                                    &stack->cluster);
  stack->enumerator = std::make_unique<PlanEnumerator>(
      &stack->catalog, &stack->cluster, stack->graph.get(),
      stack->model.get(), enum_options);
  stack->global_plan =
      std::make_unique<GlobalPlan>(&stack->cluster, stack->model.get());
  stack->ctx = {&stack->catalog,          &stack->cluster,
                stack->graph.get(),       stack->model.get(),
                stack->global_plan.get(), stack->enumerator.get()};
  return stack;
}

// A self-contained star-schema planning stack (synthetic experiments).
struct StarStack {
  Catalog catalog;
  Cluster cluster;
  StarSchema schema;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<TableDrivenCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> global_plan;
  PlannerContext ctx;
};

inline std::unique_ptr<StarStack> MakeStarStack(
    int facts, int dims, size_t machines,
    EnumeratorOptions enum_options = {}, uint64_t cost_seed = 42) {
  auto stack = std::make_unique<StarStack>();
  StarSchemaOptions schema_options;
  schema_options.num_fact = facts;
  schema_options.num_dim = dims;
  const auto schema = BuildStarCatalog(&stack->catalog, schema_options);
  if (!schema.ok()) return nullptr;
  stack->schema = *schema;
  for (size_t i = 0; i < machines; ++i) {
    stack->cluster.AddServer("m" + std::to_string(i));
  }
  stack->cluster.PlaceRoundRobin(stack->catalog.num_tables());
  stack->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(stack->catalog));
  TableDrivenCostModel::Options model_options;
  model_options.random_min = 1.0;
  model_options.random_max = 1e5;  // Section 6.1.2
  model_options.seed = cost_seed;
  stack->model = std::make_unique<TableDrivenCostModel>(model_options);
  stack->enumerator = std::make_unique<PlanEnumerator>(
      &stack->catalog, &stack->cluster, stack->graph.get(),
      stack->model.get(), enum_options);
  stack->global_plan =
      std::make_unique<GlobalPlan>(&stack->cluster, stack->model.get());
  stack->ctx = {&stack->catalog,          &stack->cluster,
                stack->graph.get(),       stack->model.get(),
                stack->global_plan.get(), stack->enumerator.get()};
  return stack;
}

enum class Algo { kGreedy, kNormalize, kManagedRisk };

inline const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kGreedy:
      return "Greedy";
    case Algo::kNormalize:
      return "Normalize";
    case Algo::kManagedRisk:
      return "ManagedRisk";
  }
  return "?";
}

inline std::unique_ptr<OnlinePlanner> MakePlanner(Algo algo,
                                                  const PlannerContext& ctx) {
  switch (algo) {
    case Algo::kGreedy:
      return std::make_unique<GreedyPlanner>(ctx);
    case Algo::kNormalize:
      return std::make_unique<NormalizePlanner>(ctx);
    case Algo::kManagedRisk:
      return std::make_unique<ManagedRiskPlanner>(ctx);
  }
  return nullptr;
}

// Order statistics over a set of per-call latencies. A single mean hides
// the tail that scalability plots are about; min/median/p95 (plus the mean
// for continuity with older output) characterize the distribution.
struct LatencySummary {
  double min_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  static LatencySummary FromSamples(std::vector<double> samples_ms) {
    LatencySummary s;
    if (samples_ms.empty()) return s;
    std::sort(samples_ms.begin(), samples_ms.end());
    const size_t n = samples_ms.size();
    const auto at_quantile = [&](double q) {
      size_t idx = static_cast<size_t>(q * static_cast<double>(n - 1) + 0.5);
      return samples_ms[std::min(idx, n - 1)];
    };
    s.min_ms = samples_ms.front();
    s.median_ms = at_quantile(0.5);
    s.p95_ms = at_quantile(0.95);
    s.max_ms = samples_ms.back();
    double sum = 0.0;
    for (const double v : samples_ms) sum += v;
    s.mean_ms = sum / static_cast<double>(n);
    return s;
  }

  obs::JsonValue ToJson() const {
    obs::JsonValue o = obs::JsonValue::Object();
    o.Set("min_ms", min_ms);
    o.Set("median_ms", median_ms);
    o.Set("p95_ms", p95_ms);
    o.Set("mean_ms", mean_ms);
    o.Set("max_ms", max_ms);
    return o;
  }
};

struct RunStats {
  double total_cost = 0.0;
  double seconds = 0.0;
  size_t planned = 0;
  size_t rejected = 0;
  // Wall-clock of each individual ProcessSharing call (steady clock).
  std::vector<double> per_sharing_ms;

  LatencySummary latency() const {
    return LatencySummary::FromSamples(per_sharing_ms);
  }
};

inline RunStats RunPlanner(OnlinePlanner* planner,
                           const std::vector<Sharing>& sequence) {
  RunStats stats;
  stats.per_sharing_ms.reserve(sequence.size());
  const Timer timer;
  for (const Sharing& sharing : sequence) {
    const Timer call_timer;
    const auto choice = planner->ProcessSharing(sharing);
    stats.per_sharing_ms.push_back(call_timer.Millis());
    if (choice.ok()) {
      ++stats.planned;
    } else {
      ++stats.rejected;
    }
  }
  stats.seconds = timer.Seconds();
  stats.total_cost = planner->context().global_plan->TotalCost();
  return stats;
}

}  // namespace bench
}  // namespace dsm

#endif  // DSM_BENCH_BENCH_COMMON_H_
