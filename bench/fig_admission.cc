// Admission & costing fast paths: per-sharing planning time with the
// indexed reuse lookup (vs the legacy linear scan) as the global plan
// grows to a thousand-plus alive views, and FAIRCOST refresh time with the
// incremental containment DAG (vs the scratch O(n²) rebuild) as the
// sharing population grows. Decisions and attributed costs are identical
// across modes (enforced by the admission equivalence tests); only the
// wall clock differs.

#include <memory>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "costing/costing_session.h"
#include "costing/lpc.h"
#include "costing/savings.h"
#include "workload/predicate_gen.h"
#include "workload/twitter.h"

namespace dsm {
namespace bench {
namespace {

// The dense-reuse market regime: every arrival is a predicated variant of
// one of the 25 base queries, with predicates drawn as random subsets of a
// small per-query pool. Keys recur across arrivals and predicate sets are
// subset-related, so each table-mask bucket accumulates hundreds of alive
// views, many of which genuinely subsume an incoming probe — the workload
// the reuse index exists for (the sparse-key regime is fig6 section (g)).
std::vector<Sharing> AdmissionSequence(const TwitterStack& stack, size_t n,
                                       uint64_t seed) {
  const std::vector<Sharing> base =
      TwitterBaseSharings(stack.tables, stack.cluster);
  Rng rng(seed);
  std::vector<std::vector<Predicate>> pools;
  pools.reserve(base.size());
  for (const Sharing& b : base) {
    pools.push_back(
        RandomPredicates(stack.catalog, b.tables(), /*count=*/5, &rng));
  }
  const auto num_servers =
      static_cast<int64_t>(stack.cluster.num_servers());
  std::vector<Sharing> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto which =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                  base.size() - 1)));
    std::vector<Predicate> preds;
    for (const Predicate& p : pools[which]) {
      if (rng.Bernoulli(0.4)) preds.push_back(p);
    }
    const auto dest =
        static_cast<ServerId>(rng.UniformInt(0, num_servers - 1));
    out.emplace_back(base[which].tables(), std::move(preds), dest);
  }
  return out;
}

// Evaluates every candidate plan (serially or on `pool`), commits the
// cheapest feasible one — the admission hot path with enumeration
// excluded, which fig6 reports separately.
bool PlanAndCommit(GlobalPlan* gp, const Sharing& sharing,
                   const std::vector<SharingPlan>& plans, SharingId id,
                   ThreadPool* pool) {
  std::vector<GlobalPlan::PlanEvaluation> evals(plans.size());
  if (pool != nullptr) {
    pool->ParallelFor(plans.size(), [&](size_t i) {
      evals[i] = gp->EvaluatePlan(plans[i]);
    });
  } else {
    for (size_t i = 0; i < plans.size(); ++i) {
      evals[i] = gp->EvaluatePlan(plans[i]);
    }
  }
  int best = -1;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!evals[i].feasible) continue;
    if (best < 0 ||
        evals[i].marginal_cost < evals[static_cast<size_t>(best)]
                                     .marginal_cost) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  return gp->AddSharing(id, sharing, plans[static_cast<size_t>(best)]).ok();
}

struct ModeResult {
  size_t alive_views = 0;
  LatencySummary latency;
};

// Grows a fresh global plan until `target_views` alive views, then times
// the admission of `probes` further sharings (enumeration pre-done).
ModeResult RunAdmissionMode(size_t target_views, size_t probes,
                            bool indexed, ThreadPool* pool, uint64_t seed) {
  EnumeratorOptions enum_options;
  enum_options.per_subset_cap = 16;  // bound the 8/9-table plan explosion
  auto stack = MakeTwitterStack(6, enum_options);
  stack->global_plan->set_reuse_index_enabled(indexed);
  // Dense reuse means most arrivals add at most a residual view, so the
  // sequence is oversized relative to the target view count.
  const auto sequence =
      AdmissionSequence(*stack, 2 * target_views + 4 * probes, seed);

  SharingId next_id = 1;
  size_t pos = 0;
  while (pos < sequence.size() &&
         stack->global_plan->num_alive_views() < target_views) {
    const auto plans = stack->enumerator->Enumerate(sequence[pos]);
    if (plans.ok()) {
      PlanAndCommit(stack->global_plan.get(), sequence[pos], *plans,
                    next_id++, nullptr);
    }
    ++pos;
  }

  ModeResult result;
  result.alive_views = stack->global_plan->num_alive_views();
  std::vector<double> samples;
  for (size_t i = 0; i < probes && pos < sequence.size(); ++i, ++pos) {
    const auto plans = stack->enumerator->Enumerate(sequence[pos]);
    if (!plans.ok()) continue;
    const Timer timer;
    PlanAndCommit(stack->global_plan.get(), sequence[pos], *plans,
                  next_id++, pool);
    samples.push_back(timer.Millis());
  }
  result.latency = LatencySummary::FromSamples(std::move(samples));
  return result;
}

struct RefreshResult {
  size_t sharings = 0;
  double scratch_mean_ms = 0.0;
  double incremental_mean_ms = 0.0;
};

// Admits `population` sharings, then measures per-arrival FAIRCOST
// refreshes with the scratch containment DAG vs the persistent index.
// Both sessions share one memoized LPC calculator, and each arrival's LPC
// is warmed before the timers so only the refresh machinery differs.
RefreshResult RunRefreshMode(size_t population, size_t refreshes,
                             uint64_t seed) {
  EnumeratorOptions enum_options;
  enum_options.per_subset_cap = 8;
  auto stack = MakeTwitterStack(6, enum_options);
  TwitterSequenceOptions options;
  options.num_sharings = population + refreshes;
  options.max_predicates = 2;
  options.seed = seed;
  const auto sequence = GenerateTwitterSequence(
      stack->catalog, stack->tables, stack->cluster, options);

  SharingId next_id = 1;
  size_t pos = 0;
  for (; pos < population && pos < sequence.size(); ++pos) {
    const auto plans = stack->enumerator->Enumerate(sequence[pos]);
    if (plans.ok()) {
      PlanAndCommit(stack->global_plan.get(), sequence[pos], *plans,
                    next_id++, nullptr);
    }
  }

  LpcCalculator lpc(stack->enumerator.get(), stack->model.get());
  CostingSession incremental(stack->global_plan.get(), &lpc);
  CostingSession scratch(stack->global_plan.get(), &lpc);
  scratch.set_incremental_dag_enabled(false);
  // Warm-up: pays every LPC enumeration and builds the persistent index.
  (void)incremental.Refresh();
  (void)scratch.Refresh();

  RefreshResult result;
  std::vector<double> scratch_ms;
  std::vector<double> inc_ms;
  for (size_t i = 0; i < refreshes && pos < sequence.size(); ++i, ++pos) {
    const auto plans = stack->enumerator->Enumerate(sequence[pos]);
    if (!plans.ok()) continue;
    if (!PlanAndCommit(stack->global_plan.get(), sequence[pos], *plans,
                       next_id++, nullptr)) {
      continue;
    }
    (void)lpc.Lpc(sequence[pos]);  // warm, so neither timer pays it
    {
      const Timer timer;
      (void)scratch.Refresh();
      scratch_ms.push_back(timer.Millis());
    }
    {
      const Timer timer;
      (void)incremental.Refresh();
      inc_ms.push_back(timer.Millis());
    }
  }
  result.sharings = stack->global_plan->num_sharings();
  result.scratch_mean_ms =
      LatencySummary::FromSamples(std::move(scratch_ms)).mean_ms;
  result.incremental_mean_ms =
      LatencySummary::FromSamples(std::move(inc_ms)).mean_ms;
  return result;
}

int Main(int argc, char** argv) {
  BenchReport report("fig_admission", argc, argv);
  const bool smoke = report.smoke();
  const bool full = FullScale();

  std::printf("Admission & costing fast paths\n\n");
  std::printf("(a) per-sharing planning time vs alive views "
              "(enumeration excluded)\n");
  std::printf("%-12s %10s %12s %14s %20s %10s\n", "target_views", "alive",
              "legacy(ms)", "indexed(ms)", "indexed+pool(ms)", "speedup");
  report.BeginSection("admission_scaling");
  ThreadPool pool;  // DSM_THREADS / hardware-sized
  for (const size_t target : smoke ? std::vector<size_t>{60}
                             : full ? std::vector<size_t>{500, 1000, 2000,
                                                          4000}
                                    : std::vector<size_t>{250, 500, 1000,
                                                          2000}) {
    const size_t probes = smoke ? 8 : 50;
    const ModeResult legacy =
        RunAdmissionMode(target, probes, /*indexed=*/false, nullptr, 71);
    const ModeResult indexed =
        RunAdmissionMode(target, probes, /*indexed=*/true, nullptr, 71);
    const ModeResult indexed_pool =
        RunAdmissionMode(target, probes, /*indexed=*/true, &pool, 71);
    const double speedup =
        indexed_pool.latency.mean_ms > 0.0
            ? legacy.latency.mean_ms / indexed_pool.latency.mean_ms
            : 0.0;
    std::printf("%-12zu %10zu %12.3f %14.3f %20.3f %9.1fx\n", target,
                legacy.alive_views, legacy.latency.mean_ms,
                indexed.latency.mean_ms, indexed_pool.latency.mean_ms,
                speedup);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("target_views", static_cast<int64_t>(target));
    row.Set("alive_views", static_cast<int64_t>(legacy.alive_views));
    row.Set("legacy", legacy.latency.ToJson());
    row.Set("indexed", indexed.latency.ToJson());
    row.Set("indexed_parallel", indexed_pool.latency.ToJson());
    row.Set("speedup_indexed_vs_legacy",
            indexed.latency.mean_ms > 0.0
                ? legacy.latency.mean_ms / indexed.latency.mean_ms
                : 0.0);
    row.Set("speedup_indexed_parallel_vs_legacy", speedup);
    report.Row(std::move(row));
  }

  std::printf("\n(b) FAIRCOST refresh per arrival: scratch vs incremental "
              "containment DAG\n");
  std::printf("%-10s %14s %18s %10s\n", "sharings", "scratch(ms)",
              "incremental(ms)", "speedup");
  report.BeginSection("faircost_refresh");
  for (const size_t population : smoke ? std::vector<size_t>{20}
                                 : full ? std::vector<size_t>{250, 500, 1000,
                                                              1500}
                                        : std::vector<size_t>{100, 250, 500,
                                                              1000}) {
    const RefreshResult r =
        RunRefreshMode(population, smoke ? 3 : 15, 172);
    const double speedup = r.incremental_mean_ms > 0.0
                               ? r.scratch_mean_ms / r.incremental_mean_ms
                               : 0.0;
    std::printf("%-10zu %14.3f %18.3f %9.1fx\n", r.sharings,
                r.scratch_mean_ms, r.incremental_mean_ms, speedup);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("sharings", static_cast<int64_t>(r.sharings));
    row.Set("scratch_mean_ms", r.scratch_mean_ms);
    row.Set("incremental_mean_ms", r.incremental_mean_ms);
    row.Set("speedup_incremental_vs_scratch", speedup);
    report.Row(std::move(row));
  }

  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
