// Table 2: MANAGEDRISK versus the offline EXHAUSTIVE optimum on small
// sharing sequences (3–5 sharings, at most one predicate each), averaged
// over many sequences.
//
// Paper: relative cost MANAGEDRISK=1 vs EXHAUSTIVE=0.84; relative time
// 1 vs 2.18; MANAGEDRISK never 3x worse than EXHAUSTIVE.

#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "online/exhaustive.h"

namespace dsm {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchReport report("table2_exhaustive", argc, argv);
  const int runs = report.smoke() ? 4 : FullScale() ? 50 : 15;
  Rng rng(2014);

  double mr_cost_sum = 0.0;
  double ex_cost_sum = 0.0;
  double mr_time_sum = 0.0;
  double ex_time_sum = 0.0;
  double worst_ratio = 0.0;
  int incomplete = 0;

  for (int run = 0; run < runs; ++run) {
    auto stack = MakeTwitterStack(6);
    TwitterSequenceOptions options;
    options.num_sharings =
        3 + static_cast<size_t>(rng.UniformInt(0, 2));  // 3-5 sharings
    options.max_predicates = 1;
    options.seed = 3000 + static_cast<uint64_t>(run);
    const auto sequence = GenerateTwitterSequence(
        stack->catalog, stack->tables, stack->cluster, options);

    const auto mr = MakePlanner(Algo::kManagedRisk, stack->ctx);
    const RunStats mr_stats = RunPlanner(mr.get(), sequence);

    auto ex_stack = MakeTwitterStack(6);
    ExhaustiveOptions ex_options;
    ex_options.max_plans_per_sharing = FullScale() ? 0 : 48;
    ex_options.time_limit_seconds = FullScale() ? 300.0 : 20.0;
    ExhaustivePlanner exhaustive(ex_stack->ctx, ex_options);
    const Timer timer;
    const auto ex_result = exhaustive.Solve(sequence);
    const double ex_seconds = timer.Seconds();
    if (!ex_result.ok()) continue;
    if (!ex_result->completed) ++incomplete;

    mr_cost_sum += mr_stats.total_cost;
    ex_cost_sum += ex_result->total_cost;
    mr_time_sum += mr_stats.seconds;
    ex_time_sum += ex_seconds;
    worst_ratio =
        std::max(worst_ratio, mr_stats.total_cost / ex_result->total_cost);
  }

  std::printf("Table 2 — MANAGEDRISK vs EXHAUSTIVE over %d sequences of "
              "3-5 sharings (<=1 predicate)\n\n",
              runs);
  std::printf("%-8s %14s %14s\n", "", "ManagedRisk", "Exhaustive");
  std::printf("%-8s %14.2f %14.2f   (paper: 1 vs 0.84)\n", "cost", 1.0,
              ex_cost_sum / mr_cost_sum);
  std::printf("%-8s %14.2f %14.2f   (paper: 1 vs 2.18)\n", "time", 1.0,
              ex_time_sum / std::max(1e-9, mr_time_sum));
  std::printf("\nworst per-sequence cost ratio MR/EXH: %.2f "
              "(paper: never >= 3)\n",
              worst_ratio);
  if (incomplete > 0) {
    std::printf("(%d exhaustive searches hit the time limit)\n", incomplete);
  }
  report.BeginSection("table2");
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("runs", runs);
  row.Set("relative_cost_exhaustive", ex_cost_sum / mr_cost_sum);
  row.Set("relative_time_exhaustive",
          ex_time_sum / std::max(1e-9, mr_time_sum));
  row.Set("worst_cost_ratio_mr_over_exh", worst_ratio);
  row.Set("incomplete_searches", incomplete);
  report.Row(std::move(row));
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
