// Figure 4: worst-case cost ratios between the online planners on
// synthetic three-way-join sequences — Example 4.1-style traps (a shared
// subexpression the optimum materializes), Example 4.2-style traps (a
// tempting subexpression the optimum never builds), and random mixes.
//
// Paper shape: MR/Greedy and MR/Norm stay small (a few ×) while
// Greedy/MR and Norm/MR blow up (~30× and ~20×).

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "workload/adversarial.h"

namespace dsm {
namespace bench {
namespace {

struct Ratios {
  double mr_over_greedy = 0.0;
  double mr_over_norm = 0.0;
  double greedy_over_mr = 0.0;
  double norm_over_mr = 0.0;

  void Update(double greedy, double norm, double mr) {
    mr_over_greedy = std::max(mr_over_greedy, mr / greedy);
    mr_over_norm = std::max(mr_over_norm, mr / norm);
    greedy_over_mr = std::max(greedy_over_mr, greedy / mr);
    norm_over_mr = std::max(norm_over_mr, norm / mr);
  }
};

void RunScenario(const Scenario& scenario, Ratios* ratios) {
  double costs[3];
  for (int which = 0; which < 3; ++which) {
    PlanEnumerator enumerator(scenario.catalog.get(), scenario.cluster.get(),
                              scenario.graph.get(), scenario.model.get(),
                              EnumeratorOptions{});
    GlobalPlan global_plan(scenario.cluster.get(), scenario.model.get());
    PlannerContext ctx{scenario.catalog.get(), scenario.cluster.get(),
                       scenario.graph.get(),   scenario.model.get(),
                       &global_plan,           &enumerator};
    const auto planner = MakePlanner(static_cast<Algo>(which), ctx);
    for (const Sharing& sharing : scenario.sharings) {
      (void)planner->ProcessSharing(sharing);
    }
    costs[which] = global_plan.TotalCost();
  }
  ratios->Update(costs[0], costs[1], costs[2]);
}

int Main(int argc, char** argv) {
  BenchReport report("fig4_worst_case", argc, argv);
  const bool full = FullScale();
  const int n = report.smoke() ? 20 : 60;  // sharings per trap sequence
  Ratios ratios;

  // Example 4.1 family: risky subexpression worth materializing. The
  // truncated variants (sequence ends right after MANAGEDRISK's switch)
  // are MANAGEDRISK's own worst case — the risk never pays off, bounding
  // MR/Greedy near 2.
  for (const double risky : {10.0, 20.0, 50.0, 100.0}) {
    RunScenario(MakeGreedyTrap(n, risky, 10.0, 1e-3), &ratios);
    const int truncate = static_cast<int>(risky / 10.0) + 1;
    RunScenario(MakeGreedyTrap(truncate, risky, 10.0, 1e-3), &ratios);
  }
  // Example 4.2 family: tempting subexpression that never pays off.
  for (const double eps : {1e-2, 5e-2}) {
    RunScenario(MakeNormalizeTrap(n, eps), &ratios);
  }
  // Random three-way joins with costs in [1, 1e5].
  const int random_runs = report.smoke() ? 5 : full ? 200 : 30;
  for (int seed = 1; seed <= random_runs; ++seed) {
    RunScenario(
        MakeRandomThreeWay(static_cast<uint64_t>(seed), full ? 60 : 30, 16),
        &ratios);
  }

  std::printf("Figure 4 — worst-case cost ratios over %d synthetic "
              "sequences (paper: ~2, ~4, ~30, ~20)\n\n",
              random_runs + 6);
  std::printf("%-12s %10s\n", "pair", "max ratio");
  report.BeginSection("worst_case_ratios");
  const std::pair<const char*, double> pairs[] = {
      {"MR/Greedy", ratios.mr_over_greedy},
      {"MR/Norm", ratios.mr_over_norm},
      {"Greedy/MR", ratios.greedy_over_mr},
      {"Norm/MR", ratios.norm_over_mr}};
  for (const auto& [name, ratio] : pairs) {
    std::printf("%-12s %10.2f\n", name, ratio);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("pair", name);
    row.Set("max_ratio", ratio);
    report.Row(std::move(row));
  }
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
