// Compact data plane vs legacy row store: end-to-end maintenance
// throughput and per-kernel micro-benchmarks over wide, string-keyed
// relations — the workload the compact encoding targets (DESIGN.md §12).
//
// The engine sweep replays one pre-generated high-update-rate stream
// through a chain-join view population twice per cell: once with
// DeltaEngineOptions::compact_rows (interned tagged slots, flat tuples,
// pre-hashed bag tables) and once on the legacy
// std::unordered_map<Tuple,int64_t> store. Join keys are strings, so every
// legacy probe hashes and compares string bytes while the compact plane
// memcmps 8-byte slots. The measured join work must be identical in both
// encodings — it is checked, not assumed.
//
// The kernel section times Filter / Project / WithColumnOrder /
// NaturalJoin in isolation on both encodings over the same bag.

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "common/rng.h"
#include "maintain/delta_engine.h"

namespace dsm {
namespace bench {
namespace {

constexpr int kNumTables = 4;
constexpr int kKeyDomain = 512;

// Chain tables T0..T3; adjacent tables share one *string* join column.
// Each table also carries a string payload and a numeric column (the
// predicate target), making tuples wide: (k_i, k_{i+1}, p_i, v_i).
Catalog MakeChainCatalog() {
  Catalog catalog;
  for (int i = 0; i < kNumTables; ++i) {
    TableDef def;
    def.name = "T" + std::to_string(i);
    for (const int c : {i, i + 1}) {
      ColumnDef col;
      col.name = "k" + std::to_string(c);
      col.distinct_values = kKeyDomain;
      col.min_value = 0;
      col.max_value = kKeyDomain;
      def.columns.push_back(col);
    }
    ColumnDef payload;
    payload.name = "p" + std::to_string(i);
    payload.distinct_values = 4096;
    payload.min_value = 0;
    payload.max_value = 4096;
    def.columns.push_back(payload);
    ColumnDef num;
    num.name = "v" + std::to_string(i);
    num.distinct_values = 1024;
    num.min_value = 0;
    num.max_value = 1024;
    def.columns.push_back(num);
    *catalog.AddTable(def);
  }
  return catalog;
}

std::string Key(int64_t id) { return "user-" + std::to_string(id); }

Tuple RandomTuple(Rng* rng) {
  Tuple t;
  t.emplace_back(Key(rng->UniformInt(0, kKeyDomain - 1)));
  t.emplace_back(Key(rng->UniformInt(0, kKeyDomain - 1)));
  t.emplace_back("payload-" + std::to_string(rng->UniformInt(0, 4095)));
  t.emplace_back(rng->UniformInt(0, 1023));
  return t;
}

struct Workload {
  std::vector<ViewKey> views;
  std::vector<TableUpdate> prepopulate;          // untimed bulk load
  std::vector<std::vector<TableUpdate>> rounds;  // timed batches
  uint64_t stream_tuples = 0;
};

Workload MakeWorkload(int num_views, int base_rows, int rounds,
                      int updates_per_table, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int v = 0; v < num_views; ++v) {
    const int lo = static_cast<int>(rng.UniformInt(0, kNumTables - 3));
    const int hi = lo + 2;  // three-table chain views
    TableSet tables;
    for (int t = lo; t <= hi; ++t) tables.Add(static_cast<TableId>(t));
    std::vector<Predicate> preds;
    if (v % 2 == 0) {
      Predicate p;
      p.table = static_cast<TableId>(rng.UniformInt(lo, hi));
      p.column = 3;  // the numeric column v_i
      p.op = CompareOp::kLt;
      p.value = 768;  // keeps ~3/4 of the operand
      preds.push_back(p);
    }
    w.views.emplace_back(tables, preds);
  }
  for (int t = 0; t < kNumTables; ++t) {
    TableUpdate bulk;
    bulk.table = static_cast<TableId>(t);
    for (int i = 0; i < base_rows; ++i) {
      bulk.inserts.push_back(RandomTuple(&rng));
    }
    w.prepopulate.push_back(std::move(bulk));
  }
  for (int r = 0; r < rounds; ++r) {
    std::vector<TableUpdate> round;
    for (int t = 0; t < kNumTables; ++t) {
      TableUpdate update;
      update.table = static_cast<TableId>(t);
      for (int i = 0; i < updates_per_table; ++i) {
        const auto& pool = w.prepopulate[static_cast<size_t>(t)].inserts;
        if (i % 5 == 4 && !pool.empty()) {
          update.deletes.push_back(pool[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(pool.size()) - 1))]);
        } else {
          update.inserts.push_back(RandomTuple(&rng));
        }
      }
      w.stream_tuples += update.inserts.size() + update.deletes.size();
      round.push_back(std::move(update));
    }
    w.rounds.push_back(std::move(round));
  }
  return w;
}

struct CellResult {
  double seconds = 0.0;
  uint64_t work = 0;
};

CellResult RunCell(const Catalog& catalog, const Workload& w,
                   bool compact_rows) {
  DeltaEngineOptions options;
  options.compact_rows = compact_rows;
  options.pool.num_threads = 1;  // isolate the encoding, not the pool
  DeltaEngine engine(&catalog, options);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    if (!engine.RegisterBase(t).ok()) std::abort();
  }
  if (!engine.ApplyUpdates(w.prepopulate).ok()) std::abort();
  for (const ViewKey& key : w.views) {
    if (!engine.RegisterView(key).ok()) std::abort();
  }
  const Timer timer;
  for (const std::vector<TableUpdate>& round : w.rounds) {
    if (!engine.ApplyUpdates(round).ok()) std::abort();
  }
  CellResult result;
  result.seconds = timer.Seconds();
  result.work = engine.work();
  return result;
}

// --- kernel micro-benchmarks ------------------------------------------------

Relation MakeKernelRelation(RowEncoding encoding, int rows, uint64_t seed) {
  Rng rng(seed);
  Relation rel({"k0", "k1", "p0", "v0"}, encoding);
  for (int i = 0; i < rows; ++i) rel.Apply(RandomTuple(&rng), 1);
  return rel;
}

double TimeKernel(const char* name, RowEncoding encoding, int rows,
                  int reps) {
  const Relation rel = MakeKernelRelation(encoding, rows, /*seed=*/1234);
  // The join probe side shares only the string key column k0.
  Relation other({"k0", "b1"}, encoding);
  {
    Rng rng(5678);
    for (int i = 0; i < rows; ++i) {
      other.Apply(Tuple{Value(Key(rng.UniformInt(0, kKeyDomain - 1))),
                        Value(rng.UniformInt(0, 1023))},
                  1);
    }
  }
  const std::string kernel(name);
  const Timer timer;
  uint64_t sink = 0;
  for (int r = 0; r < reps; ++r) {
    if (kernel == "filter") {
      sink += rel.Filter("v0", CompareOp::kLt, 512).DistinctSize();
    } else if (kernel == "project") {
      sink += rel.Project({"k0", "v0"}).DistinctSize();
    } else if (kernel == "reorder") {
      sink += rel.WithColumnOrder({"v0", "p0", "k1", "k0"}).DistinctSize();
    } else {
      uint64_t work = 0;
      sink += NaturalJoin(rel, other, &work).DistinctSize();
    }
  }
  if (sink == 0) std::abort();  // kernels must have produced rows
  return timer.Seconds();
}

int Main(int argc, char** argv) {
  BenchReport report("fig_relation", argc, argv);
  const bool full = FullScale();

  const std::vector<int> rate_scales =  // updates per table per round
      report.smoke() ? std::vector<int>{8}
      : full         ? std::vector<int>{32, 128, 512}
                     : std::vector<int>{32, 128};
  const int num_views = report.smoke() ? 2 : 8;
  const int base_rows = report.smoke() ? 200 : full ? 4000 : 1500;
  const int rounds = report.smoke() ? 2 : 4;
  const Catalog catalog = MakeChainCatalog();

  std::printf("Compact data plane vs legacy row store "
              "(string-keyed chain joins over %d tables, %d views, "
              "%d base rows/table, %d timed rounds)\n\n",
              kNumTables, num_views, base_rows, rounds);
  std::printf("%6s %10s %12s %12s %10s\n", "rate", "encoding", "seconds",
              "tuples/s", "speedup");
  report.BeginSection("maintenance_encoding");

  for (const int rate : rate_scales) {
    const Workload w = MakeWorkload(num_views, base_rows, rounds, rate,
                                    /*seed=*/static_cast<uint64_t>(rate));
    const CellResult legacy = RunCell(catalog, w, /*compact_rows=*/false);
    const CellResult compact = RunCell(catalog, w, /*compact_rows=*/true);
    if (compact.work != legacy.work) std::abort();  // equivalence guard
    for (const bool is_compact : {false, true}) {
      const CellResult& cell = is_compact ? compact : legacy;
      const double speedup = legacy.seconds / cell.seconds;
      const double tuples_per_sec =
          static_cast<double>(w.stream_tuples) / cell.seconds;
      std::printf("%6d %10s %12.4f %12.0f %9.2fx\n", rate,
                  is_compact ? "compact" : "legacy", cell.seconds,
                  tuples_per_sec, speedup);
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("updates_per_table_per_round", rate);
      row.Set("encoding", is_compact ? "compact" : "legacy");
      row.Set("seconds", cell.seconds);
      row.Set("stream_tuples", static_cast<double>(w.stream_tuples));
      row.Set("tuples_per_sec", tuples_per_sec);
      row.Set("join_work", static_cast<double>(cell.work));
      row.Set("speedup_vs_legacy", speedup);
      report.Row(std::move(row));
    }
  }

  const int kernel_rows = report.smoke() ? 500 : full ? 40000 : 10000;
  const int kernel_reps = report.smoke() ? 2 : 10;
  std::printf("\nRelation kernels (%d rows, %d reps)\n\n", kernel_rows,
              kernel_reps);
  std::printf("%10s %12s %12s %10s\n", "kernel", "legacy_s", "compact_s",
              "speedup");
  report.BeginSection("relation_kernels");
  for (const char* kernel : {"filter", "project", "reorder", "join"}) {
    const double legacy_s =
        TimeKernel(kernel, RowEncoding::kLegacy, kernel_rows, kernel_reps);
    const double compact_s =
        TimeKernel(kernel, RowEncoding::kCompact, kernel_rows, kernel_reps);
    std::printf("%10s %12.4f %12.4f %9.2fx\n", kernel, legacy_s, compact_s,
                legacy_s / compact_s);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("kernel", kernel);
    row.Set("rows", kernel_rows);
    row.Set("reps", kernel_reps);
    row.Set("legacy_seconds", legacy_s);
    row.Set("compact_seconds", compact_s);
    row.Set("speedup_vs_legacy", legacy_s / compact_s);
    report.Row(std::move(row));
  }

  std::printf("\n(speedup: legacy seconds / same-cell seconds; join work "
              "checked identical across encodings)\n");
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
