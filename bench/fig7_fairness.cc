// Figure 7: fairness of FAIRCOST versus the even-split baseline on the
// Twitter workload, measured by the Section 5 criteria — α for both
// algorithms plus the baseline's LPC / Identical / Contained fractions
// (FAIRCOST scores 1.0 on those by construction; verified here).
//
// Paper shape: FAIRCOST's α close to 1 and all criteria at 1; the
// baseline's α lower and its criterion fractions visibly below 1.

#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "costing/even_split.h"
#include "costing/fairness_metrics.h"
#include "costing/lpc.h"
#include "costing/savings.h"

namespace dsm {
namespace bench {
namespace {

struct Row {
  double alpha_fair = 0.0;
  double alpha_base = 0.0;
  double lpc_base = 0.0;
  double ident_base = 0.0;
  double cont_base = 0.0;
  bool fair_all_one = true;
};

Row Measure(size_t num_sharings, int max_preds, uint64_t seed) {
  auto stack = MakeTwitterStack(6);
  TwitterSequenceOptions options;
  options.num_sharings = num_sharings;
  options.max_predicates = max_preds;
  options.seed = seed;
  const auto sequence = GenerateTwitterSequence(stack->catalog,
                                                stack->tables,
                                                stack->cluster, options);
  // "The algorithm for costing sharings are invoked on the output of
  // Algorithm MANAGEDRISK on the Twitter data." (Section 6.1.2)
  const auto planner = MakePlanner(Algo::kManagedRisk, stack->ctx);
  (void)RunPlanner(planner.get(), sequence);

  Row row;
  LpcCalculator lpc(stack->enumerator.get(), stack->model.get());
  const auto problem = BuildFairCostProblem(*stack->global_plan, &lpc);
  if (!problem.ok()) return row;
  const auto fair =
      FairCost::Compute(problem->entries, problem->global_cost);
  if (!fair.ok()) return row;
  const auto even = EvenSplitCosts(*stack->global_plan, problem->ids);
  if (!even.ok()) return row;

  const FairnessReport fair_report =
      EvaluateFairness(problem->entries, problem->global_cost, fair->ac);
  const FairnessReport base_report =
      EvaluateFairness(problem->entries, problem->global_cost, *even);
  row.alpha_fair = fair_report.alpha;
  row.alpha_base = base_report.alpha;
  row.lpc_base = base_report.lpc_fraction;
  row.ident_base = base_report.identical_fraction;
  row.cont_base = base_report.contained_fraction;
  row.fair_all_one = fair_report.lpc_fraction == 1.0 &&
                     fair_report.identical_fraction == 1.0 &&
                     fair_report.contained_fraction == 1.0;
  return row;
}

obs::JsonValue PairJson(const std::string& x_label, const Row& a,
                        const Row& b) {
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("x", x_label);
  row.Set("alpha_faircost", (a.alpha_fair + b.alpha_fair) / 2);
  row.Set("alpha_baseline", (a.alpha_base + b.alpha_base) / 2);
  row.Set("lpc_fraction_baseline", (a.lpc_base + b.lpc_base) / 2);
  row.Set("identical_fraction_baseline", (a.ident_base + b.ident_base) / 2);
  row.Set("contained_fraction_baseline", (a.cont_base + b.cont_base) / 2);
  row.Set("faircost_all_criteria", a.fair_all_one && b.fair_all_one);
  return row;
}

void Sweep(BenchReport* report, const char* section, const char* title,
           int max_preds, const std::vector<std::pair<int, int>>& buckets,
           uint64_t seed) {
  std::printf("%s\n", title);
  std::printf("%-10s %12s %12s %12s %12s %12s %10s\n", "sharings",
              "a-FairCost", "a-Baseline", "LPC(base)", "Ident(base)",
              "Cont(base)", "FC all=1");
  report->BeginSection(section);
  for (const auto& [lo, hi] : buckets) {
    // Average the bucket's endpoints (two runs per bucket).
    const Row a = Measure(static_cast<size_t>(lo), max_preds, seed + lo);
    const Row b = Measure(static_cast<size_t>(hi), max_preds, seed + hi);
    std::printf("%3d-%-6d %12.3f %12.3f %12.3f %12.3f %12.3f %10s\n", lo,
                hi, (a.alpha_fair + b.alpha_fair) / 2,
                (a.alpha_base + b.alpha_base) / 2,
                (a.lpc_base + b.lpc_base) / 2,
                (a.ident_base + b.ident_base) / 2,
                (a.cont_base + b.cont_base) / 2,
                a.fair_all_one && b.fair_all_one ? "yes" : "NO");
    report->Row(PairJson(std::to_string(lo) + "-" + std::to_string(hi), a,
                         b));
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  BenchReport report("fig7_fairness", argc, argv);
  std::printf("Figure 7 — fair costing quality (FairCost vs even-split "
              "baseline)\n\n");
  const std::vector<std::pair<int, int>> buckets =
      report.smoke()
          ? std::vector<std::pair<int, int>>{{10, 20}}
          : std::vector<std::pair<int, int>>{
                {10, 20}, {20, 30}, {30, 40}, {40, 50}, {50, 60}};

  Sweep(&report, "a_no_predicates",
        "(a) sharings per test case, no predicates", 0, buckets, 700);
  Sweep(&report, "b_with_predicates",
        "(b) sharings per test case, 0-2 predicates", 2, buckets, 800);

  std::printf("(c) max predicates per sharing, 40-50 sharings\n");
  std::printf("%-10s %12s %12s %12s %12s %12s %10s\n", "max preds",
              "a-FairCost", "a-Baseline", "LPC(base)", "Ident(base)",
              "Cont(base)", "FC all=1");
  report.BeginSection("c_max_predicates");
  for (const int preds : report.smoke() ? std::vector<int>{0}
                                        : std::vector<int>{0, 1, 2, 3}) {
    const Row a = Measure(40, preds, 900 + static_cast<uint64_t>(preds));
    const Row b = Measure(50, preds, 950 + static_cast<uint64_t>(preds));
    std::printf("%-10d %12.3f %12.3f %12.3f %12.3f %12.3f %10s\n", preds,
                (a.alpha_fair + b.alpha_fair) / 2,
                (a.alpha_base + b.alpha_base) / 2,
                (a.lpc_base + b.lpc_base) / 2,
                (a.ident_base + b.ident_base) / 2,
                (a.cont_base + b.cont_base) / 2,
                a.fair_all_one && b.fair_all_one ? "yes" : "NO");
    report.Row(PairJson(std::to_string(preds), a, b));
  }
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
