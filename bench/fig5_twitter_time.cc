// Figure 5: running time of the three online planners on the Twitter
// workload, varying (a) the number of sharings without predicates, (b)
// with 0–2 predicates, (c) the number of machines, (d) the maximum number
// of predicates per sharing.
//
// Paper shape: the three algorithms track each other closely; time grows
// mildly with sequence length and machines, and exponentially with the
// number of predicates.

#include <vector>

#include "bench_common.h"
#include "bench_report.h"

namespace dsm {
namespace bench {
namespace {

double SecondsPerSharing(Algo algo, size_t num_sharings, int max_preds,
                         size_t machines, uint64_t seed) {
  // Average three seeds per point to damp workload-sampling noise.
  double total = 0.0;
  for (uint64_t rep = 0; rep < 3; ++rep) {
    auto stack = MakeTwitterStack(machines);
    TwitterSequenceOptions options;
    options.num_sharings = num_sharings;
    options.max_predicates = max_preds;
    options.seed = seed + rep * 1000;
    const auto sequence = GenerateTwitterSequence(stack->catalog,
                                                  stack->tables,
                                                  stack->cluster, options);
    const auto planner = MakePlanner(algo, stack->ctx);
    const RunStats stats = RunPlanner(planner.get(), sequence);
    total += stats.seconds / static_cast<double>(sequence.size());
  }
  return total / 3.0;
}

void Sweep(BenchReport* report, const char* section, const char* title,
           const std::vector<int>& xs, double (*run)(Algo, int)) {
  std::printf("%s\n", title);
  std::printf("%-10s %14s %14s %14s\n", "x", "Greedy(ms)", "Normalize(ms)",
              "ManagedRisk(ms)");
  report->BeginSection(section);
  for (const int x : xs) {
    std::printf("%-10d", x);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("x", x);
    for (const Algo algo :
         {Algo::kGreedy, Algo::kNormalize, Algo::kManagedRisk}) {
      const double ms = run(algo, x) * 1e3;
      std::printf(" %14.3f", ms);
      row.Set(std::string(AlgoName(algo)) + "_ms", ms);
    }
    report->Row(std::move(row));
    std::printf("\n");
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  BenchReport report("fig5_twitter_time", argc, argv);
  std::printf("Figure 5 — per-sharing planning time on Twitter data\n\n");
  const std::vector<int> counts = report.smoke()
                                      ? std::vector<int>{10, 20}
                                      : std::vector<int>{10, 20, 30, 40,
                                                         50, 60};

  Sweep(&report, "a_sharings_no_predicates",
        "(a) number of sharings (no predicates, 6 machines)", counts,
        [](Algo algo, int n) {
          return SecondsPerSharing(algo, static_cast<size_t>(n), 0, 6, 101);
        });

  Sweep(&report, "b_sharings_with_predicates",
        "(b) number of sharings (0-2 predicates, 6 machines)", counts,
        [](Algo algo, int n) {
          return SecondsPerSharing(algo, static_cast<size_t>(n), 2, 6, 102);
        });

  Sweep(&report, "c_machines",
        "(c) number of machines (no predicates, 40 sharings)",
        report.smoke() ? std::vector<int>{5, 6}
                       : std::vector<int>{5, 6, 7, 8, 9},
        [](Algo algo, int machines) {
          return SecondsPerSharing(algo, 40, 0,
                                   static_cast<size_t>(machines), 103);
        });

  Sweep(&report, "d_max_predicates",
        "(d) max predicates per sharing (40 sharings, 6 machines)",
        report.smoke() ? std::vector<int>{0, 1}
                       : std::vector<int>{0, 1, 2, 3},
        [](Algo algo, int preds) {
          return SecondsPerSharing(algo, 40, preds, 6, 104);
        });
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
