// Maintenance-engine throughput: threads × views × update-rate sweep over
// the parallel, cache-reusing DeltaEngine, against the legacy
// re-filter-per-update configuration (operand_cache off, pool size 1).
//
// Each cell replays the same pre-generated update stream through a chain-
// join view population: bases are pre-populated (untimed), then timed
// rounds of batched updates flow through ApplyUpdates. Reported speedups:
//   speedup_vs_serial — same engine, threads=N vs threads=1 (both cached);
//     bounded by the machine's core count.
//   speedup_vs_legacy — cached serial engine vs the pre-cache engine
//     (re-filter + re-hash every operand per update), the operand-cache
//     reuse win; independent of core count.

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "common/rng.h"
#include "maintain/delta_engine.h"

namespace dsm {
namespace bench {
namespace {

constexpr int kNumTables = 6;

Catalog MakeChainCatalog() {
  Catalog catalog;
  for (int i = 0; i < kNumTables; ++i) {
    TableDef def;
    def.name = "T" + std::to_string(i);
    for (const int c : {i, i + 1}) {
      ColumnDef col;
      col.name = "c" + std::to_string(c);
      // A wide domain keeps chain joins selective: with N rows per base,
      // each join step multiplies sizes by ~N/1024, so views stay small
      // while every probe still finds matches.
      col.distinct_values = 1024;
      col.min_value = 0;
      col.max_value = 1024;
      def.columns.push_back(col);
    }
    *catalog.AddTable(def);
  }
  return catalog;
}

Tuple RandomTuple(Rng* rng) {
  Tuple t;
  t.emplace_back(rng->UniformInt(0, 1023));
  t.emplace_back(rng->UniformInt(0, 1023));
  return t;
}

struct Workload {
  std::vector<ViewKey> views;
  std::vector<TableUpdate> prepopulate;           // untimed bulk load
  std::vector<std::vector<TableUpdate>> rounds;   // timed batches
  uint64_t stream_tuples = 0;                     // tuples across rounds
};

Workload MakeWorkload(int num_views, int base_rows, int rounds,
                      int updates_per_table, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int v = 0; v < num_views; ++v) {
    const int lo = static_cast<int>(rng.UniformInt(0, kNumTables - 3));
    const int hi = lo + 2;  // three-table chain views
    TableSet tables;
    for (int t = lo; t <= hi; ++t) tables.Add(static_cast<TableId>(t));
    std::vector<Predicate> preds;
    if (v % 2 == 0) {
      Predicate p;
      p.table = static_cast<TableId>(rng.UniformInt(lo, hi));
      p.column = static_cast<uint16_t>(rng.UniformInt(0, 1));
      p.op = CompareOp::kLt;
      p.value = 768;  // keeps ~3/4 of the operand
      preds.push_back(p);
    }
    w.views.emplace_back(tables, preds);
  }
  for (int t = 0; t < kNumTables; ++t) {
    TableUpdate bulk;
    bulk.table = static_cast<TableId>(t);
    for (int i = 0; i < base_rows; ++i) {
      bulk.inserts.push_back(RandomTuple(&rng));
    }
    w.prepopulate.push_back(std::move(bulk));
  }
  for (int r = 0; r < rounds; ++r) {
    std::vector<TableUpdate> round;
    for (int t = 0; t < kNumTables; ++t) {
      TableUpdate update;
      update.table = static_cast<TableId>(t);
      for (int i = 0; i < updates_per_table; ++i) {
        if (i % 5 == 4 && !w.prepopulate[static_cast<size_t>(t)]
                               .inserts.empty()) {
          // Delete a known-live row (from the bulk load).
          const auto& pool =
              w.prepopulate[static_cast<size_t>(t)].inserts;
          update.deletes.push_back(pool[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(pool.size()) - 1))]);
        } else {
          update.inserts.push_back(RandomTuple(&rng));
        }
      }
      w.stream_tuples += update.inserts.size() + update.deletes.size();
      round.push_back(std::move(update));
    }
    w.rounds.push_back(std::move(round));
  }
  return w;
}

struct CellResult {
  double seconds = 0.0;
  uint64_t work = 0;
};

CellResult RunCell(const Catalog& catalog, const Workload& w, int threads,
                   bool operand_cache) {
  DeltaEngineOptions options;
  options.pool.num_threads = threads;
  options.operand_cache = operand_cache;
  DeltaEngine engine(&catalog, options);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    if (!engine.RegisterBase(t).ok()) std::abort();
  }
  if (!engine.ApplyUpdates(w.prepopulate).ok()) std::abort();
  for (const ViewKey& key : w.views) {
    if (!engine.RegisterView(key).ok()) std::abort();
  }
  const Timer timer;
  for (const std::vector<TableUpdate>& round : w.rounds) {
    if (!engine.ApplyUpdates(round).ok()) std::abort();
  }
  CellResult result;
  result.seconds = timer.Seconds();
  result.work = engine.work();
  return result;
}

int Main(int argc, char** argv) {
  BenchReport report("fig_maintenance", argc, argv);
  const bool full = FullScale();

  const std::vector<int> view_counts = report.smoke() ? std::vector<int>{4}
                                       : full ? std::vector<int>{8, 32, 64}
                                              : std::vector<int>{8, 32};
  const std::vector<int> rate_scales =  // updates per table per round
      report.smoke() ? std::vector<int>{8}
      : full         ? std::vector<int>{8, 32, 128}
                     : std::vector<int>{8, 64};
  const std::vector<int> thread_counts =
      report.smoke() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
  const int base_rows = report.smoke() ? 400 : 4000;
  const int rounds = report.smoke() ? 2 : 5;
  const Catalog catalog = MakeChainCatalog();

  std::printf("Maintenance engine throughput (chain joins over %d tables, "
              "%d base rows/table, %d timed rounds)\n\n",
              kNumTables, base_rows, rounds);
  std::printf("%6s %6s %8s %7s %10s %12s %10s %10s\n", "views", "rate",
              "threads", "cache", "seconds", "tuples/s", "vs_serial",
              "vs_legacy");
  report.BeginSection("maintenance_throughput");

  for (const int views : view_counts) {
    for (const int rate : rate_scales) {
      const Workload w =
          MakeWorkload(views, base_rows, rounds, rate,
                       /*seed=*/static_cast<uint64_t>(views * 1009 + rate));
      // The pre-PR engine: serial, re-filters and re-hashes every operand
      // on every update.
      const CellResult legacy = RunCell(catalog, w, 1, false);
      CellResult serial_cached;
      for (const int threads : thread_counts) {
        const CellResult cell = RunCell(catalog, w, threads, true);
        if (cell.work != legacy.work) std::abort();  // equivalence guard
        if (threads == 1) serial_cached = cell;
        const double vs_serial =
            threads == 1 ? 1.0 : serial_cached.seconds / cell.seconds;
        const double vs_legacy = legacy.seconds / cell.seconds;
        const double tuples_per_sec =
            static_cast<double>(w.stream_tuples) / cell.seconds;
        std::printf("%6d %6d %8d %7s %10.4f %12.0f %9.2fx %9.2fx\n", views,
                    rate, threads, "on", cell.seconds, tuples_per_sec,
                    vs_serial, vs_legacy);
        obs::JsonValue row = obs::JsonValue::Object();
        row.Set("views", views);
        row.Set("updates_per_table_per_round", rate);
        row.Set("threads", threads);
        row.Set("operand_cache", true);
        row.Set("seconds", cell.seconds);
        row.Set("stream_tuples", static_cast<double>(w.stream_tuples));
        row.Set("tuples_per_sec", tuples_per_sec);
        row.Set("join_work", static_cast<double>(cell.work));
        row.Set("speedup_vs_serial", vs_serial);
        row.Set("speedup_vs_legacy", vs_legacy);
        report.Row(std::move(row));
      }
      std::printf("%6d %6d %8d %7s %10.4f %12.0f %9s %9s\n", views, rate, 1,
                  "off", legacy.seconds,
                  static_cast<double>(w.stream_tuples) / legacy.seconds,
                  "-", "1.00x");
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("views", views);
      row.Set("updates_per_table_per_round", rate);
      row.Set("threads", 1);
      row.Set("operand_cache", false);
      row.Set("seconds", legacy.seconds);
      row.Set("stream_tuples", static_cast<double>(w.stream_tuples));
      row.Set("tuples_per_sec",
              static_cast<double>(w.stream_tuples) / legacy.seconds);
      row.Set("join_work", static_cast<double>(legacy.work));
      row.Set("speedup_vs_serial", 1.0);
      row.Set("speedup_vs_legacy", 1.0);
      report.Row(std::move(row));
    }
  }

  report.BeginSection("environment");
  obs::JsonValue env = obs::JsonValue::Object();
  env.Set("hardware_concurrency",
          static_cast<double>(std::thread::hardware_concurrency()));
  env.Set("note",
          "thread speedups are bounded by hardware_concurrency; "
          "speedup_vs_legacy (operand-cache reuse) is core-count "
          "independent");
  report.Row(std::move(env));

  std::printf("\n(vs_serial: same engine at 1 thread; vs_legacy: pre-cache "
              "engine, serial)\n");
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
