// Figure 6: scalability on the synthetic star schema — per-sharing
// planning time versus (a) sharing size on one machine, (b) sharing size
// on ten machines, (c) sequence length, (d) number of machines, (e) total
// dimension tables, (f) total fact tables. Plan-enumeration time is
// reported separately, as in the figure's legend.
//
// Paper shape: exponential in sharing size (all plans are enumerated),
// slightly *decreasing* in sequence length (repeat sharings skip
// planning), increasing in machines, flat in dims/facts.

#include <functional>
#include <vector>

#include "bench_common.h"

namespace dsm {
namespace bench {
namespace {

struct Point {
  double enumerate_ms = 0.0;  // plan-enumeration share
  double greedy_ms = 0.0;
  double norm_ms = 0.0;
  double mr_ms = 0.0;
};

Point Measure(int facts, int dims, size_t machines, size_t num_sharings,
              int max_tables, bool exact_size, uint64_t seed,
              size_t beam = 0) {
  EnumeratorOptions enum_options;
  enum_options.per_subset_cap = beam;

  StarSequenceOptions seq_options;
  seq_options.num_sharings = num_sharings;
  seq_options.max_tables = max_tables;
  seq_options.exact_size = exact_size;
  seq_options.seed = seed;

  Point point;
  // Pure enumeration time (shared across planners).
  {
    auto stack = MakeStarStack(facts, dims, machines, enum_options);
    const auto sequence =
        GenerateStarSharings(stack->schema, stack->cluster, seq_options);
    const Timer timer;
    for (const Sharing& sharing : sequence) {
      (void)stack->enumerator->Enumerate(sharing);
    }
    point.enumerate_ms =
        timer.Millis() / static_cast<double>(sequence.size());
  }
  for (const Algo algo :
       {Algo::kGreedy, Algo::kNormalize, Algo::kManagedRisk}) {
    auto stack = MakeStarStack(facts, dims, machines, enum_options);
    const auto sequence =
        GenerateStarSharings(stack->schema, stack->cluster, seq_options);
    const auto planner = MakePlanner(algo, stack->ctx);
    const RunStats stats = RunPlanner(planner.get(), sequence);
    const double ms =
        stats.seconds * 1e3 / static_cast<double>(sequence.size());
    if (algo == Algo::kGreedy) point.greedy_ms = ms;
    if (algo == Algo::kNormalize) point.norm_ms = ms;
    if (algo == Algo::kManagedRisk) point.mr_ms = ms;
  }
  return point;
}

void PrintHeader() {
  std::printf("%-10s %14s %12s %14s %14s\n", "x", "Enumerate(ms)",
              "Greedy(ms)", "Normalize(ms)", "ManagedRisk(ms)");
}

void PrintRow(int x, const Point& p) {
  std::printf("%-10d %14.3f %12.3f %14.3f %14.3f\n", x, p.enumerate_ms,
              p.greedy_ms, p.norm_ms, p.mr_ms);
}

int Main() {
  const bool full = FullScale();
  const size_t seq = full ? 1000 : 100;

  std::printf("Figure 6 — scalability on the synthetic star schema "
              "(%szed sweep)\n\n",
              full ? "full-si" : "reduced-si");

  std::printf("(a) sharing size, 1 machine, %zu sharings\n", seq / 2);
  PrintHeader();
  for (const int size : full ? std::vector<int>{6, 7, 8, 9, 10}
                             : std::vector<int>{5, 6, 7, 8}) {
    PrintRow(size, Measure(1, 20, 1, seq / 2, size, /*exact_size=*/true,
                           601));
  }

  std::printf("\n(b) sharing size, 10 machines, %zu sharings\n", seq / 2);
  PrintHeader();
  for (const int size : full ? std::vector<int>{4, 5, 6, 7, 8}
                             : std::vector<int>{4, 5, 6}) {
    PrintRow(size, Measure(1, 20, 10, seq / 2, size, /*exact_size=*/true,
                           602, /*beam=*/full ? 0 : 32));
  }

  std::printf("\n(c) number of sharings in the sequence (1 machine, "
              "up to 7 tables)\n");
  PrintHeader();
  for (const int n : full ? std::vector<int>{500, 1000, 1500, 2000, 2500}
                          : std::vector<int>{100, 200, 300, 400, 500}) {
    PrintRow(n, Measure(1, 20, 1, static_cast<size_t>(n), 7,
                        /*exact_size=*/false, 603));
  }

  std::printf("\n(d) number of machines (%zu sharings, up to 6 tables)\n",
              seq / 2);
  PrintHeader();
  for (const int machines : full ? std::vector<int>{1, 5, 10, 15, 20}
                                 : std::vector<int>{1, 5, 10}) {
    PrintRow(machines,
             Measure(1, 20, static_cast<size_t>(machines), seq / 2, 6,
                     /*exact_size=*/false, 604, /*beam=*/full ? 0 : 32));
  }

  std::printf("\n(e) total dimension tables (%zu sharings, up to 6 "
              "tables, 1 machine)\n",
              seq / 2);
  PrintHeader();
  for (const int dims : {10, 15, 20, 25, 30}) {
    PrintRow(dims, Measure(1, dims, 1, seq / 2, 6, /*exact_size=*/false,
                           605));
  }

  std::printf("\n(f) total fact tables (%zu sharings, up to 6 tables, "
              "1 machine)\n",
              seq / 2);
  PrintHeader();
  for (const int facts : {1, 2, 3, 4, 5}) {
    PrintRow(facts, Measure(facts, 20, 1, seq / 2, 6, /*exact_size=*/false,
                            606));
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main() { return dsm::bench::Main(); }
