// Figure 6: scalability on the synthetic star schema — per-sharing
// planning time versus (a) sharing size on one machine, (b) sharing size
// on ten machines, (c) sequence length, (d) number of machines, (e) total
// dimension tables, (f) total fact tables. Plan-enumeration time is
// reported separately, as in the figure's legend.
//
// Paper shape: exponential in sharing size (all plans are enumerated),
// slightly *decreasing* in sequence length (repeat sharings skip
// planning), increasing in machines, flat in dims/facts.

#include <functional>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"

namespace dsm {
namespace bench {
namespace {

struct AlgoPoint {
  double mean_ms = 0.0;
  double total_cost = 0.0;
  LatencySummary latency;
};

struct Point {
  double enumerate_ms = 0.0;  // plan-enumeration share
  AlgoPoint greedy;
  AlgoPoint norm;
  AlgoPoint mr;
};

Point Measure(int facts, int dims, size_t machines, size_t num_sharings,
              int max_tables, bool exact_size, uint64_t seed,
              size_t beam = 0) {
  EnumeratorOptions enum_options;
  enum_options.per_subset_cap = beam;

  StarSequenceOptions seq_options;
  seq_options.num_sharings = num_sharings;
  seq_options.max_tables = max_tables;
  seq_options.exact_size = exact_size;
  seq_options.seed = seed;

  Point point;
  // Pure enumeration time (shared across planners).
  {
    auto stack = MakeStarStack(facts, dims, machines, enum_options);
    const auto sequence =
        GenerateStarSharings(stack->schema, stack->cluster, seq_options);
    const Timer timer;
    for (const Sharing& sharing : sequence) {
      (void)stack->enumerator->Enumerate(sharing);
    }
    point.enumerate_ms =
        timer.Millis() / static_cast<double>(sequence.size());
  }
  for (const Algo algo :
       {Algo::kGreedy, Algo::kNormalize, Algo::kManagedRisk}) {
    auto stack = MakeStarStack(facts, dims, machines, enum_options);
    const auto sequence =
        GenerateStarSharings(stack->schema, stack->cluster, seq_options);
    const auto planner = MakePlanner(algo, stack->ctx);
    const RunStats stats = RunPlanner(planner.get(), sequence);
    AlgoPoint ap;
    ap.mean_ms = stats.seconds * 1e3 / static_cast<double>(sequence.size());
    ap.total_cost = stats.total_cost;
    ap.latency = stats.latency();
    if (algo == Algo::kGreedy) point.greedy = ap;
    if (algo == Algo::kNormalize) point.norm = ap;
    if (algo == Algo::kManagedRisk) point.mr = ap;
  }
  return point;
}

void PrintHeader() {
  std::printf("%-10s %14s %12s %14s %14s\n", "x", "Enumerate(ms)",
              "Greedy(ms)", "Normalize(ms)", "ManagedRisk(ms)");
}

void PrintRow(int x, const Point& p) {
  std::printf("%-10d %14.3f %12.3f %14.3f %14.3f\n", x, p.enumerate_ms,
              p.greedy.mean_ms, p.norm.mean_ms, p.mr.mean_ms);
}

obs::JsonValue AlgoJson(const AlgoPoint& ap) {
  obs::JsonValue o = obs::JsonValue::Object();
  o.Set("mean_ms", ap.mean_ms);
  o.Set("total_cost", ap.total_cost);
  o.Set("latency", ap.latency.ToJson());
  return o;
}

void Report(BenchReport* report, int x, const Point& p) {
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("x", x);
  row.Set("enumerate_ms", p.enumerate_ms);
  row.Set("Greedy", AlgoJson(p.greedy));
  row.Set("Normalize", AlgoJson(p.norm));
  row.Set("ManagedRisk", AlgoJson(p.mr));
  report->Row(std::move(row));
}

int Main(int argc, char** argv) {
  BenchReport report("fig6_scalability", argc, argv);
  const bool full = FullScale();
  const bool smoke = report.smoke();
  const size_t seq = smoke ? 20 : full ? 1000 : 100;

  std::printf("Figure 6 — scalability on the synthetic star schema "
              "(%szed sweep)\n\n",
              full ? "full-si" : "reduced-si");

  std::printf("(a) sharing size, 1 machine, %zu sharings\n", seq / 2);
  PrintHeader();
  report.BeginSection("a_sharing_size_1_machine");
  for (const int size : smoke ? std::vector<int>{4, 5}
                        : full ? std::vector<int>{6, 7, 8, 9, 10}
                               : std::vector<int>{5, 6, 7, 8}) {
    const Point p =
        Measure(1, 20, 1, seq / 2, size, /*exact_size=*/true, 601);
    PrintRow(size, p);
    Report(&report, size, p);
  }

  std::printf("\n(b) sharing size, 10 machines, %zu sharings\n", seq / 2);
  PrintHeader();
  report.BeginSection("b_sharing_size_10_machines");
  for (const int size : smoke ? std::vector<int>{4}
                        : full ? std::vector<int>{4, 5, 6, 7, 8}
                               : std::vector<int>{4, 5, 6}) {
    const Point p = Measure(1, 20, 10, seq / 2, size, /*exact_size=*/true,
                            602, /*beam=*/full ? 0 : 32);
    PrintRow(size, p);
    Report(&report, size, p);
  }

  std::printf("\n(c) number of sharings in the sequence (1 machine, "
              "up to 7 tables)\n");
  PrintHeader();
  report.BeginSection("c_sequence_length");
  for (const int n : smoke ? std::vector<int>{20, 40}
                     : full ? std::vector<int>{500, 1000, 1500, 2000, 2500}
                            : std::vector<int>{100, 200, 300, 400, 500}) {
    const Point p = Measure(1, 20, 1, static_cast<size_t>(n),
                            smoke ? 5 : 7, /*exact_size=*/false, 603);
    PrintRow(n, p);
    Report(&report, n, p);
  }

  std::printf("\n(d) number of machines (%zu sharings, up to 6 tables)\n",
              seq / 2);
  PrintHeader();
  report.BeginSection("d_machines");
  for (const int machines : smoke ? std::vector<int>{1, 5}
                            : full ? std::vector<int>{1, 5, 10, 15, 20}
                                   : std::vector<int>{1, 5, 10}) {
    const Point p =
        Measure(1, 20, static_cast<size_t>(machines), seq / 2,
                smoke ? 5 : 6, /*exact_size=*/false, 604,
                /*beam=*/full ? 0 : 32);
    PrintRow(machines, p);
    Report(&report, machines, p);
  }

  std::printf("\n(e) total dimension tables (%zu sharings, up to 6 "
              "tables, 1 machine)\n",
              seq / 2);
  PrintHeader();
  report.BeginSection("e_dimension_tables");
  for (const int dims : smoke ? std::vector<int>{10}
                              : std::vector<int>{10, 15, 20, 25, 30}) {
    const Point p = Measure(1, dims, 1, seq / 2, smoke ? 5 : 6,
                            /*exact_size=*/false, 605);
    PrintRow(dims, p);
    Report(&report, dims, p);
  }

  std::printf("\n(f) total fact tables (%zu sharings, up to 6 tables, "
              "1 machine)\n",
              seq / 2);
  PrintHeader();
  report.BeginSection("f_fact_tables");
  for (const int facts : smoke ? std::vector<int>{1}
                               : std::vector<int>{1, 2, 3, 4, 5}) {
    const Point p = Measure(facts, 20, 1, seq / 2, smoke ? 5 : 6,
                            /*exact_size=*/false, 606);
    PrintRow(facts, p);
    Report(&report, facts, p);
  }

  // Indexed reuse lookup vs the legacy linear scan, same workload and
  // identical decisions; only the per-sharing planning clock differs (the
  // fig_admission bench covers the large-plan regime in depth).
  std::printf("\n(g) reuse lookup: legacy scan vs index (sequence length, "
              "1 machine)\n");
  std::printf("%-10s %12s %12s %8s\n", "x", "legacy(ms)", "indexed(ms)",
              "speedup");
  report.BeginSection("g_reuse_index");
  for (const int n : smoke ? std::vector<int>{40}
                     : full ? std::vector<int>{500, 1000, 2000}
                            : std::vector<int>{200, 400}) {
    StarSequenceOptions seq_options;
    seq_options.num_sharings = static_cast<size_t>(n);
    seq_options.max_tables = smoke ? 5 : 7;
    seq_options.exact_size = false;
    seq_options.seed = 607;
    double mode_ms[2] = {0.0, 0.0};
    for (const bool indexed : {false, true}) {
      auto stack = MakeStarStack(1, 20, 1, EnumeratorOptions{});
      stack->global_plan->set_reuse_index_enabled(indexed);
      const auto sequence =
          GenerateStarSharings(stack->schema, stack->cluster, seq_options);
      const auto planner = MakePlanner(Algo::kManagedRisk, stack->ctx);
      const RunStats stats = RunPlanner(planner.get(), sequence);
      mode_ms[indexed ? 1 : 0] =
          stats.seconds * 1e3 / static_cast<double>(sequence.size());
    }
    const double speedup =
        mode_ms[1] > 0.0 ? mode_ms[0] / mode_ms[1] : 0.0;
    std::printf("%-10d %12.3f %12.3f %7.2fx\n", n, mode_ms[0], mode_ms[1],
                speedup);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("x", n);
    row.Set("legacy_ms", mode_ms[0]);
    row.Set("indexed_ms", mode_ms[1]);
    row.Set("speedup", speedup);
    report.Row(std::move(row));
  }
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
