// Ablations of the design choices Section 4.4 calls out, plus the two
// implemented future-work extensions (Section 7):
//   1. MANAGEDRISK without the consumed-regret subtraction of Eq. (1),
//   2. MANAGEDRISK without the 1/(m-1) factor,
//   3. MANAGEDRISK without Eq. (3)'s perc weighting (general case),
//   4. replanning existing sharings when new ones arrive,
//   5. speculative materialization of high-regret views.

#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "online/replanner.h"
#include "online/speculative.h"
#include "workload/adversarial.h"

namespace dsm {
namespace bench {
namespace {

double RunManagedRisk(const Scenario& scenario,
                      const ManagedRiskOptions& options) {
  PlanEnumerator enumerator(scenario.catalog.get(), scenario.cluster.get(),
                            scenario.graph.get(), scenario.model.get(),
                            EnumeratorOptions{});
  GlobalPlan global_plan(scenario.cluster.get(), scenario.model.get());
  PlannerContext ctx{scenario.catalog.get(), scenario.cluster.get(),
                     scenario.graph.get(),   scenario.model.get(),
                     &global_plan,           &enumerator};
  ManagedRiskPlanner planner(ctx, options);
  for (const Sharing& sharing : scenario.sharings) {
    (void)planner.ProcessSharing(sharing);
  }
  return global_plan.TotalCost();
}

void RegretAblations(BenchReport* report) {
  std::printf("(1,2) Eq. (1) ablations (global cost $, lower is better)\n");
  std::printf("%-22s %14s %14s %14s %14s\n", "variant", "greedy trap",
              "normalize trap", "eq1 trap+tail", "eq1 short");
  const Scenario greedy_trap = MakeGreedyTrap(60, 100.0, 10.0, 1e-3);
  const Scenario norm_trap = MakeNormalizeTrap(60, 0.01);
  const Scenario eq1_tail = MakeEquationOneTrap(10, /*include_tail=*/true);
  const Scenario eq1_short = MakeEquationOneTrap(7, /*include_tail=*/false);

  ManagedRiskOptions full;
  ManagedRiskOptions no_subtract;
  no_subtract.subtract_consumed_regret = false;
  ManagedRiskOptions no_divide;
  no_divide.divide_by_joins = false;

  report->BeginSection("regret_ablations");
  for (const auto& [name, options] :
       std::vector<std::pair<const char*, ManagedRiskOptions>>{
           {"full ManagedRisk", full},
           {"no regret subtract", no_subtract},
           {"no 1/(m-1) factor", no_divide}}) {
    const double c1 = RunManagedRisk(greedy_trap, options);
    const double c2 = RunManagedRisk(norm_trap, options);
    const double c3 = RunManagedRisk(eq1_tail, options);
    const double c4 = RunManagedRisk(eq1_short, options);
    std::printf("%-22s %14.3f %14.3f %14.3f %14.3f\n", name, c1, c2, c3,
                c4);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("variant", name);
    row.Set("greedy_trap_cost", c1);
    row.Set("normalize_trap_cost", c2);
    row.Set("eq1_trap_tail_cost", c3);
    row.Set("eq1_short_cost", c4);
    report->Row(std::move(row));
  }
  std::printf("\n");
}

void PercAblation(BenchReport* report) {
  std::printf("(3) perc weighting (Eq. 3) on Twitter with 0-2 "
              "predicates\n");
  std::printf("%-22s %14s\n", "variant", "global cost $");
  report->BeginSection("perc_ablation");
  for (const bool use_perc : {true, false}) {
    auto stack = MakeTwitterStack(6);
    TwitterSequenceOptions options;
    options.num_sharings = 40;
    options.max_predicates = 2;
    options.seed = 424242;
    const auto sequence = GenerateTwitterSequence(
        stack->catalog, stack->tables, stack->cluster, options);
    ManagedRiskOptions mr_options;
    mr_options.use_perc = use_perc;
    ManagedRiskPlanner planner(stack->ctx, mr_options);
    for (const Sharing& sharing : sequence) {
      (void)planner.ProcessSharing(sharing);
    }
    std::printf("%-22s %14.4f\n", use_perc ? "with perc" : "without perc",
                stack->global_plan->TotalCost());
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("variant", use_perc ? "with perc" : "without perc");
    row.Set("global_cost", stack->global_plan->TotalCost());
    report->Row(std::move(row));
  }
  std::printf("\n");
}

void ReplannerAblation(BenchReport* report) {
  std::printf("(4) replanning existing sharings (Section 7 future work)\n");
  std::printf("%-22s %14s %14s %8s\n", "scenario", "before $", "after $",
              "changed");
  report->BeginSection("replanner_ablation");
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    const Scenario scenario = MakeRandomThreeWay(seed, 30, 16);
    PlanEnumerator enumerator(scenario.catalog.get(),
                              scenario.cluster.get(), scenario.graph.get(),
                              scenario.model.get(), EnumeratorOptions{});
    GlobalPlan global_plan(scenario.cluster.get(), scenario.model.get());
    PlannerContext ctx{scenario.catalog.get(), scenario.cluster.get(),
                       scenario.graph.get(),   scenario.model.get(),
                       &global_plan,           &enumerator};
    GreedyPlanner planner(ctx);
    for (const Sharing& sharing : scenario.sharings) {
      (void)planner.ProcessSharing(sharing);
    }
    Replanner replanner(ctx);
    const auto replan_report = replanner.Improve();
    if (!replan_report.ok()) continue;
    std::printf("random seed %-10llu %14.1f %14.1f %8d\n",
                static_cast<unsigned long long>(seed),
                replan_report->cost_before, replan_report->cost_after,
                replan_report->plans_changed);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("seed", seed);
    row.Set("cost_before", replan_report->cost_before);
    row.Set("cost_after", replan_report->cost_after);
    row.Set("plans_changed", replan_report->plans_changed);
    report->Row(std::move(row));
  }
  std::printf("\n");
}

void SpeculativeAblation(BenchReport* report) {
  std::printf("(5) speculative high-regret views (Section 7 future "
              "work), greedy-trap sequence\n");
  std::printf("%-22s %14s %10s\n", "variant", "global cost $", "views");
  report->BeginSection("speculative_ablation");
  for (const bool speculate : {false, true}) {
    const Scenario scenario = MakeGreedyTrap(40, 100.0, 10.0, 1e-3);
    PlanEnumerator enumerator(scenario.catalog.get(),
                              scenario.cluster.get(), scenario.graph.get(),
                              scenario.model.get(), EnumeratorOptions{});
    GlobalPlan global_plan(scenario.cluster.get(), scenario.model.get());
    PlannerContext ctx{scenario.catalog.get(), scenario.cluster.get(),
                       scenario.graph.get(),   scenario.model.get(),
                       &global_plan,           &enumerator};
    ManagedRiskPlanner planner(ctx);
    SpeculativeOptions spec_options;
    spec_options.regret_multiple = 0.5;
    SpeculativeViewAdvisor advisor(&planner, spec_options);
    int views = 0;
    for (const Sharing& sharing : scenario.sharings) {
      (void)planner.ProcessSharing(sharing);
      if (speculate) {
        const auto spec_report = advisor.MaybeSpeculate();
        if (spec_report.ok()) views += spec_report->views_created;
      }
    }
    std::printf("%-22s %14.3f %10d\n",
                speculate ? "with speculation" : "plain ManagedRisk",
                global_plan.TotalCost(), views);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("variant",
            speculate ? "with speculation" : "plain ManagedRisk");
    row.Set("global_cost", global_plan.TotalCost());
    row.Set("views_created", views);
    report->Row(std::move(row));
  }
}

int Main(int argc, char** argv) {
  BenchReport report("ablations", argc, argv);
  std::printf("Ablation benches (design choices from Sections 4.4/4.5 and "
              "7)\n\n");
  RegretAblations(&report);
  PercAblation(&report);
  ReplannerAblation(&report);
  SpeculativeAblation(&report);
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
