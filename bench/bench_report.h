// Machine-readable bench reports. Every bench binary accepts
//   --json <path>   write a JSON report next to the human-readable stdout
//   --smoke         shrink the workload to a seconds-scale smoke run
// and funnels its printed tables through a BenchReport, which serializes
// them (plus the full telemetry snapshot) as
//   {"schema_version":1, "bench":..., "full_scale":..., "smoke":...,
//    "sections":[{"name":..., "rows":[{...}, ...]}, ...], "telemetry":{...}}
// validated by obs::ValidateBenchReportJson (tools/report_lint uses the
// same check, so the ctest smoke target needs no python).

#ifndef DSM_BENCH_BENCH_REPORT_H_
#define DSM_BENCH_BENCH_REPORT_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "bench_common.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace dsm {
namespace bench {

class BenchReport {
 public:
  BenchReport(std::string bench_name, int argc, char** argv)
      : bench_name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--smoke") {
        smoke_ = true;
      } else {
        std::fprintf(stderr,
                     "warning: unknown argument '%s' "
                     "(expected --json <path> or --smoke)\n",
                     arg.c_str());
      }
    }
  }

  bool smoke() const { return smoke_; }
  bool writes_json() const { return !json_path_.empty(); }

  // Starts a new named section; subsequent Row() calls append to it.
  void BeginSection(const std::string& name) {
    obs::JsonValue section = obs::JsonValue::Object();
    section.Set("name", name);
    section.Set("rows", obs::JsonValue::Array());
    sections_.Append(std::move(section));
  }

  // Appends a row object to the most recent section (opens an implicit
  // "default" section when none exists yet).
  void Row(obs::JsonValue row) {
    if (sections_.items().empty()) BeginSection("default");
    sections_.items().back().members()["rows"].Append(std::move(row));
  }

  // Writes the report if --json was given. Returns 0 on success (or when
  // there is nothing to write), 1 on I/O failure — usable as the bench's
  // exit code.
  int Finish() {
    if (json_path_.empty()) return 0;
    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("schema_version", 1);
    doc.Set("bench", bench_name_);
    doc.Set("full_scale", FullScale());
    doc.Set("smoke", smoke_);
    doc.Set("sections", std::move(sections_));
    doc.Set("telemetry",
            obs::MetricsRegistry::Global().Snapshot().ToJson());
    std::ofstream out(json_path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", json_path_.c_str());
      return 1;
    }
    out << doc.Dump(2) << "\n";
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "error: write to %s failed\n",
                   json_path_.c_str());
      return 1;
    }
    std::printf("\n[json report written to %s]\n", json_path_.c_str());
    return 0;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  bool smoke_ = false;
  obs::JsonValue sections_ = obs::JsonValue::Array();
};

}  // namespace bench
}  // namespace dsm

#endif  // DSM_BENCH_BENCH_REPORT_H_
