// Figure 8: average per-sharing processing time of algorithm FAIRCOST
// (including the LPC computation that dominates it) as the sequence grows,
// with and without predicates.
//
// Paper shape: flat in the sequence position; grows quickly with the
// number of predicates (more plans to enumerate for LPC).

#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "costing/incremental_containment.h"
#include "costing/lpc.h"
#include "costing/savings.h"

namespace dsm {
namespace bench {
namespace {

struct FairCostPoint {
  double cold_ms = -1.0;         // first run: LPCs dominate (the figure)
  double scratch_ms = -1.0;      // warm LPCs, scratch containment DAG
  double incremental_ms = -1.0;  // warm LPCs, persistent containment index
};

// Milliseconds of FAIRCOST work per sharing: the cold pass pays LPCs +
// problem build + the binary search (the paper's clock); the warm passes
// repeat the refresh with LPCs memoized, isolating scratch-vs-incremental
// containment DAG maintenance.
FairCostPoint FairCostMillisPerSharing(size_t num_sharings, int max_preds,
                                       uint64_t seed) {
  auto stack = MakeTwitterStack(6);
  TwitterSequenceOptions options;
  options.num_sharings = num_sharings;
  options.max_predicates = max_preds;
  options.seed = seed;
  const auto sequence = GenerateTwitterSequence(stack->catalog,
                                                stack->tables,
                                                stack->cluster, options);
  const auto planner = MakePlanner(Algo::kManagedRisk, stack->ctx);
  (void)RunPlanner(planner.get(), sequence);

  FairCostPoint point;
  LpcCalculator lpc(stack->enumerator.get(), stack->model.get());
  double n = 0.0;
  {
    const Timer timer;
    const auto problem = BuildFairCostProblem(*stack->global_plan, &lpc);
    if (!problem.ok()) return point;
    const auto fair =
        FairCost::Compute(problem->entries, problem->global_cost);
    if (!fair.ok()) return point;
    n = static_cast<double>(problem->entries.size());
    point.cold_ms = timer.Millis() / n;
  }
  IncrementalContainmentIndex index;
  // Untimed warm-up fill of the persistent index.
  (void)BuildFairCostProblem(*stack->global_plan, &lpc, &index);
  {
    const Timer timer;
    const auto problem = BuildFairCostProblem(*stack->global_plan, &lpc);
    if (!problem.ok()) return point;
    const auto fair =
        FairCost::Compute(problem->entries, problem->global_cost);
    if (!fair.ok()) return point;
    point.scratch_ms = timer.Millis() / n;
  }
  {
    const Timer timer;
    const auto problem =
        BuildFairCostProblem(*stack->global_plan, &lpc, &index);
    if (!problem.ok()) return point;
    const auto fair =
        FairCost::Compute(problem->entries, problem->global_cost);
    if (!fair.ok()) return point;
    point.incremental_ms = timer.Millis() / n;
  }
  return point;
}

int Main(int argc, char** argv) {
  BenchReport report("fig8_faircost_time", argc, argv);
  std::printf("Figure 8 — FAIRCOST processing time per sharing (ms)\n\n");
  std::printf("%-10s %16s %20s %14s %14s %22s\n", "sharings",
              "no predicates", "0-2 preds/sharing", "warm scratch",
              "warm incr", "0-3 preds (40-50 only)");
  report.BeginSection("faircost_time");
  for (const auto& [lo, hi] :
       report.smoke() ? std::vector<std::pair<int, int>>{{10, 20}}
                      : std::vector<std::pair<int, int>>{{10, 20},
                                                         {20, 30},
                                                         {30, 40},
                                                         {40, 50},
                                                         {50, 60}}) {
    const size_t mid = static_cast<size_t>((lo + hi) / 2);
    const FairCostPoint none = FairCostMillisPerSharing(mid, 0, 810 + mid);
    const FairCostPoint two = FairCostMillisPerSharing(mid, 2, 820 + mid);
    const FairCostPoint three = (lo == 40 && !report.smoke())
                                    ? FairCostMillisPerSharing(45, 3, 830)
                                    : FairCostPoint{};
    std::printf("%3d-%-6d %16.3f %20.3f %14.3f %14.3f", lo, hi,
                none.cold_ms, two.cold_ms, two.scratch_ms,
                two.incremental_ms);
    if (three.cold_ms >= 0.0) {
      std::printf(" %22.3f", three.cold_ms);
    }
    std::printf("\n");
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("sharings", std::to_string(lo) + "-" + std::to_string(hi));
    row.Set("no_predicates_ms", none.cold_ms);
    row.Set("two_predicates_ms", two.cold_ms);
    row.Set("warm_scratch_ms", two.scratch_ms);
    row.Set("warm_incremental_ms", two.incremental_ms);
    if (three.cold_ms >= 0.0) {
      row.Set("three_predicates_ms", three.cold_ms);
    }
    report.Row(std::move(row));
  }
  std::printf("\n(ms growth with predicates reflects the larger LPC plan "
              "space, as in the paper)\n");
  return report.Finish();
}

}  // namespace
}  // namespace bench
}  // namespace dsm

int main(int argc, char** argv) { return dsm::bench::Main(argc, argv); }
