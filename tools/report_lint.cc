// report_lint: validates a machine-readable report emitted by this repo —
// a bench --json document or a MarketSimulation RunReport — using the same
// schema checks the gtest suite runs (obs/run_report.h). Lets ctest verify
// bench JSON end to end with no python dependency.
//
//   report_lint --bench <file.json>   validate a bench report
//   report_lint --run <file.json>     validate a run report

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/run_report.h"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: report_lint --bench <file.json> | "
                 "--run <file.json>\n");
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  if (mode != "--bench" && mode != "--run") {
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const dsm::Status status = mode == "--bench"
                                 ? dsm::obs::ValidateBenchReportJson(text)
                                 : dsm::obs::ValidateRunReportJson(text);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}
