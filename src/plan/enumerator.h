// PlanEnumerator: generates the possible sharing plans for a sharing.
//
// "In most cases we can afford to enumerate all possible plans, since
// choosing sharing plans is not an interactive or time-critical task"
// (Section 4.1) — so the default mode enumerates every bushy join tree
// over the sharing's (connected) tables, every interesting server placement
// per join, and every leaf-vs-root placement of each predicate. For large
// sharings a beam (`per_subset_cap`) bounds the space, matching the
// paper's "heuristics can be applied to filter sharing plans" escape hatch.
//
// Internally sub-plans are immutable fragments shared by every plan built
// on top of them (combining two fragments is O(1)); node arrays are
// materialized once per emitted plan. Independent predicate-pushdown
// choices fan out across a thread pool (`num_threads`, honoring
// DSM_THREADS) with results merged in choice order, so output is
// identical to the serial enumeration.

#ifndef DSM_PLAN_ENUMERATOR_H_
#define DSM_PLAN_ENUMERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "plan/join_graph.h"
#include "plan/plan.h"
#include "sharing/sharing.h"

namespace dsm {

struct EnumeratorOptions {
  // Hard cap on the number of plans returned for one sharing.
  size_t max_plans = 200000;
  // If nonzero, keep only the cheapest `per_subset_cap` sub-plans per
  // connected subset (beam search; requires a cost model).
  size_t per_subset_cap = 0;
  // Enumerate leaf-pushdown vs. root placement per predicate. When false,
  // all predicates are applied at the root.
  bool predicate_placement = true;
  // Also consider materializing each join at the sharing's destination
  // server (in addition to the children's servers).
  bool consider_destination_server = true;
  // Threads for fanning out across predicate-pushdown choices; 0 = auto
  // (DSM_THREADS, else hardware). Only model-free enumeration fans out:
  // cost models may be stateful (lazy memoization), so their query order
  // must stay serial and deterministic.
  int num_threads = 0;
};

class PlanEnumerator {
 public:
  // `model` may be nullptr when per_subset_cap == 0 (no pruning needed).
  PlanEnumerator(const Catalog* catalog, const Cluster* cluster,
                 const JoinGraph* graph, CostModel* model,
                 EnumeratorOptions options = {});

  // All plans for `sharing` (deduplicated). Errors if the sharing's tables
  // are not connected in the join graph or a table has no home server.
  Result<std::vector<SharingPlan>> Enumerate(const Sharing& sharing) const;

  const EnumeratorOptions& options() const { return options_; }

 private:
  Result<std::vector<SharingPlan>> EnumerateChoice(
      const Sharing& sharing, const std::vector<TableSet>& subsets,
      uint64_t pushdown) const;

  const Catalog* catalog_;
  const Cluster* cluster_;
  const JoinGraph* graph_;
  CostModel* model_;
  EnumeratorOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when enumeration is serial
};

}  // namespace dsm

#endif  // DSM_PLAN_ENUMERATOR_H_
