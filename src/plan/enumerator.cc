#include "plan/enumerator.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

// A partial plan over one connected subset of the sharing's tables.
struct Fragment {
  SharingPlan plan;  // root is plan.nodes.back()
  double cost = 0.0;  // standalone cost, used only for beam pruning
};

// Appends `src`'s nodes to `dst`, remapping child indices; returns the
// index of `src`'s root within `dst`.
int AppendFragment(const SharingPlan& src, SharingPlan* dst) {
  const int offset = static_cast<int>(dst->nodes.size());
  for (const PlanNode& n : src.nodes) {
    PlanNode copy = n;
    if (copy.left >= 0) copy.left += offset;
    if (copy.right >= 0) copy.right += offset;
    dst->nodes.push_back(copy);
  }
  return static_cast<int>(dst->nodes.size()) - 1;
}

}  // namespace

PlanEnumerator::PlanEnumerator(const Catalog* catalog, const Cluster* cluster,
                               const JoinGraph* graph, CostModel* model,
                               EnumeratorOptions options)
    : catalog_(catalog),
      cluster_(cluster),
      graph_(graph),
      model_(model),
      options_(options) {}

Result<std::vector<SharingPlan>> PlanEnumerator::Enumerate(
    const Sharing& sharing) const {
  DSM_METRIC_COUNTER_ADD("dsm.plan.enumerations", 1);
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.plan.enumerate_ms");
  DSM_TRACE_SPAN("plan/enumerate");
  const TableSet tables = sharing.tables();
  if (tables.empty()) {
    return Status::InvalidArgument("sharing has no tables");
  }
  if (!graph_->Connected(tables)) {
    return Status::InvalidArgument(
        "sharing's tables are not connected in the join graph "
        "(cross products are not supported)");
  }
  const std::vector<Predicate>& all_preds = sharing.predicates();
  if (options_.per_subset_cap > 0 && model_ == nullptr) {
    return Status::InvalidArgument("beam pruning requires a cost model");
  }

  // Choices of which predicates are pushed down to the leaves; the rest are
  // applied at the root. With many predicates the exhaustive 2^p blowup is
  // avoided by considering only all-at-root and all-pushed-down.
  std::vector<uint32_t> pushdown_choices;
  if (!options_.predicate_placement || all_preds.empty()) {
    pushdown_choices.push_back(options_.predicate_placement
                                   ? (1u << all_preds.size()) - 1u
                                   : 0u);
  } else if (all_preds.size() <= 12) {
    for (uint32_t d = 0; d < (1u << all_preds.size()); ++d) {
      pushdown_choices.push_back(d);
    }
  } else {
    pushdown_choices = {0u, (1u << 12) - 1u};
  }

  const ViewKey result_key = sharing.ResultKey();
  std::vector<SharingPlan> out;
  std::unordered_set<uint64_t> seen;

  for (const uint32_t pushdown : pushdown_choices) {
    std::vector<Predicate> pushed;
    for (size_t i = 0; i < all_preds.size(); ++i) {
      if ((pushdown >> i) & 1u) pushed.push_back(all_preds[i]);
    }

    // DP table: connected subset -> fragments.
    std::unordered_map<uint64_t, std::vector<Fragment>> dp;

    // Singletons.
    for (TableId t : tables.ToVector()) {
      DSM_ASSIGN_OR_RETURN(const ServerId home, cluster_->HomeOf(t));
      Fragment frag;
      PlanNode leaf;
      leaf.type = PlanNodeType::kLeaf;
      leaf.base_table = t;
      leaf.server = home;
      leaf.key = ViewKey(TableSet::Of(t),
                         PredicatesOnTables(pushed, TableSet::Of(t)));
      frag.plan.nodes.push_back(leaf);
      if (model_ != nullptr) {
        frag.cost = PlanNodeCost(frag.plan, 0, model_);
      }
      dp[TableSet::Of(t).mask()].push_back(std::move(frag));
    }

    // Connected subsets in increasing size.
    std::vector<TableSet> subsets = graph_->ConnectedSubsets(tables, 2);
    std::sort(subsets.begin(), subsets.end(),
              [](TableSet a, TableSet b) { return a.size() < b.size(); });

    for (const TableSet subset : subsets) {
      std::vector<Fragment>& slot = dp[subset.mask()];
      std::unordered_set<uint64_t> local_seen;
      const uint64_t mask = subset.mask();
      const uint64_t lowest = mask & (~mask + 1);
      // Enumerate proper submasks that contain the lowest table, so each
      // unordered split {C1, C2} is visited exactly once.
      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if ((sub & lowest) == 0) continue;
        const uint64_t other = mask ^ sub;
        const auto it1 = dp.find(sub);
        const auto it2 = dp.find(other);
        if (it1 == dp.end() || it2 == dp.end()) continue;  // not connected
        if (!graph_->Joinable(TableSet(sub), TableSet(other))) continue;
        const ViewKey node_key(subset, PredicatesOnTables(pushed, subset));
        for (const Fragment& f1 : it1->second) {
          for (const Fragment& f2 : it2->second) {
            ServerId candidates[3];
            size_t num_candidates = 0;
            auto add_candidate = [&](ServerId s) {
              for (size_t i = 0; i < num_candidates; ++i) {
                if (candidates[i] == s) return;
              }
              candidates[num_candidates++] = s;
            };
            add_candidate(f1.plan.root().server);
            add_candidate(f2.plan.root().server);
            if (options_.consider_destination_server) {
              add_candidate(sharing.destination());
            }
            for (size_t ci = 0; ci < num_candidates; ++ci) {
              Fragment combined;
              const int left_root = AppendFragment(f1.plan, &combined.plan);
              const int right_root = AppendFragment(f2.plan, &combined.plan);
              PlanNode join;
              join.type = PlanNodeType::kJoin;
              join.key = node_key;
              join.server = candidates[ci];
              join.left = left_root;
              join.right = right_root;
              combined.plan.nodes.push_back(join);
              const uint64_t sig = combined.plan.Signature();
              if (!local_seen.insert(sig).second) continue;
              if (model_ != nullptr) {
                combined.cost =
                    f1.cost + f2.cost +
                    PlanNodeCost(combined.plan, combined.plan.nodes.size() - 1,
                                 model_);
              }
              slot.push_back(std::move(combined));
            }
          }
        }
      }
      // Beam pruning: keep the cheapest fragments only.
      if (options_.per_subset_cap > 0 &&
          slot.size() > options_.per_subset_cap) {
        DSM_METRIC_COUNTER_ADD("dsm.plan.fragments_pruned",
                               slot.size() - options_.per_subset_cap);
        std::nth_element(slot.begin(),
                         slot.begin() + static_cast<std::ptrdiff_t>(
                                            options_.per_subset_cap),
                         slot.end(),
                         [](const Fragment& a, const Fragment& b) {
                           return a.cost < b.cost;
                         });
        slot.resize(options_.per_subset_cap);
      }
    }

    // Finalize: deliver the full result (all predicates applied) at the
    // destination server.
    for (Fragment& frag : dp[tables.mask()]) {
      SharingPlan plan = std::move(frag.plan);
      const PlanNode& root = plan.nodes.back();
      if (!(root.key == result_key) ||
          root.server != sharing.destination()) {
        PlanNode fin;
        fin.type = PlanNodeType::kFilterCopy;
        fin.key = result_key;
        fin.server = sharing.destination();
        fin.left = plan.root_index();
        plan.nodes.push_back(fin);
      }
      const uint64_t sig = plan.Signature();
      if (!seen.insert(sig).second) continue;
      out.push_back(std::move(plan));
      if (out.size() >= options_.max_plans) {
        DSM_METRIC_COUNTER_ADD("dsm.plan.plans_emitted", out.size());
        return out;
      }
    }
  }
  DSM_METRIC_COUNTER_ADD("dsm.plan.plans_emitted", out.size());
  return out;
}

}  // namespace dsm
