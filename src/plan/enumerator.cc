#include "plan/enumerator.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

// A partial plan over one connected subset of the sharing's tables, stored
// as an immutable tree node. Combining two fragments is O(1): the children
// are shared (never copied), and the flat node array the rest of the system
// consumes is materialized once per *emitted* plan instead of once per
// DP candidate.
struct Fragment;
using FragmentPtr = std::shared_ptr<const Fragment>;

struct Fragment {
  PlanNode node;  // left/right indices unset; children live in the pointers
  FragmentPtr left;
  FragmentPtr right;
  size_t size = 1;    // nodes in this subtree (for reserve at emit time)
  double cost = 0.0;  // standalone cost, used only for beam pruning
  uint64_t sig = 0;   // structural signature, used for DP-slot dedup
};

// Structural content hash of the tree rooted at (node, left, right). Same
// mixing as SharingPlan::Signature, with child signatures standing in for
// child indices: structurally identical trees collide, distinct trees do
// not (modulo hash collisions), which is exactly what the per-slot dedup
// needs without materializing the node array.
uint64_t FragmentSignature(const PlanNode& node, const FragmentPtr& left,
                           const FragmentPtr& right) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(node.type));
  mix(ViewKeyHash()(node.key));
  mix(node.server);
  mix(left == nullptr ? 0 : left->sig);
  mix(right == nullptr ? 0 : right->sig);
  return h;
}

// Flattens the fragment tree into `out` in post-order (left subtree, right
// subtree, root) — the same node ordering the old copy-per-candidate
// construction produced, so plan signatures are unchanged. Returns the
// root's index.
int MaterializeInto(const Fragment& frag, SharingPlan* out) {
  PlanNode node = frag.node;
  if (frag.left != nullptr) node.left = MaterializeInto(*frag.left, out);
  if (frag.right != nullptr) node.right = MaterializeInto(*frag.right, out);
  out->nodes.push_back(node);
  return static_cast<int>(out->nodes.size()) - 1;
}

}  // namespace

PlanEnumerator::PlanEnumerator(const Catalog* catalog, const Cluster* cluster,
                               const JoinGraph* graph, CostModel* model,
                               EnumeratorOptions options)
    : catalog_(catalog),
      cluster_(cluster),
      graph_(graph),
      model_(model),
      options_(options) {
  // Cost models may be stateful (TableDrivenCostModel memoizes lazily from
  // an Rng), so cost queries must keep their serial order; only model-free
  // enumeration fans out.
  if (model_ == nullptr) {
    ThreadPoolOptions pool_options;
    pool_options.num_threads = options_.num_threads;
    if (ResolveThreadCount(pool_options) > 1) {
      pool_ = std::make_unique<ThreadPool>(pool_options);
    }
  }
}

Result<std::vector<SharingPlan>> PlanEnumerator::EnumerateChoice(
    const Sharing& sharing, const std::vector<TableSet>& subsets,
    uint64_t pushdown) const {
  const std::vector<Predicate>& all_preds = sharing.predicates();
  std::vector<Predicate> pushed;
  for (size_t i = 0; i < all_preds.size(); ++i) {
    if ((pushdown >> i) & 1ull) pushed.push_back(all_preds[i]);
  }

  const TableSet tables = sharing.tables();
  // DP table: connected subset -> fragments.
  std::unordered_map<uint64_t, std::vector<FragmentPtr>> dp;

  // Singletons.
  for (TableId t : tables.ToVector()) {
    DSM_ASSIGN_OR_RETURN(const ServerId home, cluster_->HomeOf(t));
    auto frag = std::make_shared<Fragment>();
    frag->node.type = PlanNodeType::kLeaf;
    frag->node.base_table = t;
    frag->node.server = home;
    frag->node.key = ViewKey(TableSet::Of(t),
                             PredicatesOnTables(pushed, TableSet::Of(t)));
    frag->sig = FragmentSignature(frag->node, nullptr, nullptr);
    if (model_ != nullptr) {
      frag->cost = model_->LeafCost(t, frag->node.key, home);
    }
    dp[TableSet::Of(t).mask()].push_back(std::move(frag));
  }

  for (const TableSet subset : subsets) {
    std::vector<FragmentPtr>& slot = dp[subset.mask()];
    std::unordered_set<uint64_t> local_seen;
    const uint64_t mask = subset.mask();
    const uint64_t lowest = mask & (~mask + 1);
    // Enumerate proper submasks that contain the lowest table, so each
    // unordered split {C1, C2} is visited exactly once.
    for (uint64_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      if ((sub & lowest) == 0) continue;
      const uint64_t other = mask ^ sub;
      const auto it1 = dp.find(sub);
      const auto it2 = dp.find(other);
      if (it1 == dp.end() || it2 == dp.end()) continue;  // not connected
      if (!graph_->Joinable(TableSet(sub), TableSet(other))) continue;
      const ViewKey node_key(subset, PredicatesOnTables(pushed, subset));
      for (const FragmentPtr& f1 : it1->second) {
        for (const FragmentPtr& f2 : it2->second) {
          ServerId candidates[3];
          size_t num_candidates = 0;
          auto add_candidate = [&](ServerId s) {
            for (size_t i = 0; i < num_candidates; ++i) {
              if (candidates[i] == s) return;
            }
            candidates[num_candidates++] = s;
          };
          add_candidate(f1->node.server);
          add_candidate(f2->node.server);
          if (options_.consider_destination_server) {
            add_candidate(sharing.destination());
          }
          for (size_t ci = 0; ci < num_candidates; ++ci) {
            PlanNode join;
            join.type = PlanNodeType::kJoin;
            join.key = node_key;
            join.server = candidates[ci];
            const uint64_t sig = FragmentSignature(join, f1, f2);
            if (!local_seen.insert(sig).second) continue;
            auto combined = std::make_shared<Fragment>();
            combined->node = join;
            combined->left = f1;
            combined->right = f2;
            combined->size = f1->size + f2->size + 1;
            combined->sig = sig;
            if (model_ != nullptr) {
              combined->cost =
                  f1->cost + f2->cost +
                  model_->JoinCost(join.key, join.server, f1->node.key,
                                   f1->node.server, f2->node.key,
                                   f2->node.server);
            }
            slot.push_back(std::move(combined));
          }
        }
      }
    }
    // Beam pruning: keep the cheapest fragments only.
    if (options_.per_subset_cap > 0 && slot.size() > options_.per_subset_cap) {
      DSM_METRIC_COUNTER_ADD("dsm.plan.fragments_pruned",
                             slot.size() - options_.per_subset_cap);
      std::nth_element(slot.begin(),
                       slot.begin() + static_cast<std::ptrdiff_t>(
                                          options_.per_subset_cap),
                       slot.end(),
                       [](const FragmentPtr& a, const FragmentPtr& b) {
                         return a->cost < b->cost;
                       });
      slot.resize(options_.per_subset_cap);
    }
  }

  // Finalize: deliver the full result (all predicates applied) at the
  // destination server.
  const ViewKey result_key = sharing.ResultKey();
  std::vector<SharingPlan> out;
  for (const FragmentPtr& frag : dp[tables.mask()]) {
    SharingPlan plan;
    plan.nodes.reserve(frag->size + 1);
    MaterializeInto(*frag, &plan);
    const PlanNode& root = plan.nodes.back();
    if (!(root.key == result_key) || root.server != sharing.destination()) {
      PlanNode fin;
      fin.type = PlanNodeType::kFilterCopy;
      fin.key = result_key;
      fin.server = sharing.destination();
      fin.left = plan.root_index();
      plan.nodes.push_back(fin);
    }
    out.push_back(std::move(plan));
  }
  return out;
}

Result<std::vector<SharingPlan>> PlanEnumerator::Enumerate(
    const Sharing& sharing) const {
  DSM_METRIC_COUNTER_ADD("dsm.plan.enumerations", 1);
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.plan.enumerate_ms");
  DSM_TRACE_SPAN("plan/enumerate");
  const TableSet tables = sharing.tables();
  if (tables.empty()) {
    return Status::InvalidArgument("sharing has no tables");
  }
  if (!graph_->Connected(tables)) {
    return Status::InvalidArgument(
        "sharing's tables are not connected in the join graph "
        "(cross products are not supported)");
  }
  const std::vector<Predicate>& all_preds = sharing.predicates();
  if (options_.per_subset_cap > 0 && model_ == nullptr) {
    return Status::InvalidArgument("beam pruning requires a cost model");
  }

  // Choices of which predicates are pushed down to the leaves; the rest are
  // applied at the root. With many predicates the exhaustive 2^p blowup is
  // avoided by considering only all-at-root and all-pushed-down.
  const size_t num_preds = all_preds.size();
  const uint64_t full_mask =
      num_preds >= 64 ? ~0ull : (1ull << num_preds) - 1ull;
  std::vector<uint64_t> pushdown_choices;
  if (!options_.predicate_placement || all_preds.empty()) {
    pushdown_choices.push_back(options_.predicate_placement ? full_mask
                                                            : 0ull);
  } else if (num_preds <= 12) {
    for (uint64_t d = 0; d <= full_mask; ++d) {
      pushdown_choices.push_back(d);
    }
  } else {
    pushdown_choices = {0ull, full_mask};
  }

  // Connected subsets in increasing size, shared by every pushdown choice
  // (predicates never change connectivity).
  std::vector<TableSet> subsets = graph_->ConnectedSubsets(tables, 2);
  std::sort(subsets.begin(), subsets.end(),
            [](TableSet a, TableSet b) { return a.size() < b.size(); });

  std::vector<SharingPlan> out;
  std::unordered_set<uint64_t> seen;
  // Merges one choice's plans, preserving the serial enumeration's global
  // dedup order and max_plans cutoff. Returns true when the cap is hit.
  auto merge = [&](std::vector<SharingPlan>&& plans) {
    for (SharingPlan& plan : plans) {
      if (!seen.insert(plan.Signature()).second) continue;
      out.push_back(std::move(plan));
      if (out.size() >= options_.max_plans) return true;
    }
    return false;
  };

  if (pool_ != nullptr && pushdown_choices.size() > 1) {
    // Choices are independent when no cost model is attached (the only
    // configuration with a pool, see the constructor): fan out, then merge
    // in choice order so the output matches the serial enumeration.
    std::vector<std::optional<Result<std::vector<SharingPlan>>>> per_choice(
        pushdown_choices.size());
    pool_->ParallelFor(pushdown_choices.size(), [&](size_t i) {
      per_choice[i].emplace(
          EnumerateChoice(sharing, subsets, pushdown_choices[i]));
    });
    for (auto& result : per_choice) {
      if (!result->ok()) return result->status();
      if (merge(std::move(*result).value())) break;
    }
  } else {
    for (const uint64_t pushdown : pushdown_choices) {
      DSM_ASSIGN_OR_RETURN(std::vector<SharingPlan> plans,
                           EnumerateChoice(sharing, subsets, pushdown));
      if (merge(std::move(plans))) break;
    }
  }
  DSM_METRIC_COUNTER_ADD("dsm.plan.plans_emitted", out.size());
  return out;
}

}  // namespace dsm
