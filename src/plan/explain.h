// Human-readable explanations of sharing plans and of the global plan —
// the operational "EXPLAIN" a provider needs when auditing what every
// buyer's bill pays for.

#ifndef DSM_PLAN_EXPLAIN_H_
#define DSM_PLAN_EXPLAIN_H_

#include <string>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "globalplan/global_plan.h"
#include "plan/plan.h"

namespace dsm {

// Multi-line, indented operator tree with per-node standalone costs, e.g.
//   FilterCopy {CHK,RES,REV} @s1  $0.0001
//     Join {CHK,RES,REV} @s0  $0.1001
//       Join {CHK,RES} @s0  $0.0500
//         Leaf CHK @s0  $0
//         Leaf RES @s1  $0
//       Leaf REV @s0  $0
std::string ExplainPlan(const SharingPlan& plan, const Catalog& catalog,
                        CostModel* model);

// Tabular summary of one integrated sharing: its plan, which nodes were
// computed fresh versus reused, and the marginal cost paid.
std::string ExplainSharing(const GlobalPlan& global_plan, SharingId id,
                           const Catalog& catalog);

// Whole-market summary: active sharings, alive view count, total cost and
// per-server load.
std::string ExplainGlobalPlan(const GlobalPlan& global_plan,
                              const Cluster& cluster,
                              const Catalog& catalog);

}  // namespace dsm

#endif  // DSM_PLAN_EXPLAIN_H_
