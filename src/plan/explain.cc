#include "plan/explain.h"

#include <cstdio>

#include "common/string_util.h"

namespace dsm {
namespace {

const char* NodeTypeName(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kLeaf:
      return "Leaf";
    case PlanNodeType::kJoin:
      return "Join";
    case PlanNodeType::kFilterCopy:
      return "FilterCopy";
  }
  return "?";
}

void ExplainNode(const SharingPlan& plan, int index, const Catalog& catalog,
                 CostModel* model, int depth, std::string* out) {
  const PlanNode& n = plan.nodes[static_cast<size_t>(index)];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += NodeTypeName(n.type);
  *out += ' ';
  if (n.type == PlanNodeType::kLeaf) {
    *out += catalog.table(n.base_table).name;
    if (!n.key.predicates.empty()) {
      std::vector<std::string> preds;
      for (const Predicate& p : n.key.predicates) {
        preds.push_back(p.ToString(catalog));
      }
      *out += " σ(" + Join(preds, " AND ") + ")";
    }
  } else {
    *out += n.key.ToString(catalog);
  }
  *out += " @s" + std::to_string(n.server);
  *out += "  $" +
          FormatCost(PlanNodeCost(plan, static_cast<size_t>(index), model));
  *out += '\n';
  if (n.left >= 0) ExplainNode(plan, n.left, catalog, model, depth + 1, out);
  if (n.right >= 0) {
    ExplainNode(plan, n.right, catalog, model, depth + 1, out);
  }
}

const char* DecisionName(GlobalPlan::NodeDecision::State state) {
  switch (state) {
    case GlobalPlan::NodeDecision::kFresh:
      return "fresh";
    case GlobalPlan::NodeDecision::kReused:
      return "reused";
    case GlobalPlan::NodeDecision::kSkipped:
      return "skipped";
  }
  return "?";
}

}  // namespace

std::string ExplainPlan(const SharingPlan& plan, const Catalog& catalog,
                        CostModel* model) {
  if (plan.empty()) return "<empty plan>\n";
  std::string out;
  ExplainNode(plan, plan.root_index(), catalog, model, 0, &out);
  return out;
}

std::string ExplainSharing(const GlobalPlan& global_plan, SharingId id,
                           const Catalog& catalog) {
  const GlobalPlan::SharingRecord* rec = global_plan.record(id);
  if (rec == nullptr) return "<unknown sharing>\n";
  std::string out = "sharing " + std::to_string(id) + ": " +
                    rec->sharing.ToString(catalog) + "\n";
  out += "  plan " + rec->plan.ToString(catalog) + "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  marginal $%.4f, GPC $%.4f, residual ops $%.4f\n",
                rec->marginal_cost, rec->gpc, rec->residual_cost);
  out += line;
  for (size_t i = 0; i < rec->plan.nodes.size(); ++i) {
    const PlanNode& n = rec->plan.nodes[i];
    if (n.type == PlanNodeType::kLeaf) continue;
    std::snprintf(line, sizeof(line), "  %-10s %s ($%.4f standalone)\n",
                  DecisionName(rec->decisions[i].state),
                  n.key.ToString(catalog).c_str(), rec->standalone_cost[i]);
    out += line;
  }
  return out;
}

std::string ExplainGlobalPlan(const GlobalPlan& global_plan,
                              const Cluster& cluster,
                              const Catalog& catalog) {
  (void)catalog;
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "global plan: %zu sharings, %zu alive views, total $%.4f "
                "per time unit\n",
                global_plan.num_sharings(), global_plan.num_alive_views(),
                global_plan.TotalCost());
  out += line;
  for (ServerId s = 0; s < cluster.num_servers(); ++s) {
    std::snprintf(line, sizeof(line),
                  "  server %u (%s): load %.2f tuples/unit\n", s,
                  cluster.server(s).name.c_str(), global_plan.ServerLoad(s));
    out += line;
  }
  return out;
}

}  // namespace dsm
