#include "plan/plan.h"

namespace dsm {
namespace {

void AppendNodeString(const SharingPlan& plan, int index,
                      const Catalog& catalog, std::string* out) {
  const PlanNode& n = plan.nodes[static_cast<size_t>(index)];
  switch (n.type) {
    case PlanNodeType::kLeaf:
      *out += catalog.table(n.base_table).name;
      if (!n.key.predicates.empty()) {
        *out += "[σ]";
      }
      break;
    case PlanNodeType::kJoin:
      *out += "(";
      AppendNodeString(plan, n.left, catalog, out);
      *out += " ⋈ ";
      AppendNodeString(plan, n.right, catalog, out);
      *out += ")@s" + std::to_string(n.server);
      break;
    case PlanNodeType::kFilterCopy:
      *out += "σc[";
      AppendNodeString(plan, n.left, catalog, out);
      *out += "]@s" + std::to_string(n.server);
      break;
  }
}

}  // namespace

uint64_t SharingPlan::Signature() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  ViewKeyHash key_hash;
  for (const PlanNode& n : nodes) {
    mix(static_cast<uint64_t>(n.type));
    mix(key_hash(n.key));
    mix(n.server);
    mix(static_cast<uint64_t>(static_cast<int64_t>(n.left)) * 31 +
        static_cast<uint64_t>(static_cast<int64_t>(n.right)));
  }
  return h;
}

std::string SharingPlan::ToString(const Catalog& catalog) const {
  if (nodes.empty()) return "<empty plan>";
  std::string out;
  AppendNodeString(*this, root_index(), catalog, &out);
  return out;
}

}  // namespace dsm
