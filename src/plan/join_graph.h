// JoinGraph: which base tables are (natural-)joinable with which.
//
// A sharing plan may only join two intermediate results if some join edge
// crosses between their table sets; likewise a subexpression s is contained
// in a sharing S (s ◁ S, Definition 4.2) iff s's table set is a connected
// subset of S's tables — only then does s occur in some possible plan.

#ifndef DSM_PLAN_JOIN_GRAPH_H_
#define DSM_PLAN_JOIN_GRAPH_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_set.h"

namespace dsm {

class JoinGraph {
 public:
  // Graph over `num_tables` tables with no edges; add them explicitly.
  // Used by the synthetic/adversarial workloads to control the plan space.
  explicit JoinGraph(size_t num_tables);

  // Derives edges from shared column names in the catalog.
  static JoinGraph FromCatalog(const Catalog& catalog);

  size_t num_tables() const { return adjacency_.size(); }

  void AddEdge(TableId a, TableId b);
  bool HasEdge(TableId a, TableId b) const;

  // True if some edge connects a table in `a` with a table in `b`.
  bool Joinable(TableSet a, TableSet b) const;

  // True if the subgraph induced by `tables` is connected (singletons and
  // the empty set count as connected).
  bool Connected(TableSet tables) const;

  // All connected subsets of `base` with at least `min_size` tables, i.e.
  // the subexpressions contained in a sharing over `base`.
  std::vector<TableSet> ConnectedSubsets(TableSet base, int min_size) const;

 private:
  // adjacency_[t] = bitmask of t's neighbors.
  std::vector<uint64_t> adjacency_;
};

}  // namespace dsm

#endif  // DSM_PLAN_JOIN_GRAPH_H_
