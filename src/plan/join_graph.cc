#include "plan/join_graph.h"

#include <bit>
#include <cassert>

namespace dsm {

JoinGraph::JoinGraph(size_t num_tables) : adjacency_(num_tables, 0) {}

JoinGraph JoinGraph::FromCatalog(const Catalog& catalog) {
  JoinGraph g(catalog.num_tables());
  for (TableId a = 0; a < catalog.num_tables(); ++a) {
    for (TableId b = a + 1; b < catalog.num_tables(); ++b) {
      if (catalog.Joinable(a, b)) g.AddEdge(a, b);
    }
  }
  return g;
}

void JoinGraph::AddEdge(TableId a, TableId b) {
  assert(a < adjacency_.size() && b < adjacency_.size() && a != b);
  adjacency_[a] |= 1ULL << b;
  adjacency_[b] |= 1ULL << a;
}

bool JoinGraph::HasEdge(TableId a, TableId b) const {
  return (adjacency_[a] >> b) & 1ULL;
}

bool JoinGraph::Joinable(TableSet a, TableSet b) const {
  for (TableId t : a.ToVector()) {
    if ((adjacency_[t] & b.mask()) != 0) return true;
  }
  return false;
}

bool JoinGraph::Connected(TableSet tables) const {
  if (tables.size() <= 1) return true;
  const uint64_t all = tables.mask();
  // Flood fill from the lowest member using mask arithmetic.
  uint64_t reached = all & (~all + 1);  // lowest set bit
  while (true) {
    uint64_t frontier = 0;
    uint64_t r = reached;
    while (r != 0) {
      const int t = std::countr_zero(r);
      r &= r - 1;
      frontier |= adjacency_[static_cast<size_t>(t)] & all;
    }
    const uint64_t next = reached | frontier;
    if (next == reached) break;
    reached = next;
  }
  return reached == all;
}

std::vector<TableSet> JoinGraph::ConnectedSubsets(TableSet base,
                                                  int min_size) const {
  std::vector<TableSet> out;
  const std::vector<TableId> members = base.ToVector();
  const size_t k = members.size();
  assert(k <= 24 && "subset enumeration limited to 24 tables");
  for (uint64_t bits = 1; bits < (1ULL << k); ++bits) {
    if (std::popcount(bits) < min_size) continue;
    TableSet s;
    for (size_t i = 0; i < k; ++i) {
      if ((bits >> i) & 1ULL) s.Add(members[i]);
    }
    if (Connected(s)) out.push_back(s);
  }
  return out;
}

}  // namespace dsm
