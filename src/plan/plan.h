// Sharing plans: trees of maintenance operators.
//
// A sharing plan (Section 3.2) decides the join order, where predicates are
// applied, and on which server each intermediate view is materialized. Every
// internal node is a continuously-maintained view: its delta streams are the
// children's delta streams, as in Figure 2 of the paper (apply-updates /
// copy / merge are folded into the per-node cost model rather than
// represented as separate nodes).

#ifndef DSM_PLAN_PLAN_H_
#define DSM_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "expr/view_key.h"

namespace dsm {

enum class PlanNodeType : uint8_t {
  // A base relation (optionally filtered at the source). Base relations are
  // maintained by their owners; an unpredicated leaf costs nothing extra.
  kLeaf,
  // Incremental natural join of the two children, materialized at `server`.
  kJoin,
  // Unary op on the single (left) child: applies residual predicates and/or
  // relocates the delta stream to another server (e.g. the buyer's).
  kFilterCopy,
};

struct PlanNode {
  PlanNodeType type = PlanNodeType::kLeaf;
  // Identity of the data this node produces.
  ViewKey key;
  // Server where the node's view is materialized.
  ServerId server = 0;
  // Child indices into SharingPlan::nodes; -1 when absent.
  int left = -1;
  int right = -1;
  // For leaves: the base table.
  TableId base_table = 0;

  bool is_join() const { return type == PlanNodeType::kJoin; }
};

// A plan for one sharing. Nodes are stored in topological order (children
// before parents); the last node is the root, which produces the sharing's
// result at its destination server.
struct SharingPlan {
  std::vector<PlanNode> nodes;

  bool empty() const { return nodes.empty(); }
  int root_index() const { return static_cast<int>(nodes.size()) - 1; }
  const PlanNode& root() const { return nodes.back(); }

  // Stable content hash used to dedupe plans during enumeration.
  uint64_t Signature() const;

  // e.g. "((USERS ⋈ TWEETS)@s0 ⋈ CURLOC)@s1".
  std::string ToString(const Catalog& catalog) const;
};

}  // namespace dsm

#endif  // DSM_PLAN_PLAN_H_
