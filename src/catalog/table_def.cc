#include "catalog/table_def.h"

namespace dsm {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

int TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace dsm
