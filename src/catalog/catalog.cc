#include "catalog/catalog.h"

namespace dsm {

Result<TableId> Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (by_name_.count(def.name) != 0) {
    return Status::AlreadyExists("table already registered: " + def.name);
  }
  if (tables_.size() >= TableSet::kMaxTables) {
    return Status::InvalidArgument("catalog limited to 64 tables");
  }
  const auto id = static_cast<TableId>(tables_.size());
  def.id = id;
  by_name_[def.name] = id;
  tables_.push_back(std::move(def));
  return id;
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second;
}

bool Catalog::Joinable(TableId a, TableId b) const {
  const TableDef& ta = tables_[a];
  const TableDef& tb = tables_[b];
  for (const ColumnDef& ca : ta.columns) {
    if (tb.FindColumn(ca.name) >= 0) return true;
  }
  return false;
}

std::vector<std::string> Catalog::SharedColumns(TableId a, TableId b) const {
  std::vector<std::string> out;
  const TableDef& ta = tables_[a];
  const TableDef& tb = tables_[b];
  for (const ColumnDef& ca : ta.columns) {
    if (tb.FindColumn(ca.name) >= 0) out.push_back(ca.name);
  }
  return out;
}

TableSet Catalog::AllTables() const {
  TableSet s;
  for (TableId id = 0; id < tables_.size(); ++id) s.Add(id);
  return s;
}

}  // namespace dsm
