// The catalog: the set of base tables offered for sale in the data market.

#ifndef DSM_CATALOG_CATALOG_H_
#define DSM_CATALOG_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table_def.h"
#include "catalog/table_set.h"
#include "common/status.h"

namespace dsm {

class Catalog {
 public:
  Catalog() = default;

  // Registers a table; assigns and returns its TableId. Fails if the name
  // already exists or the 64-table limit would be exceeded.
  Result<TableId> AddTable(TableDef def);

  // Number of registered tables.
  size_t num_tables() const { return tables_.size(); }

  // Precondition: id < num_tables().
  const TableDef& table(TableId id) const { return tables_[id]; }
  TableDef& mutable_table(TableId id) { return tables_[id]; }

  Result<TableId> FindTable(const std::string& name) const;

  // True if tables `a` and `b` share at least one column name, i.e. their
  // natural join is non-degenerate (not a cross product).
  bool Joinable(TableId a, TableId b) const;

  // Column names shared by `a` and `b`.
  std::vector<std::string> SharedColumns(TableId a, TableId b) const;

  // All tables as a set.
  TableSet AllTables() const;

 private:
  std::vector<TableDef> tables_;
  std::unordered_map<std::string, TableId> by_name_;
};

}  // namespace dsm

#endif  // DSM_CATALOG_CATALOG_H_
