// Table definitions: schema plus the statistics the cost model consumes.

#ifndef DSM_CATALOG_TABLE_DEF_H_
#define DSM_CATALOG_TABLE_DEF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table_set.h"

namespace dsm {

class Histogram;

enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

// A column of a base table. Natural joins match columns by name, so two
// tables sharing a column name (e.g. "uid") are joinable on it.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;

  // Statistics used for cardinality/selectivity estimation.
  // Number of distinct values; <= table cardinality.
  double distinct_values = 1.0;
  // Value range for numeric columns (used by range-predicate selectivity).
  double min_value = 0.0;
  double max_value = 1.0;
  // Optional value-distribution histogram; when present the estimator
  // prefers it over the uniform-range model (captures skew). Shared so
  // TableDef stays cheaply copyable.
  std::shared_ptr<const Histogram> histogram;
};

// Statistics that drive the analytical cost model. The paper (like its
// substrate system [9]) never executes sharings during planning: all
// planning decisions are functions of these numbers.
struct TableStats {
  // Current number of tuples.
  double cardinality = 0.0;
  // New/changed tuples arriving per time unit; this is what makes the data
  // *dynamic* and what view maintenance must keep up with.
  double update_rate = 0.0;
  // Average tuple width in bytes (drives network + storage cost).
  double tuple_bytes = 64.0;
};

struct TableDef {
  TableId id = 0;
  std::string name;
  std::vector<ColumnDef> columns;
  TableStats stats;

  // Index of the column named `name`, or -1.
  int FindColumn(const std::string& column_name) const;
};

}  // namespace dsm

#endif  // DSM_CATALOG_TABLE_DEF_H_
