// TableSet: a set of base-table ids represented as a 64-bit mask.
//
// Subexpression identity, regret bookkeeping and join-graph reasoning all
// operate on sets of base tables; a bitmask keeps those operations O(1).
// The library therefore supports up to 64 base tables per catalog, which
// comfortably covers the paper's workloads (9 Twitter relations; up to
// 5 fact + 30 dimension tables in the synthetic star schema).

#ifndef DSM_CATALOG_TABLE_SET_H_
#define DSM_CATALOG_TABLE_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsm {

// Identifies a base table registered in a Catalog. Dense, starting at 0.
using TableId = uint32_t;

class TableSet {
 public:
  static constexpr int kMaxTables = 64;

  constexpr TableSet() = default;
  constexpr explicit TableSet(uint64_t mask) : mask_(mask) {}

  // The singleton set {id}.
  static constexpr TableSet Of(TableId id) { return TableSet(1ULL << id); }

  constexpr uint64_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  constexpr bool Contains(TableId id) const {
    return (mask_ >> id) & 1ULL;
  }
  constexpr bool ContainsAll(TableSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  constexpr bool Intersects(TableSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  constexpr TableSet Union(TableSet other) const {
    return TableSet(mask_ | other.mask_);
  }
  constexpr TableSet Intersect(TableSet other) const {
    return TableSet(mask_ & other.mask_);
  }
  constexpr TableSet Minus(TableSet other) const {
    return TableSet(mask_ & ~other.mask_);
  }

  void Add(TableId id) { mask_ |= 1ULL << id; }
  void Remove(TableId id) { mask_ &= ~(1ULL << id); }

  // Member table ids in increasing order.
  std::vector<TableId> ToVector() const {
    std::vector<TableId> out;
    out.reserve(static_cast<size_t>(size()));
    uint64_t m = mask_;
    while (m != 0) {
      out.push_back(static_cast<TableId>(std::countr_zero(m)));
      m &= m - 1;
    }
    return out;
  }

  friend constexpr bool operator==(TableSet a, TableSet b) {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator<(TableSet a, TableSet b) {
    return a.mask_ < b.mask_;
  }

 private:
  uint64_t mask_ = 0;
};

struct TableSetHash {
  size_t operator()(TableSet s) const {
    // splitmix64 finalizer: good avalanche for mask values.
    uint64_t z = s.mask() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace dsm

#endif  // DSM_CATALOG_TABLE_SET_H_
