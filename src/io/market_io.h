// Persistence for market state.
//
// A service provider must survive restarts without re-planning (and thus
// possibly re-pricing) every active sharing. This module serializes the
// market definition — servers, placed tables with statistics, and every
// integrated sharing together with the exact plan chosen for it — to a
// line-oriented text format, and restores it into a fresh GlobalPlan by
// replaying the stored plans in the original arrival order (integration
// is deterministic, so the restored DAG matches the saved one).
//
// Histograms are not serialized (they are advisory statistics); the
// format is versioned for forward evolution.

#ifndef DSM_IO_MARKET_IO_H_
#define DSM_IO_MARKET_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "globalplan/global_plan.h"
#include "plan/plan.h"
#include "sharing/sharing.h"

namespace dsm {

// One integrated sharing with its chosen plan, in arrival order.
struct SharingStateEntry {
  SharingId id = 0;
  Sharing sharing;
  SharingPlan plan;
};

struct MarketState {
  Catalog catalog;
  Cluster cluster;
  std::vector<SharingStateEntry> sharings;
};

// --- Writing ---------------------------------------------------------------

// Serializes catalog + cluster (+ sharings with plans, when a GlobalPlan
// is given) to `out`.
Status WriteMarketState(const Catalog& catalog, const Cluster& cluster,
                        const GlobalPlan* global_plan, std::ostream* out);

Result<std::string> MarketStateToString(const Catalog& catalog,
                                        const Cluster& cluster,
                                        const GlobalPlan* global_plan);

// --- Sharing-record grammar (shared with the plan journal) -----------------

// Appends the "sharing"/"pred"/"plan"/"node" block for one integrated
// sharing to `out`, exactly as it appears inside a market-state file. The
// PlanJournal frames these blocks as its record payloads.
void WriteSharingRecord(SharingId id, const Sharing& sharing,
                        const SharingPlan& plan, std::ostream* out);

// Parses one complete block produced by WriteSharingRecord. When
// `num_servers` is nonzero every server id in the block must be below it;
// 0 skips the range check (for callers with no cluster at hand).
Result<SharingStateEntry> ParseSharingRecord(const std::string& block,
                                             size_t num_servers = 0);

// --- Reading ---------------------------------------------------------------

// Parses a market-state file. Malformed input — negative counts,
// out-of-range server/table ids, non-finite statistics, truncated blocks —
// is rejected with kInvalidArgument; the parser never crashes or silently
// mis-reads.
Result<MarketState> ReadMarketState(std::istream* in);
Result<MarketState> MarketStateFromString(const std::string& text);

// Replays `state.sharings` into `global_plan` (which must be empty and
// built over the same cluster/cost model semantics).
Status RestoreGlobalPlan(const MarketState& state, GlobalPlan* global_plan);

}  // namespace dsm

#endif  // DSM_IO_MARKET_IO_H_
