#include "io/plan_journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

constexpr const char* kJournalHeader = "dsm-journal v1";

std::string FrameRecord(const std::string& payload) {
  char head[64];
  std::snprintf(head, sizeof(head), "rec %zu %016llx\n", payload.size(),
                static_cast<unsigned long long>(JournalChecksum(payload)));
  return head + payload;
}

Status AppendToFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::Internal("cannot open journal file: " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("journal write failed: " + path);
  }
  return Status::OK();
}

}  // namespace

uint64_t JournalChecksum(const std::string& payload) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : payload) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status PlanJournal::Open() {
  if (open_) {
    return Status::AlreadyExists("journal already open");
  }
  if (!path_.empty()) {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      contents_ = buf.str();
    }
  }
  if (contents_.empty()) {
    contents_ = std::string(kJournalHeader) + "\n";
    if (!path_.empty()) {
      DSM_RETURN_IF_ERROR(AppendToFile(path_, contents_));
    }
  }
  open_ = true;
  return Status::OK();
}

Status PlanJournal::Append(SharingId id, const Sharing& sharing,
                           const SharingPlan& plan) {
  if (!open_) {
    return Status::InvalidArgument("journal not open");
  }
  std::ostringstream payload_out;
  payload_out.precision(17);
  WriteSharingRecord(id, sharing, plan, &payload_out);
  const std::string frame = FrameRecord(payload_out.str());

  // Torn write: the process "dies" partway through the append, leaving a
  // partial frame for recovery to drop.
  if (DSM_INJECT_FAULT("io/journal-append")) {
    DSM_METRIC_COUNTER_ADD("dsm.io.journal_append_failures", 1);
    const std::string partial = frame.substr(0, frame.size() / 2);
    contents_ += partial;
    if (!path_.empty()) {
      DSM_RETURN_IF_ERROR(AppendToFile(path_, partial));
    }
    return Status::Internal("simulated crash during journal append");
  }

  contents_ += frame;
  if (!path_.empty()) {
    DSM_RETURN_IF_ERROR(AppendToFile(path_, frame));
  }
  ++records_appended_;
  DSM_METRIC_COUNTER_ADD("dsm.io.journal_appends", 1);
  return Status::OK();
}

Result<JournalReplay> ReplayJournal(const std::string& journal_text,
                                    size_t num_servers) {
  DSM_METRIC_COUNTER_ADD("dsm.io.journal_replays", 1);
  DSM_TRACE_SPAN("io/journal_replay");
  JournalReplay replay;
  size_t pos = journal_text.find('\n');
  if (pos == std::string::npos ||
      journal_text.substr(0, pos) != kJournalHeader) {
    return Status::InvalidArgument("missing dsm-journal header");
  }
  ++pos;  // past the header newline

  while (pos < journal_text.size()) {
    const size_t frame_start = pos;
    const size_t eol = journal_text.find('\n', pos);
    bool bad = false;
    size_t payload_len = 0;
    unsigned long long checksum = 0;
    if (eol == std::string::npos) {
      bad = true;  // torn frame header
    } else {
      const std::string head = journal_text.substr(pos, eol - pos);
      unsigned long long len = 0;
      if (std::sscanf(head.c_str(), "rec %llu %llx", &len, &checksum) !=
          2) {
        bad = true;  // garbled frame header
      } else {
        payload_len = static_cast<size_t>(len);
        if (eol + 1 + payload_len > journal_text.size()) {
          bad = true;  // truncated payload
        }
      }
    }
    if (!bad) {
      const std::string payload = journal_text.substr(eol + 1, payload_len);
      if (JournalChecksum(payload) != checksum) {
        bad = true;  // bit rot / torn payload
      } else {
        Result<SharingStateEntry> entry =
            ParseSharingRecord(payload, num_servers);
        if (!entry.ok()) {
          bad = true;  // frame intact but payload nonsense
        } else {
          replay.entries.push_back(std::move(*entry));
          ++replay.records_recovered;
          pos = eol + 1 + payload_len;
          continue;
        }
      }
    }
    // Everything from the damaged frame on is untrustworthy: frame
    // boundaries can no longer be recovered. Drop the suffix.
    replay.bytes_dropped = journal_text.size() - frame_start;
    replay.tail_dropped = true;
    break;
  }
  DSM_METRIC_COUNTER_ADD("dsm.io.records_recovered",
                         replay.records_recovered);
  DSM_METRIC_COUNTER_ADD("dsm.io.bytes_dropped", replay.bytes_dropped);
  return replay;
}

Result<MarketState> RecoverMarketState(const std::string& snapshot_text,
                                       const std::string& journal_text,
                                       JournalReplay* replay_out) {
  DSM_ASSIGN_OR_RETURN(MarketState state,
                       MarketStateFromString(snapshot_text));
  DSM_ASSIGN_OR_RETURN(
      JournalReplay replay,
      ReplayJournal(journal_text, state.cluster.num_servers()));

  // The snapshot is authoritative for sharings it already contains; the
  // journal re-delivers them when it predates the snapshot's cut.
  std::unordered_set<SharingId> have;
  for (const SharingStateEntry& entry : state.sharings) {
    have.insert(entry.id);
  }
  for (SharingStateEntry& entry : replay.entries) {
    if (have.count(entry.id) != 0) continue;
    have.insert(entry.id);
    state.sharings.push_back(std::move(entry));
  }
  if (replay_out != nullptr) {
    replay.entries.clear();
    *replay_out = std::move(replay);
  }
  return state;
}

}  // namespace dsm
