#include "io/market_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dsm {
namespace {

constexpr const char* kHeader = "dsm-market v1";

// Names/buyers are %-escaped so every record stays one whitespace-split
// line.
std::string Escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '%' || std::isspace(static_cast<unsigned char>(c))) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out.empty() ? "%" : out;  // lone '%' encodes the empty string
}

std::string Unescape(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex = s.substr(i + 1, 2);
      out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

const char* TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "i64";
    case DataType::kDouble:
      return "f64";
    case DataType::kString:
      return "str";
  }
  return "i64";
}

Result<DataType> ParseType(const std::string& tag) {
  if (tag == "i64") return DataType::kInt64;
  if (tag == "f64") return DataType::kDouble;
  if (tag == "str") return DataType::kString;
  return Status::InvalidArgument("unknown column type: " + tag);
}

void WritePredicates(const std::vector<Predicate>& preds,
                     std::ostream* out) {
  for (const Predicate& p : preds) {
    *out << "pred " << p.table << ' ' << p.column << ' '
         << static_cast<int>(p.op) << ' ' << p.value << '\n';
  }
}

Result<Predicate> ParsePredicate(std::istringstream* line) {
  Predicate p;
  int op = 0;
  uint32_t column = 0;
  if (!(*line >> p.table >> column >> op >> p.value)) {
    return Status::InvalidArgument("malformed pred record");
  }
  if (op < 0 || op > 2) {
    return Status::InvalidArgument("bad predicate op");
  }
  p.column = static_cast<uint16_t>(column);
  p.op = static_cast<CompareOp>(op);
  return p;
}

}  // namespace

Status WriteMarketState(const Catalog& catalog, const Cluster& cluster,
                        const GlobalPlan* global_plan, std::ostream* out) {
  // 17 significant digits round-trip every finite double exactly.
  out->precision(17);
  *out << kHeader << '\n';

  for (ServerId s = 0; s < cluster.num_servers(); ++s) {
    const Server& server = cluster.server(s);
    *out << "server " << Escape(server.name) << ' '
         << server.capacity_tuples_per_unit << '\n';
  }

  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& def = catalog.table(t);
    *out << "table " << Escape(def.name) << ' ' << def.stats.cardinality
         << ' ' << def.stats.update_rate << ' ' << def.stats.tuple_bytes
         << ' ' << def.columns.size() << '\n';
    for (const ColumnDef& col : def.columns) {
      *out << "col " << Escape(col.name) << ' ' << TypeTag(col.type) << ' '
           << col.distinct_values << ' ' << col.min_value << ' '
           << col.max_value << '\n';
    }
    const auto home = cluster.HomeOf(t);
    if (home.ok()) {
      *out << "place " << t << ' ' << *home << '\n';
    }
  }

  if (global_plan != nullptr) {
    for (const SharingId id : global_plan->sharing_ids()) {
      const GlobalPlan::SharingRecord* rec = global_plan->record(id);
      const Sharing& sharing = rec->sharing;
      *out << "sharing " << id << ' ' << sharing.destination() << ' '
           << Escape(sharing.buyer()) << ' ' << sharing.tables().mask()
           << ' ' << sharing.predicates().size() << '\n';
      WritePredicates(sharing.predicates(), out);
      *out << "plan " << rec->plan.nodes.size() << '\n';
      for (const PlanNode& n : rec->plan.nodes) {
        *out << "node " << static_cast<int>(n.type) << ' ' << n.server
             << ' ' << n.left << ' ' << n.right << ' ' << n.base_table
             << ' ' << n.key.tables.mask() << ' ' << n.key.predicates.size()
             << '\n';
        WritePredicates(n.key.predicates, out);
      }
    }
  }
  return out->good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<std::string> MarketStateToString(const Catalog& catalog,
                                        const Cluster& cluster,
                                        const GlobalPlan* global_plan) {
  std::ostringstream out;
  DSM_RETURN_IF_ERROR(WriteMarketState(catalog, cluster, global_plan, &out));
  return out.str();
}

Result<MarketState> ReadMarketState(std::istream* in) {
  MarketState state;
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::InvalidArgument("missing dsm-market header");
  }

  TableDef pending_table;
  size_t pending_columns = 0;
  bool table_open = false;
  auto flush_table = [&]() -> Status {
    if (!table_open) return Status::OK();
    if (pending_table.columns.size() != pending_columns) {
      return Status::InvalidArgument("table column count mismatch");
    }
    DSM_RETURN_IF_ERROR(
        state.catalog.AddTable(std::move(pending_table)).status());
    pending_table = TableDef();
    table_open = false;
    return Status::OK();
  };

  // Sharing/plan parsing state.
  SharingStateEntry* open_sharing = nullptr;
  size_t sharing_preds_left = 0;
  std::vector<Predicate> sharing_preds;
  TableSet sharing_tables;
  size_t plan_nodes_left = 0;
  size_t node_preds_left = 0;

  auto finalize_sharing_header = [&]() {
    if (open_sharing != nullptr && sharing_preds_left == 0 &&
        open_sharing->sharing.tables().empty()) {
      const Sharing rebuilt(sharing_tables, sharing_preds,
                            open_sharing->sharing.destination(),
                            open_sharing->sharing.buyer());
      open_sharing->sharing = rebuilt;
    }
  };

  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;

    if (kind == "server") {
      DSM_RETURN_IF_ERROR(flush_table());
      std::string name;
      std::string capacity_text;
      if (!(fields >> name >> capacity_text)) {
        return Status::InvalidArgument("malformed server record");
      }
      // strtod (unlike istream extraction) accepts "inf" — the common
      // case of an uncapped server.
      char* end = nullptr;
      const double capacity = std::strtod(capacity_text.c_str(), &end);
      if (end == capacity_text.c_str()) {
        return Status::InvalidArgument("bad server capacity");
      }
      state.cluster.AddServer(Unescape(name), capacity);
    } else if (kind == "table") {
      DSM_RETURN_IF_ERROR(flush_table());
      std::string name;
      if (!(fields >> name >> pending_table.stats.cardinality >>
            pending_table.stats.update_rate >>
            pending_table.stats.tuple_bytes >> pending_columns)) {
        return Status::InvalidArgument("malformed table record");
      }
      pending_table.name = Unescape(name);
      table_open = true;
    } else if (kind == "col") {
      if (!table_open) {
        return Status::InvalidArgument("col record outside table");
      }
      std::string name;
      std::string type_tag;
      ColumnDef col;
      if (!(fields >> name >> type_tag >> col.distinct_values >>
            col.min_value >> col.max_value)) {
        return Status::InvalidArgument("malformed col record");
      }
      col.name = Unescape(name);
      DSM_ASSIGN_OR_RETURN(col.type, ParseType(type_tag));
      pending_table.columns.push_back(std::move(col));
    } else if (kind == "place") {
      DSM_RETURN_IF_ERROR(flush_table());
      TableId table = 0;
      ServerId server = 0;
      if (!(fields >> table >> server)) {
        return Status::InvalidArgument("malformed place record");
      }
      DSM_RETURN_IF_ERROR(state.cluster.PlaceTable(table, server));
    } else if (kind == "sharing") {
      DSM_RETURN_IF_ERROR(flush_table());
      SharingStateEntry entry;
      uint64_t mask = 0;
      ServerId dest = 0;
      std::string buyer;
      if (!(fields >> entry.id >> dest >> buyer >> mask >>
            sharing_preds_left)) {
        return Status::InvalidArgument("malformed sharing record");
      }
      sharing_tables = TableSet(mask);
      sharing_preds.clear();
      entry.sharing = Sharing(TableSet(), {}, dest, Unescape(buyer));
      state.sharings.push_back(std::move(entry));
      open_sharing = &state.sharings.back();
      plan_nodes_left = 0;
      node_preds_left = 0;
      finalize_sharing_header();
    } else if (kind == "pred") {
      DSM_ASSIGN_OR_RETURN(const Predicate p, ParsePredicate(&fields));
      if (open_sharing == nullptr) {
        return Status::InvalidArgument("pred record outside sharing");
      }
      if (sharing_preds_left > 0) {
        sharing_preds.push_back(p);
        --sharing_preds_left;
        finalize_sharing_header();
      } else if (node_preds_left > 0) {
        open_sharing->plan.nodes.back().key.predicates.push_back(p);
        --node_preds_left;
        if (node_preds_left == 0) {
          NormalizePredicates(
              &open_sharing->plan.nodes.back().key.predicates);
        }
      } else {
        return Status::InvalidArgument("unexpected pred record");
      }
    } else if (kind == "plan") {
      if (open_sharing == nullptr || sharing_preds_left != 0) {
        return Status::InvalidArgument("plan record outside sharing");
      }
      if (!(fields >> plan_nodes_left)) {
        return Status::InvalidArgument("malformed plan record");
      }
    } else if (kind == "node") {
      if (open_sharing == nullptr || plan_nodes_left == 0) {
        return Status::InvalidArgument("unexpected node record");
      }
      int type = 0;
      uint64_t mask = 0;
      PlanNode node;
      if (!(fields >> type >> node.server >> node.left >> node.right >>
            node.base_table >> mask >> node_preds_left)) {
        return Status::InvalidArgument("malformed node record");
      }
      if (type < 0 || type > 2) {
        return Status::InvalidArgument("bad node type");
      }
      node.type = static_cast<PlanNodeType>(type);
      node.key.tables = TableSet(mask);
      open_sharing->plan.nodes.push_back(std::move(node));
      --plan_nodes_left;
    } else {
      return Status::InvalidArgument("unknown record kind: " + kind);
    }
  }
  DSM_RETURN_IF_ERROR(flush_table());
  if (sharing_preds_left != 0 || plan_nodes_left != 0 ||
      node_preds_left != 0) {
    return Status::InvalidArgument("truncated market state");
  }
  return state;
}

Result<MarketState> MarketStateFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadMarketState(&in);
}

Status RestoreGlobalPlan(const MarketState& state, GlobalPlan* global_plan) {
  if (global_plan->num_sharings() != 0) {
    return Status::InvalidArgument("global plan must be empty");
  }
  for (const SharingStateEntry& entry : state.sharings) {
    DSM_RETURN_IF_ERROR(
        global_plan->AddSharing(entry.id, entry.sharing, entry.plan)
            .status());
  }
  return Status::OK();
}

}  // namespace dsm
