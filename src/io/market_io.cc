#include "io/market_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dsm {
namespace {

constexpr const char* kHeader = "dsm-market v1";

// Caps on counts read from untrusted input: generous for any real market,
// small enough that a garbled count cannot drive allocation or looping.
constexpr long long kMaxRecordCount = 1LL << 20;
constexpr long long kMaxColumnsPerTable = 4096;

// Names/buyers are %-escaped so every record stays one whitespace-split
// line.
std::string Escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '%' || std::isspace(static_cast<unsigned char>(c))) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out.empty() ? "%" : out;  // lone '%' encodes the empty string
}

std::string Unescape(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex = s.substr(i + 1, 2);
      out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

const char* TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "i64";
    case DataType::kDouble:
      return "f64";
    case DataType::kString:
      return "str";
  }
  return "i64";
}

Result<DataType> ParseType(const std::string& tag) {
  if (tag == "i64") return DataType::kInt64;
  if (tag == "f64") return DataType::kDouble;
  if (tag == "str") return DataType::kString;
  return Status::InvalidArgument("unknown column type: " + tag);
}

// Reads a count field as signed first so "-1" is rejected instead of
// wrapping to a huge unsigned value, then bounds it.
Result<long long> ReadCount(std::istringstream* fields, const char* what,
                            long long max = kMaxRecordCount) {
  long long v = 0;
  if (!(*fields >> v)) {
    return Status::InvalidArgument(std::string("malformed ") + what);
  }
  if (v < 0 || v > max) {
    return Status::InvalidArgument(std::string("out-of-range ") + what);
  }
  return v;
}

Result<double> ReadFiniteNonNegative(std::istringstream* fields,
                                     const char* what) {
  double v = 0.0;
  if (!(*fields >> v) || !std::isfinite(v) || v < 0.0) {
    return Status::InvalidArgument(std::string("bad ") + what);
  }
  return v;
}

Result<Predicate> ParsePredicate(std::istringstream* line) {
  long long table = 0;
  long long column = 0;
  int op = 0;
  double value = 0.0;
  if (!(*line >> table >> column >> op >> value)) {
    return Status::InvalidArgument("malformed pred record");
  }
  if (table < 0 || table >= TableSet::kMaxTables) {
    return Status::InvalidArgument("predicate table out of range");
  }
  if (column < 0 || column > 0xffff) {
    return Status::InvalidArgument("predicate column out of range");
  }
  if (op < 0 || op > 2) {
    return Status::InvalidArgument("bad predicate op");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("non-finite predicate value");
  }
  Predicate p;
  p.table = static_cast<TableId>(table);
  p.column = static_cast<uint16_t>(column);
  p.op = static_cast<CompareOp>(op);
  p.value = value;
  return p;
}

// Incremental parser for the "sharing"/"pred"/"plan"/"node" grammar. Both
// the full market-state reader and ParseSharingRecord feed records through
// one instance; entries become visible only once their block is complete
// (predicates, plan and every node fully read).
class SharingBlockParser {
 public:
  explicit SharingBlockParser(size_t num_servers)
      : num_servers_(num_servers) {}

  // Handles one record line. Sets *handled to false when `kind` is not
  // part of the sharing grammar (the caller owns such records).
  Status Feed(const std::string& kind, std::istringstream* fields,
              bool* handled) {
    *handled = true;
    if (kind == "sharing") return BeginSharing(fields);
    if (kind == "pred") return AddPredicate(fields);
    if (kind == "plan") return BeginPlan(fields);
    if (kind == "node") return AddNode(fields);
    *handled = false;
    return Status::OK();
  }

  // Error unless every started block was completed.
  Status Finish() const {
    if (open_) {
      return Status::InvalidArgument("truncated sharing record");
    }
    return Status::OK();
  }

  std::vector<SharingStateEntry>& entries() { return entries_; }

 private:
  Status CheckServer(long long server, const char* what) const {
    if (server < 0 ||
        (num_servers_ != 0 &&
         server >= static_cast<long long>(num_servers_))) {
      return Status::InvalidArgument(std::string(what) +
                                     " server out of range");
    }
    return Status::OK();
  }

  Status BeginSharing(std::istringstream* fields) {
    if (open_) {
      return Status::InvalidArgument("sharing record inside open sharing");
    }
    unsigned long long id = 0;
    long long dest = 0;
    std::string buyer;
    unsigned long long mask = 0;
    if (!(*fields >> id >> dest >> buyer >> mask)) {
      return Status::InvalidArgument("malformed sharing record");
    }
    DSM_RETURN_IF_ERROR(CheckServer(dest, "sharing destination"));
    if (mask == 0) {
      return Status::InvalidArgument("sharing has no member tables");
    }
    DSM_ASSIGN_OR_RETURN(const long long preds,
                         ReadCount(fields, "sharing predicate count"));
    open_ = true;
    id_ = id;
    dest_ = static_cast<ServerId>(dest);
    buyer_ = Unescape(buyer);
    tables_ = TableSet(mask);
    preds_.clear();
    preds_left_ = static_cast<size_t>(preds);
    plan_ = SharingPlan{};
    plan_seen_ = false;
    nodes_left_ = 0;
    node_preds_left_ = 0;
    MaybeComplete();
    return Status::OK();
  }

  Status AddPredicate(std::istringstream* fields) {
    DSM_ASSIGN_OR_RETURN(const Predicate p, ParsePredicate(fields));
    if (!open_) {
      return Status::InvalidArgument("pred record outside sharing");
    }
    if (preds_left_ > 0) {
      preds_.push_back(p);
      --preds_left_;
    } else if (node_preds_left_ > 0) {
      plan_.nodes.back().key.predicates.push_back(p);
      if (--node_preds_left_ == 0) {
        NormalizePredicates(&plan_.nodes.back().key.predicates);
      }
    } else {
      return Status::InvalidArgument("unexpected pred record");
    }
    MaybeComplete();
    return Status::OK();
  }

  Status BeginPlan(std::istringstream* fields) {
    if (!open_ || preds_left_ != 0 || plan_seen_) {
      return Status::InvalidArgument("plan record outside sharing");
    }
    DSM_ASSIGN_OR_RETURN(const long long nodes,
                         ReadCount(fields, "plan node count"));
    if (nodes == 0) {
      return Status::InvalidArgument("empty plan");
    }
    plan_seen_ = true;
    nodes_left_ = static_cast<size_t>(nodes);
    plan_.nodes.reserve(nodes_left_);
    return Status::OK();
  }

  Status AddNode(std::istringstream* fields) {
    if (!open_ || !plan_seen_ || nodes_left_ == 0 ||
        node_preds_left_ != 0) {
      return Status::InvalidArgument("unexpected node record");
    }
    int type = 0;
    long long server = 0;
    long long left = 0;
    long long right = 0;
    long long base_table = 0;
    unsigned long long mask = 0;
    if (!(*fields >> type >> server >> left >> right >> base_table >>
          mask)) {
      return Status::InvalidArgument("malformed node record");
    }
    DSM_ASSIGN_OR_RETURN(const long long preds,
                         ReadCount(fields, "node predicate count"));
    if (type < 0 || type > 2) {
      return Status::InvalidArgument("bad node type");
    }
    DSM_RETURN_IF_ERROR(CheckServer(server, "node"));
    // Children must precede their parent (plans are topological).
    const long long index = static_cast<long long>(plan_.nodes.size());
    if (left < -1 || left >= index || right < -1 || right >= index) {
      return Status::InvalidArgument("node child index out of range");
    }
    const auto node_type = static_cast<PlanNodeType>(type);
    if (node_type == PlanNodeType::kLeaf && (left != -1 || right != -1)) {
      return Status::InvalidArgument("leaf node with children");
    }
    if (node_type == PlanNodeType::kJoin && (left < 0 || right < 0)) {
      return Status::InvalidArgument("join node missing a child");
    }
    if (node_type == PlanNodeType::kFilterCopy &&
        (left < 0 || right != -1)) {
      return Status::InvalidArgument("filter/copy node malformed children");
    }
    if (base_table < 0 || base_table >= TableSet::kMaxTables) {
      return Status::InvalidArgument("node base table out of range");
    }
    if (mask == 0) {
      return Status::InvalidArgument("node covers no tables");
    }
    PlanNode node;
    node.type = node_type;
    node.server = static_cast<ServerId>(server);
    node.left = static_cast<int>(left);
    node.right = static_cast<int>(right);
    node.base_table = static_cast<TableId>(base_table);
    node.key.tables = TableSet(mask);
    plan_.nodes.push_back(std::move(node));
    --nodes_left_;
    node_preds_left_ = static_cast<size_t>(preds);
    MaybeComplete();
    return Status::OK();
  }

  void MaybeComplete() {
    if (!open_ || preds_left_ != 0 || !plan_seen_ || nodes_left_ != 0 ||
        node_preds_left_ != 0) {
      return;
    }
    SharingStateEntry entry;
    entry.id = id_;
    entry.sharing = Sharing(tables_, preds_, dest_, buyer_);
    entry.plan = std::move(plan_);
    entries_.push_back(std::move(entry));
    open_ = false;
  }

  size_t num_servers_;
  std::vector<SharingStateEntry> entries_;

  bool open_ = false;
  SharingId id_ = 0;
  ServerId dest_ = 0;
  std::string buyer_;
  TableSet tables_;
  std::vector<Predicate> preds_;
  size_t preds_left_ = 0;
  SharingPlan plan_;
  bool plan_seen_ = false;
  size_t nodes_left_ = 0;
  size_t node_preds_left_ = 0;
};

void WritePredicates(const std::vector<Predicate>& preds,
                     std::ostream* out) {
  for (const Predicate& p : preds) {
    *out << "pred " << p.table << ' ' << p.column << ' '
         << static_cast<int>(p.op) << ' ' << p.value << '\n';
  }
}

}  // namespace

void WriteSharingRecord(SharingId id, const Sharing& sharing,
                        const SharingPlan& plan, std::ostream* out) {
  *out << "sharing " << id << ' ' << sharing.destination() << ' '
       << Escape(sharing.buyer()) << ' ' << sharing.tables().mask() << ' '
       << sharing.predicates().size() << '\n';
  WritePredicates(sharing.predicates(), out);
  *out << "plan " << plan.nodes.size() << '\n';
  for (const PlanNode& n : plan.nodes) {
    *out << "node " << static_cast<int>(n.type) << ' ' << n.server << ' '
         << n.left << ' ' << n.right << ' ' << n.base_table << ' '
         << n.key.tables.mask() << ' ' << n.key.predicates.size() << '\n';
    WritePredicates(n.key.predicates, out);
  }
}

Result<SharingStateEntry> ParseSharingRecord(const std::string& block,
                                             size_t num_servers) {
  SharingBlockParser parser(num_servers);
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    bool handled = false;
    DSM_RETURN_IF_ERROR(parser.Feed(kind, &fields, &handled));
    if (!handled) {
      return Status::InvalidArgument("unknown record kind: " + kind);
    }
  }
  DSM_RETURN_IF_ERROR(parser.Finish());
  if (parser.entries().size() != 1) {
    return Status::InvalidArgument("expected exactly one sharing record");
  }
  return std::move(parser.entries().front());
}

Status WriteMarketState(const Catalog& catalog, const Cluster& cluster,
                        const GlobalPlan* global_plan, std::ostream* out) {
  // 17 significant digits round-trip every finite double exactly.
  out->precision(17);
  *out << kHeader << '\n';

  for (ServerId s = 0; s < cluster.num_servers(); ++s) {
    const Server& server = cluster.server(s);
    *out << "server " << Escape(server.name) << ' '
         << server.capacity_tuples_per_unit << '\n';
  }

  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& def = catalog.table(t);
    *out << "table " << Escape(def.name) << ' ' << def.stats.cardinality
         << ' ' << def.stats.update_rate << ' ' << def.stats.tuple_bytes
         << ' ' << def.columns.size() << '\n';
    for (const ColumnDef& col : def.columns) {
      *out << "col " << Escape(col.name) << ' ' << TypeTag(col.type) << ' '
           << col.distinct_values << ' ' << col.min_value << ' '
           << col.max_value << '\n';
    }
    const auto home = cluster.HomeOf(t);
    if (home.ok()) {
      *out << "place " << t << ' ' << *home << '\n';
    }
  }

  if (global_plan != nullptr) {
    for (const SharingId id : global_plan->sharing_ids()) {
      const GlobalPlan::SharingRecord* rec = global_plan->record(id);
      WriteSharingRecord(id, rec->sharing, rec->plan, out);
    }
  }
  return out->good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<std::string> MarketStateToString(const Catalog& catalog,
                                        const Cluster& cluster,
                                        const GlobalPlan* global_plan) {
  std::ostringstream out;
  DSM_RETURN_IF_ERROR(WriteMarketState(catalog, cluster, global_plan, &out));
  return out.str();
}

Result<MarketState> ReadMarketState(std::istream* in) {
  MarketState state;
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::InvalidArgument("missing dsm-market header");
  }

  TableDef pending_table;
  size_t pending_columns = 0;
  bool table_open = false;
  auto flush_table = [&]() -> Status {
    if (!table_open) return Status::OK();
    if (pending_table.columns.size() != pending_columns) {
      return Status::InvalidArgument("table column count mismatch");
    }
    if (state.catalog.num_tables() >=
        static_cast<size_t>(TableSet::kMaxTables)) {
      return Status::InvalidArgument("too many tables");
    }
    DSM_RETURN_IF_ERROR(
        state.catalog.AddTable(std::move(pending_table)).status());
    pending_table = TableDef();
    table_open = false;
    return Status::OK();
  };

  SharingBlockParser sharings(/*num_servers=*/0);
  bool any_sharing_seen = false;

  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;

    if (kind == "server") {
      DSM_RETURN_IF_ERROR(flush_table());
      std::string name;
      std::string capacity_text;
      if (!(fields >> name >> capacity_text)) {
        return Status::InvalidArgument("malformed server record");
      }
      // strtod (unlike istream extraction) accepts "inf" — the common
      // case of an uncapped server.
      char* end = nullptr;
      const double capacity = std::strtod(capacity_text.c_str(), &end);
      if (end == capacity_text.c_str() || *end != '\0' ||
          std::isnan(capacity) || capacity < 0.0) {
        return Status::InvalidArgument("bad server capacity");
      }
      if (any_sharing_seen) {
        return Status::InvalidArgument("server record after sharings");
      }
      state.cluster.AddServer(Unescape(name), capacity);
    } else if (kind == "table") {
      DSM_RETURN_IF_ERROR(flush_table());
      std::string name;
      if (!(fields >> name)) {
        return Status::InvalidArgument("malformed table record");
      }
      DSM_ASSIGN_OR_RETURN(pending_table.stats.cardinality,
                           ReadFiniteNonNegative(&fields, "cardinality"));
      DSM_ASSIGN_OR_RETURN(pending_table.stats.update_rate,
                           ReadFiniteNonNegative(&fields, "update rate"));
      DSM_ASSIGN_OR_RETURN(pending_table.stats.tuple_bytes,
                           ReadFiniteNonNegative(&fields, "tuple bytes"));
      DSM_ASSIGN_OR_RETURN(
          const long long columns,
          ReadCount(&fields, "column count", kMaxColumnsPerTable));
      pending_columns = static_cast<size_t>(columns);
      pending_table.name = Unescape(name);
      table_open = true;
    } else if (kind == "col") {
      if (!table_open) {
        return Status::InvalidArgument("col record outside table");
      }
      if (pending_table.columns.size() >= pending_columns) {
        return Status::InvalidArgument("more col records than declared");
      }
      std::string name;
      std::string type_tag;
      ColumnDef col;
      if (!(fields >> name >> type_tag)) {
        return Status::InvalidArgument("malformed col record");
      }
      DSM_ASSIGN_OR_RETURN(col.distinct_values,
                           ReadFiniteNonNegative(&fields, "distinct count"));
      if (!(fields >> col.min_value >> col.max_value) ||
          !std::isfinite(col.min_value) || !std::isfinite(col.max_value)) {
        return Status::InvalidArgument("malformed col record");
      }
      col.name = Unescape(name);
      DSM_ASSIGN_OR_RETURN(col.type, ParseType(type_tag));
      pending_table.columns.push_back(std::move(col));
    } else if (kind == "place") {
      DSM_RETURN_IF_ERROR(flush_table());
      DSM_ASSIGN_OR_RETURN(
          const long long table,
          ReadCount(&fields, "place table", TableSet::kMaxTables - 1));
      DSM_ASSIGN_OR_RETURN(
          const long long server,
          ReadCount(&fields, "place server",
                    static_cast<long long>(state.cluster.num_servers()) -
                        1));
      DSM_RETURN_IF_ERROR(state.cluster.PlaceTable(
          static_cast<TableId>(table), static_cast<ServerId>(server)));
    } else {
      bool handled = false;
      if (kind == "sharing") {
        DSM_RETURN_IF_ERROR(flush_table());
        any_sharing_seen = true;
      }
      DSM_RETURN_IF_ERROR(sharings.Feed(kind, &fields, &handled));
      if (!handled) {
        return Status::InvalidArgument("unknown record kind: " + kind);
      }
    }
  }
  DSM_RETURN_IF_ERROR(flush_table());
  DSM_RETURN_IF_ERROR(sharings.Finish());
  state.sharings = std::move(sharings.entries());

  // Server ids inside sharing blocks are validated against the final
  // cluster (the parser above runs before all servers are known only when
  // the file is malformed; writers emit servers first).
  for (const SharingStateEntry& entry : state.sharings) {
    if (entry.sharing.destination() >= state.cluster.num_servers()) {
      return Status::InvalidArgument("sharing destination out of range");
    }
    for (const PlanNode& node : entry.plan.nodes) {
      if (node.server >= state.cluster.num_servers()) {
        return Status::InvalidArgument("plan node server out of range");
      }
    }
  }
  return state;
}

Result<MarketState> MarketStateFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadMarketState(&in);
}

Status RestoreGlobalPlan(const MarketState& state, GlobalPlan* global_plan) {
  if (global_plan->num_sharings() != 0) {
    return Status::InvalidArgument("global plan must be empty");
  }
  for (const SharingStateEntry& entry : state.sharings) {
    DSM_RETURN_IF_ERROR(
        global_plan->AddSharing(entry.id, entry.sharing, entry.plan)
            .status());
  }
  return Status::OK();
}

}  // namespace dsm
