// PlanJournal: an append-only write-ahead log of committed plan choices.
//
// A market snapshot (WriteMarketState) is expensive and racy to rewrite on
// every arrival; the journal makes commits durable incrementally instead.
// Each committed (sharing, plan) pair is appended as one framed record:
//
//   dsm-journal v1\n                     -- header, once
//   rec <payload-bytes> <fnv1a64-hex>\n  -- frame header
//   <payload>                            -- WriteSharingRecord block
//
// Recovery replays snapshot + journal. Because a crash can interrupt an
// append at any byte, the reader treats the journal as trustworthy only up
// to the first bad frame: a truncated or checksum-mismatching tail is
// dropped (never a crash, never an error) and the number of records that
// survived is reported, so the caller knows exactly which sharings must be
// re-planned. The "io/journal-append" fault point simulates such torn
// writes deterministically in tests.

#ifndef DSM_IO_PLAN_JOURNAL_H_
#define DSM_IO_PLAN_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/market_io.h"

namespace dsm {

// FNV-1a 64-bit checksum used for journal frames.
uint64_t JournalChecksum(const std::string& payload);

class PlanJournal {
 public:
  // In-memory journal (tests, or callers that persist contents()
  // themselves).
  PlanJournal() = default;
  // File-backed journal: every Append is written through and flushed.
  explicit PlanJournal(std::string path) : path_(std::move(path)) {}

  PlanJournal(const PlanJournal&) = delete;
  PlanJournal& operator=(const PlanJournal&) = delete;

  // Prepares the journal: loads an existing backing file (its contents
  // become the in-memory image) or starts a fresh journal with the header
  // line. In-memory journals just write the header. Must be called once
  // before Append.
  Status Open();

  // Appends one committed plan choice. On a torn write (simulated via the
  // "io/journal-append" fault point) a partial frame is left behind and
  // kInternal is returned — exactly what a crash mid-append leaves on
  // disk.
  Status Append(SharingId id, const Sharing& sharing,
                const SharingPlan& plan);

  const std::string& contents() const { return contents_; }
  size_t records_appended() const { return records_appended_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;  // empty = in-memory only
  std::string contents_;
  size_t records_appended_ = 0;
  bool open_ = false;
};

struct JournalReplay {
  std::vector<SharingStateEntry> entries;
  size_t records_recovered = 0;
  // Bytes of corrupt/truncated tail that were dropped (0 = clean log).
  size_t bytes_dropped = 0;
  bool tail_dropped = false;
};

// Replays a journal image. Never fails on a damaged tail — the bad suffix
// is dropped and reported. Only a missing/garbled header is an error.
// `num_servers`, when nonzero, bounds server ids in the records.
Result<JournalReplay> ReplayJournal(const std::string& journal_text,
                                    size_t num_servers = 0);

// Full crash recovery: parses the market snapshot, then appends every
// journaled sharing that the snapshot does not already contain. `replay`
// (optional) receives the journal replay statistics.
Result<MarketState> RecoverMarketState(const std::string& snapshot_text,
                                       const std::string& journal_text,
                                       JournalReplay* replay = nullptr);

}  // namespace dsm

#endif  // DSM_IO_PLAN_JOURNAL_H_
