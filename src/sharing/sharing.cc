#include "sharing/sharing.h"

#include <algorithm>

#include "common/string_util.h"

namespace dsm {

Sharing::Sharing(TableSet tables, std::vector<Predicate> predicates,
                 ServerId destination, std::string buyer)
    : tables_(tables),
      predicates_(std::move(predicates)),
      destination_(destination),
      buyer_(std::move(buyer)) {
  NormalizePredicates(&predicates_);
}

void Sharing::set_projection(std::vector<ProjectionColumn> projection) {
  std::sort(projection.begin(), projection.end());
  projection.erase(std::unique(projection.begin(), projection.end()),
                   projection.end());
  projection_ = std::move(projection);
}

bool Sharing::IdenticalTo(const Sharing& other) const {
  return tables_ == other.tables_ && predicates_ == other.predicates_ &&
         projection_ == other.projection_;
}

bool Sharing::ContainedIn(const Sharing& other) const {
  if (!(tables_ == other.tables_)) return false;
  // More predicates -> fewer tuples: this ⊆ other iff other's predicates
  // are a subset of ours.
  return PredicateSubset(other.predicates_, predicates_);
}

uint64_t Sharing::QueryHash() const {
  uint64_t h = tables_.mask() * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const Predicate& p : predicates_) {
    uint64_t bits;
    __builtin_memcpy(&bits, &p.value, sizeof(bits));
    mix((static_cast<uint64_t>(p.table) << 40) ^
        (static_cast<uint64_t>(p.column) << 24) ^
        (static_cast<uint64_t>(p.op) << 16) ^ bits);
  }
  for (const ProjectionColumn& c : projection_) {
    mix((static_cast<uint64_t>(c.table) << 16) ^ c.column);
  }
  return h;
}

std::string Sharing::ToString(const Catalog& catalog) const {
  std::string out = ViewKey(tables_, predicates_).ToString(catalog);
  out += " -> server " + std::to_string(destination_);
  if (!buyer_.empty()) out += " (buyer " + buyer_ + ")";
  return out;
}

}  // namespace dsm
