// A dynamic data sharing: the ad-hoc query a data buyer purchases, whose
// result the service provider must create and keep up to date.

#ifndef DSM_SHARING_SHARING_H_
#define DSM_SHARING_SHARING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_set.h"
#include "cluster/cluster.h"
#include "expr/predicate.h"
#include "expr/view_key.h"

namespace dsm {

using SharingId = uint64_t;

// A projected output column.
struct ProjectionColumn {
  TableId table = 0;
  uint16_t column = 0;

  friend bool operator==(const ProjectionColumn& a,
                         const ProjectionColumn& b) {
    return a.table == b.table && a.column == b.column;
  }
  friend bool operator<(const ProjectionColumn& a,
                        const ProjectionColumn& b) {
    return a.table != b.table ? a.table < b.table : a.column < b.column;
  }
};

class Sharing {
 public:
  Sharing() = default;

  // A sharing joining `tables` (natural join), filtered by `predicates`,
  // delivered to `destination`. An empty `projection` means "all columns".
  Sharing(TableSet tables, std::vector<Predicate> predicates,
          ServerId destination, std::string buyer = "");

  TableSet tables() const { return tables_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<ProjectionColumn>& projection() const {
    return projection_;
  }
  ServerId destination() const { return destination_; }
  const std::string& buyer() const { return buyer_; }

  void set_projection(std::vector<ProjectionColumn> projection);

  // Number of joins in any plan for this sharing: #join(S) = |tables| - 1.
  int NumJoins() const { return tables_.size() - 1; }

  // The key of the sharing's final result.
  ViewKey ResultKey() const { return ViewKey(tables_, predicates_); }

  // True if the two sharings are the same query (criterion (1) of the
  // fairness criteria treats such sharings as identical buyers' requests,
  // whatever plans the provider picked for them).
  bool IdenticalTo(const Sharing& other) const;

  // True if this sharing's tuples are a subset of `other`'s: same table
  // set and a superset of `other`'s predicates (criterion (3)).
  bool ContainedIn(const Sharing& other) const;

  // Stable hash of the query (tables + predicates + projection), used to
  // group identical sharings.
  uint64_t QueryHash() const;

  std::string ToString(const Catalog& catalog) const;

 private:
  TableSet tables_;
  std::vector<Predicate> predicates_;        // normalized
  std::vector<ProjectionColumn> projection_;  // normalized
  ServerId destination_ = 0;
  std::string buyer_;
};

}  // namespace dsm

#endif  // DSM_SHARING_SHARING_H_
