// GlobalPlan: the DAG of continuously-maintained views serving all active
// sharings (Section 3.2's "global plan").
//
// Integrating a sharing plan reuses existing views wherever an alive view's
// key subsumes a plan node's key (same table set, predicate subset): the
// node's whole subtree is then skipped and only a residual filter/copy is
// charged. This realizes both the red/green reuse arrows of Figure 3 and
// Example 1.1's "reuse the previous plan, and add a filter on top".
//
// The structure also keeps the bookkeeping fair costing needs: per-sharing
// GPC, and saving(r)/num(r) for every intermediate result (Definition 5.1).
//
// Admission is the hot path once plans number in the thousands, so reuse
// lookup is indexed (see DESIGN.md §11): buckets by table mask are
// sub-bucketed by predicate fingerprint (exact matches in O(1)), Subsumes
// verdicts are memoized on interned key pairs, and a per-(key, server)
// best-source cache short-circuits repeated probes. All caches are
// epoch-invalidated (structure epoch bumped on node create/kill, cluster
// liveness epoch on server up/down) and guarded by a mutex so the planner
// may score candidate plans concurrently; decisions are bit-identical to
// the legacy linear scan (kept behind set_reuse_index_enabled(false)).

#ifndef DSM_GLOBALPLAN_GLOBAL_PLAN_H_
#define DSM_GLOBALPLAN_GLOBAL_PLAN_H_

#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "sharing/sharing.h"

namespace dsm {

class GlobalPlan {
 public:
  struct NodeDecision {
    enum State : uint8_t {
      kFresh,    // node computed anew; its op cost is paid
      kReused,   // node's data taken from an existing view
      kSkipped,  // node lies under a reused ancestor; nothing computed
    };
    State state = kFresh;
    int reuse_source = -1;         // GP node supplying the data (kReused)
    bool needs_residual = false;   // kReused via a new filter/copy op
    double marginal_cost = 0.0;    // $ this node adds to the global plan
  };

  struct PlanEvaluation {
    double marginal_cost = 0.0;  // total additional $ (GREEDY's criterion)
    bool feasible = true;        // all server capacities respected
    std::vector<NodeDecision> decisions;  // parallel to plan.nodes
  };

  struct AddOptions {
    bool allow_reuse = true;
    // Keys whose reuse is forbidden (used to reconstruct published global
    // plans, e.g. Figure 3's, where the provider made different choices).
    const std::unordered_set<ViewKey, ViewKeyHash>* forbid_reuse_keys =
        nullptr;
  };

  // Everything remembered about one integrated sharing.
  struct SharingRecord {
    Sharing sharing;
    SharingPlan plan;  // the individual plan (Figure 3(a)'s view)
    std::vector<NodeDecision> decisions;
    std::vector<int> plan_to_gp;          // plan node -> GP node (-1 skipped)
    std::vector<double> standalone_cost;  // per plan node, no reuse
    std::vector<double> subtree_cost;     // per plan node, incl. descendants
    double residual_cost = 0.0;  // extra filter/copy ops created on reuse
    double marginal_cost = 0.0;  // $ the sharing added when integrated
    double gpc = 0.0;            // GPC(S): Σ standalone + residual ops
    // Distinct non-leaf plan keys as (interned key id, first plan-node
    // index), in first-appearance order. Lets the per-refresh saving
    // aggregation run on dense integer ids instead of re-hashing ViewKeys
    // for every plan node of every record.
    std::vector<std::pair<int, int>> distinct_keys;
  };

  struct ReuseStat {
    ViewKey key;
    double saving = 0.0;  // Definition 5.1
    int num = 0;          // sharings whose plans include the result
  };

  GlobalPlan(const Cluster* cluster, CostModel* model)
      : cluster_(cluster), model_(model) {}

  GlobalPlan(const GlobalPlan&) = delete;
  GlobalPlan& operator=(const GlobalPlan&) = delete;

  // Dry run: what would integrating `plan` cost, and is it feasible?
  // Thread-safe against concurrent EvaluatePlan calls (the planner scores
  // candidates in parallel); never against concurrent mutation.
  PlanEvaluation EvaluatePlan(const SharingPlan& plan) const {
    return EvaluatePlan(plan, AddOptions{});
  }
  PlanEvaluation EvaluatePlan(const SharingPlan& plan,
                              const AddOptions& options) const;

  // Integrates the plan (no feasibility enforcement here; planners check
  // EvaluatePlan().feasible first, per Algorithm 2).
  Result<PlanEvaluation> AddSharing(SharingId id, const Sharing& sharing,
                                    const SharingPlan& plan) {
    return AddSharing(id, sharing, plan, AddOptions{});
  }
  Result<PlanEvaluation> AddSharing(SharingId id, const Sharing& sharing,
                                    const SharingPlan& plan,
                                    const AddOptions& options);

  // Removes a sharing; views no longer referenced by anyone are dropped.
  Status RemoveSharing(SharingId id);

  // Total $ per time unit of all alive views: cost(GP).
  double TotalCost() const { return total_cost_; }

  // Current maintenance load (tuples/time unit) on a server.
  double ServerLoad(ServerId server) const;

  // True if the full (unpredicated) join result over `tables` is
  // materialized — "the result of s is produced in some P_j" (Def. 4.3).
  bool HasUnpredicatedView(TableSet tables) const;

  size_t num_sharings() const { return records_.size(); }
  std::vector<SharingId> sharing_ids() const;
  // nullptr if unknown.
  const SharingRecord* record(SharingId id) const;
  // All integrated sharings in id order (costing iterates every record
  // each refresh; per-id lookups would pay a map find apiece).
  const std::map<SharingId, SharingRecord>& records() const {
    return records_;
  }

  double GPC(SharingId id) const;

  // saving(r) and num(r) for every intermediate result appearing in any
  // sharing's plan.
  std::vector<ReuseStat> ComputeReuseStats() const;

  // saving(r)/num(r) indexed by interned key id (0.0 where num(r) = 0 or
  // the id names no plan key). The refresh hot path sums these over each
  // record's `distinct_keys` without touching a ViewKey.
  std::vector<double> ComputeSavingShares() const;

  size_t num_alive_views() const { return alive_count_; }

  // The GP nodes a sharing's delivery transitively depends on (the
  // even-split baseline distributes each node's cost over the sharings
  // whose closure includes it). nullptr if the sharing is unknown.
  const std::vector<int>* closure(SharingId id) const;

  double node_cost(int id) const {
    return nodes_[static_cast<size_t>(id)].cost;
  }
  ServerId node_server(int id) const {
    return nodes_[static_cast<size_t>(id)].server;
  }

  // Sharings whose plan closure includes any alive view materialized on
  // `server` — the blast radius of losing that machine. Sorted by id.
  // Served from a server -> sharings inverted index maintained on
  // AddSharing/RemoveSharing (closure nodes stay alive for the sharing's
  // whole lifetime: their refcount is >= 1 until RemoveSharing).
  std::vector<SharingId> SharingsTouchingServer(ServerId server) const;

  // Legacy toggle for benchmarking and equivalence testing: with the index
  // disabled every reuse probe is the original linear Subsumes scan.
  // Decisions are identical either way. Flipping it drops the caches.
  void set_reuse_index_enabled(bool enabled);
  bool reuse_index_enabled() const { return reuse_index_enabled_; }

 private:
  struct GPNode {
    ViewKey key;
    ServerId server = 0;
    PlanNodeType type = PlanNodeType::kLeaf;
    int left = -1;
    int right = -1;
    TableId base_table = 0;
    double cost = 0.0;
    double load = 0.0;
    int refcount = 0;
    bool alive = true;
    int key_id = -1;        // interned ViewKey id (Subsumes memo)
    uint64_t pred_fp = 0;   // PredicateFingerprint(key.predicates)
    uint64_t pred_sig = 0;  // PredicateSignature(key.predicates)
  };

  // Alive node ids over one table mask. `ids` keeps insertion order (the
  // legacy scan order, which tie-breaking depends on); `by_fingerprint`
  // sub-buckets the same ids by predicate fingerprint so an exact-key probe
  // touches only candidates with identical predicate sets.
  struct TableBucket {
    std::vector<int> ids;
    std::unordered_map<uint64_t, std::vector<int>> by_fingerprint;
  };

  // Cached result of one (needed key, server) reuse probe.
  struct BestSource {
    uint64_t epoch = 0;           // structure epoch at fill time
    uint64_t liveness_epoch = 0;  // cluster liveness epoch at fill time
    int best = -1;
    double residual = 0.0;
  };

  // Cheapest way to serve `needed` at `server` from an existing view.
  // Returns the source GP node id or -1; fills `residual_cost`.
  int FindBestReuse(const ViewKey& needed, ServerId server,
                    const AddOptions& options, double* residual_cost) const;

  // The legacy linear scan over `bucket.ids` (also the index's fallback
  // when no exact match exists). `memo` != nullptr memoizes Subsumes
  // verdicts on (candidate key id, needed key id); requires cache_mu_.
  int ScanForBestReuse(const TableBucket& bucket, const ViewKey& needed,
                       ServerId server, int needed_key_id,
                       double* residual_cost) const;

  // Interns `key`, returning its dense id. Requires cache_mu_.
  int InternKeyLocked(const ViewKey& key) const;

  // Accumulates saving(r)/num(r) numerators and counts per interned key
  // id (sized to the current intern table). Requires cache_mu_.
  void AccumulateReuseLocked(std::vector<double>* saving,
                             std::vector<int>* num) const;

  // Fills `eval` for `plan`; shared by EvaluatePlan and AddSharing.
  void Decide(const SharingPlan& plan, const AddOptions& options,
              PlanEvaluation* eval) const;

  double NodeLoad(const GPNode& node) const;

  int CreateNode(GPNode node);
  void KillNode(int id);

  const Cluster* cluster_;
  CostModel* model_;

  std::vector<GPNode> nodes_;
  // tables mask -> alive GP node ids over that table set (reuse index).
  std::unordered_map<uint64_t, TableBucket> by_tables_;
  std::map<SharingId, SharingRecord> records_;
  std::map<SharingId, std::vector<int>> closures_;  // refcounted node sets

  // Inverted index behind SharingsTouchingServer: which sharings' closures
  // place an alive view on each server.
  std::map<ServerId, std::set<SharingId>> sharings_by_server_;

  double total_cost_ = 0.0;
  std::unordered_map<ServerId, double> server_load_;
  size_t alive_count_ = 0;

  bool reuse_index_enabled_ = true;
  // Bumped by CreateNode/KillNode; best-source cache entries filled at an
  // older epoch (or an older cluster liveness epoch) are stale.
  uint64_t epoch_ = 0;

  // Read-side caches mutated from const EvaluatePlan paths, which the
  // planner runs concurrently — hence the mutex. Values are pure functions
  // of (structure epoch, liveness epoch, key, server), so concurrent
  // fills are idempotent and results stay deterministic.
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<ViewKey, int, ViewKeyHash> key_intern_;
  mutable std::vector<ViewKey> interned_keys_;  // id -> key (reverse table)
  // (candidate key id << 32 | needed key id) -> Subsumes verdict.
  mutable std::unordered_map<uint64_t, bool> subsumes_memo_;
  // (GP node id << 40 | needed key id << 16 | server) -> residual
  // FilterCopyCost. Only filled for stateless cost models (see
  // CostModel::SupportsConcurrentQueries); never invalidated, since node
  // ids are not reused and a node's key/server are immutable.
  mutable std::unordered_map<uint64_t, double> residual_cost_memo_;
  // (needed key id << 32 | server) -> cached best source.
  mutable std::unordered_map<uint64_t, BestSource> best_source_cache_;
};

}  // namespace dsm

#endif  // DSM_GLOBALPLAN_GLOBAL_PLAN_H_
