// GlobalPlan: the DAG of continuously-maintained views serving all active
// sharings (Section 3.2's "global plan").
//
// Integrating a sharing plan reuses existing views wherever an alive view's
// key subsumes a plan node's key (same table set, predicate subset): the
// node's whole subtree is then skipped and only a residual filter/copy is
// charged. This realizes both the red/green reuse arrows of Figure 3 and
// Example 1.1's "reuse the previous plan, and add a filter on top".
//
// The structure also keeps the bookkeeping fair costing needs: per-sharing
// GPC, and saving(r)/num(r) for every intermediate result (Definition 5.1).

#ifndef DSM_GLOBALPLAN_GLOBAL_PLAN_H_
#define DSM_GLOBALPLAN_GLOBAL_PLAN_H_

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "sharing/sharing.h"

namespace dsm {

class GlobalPlan {
 public:
  struct NodeDecision {
    enum State : uint8_t {
      kFresh,    // node computed anew; its op cost is paid
      kReused,   // node's data taken from an existing view
      kSkipped,  // node lies under a reused ancestor; nothing computed
    };
    State state = kFresh;
    int reuse_source = -1;         // GP node supplying the data (kReused)
    bool needs_residual = false;   // kReused via a new filter/copy op
    double marginal_cost = 0.0;    // $ this node adds to the global plan
  };

  struct PlanEvaluation {
    double marginal_cost = 0.0;  // total additional $ (GREEDY's criterion)
    bool feasible = true;        // all server capacities respected
    std::vector<NodeDecision> decisions;  // parallel to plan.nodes
  };

  struct AddOptions {
    bool allow_reuse = true;
    // Keys whose reuse is forbidden (used to reconstruct published global
    // plans, e.g. Figure 3's, where the provider made different choices).
    const std::unordered_set<ViewKey, ViewKeyHash>* forbid_reuse_keys =
        nullptr;
  };

  // Everything remembered about one integrated sharing.
  struct SharingRecord {
    Sharing sharing;
    SharingPlan plan;  // the individual plan (Figure 3(a)'s view)
    std::vector<NodeDecision> decisions;
    std::vector<int> plan_to_gp;          // plan node -> GP node (-1 skipped)
    std::vector<double> standalone_cost;  // per plan node, no reuse
    std::vector<double> subtree_cost;     // per plan node, incl. descendants
    double residual_cost = 0.0;  // extra filter/copy ops created on reuse
    double marginal_cost = 0.0;  // $ the sharing added when integrated
    double gpc = 0.0;            // GPC(S): Σ standalone + residual ops
  };

  struct ReuseStat {
    ViewKey key;
    double saving = 0.0;  // Definition 5.1
    int num = 0;          // sharings whose plans include the result
  };

  GlobalPlan(const Cluster* cluster, CostModel* model)
      : cluster_(cluster), model_(model) {}

  GlobalPlan(const GlobalPlan&) = delete;
  GlobalPlan& operator=(const GlobalPlan&) = delete;

  // Dry run: what would integrating `plan` cost, and is it feasible?
  PlanEvaluation EvaluatePlan(const SharingPlan& plan) const {
    return EvaluatePlan(plan, AddOptions{});
  }
  PlanEvaluation EvaluatePlan(const SharingPlan& plan,
                              const AddOptions& options) const;

  // Integrates the plan (no feasibility enforcement here; planners check
  // EvaluatePlan().feasible first, per Algorithm 2).
  Result<PlanEvaluation> AddSharing(SharingId id, const Sharing& sharing,
                                    const SharingPlan& plan) {
    return AddSharing(id, sharing, plan, AddOptions{});
  }
  Result<PlanEvaluation> AddSharing(SharingId id, const Sharing& sharing,
                                    const SharingPlan& plan,
                                    const AddOptions& options);

  // Removes a sharing; views no longer referenced by anyone are dropped.
  Status RemoveSharing(SharingId id);

  // Total $ per time unit of all alive views: cost(GP).
  double TotalCost() const { return total_cost_; }

  // Current maintenance load (tuples/time unit) on a server.
  double ServerLoad(ServerId server) const;

  // True if the full (unpredicated) join result over `tables` is
  // materialized — "the result of s is produced in some P_j" (Def. 4.3).
  bool HasUnpredicatedView(TableSet tables) const;

  size_t num_sharings() const { return records_.size(); }
  std::vector<SharingId> sharing_ids() const;
  // nullptr if unknown.
  const SharingRecord* record(SharingId id) const;

  double GPC(SharingId id) const;

  // saving(r) and num(r) for every intermediate result appearing in any
  // sharing's plan.
  std::vector<ReuseStat> ComputeReuseStats() const;

  size_t num_alive_views() const { return alive_count_; }

  // The GP nodes a sharing's delivery transitively depends on (the
  // even-split baseline distributes each node's cost over the sharings
  // whose closure includes it). nullptr if the sharing is unknown.
  const std::vector<int>* closure(SharingId id) const;

  double node_cost(int id) const {
    return nodes_[static_cast<size_t>(id)].cost;
  }
  ServerId node_server(int id) const {
    return nodes_[static_cast<size_t>(id)].server;
  }

  // Sharings whose plan closure includes any alive view materialized on
  // `server` — the blast radius of losing that machine. Sorted by id.
  std::vector<SharingId> SharingsTouchingServer(ServerId server) const;

 private:
  struct GPNode {
    ViewKey key;
    ServerId server = 0;
    PlanNodeType type = PlanNodeType::kLeaf;
    int left = -1;
    int right = -1;
    TableId base_table = 0;
    double cost = 0.0;
    double load = 0.0;
    int refcount = 0;
    bool alive = true;
  };

  // Cheapest way to serve `needed` at `server` from an existing view.
  // Returns the source GP node id or -1; fills `residual_cost`.
  int FindBestReuse(const ViewKey& needed, ServerId server,
                    const AddOptions& options, double* residual_cost) const;

  // Fills `eval` for `plan`; shared by EvaluatePlan and AddSharing.
  void Decide(const SharingPlan& plan, const AddOptions& options,
              PlanEvaluation* eval) const;

  double NodeLoad(const GPNode& node) const;

  int CreateNode(GPNode node);
  void KillNode(int id);

  const Cluster* cluster_;
  CostModel* model_;

  std::vector<GPNode> nodes_;
  // tables mask -> alive GP node ids over that table set (reuse index).
  std::unordered_map<uint64_t, std::vector<int>> by_tables_;
  std::map<SharingId, SharingRecord> records_;
  std::map<SharingId, std::vector<int>> closures_;  // refcounted node sets

  double total_cost_ = 0.0;
  std::unordered_map<ServerId, double> server_load_;
  size_t alive_count_ = 0;
};

}  // namespace dsm

#endif  // DSM_GLOBALPLAN_GLOBAL_PLAN_H_
