#include "globalplan/global_plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "obs/metrics.h"

namespace dsm {
namespace {

// Relative tolerance of the reuse tie-break: costs this close count as
// equal, and an exact-match view (no residual filter/copy node needed)
// wins the tie regardless of FP noise in the cost model.
constexpr double kReuseTieTol = 1e-9;

bool CostStrictlyBetter(double cost, double best_cost) {
  const double tol =
      kReuseTieTol * std::max({1.0, std::abs(cost), std::abs(best_cost)});
  return cost < best_cost - tol;
}

bool CostTies(double cost, double best_cost) {
  const double tol =
      kReuseTieTol * std::max({1.0, std::abs(cost), std::abs(best_cost)});
  return cost <= best_cost + tol;
}

}  // namespace

int GlobalPlan::InternKeyLocked(const ViewKey& key) const {
  // find-before-insert: every reuse probe passes through here, and an
  // unconditional emplace would allocate a node (and copy the key's
  // predicate vector) per probe just to discard it on the common repeat.
  const auto it = key_intern_.find(key);
  if (it != key_intern_.end()) return it->second;
  const int id = static_cast<int>(key_intern_.size());
  key_intern_.emplace(key, id);
  interned_keys_.push_back(key);
  return id;
}

int GlobalPlan::ScanForBestReuse(const TableBucket& bucket,
                                 const ViewKey& needed, ServerId server,
                                 int needed_key_id,
                                 double* residual_cost) const {
  int best = -1;
  double best_cost = 0.0;
  bool best_exact = false;
  // Residual costs are pure in (candidate, needed, server) for stateless
  // models, so repeated scans (the index re-scans after every structure
  // epoch bump) skip the model call. Stateful models (memoizing via an
  // order-sensitive Rng) must see every call, or their later answers — and
  // hence legacy-vs-indexed decisions — would diverge.
  const bool memo_costs = needed_key_id >= 0 &&
                          needed_key_id < (1 << 24) &&
                          model_->SupportsConcurrentQueries();
  // Signature prefilter (indexed mode): a candidate whose predicate
  // signature has bits outside `needed`'s cannot have a predicate subset
  // (see PredicateSignature), so most non-subsumers cost one AND instead
  // of a memo probe. Never rejects a true subsumer — decisions match the
  // unfiltered scan exactly.
  const uint64_t needed_sig =
      needed_key_id >= 0 ? PredicateSignature(needed.predicates) : 0;
  for (const int id : bucket.ids) {
    const GPNode& cand = nodes_[static_cast<size_t>(id)];
    if (!cand.alive) continue;
    if (needed_key_id >= 0 && (cand.pred_sig & ~needed_sig) != 0) continue;
    bool subsumes;
    if (needed_key_id >= 0 && cand.key_id >= 0) {
      const uint64_t memo_key =
          (static_cast<uint64_t>(cand.key_id) << 32) |
          static_cast<uint32_t>(needed_key_id);
      const auto mit = subsumes_memo_.find(memo_key);
      if (mit != subsumes_memo_.end()) {
        subsumes = mit->second;
      } else {
        subsumes = cand.key.Subsumes(needed);
        subsumes_memo_.emplace(memo_key, subsumes);
      }
    } else {
      subsumes = cand.key.Subsumes(needed);
    }
    if (!subsumes) continue;
    // A view on a down server is lost; it cannot feed anyone.
    if (!cluster_->is_up(cand.server)) continue;
    const bool exact = cand.server == server &&
                       (needed_key_id >= 0 && cand.key_id >= 0
                            ? cand.key_id == needed_key_id
                            : cand.key == needed);
    double cost = 0.0;
    if (!exact) {
      if (memo_costs && id < (1 << 24) &&
          server < static_cast<ServerId>(1 << 16)) {
        const uint64_t cost_key = (static_cast<uint64_t>(id) << 40) |
                                  (static_cast<uint64_t>(needed_key_id)
                                   << 16) |
                                  static_cast<uint64_t>(server);
        const auto cit = residual_cost_memo_.find(cost_key);
        if (cit != residual_cost_memo_.end()) {
          cost = cit->second;
        } else {
          cost = model_->FilterCopyCost(cand.key, cand.server, needed,
                                        server);
          residual_cost_memo_.emplace(cost_key, cost);
        }
      } else {
        cost = model_->FilterCopyCost(cand.key, cand.server, needed,
                                      server);
      }
    }
    // Prefer cheaper sources; on (near-)ties prefer an exact match, which
    // needs no residual filter/copy node at all.
    if (best < 0 || CostStrictlyBetter(cost, best_cost) ||
        (CostTies(cost, best_cost) && exact && !best_exact)) {
      best = id;
      best_cost = cost;
      best_exact = exact;
    }
  }
  if (best >= 0) *residual_cost = best_cost;
  return best;
}

int GlobalPlan::FindBestReuse(const ViewKey& needed, ServerId server,
                              const AddOptions& options,
                              double* residual_cost) const {
  if (!options.allow_reuse) return -1;
  if (options.forbid_reuse_keys != nullptr &&
      options.forbid_reuse_keys->count(needed) != 0) {
    return -1;
  }
  const auto it = by_tables_.find(needed.tables.mask());
  if (it == by_tables_.end()) return -1;
  const TableBucket& bucket = it->second;

  if (!reuse_index_enabled_) {
    return ScanForBestReuse(bucket, needed, server, /*needed_key_id=*/-1,
                            residual_cost);
  }

  // The forbid check above only gates `needed` itself, never which
  // candidates may serve it, so the cached answer for (needed, server) is
  // valid under any AddOptions that reach this point.
  std::lock_guard<std::mutex> lock(cache_mu_);
  const int needed_key_id = InternKeyLocked(needed);
  const uint64_t cache_key =
      (static_cast<uint64_t>(needed_key_id) << 32) | server;
  const uint64_t liveness = cluster_->liveness_epoch();
  const auto cached = best_source_cache_.find(cache_key);
  if (cached != best_source_cache_.end() &&
      cached->second.epoch == epoch_ &&
      cached->second.liveness_epoch == liveness) {
    DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_index_hits", 1);
    if (cached->second.best >= 0) *residual_cost = cached->second.residual;
    return cached->second.best;
  }
  DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_index_misses", 1);

  int best = -1;
  double residual = 0.0;
  // Exact fast path: a same-key view already on `server` costs zero and
  // wins the exact-preference tie-break against every other candidate
  // (costs are non-negative), so the scan can be skipped outright. The
  // fingerprint sub-bucket preserves insertion order, so the first match
  // here is the one the legacy scan would keep.
  const auto fit =
      bucket.by_fingerprint.find(PredicateFingerprint(needed.predicates));
  if (fit != bucket.by_fingerprint.end() && cluster_->is_up(server)) {
    for (const int id : fit->second) {
      const GPNode& cand = nodes_[static_cast<size_t>(id)];
      if (cand.alive && cand.server == server && cand.key == needed) {
        best = id;
        break;
      }
    }
  }
  if (best < 0) {
    best = ScanForBestReuse(bucket, needed, server, needed_key_id,
                            &residual);
  }
  best_source_cache_[cache_key] = BestSource{epoch_, liveness, best,
                                             residual};
  if (best >= 0) *residual_cost = residual;
  return best;
}

void GlobalPlan::set_reuse_index_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  reuse_index_enabled_ = enabled;
  best_source_cache_.clear();
  subsumes_memo_.clear();
  residual_cost_memo_.clear();
}

void GlobalPlan::Decide(const SharingPlan& plan, const AddOptions& options,
                        PlanEvaluation* eval) const {
  const size_t n = plan.nodes.size();
  eval->decisions.assign(n, NodeDecision{});

  std::vector<double> op_cost(n);
  for (size_t i = 0; i < n; ++i) {
    op_cost[i] = PlanNodeCost(plan, i, model_);
  }

  std::function<void(int)> mark_skipped = [&](int i) {
    eval->decisions[static_cast<size_t>(i)].state = NodeDecision::kSkipped;
    eval->decisions[static_cast<size_t>(i)].marginal_cost = 0.0;
    const PlanNode& pn = plan.nodes[static_cast<size_t>(i)];
    if (pn.left >= 0) mark_skipped(pn.left);
    if (pn.right >= 0) mark_skipped(pn.right);
  };

  // Serving node i: either reuse an existing view (whole subtree skipped)
  // or compute it fresh (pay the op; children decided recursively).
  std::function<double(int)> decide = [&](int i) -> double {
    const PlanNode& pn = plan.nodes[static_cast<size_t>(i)];
    NodeDecision& d = eval->decisions[static_cast<size_t>(i)];

    double fresh = op_cost[static_cast<size_t>(i)];
    // Children must be decided before comparing; their decisions stand if
    // we stay fresh and are overwritten to kSkipped if we reuse.
    if (pn.left >= 0) fresh += decide(pn.left);
    if (pn.right >= 0) fresh += decide(pn.right);

    double residual = 0.0;
    const int src = FindBestReuse(pn.key, pn.server, options, &residual);
    if (src >= 0 && residual <= fresh) {
      d.state = NodeDecision::kReused;
      d.reuse_source = src;
      const GPNode& s = nodes_[static_cast<size_t>(src)];
      d.needs_residual = !(s.key == pn.key && s.server == pn.server);
      d.marginal_cost = residual;
      if (pn.left >= 0) mark_skipped(pn.left);
      if (pn.right >= 0) mark_skipped(pn.right);
      return residual;
    }
    d.state = NodeDecision::kFresh;
    d.marginal_cost = op_cost[static_cast<size_t>(i)];
    return fresh;
  };

  eval->marginal_cost = decide(plan.root_index());

  // Capacity feasibility: added load per server.
  std::unordered_map<ServerId, double> added;
  for (size_t i = 0; i < n; ++i) {
    const PlanNode& pn = plan.nodes[i];
    const NodeDecision& d = eval->decisions[i];
    double load = 0.0;
    if (d.state == NodeDecision::kFresh) {
      load = PlanNodeLoad(plan, i, model_);
    } else if (d.state == NodeDecision::kReused && d.needs_residual) {
      load = model_->DeltaRate(
          nodes_[static_cast<size_t>(d.reuse_source)].key);
    }
    if (load > 0.0) added[pn.server] += load;
  }
  eval->feasible = true;
  // Liveness: no node may be materialized on a down server — a fresh
  // view can't be built there and a residual filter/copy can't run there.
  // This also covers leaves (the base table's home machine is gone) and
  // the root (the sharing's destination is unreachable).
  for (size_t i = 0; i < n; ++i) {
    const NodeDecision& d = eval->decisions[i];
    const bool places_work =
        d.state == NodeDecision::kFresh ||
        (d.state == NodeDecision::kReused && d.needs_residual);
    if (places_work && !cluster_->is_up(plan.nodes[i].server)) {
      eval->feasible = false;
      return;
    }
  }
  for (const auto& [server, load] : added) {
    const double current =
        server_load_.count(server) != 0 ? server_load_.at(server) : 0.0;
    if (current + load > cluster_->effective_capacity(server)) {
      eval->feasible = false;
      break;
    }
  }
}

GlobalPlan::PlanEvaluation GlobalPlan::EvaluatePlan(
    const SharingPlan& plan, const AddOptions& options) const {
  PlanEvaluation eval;
  Decide(plan, options, &eval);
  return eval;
}

double GlobalPlan::NodeLoad(const GPNode& node) const {
  switch (node.type) {
    case PlanNodeType::kLeaf:
      return node.key.predicates.empty()
                 ? 0.0
                 : model_->DeltaRate(ViewKey(TableSet::Of(node.base_table)));
    case PlanNodeType::kJoin:
      return model_->DeltaRate(nodes_[static_cast<size_t>(node.left)].key) +
             model_->DeltaRate(nodes_[static_cast<size_t>(node.right)].key);
    case PlanNodeType::kFilterCopy:
      return model_->DeltaRate(nodes_[static_cast<size_t>(node.left)].key);
  }
  return 0.0;
}

int GlobalPlan::CreateNode(GPNode node) {
  node.load = NodeLoad(node);
  node.refcount = 0;
  node.alive = true;
  node.pred_fp = PredicateFingerprint(node.key.predicates);
  node.pred_sig = PredicateSignature(node.key.predicates);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    node.key_id = InternKeyLocked(node.key);
  }
  const int id = static_cast<int>(nodes_.size());
  total_cost_ += node.cost;
  server_load_[node.server] += node.load;
  TableBucket& bucket = by_tables_[node.key.tables.mask()];
  bucket.ids.push_back(id);
  bucket.by_fingerprint[node.pred_fp].push_back(id);
  ++alive_count_;
  ++epoch_;
  nodes_.push_back(std::move(node));
  DSM_METRIC_COUNTER_ADD("dsm.globalplan.nodes_created", 1);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.total_cost", total_cost_);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.alive_views",
                       static_cast<double>(alive_count_));
  return id;
}

void GlobalPlan::KillNode(int id) {
  GPNode& node = nodes_[static_cast<size_t>(id)];
  assert(node.alive && node.refcount == 0);
  node.alive = false;
  total_cost_ -= node.cost;
  server_load_[node.server] -= node.load;
  TableBucket& bucket = by_tables_[node.key.tables.mask()];
  bucket.ids.erase(std::remove(bucket.ids.begin(), bucket.ids.end(), id),
                   bucket.ids.end());
  auto& fp_bucket = bucket.by_fingerprint[node.pred_fp];
  fp_bucket.erase(std::remove(fp_bucket.begin(), fp_bucket.end(), id),
                  fp_bucket.end());
  if (fp_bucket.empty()) bucket.by_fingerprint.erase(node.pred_fp);
  --alive_count_;
  ++epoch_;
  DSM_METRIC_COUNTER_ADD("dsm.globalplan.nodes_killed", 1);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.total_cost", total_cost_);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.alive_views",
                       static_cast<double>(alive_count_));
}

Result<GlobalPlan::PlanEvaluation> GlobalPlan::AddSharing(
    SharingId id, const Sharing& sharing, const SharingPlan& plan,
    const AddOptions& options) {
  if (records_.count(id) != 0) {
    return Status::AlreadyExists("sharing id already integrated");
  }
  if (plan.empty()) {
    return Status::InvalidArgument("empty plan");
  }

  PlanEvaluation eval;
  Decide(plan, options, &eval);

  const size_t n = plan.nodes.size();
  SharingRecord rec;
  rec.sharing = sharing;
  rec.plan = plan;
  rec.decisions = eval.decisions;
  rec.plan_to_gp.assign(n, -1);
  rec.standalone_cost.assign(n, 0.0);
  rec.subtree_cost.assign(n, 0.0);
  rec.marginal_cost = eval.marginal_cost;

  for (size_t i = 0; i < n; ++i) {
    const PlanNode& pn = plan.nodes[i];
    rec.standalone_cost[i] = PlanNodeCost(plan, i, model_);
    rec.subtree_cost[i] = rec.standalone_cost[i];
    if (pn.left >= 0) {
      rec.subtree_cost[i] += rec.subtree_cost[static_cast<size_t>(pn.left)];
    }
    if (pn.right >= 0) {
      rec.subtree_cost[i] += rec.subtree_cost[static_cast<size_t>(pn.right)];
    }

    const NodeDecision& d = eval.decisions[i];
    // Reuse accounting covers committed integrations only — EvaluatePlan
    // dry-runs during scoring would swamp the counters with candidates the
    // planner never picked.
    if (d.state == NodeDecision::kReused) {
      DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_hits", 1);
    } else if (d.state == NodeDecision::kFresh &&
               pn.type != PlanNodeType::kLeaf) {
      DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_misses", 1);
    }
    switch (d.state) {
      case NodeDecision::kSkipped:
        break;
      case NodeDecision::kReused:
        if (!d.needs_residual) {
          rec.plan_to_gp[i] = d.reuse_source;
        } else {
          GPNode residual;
          residual.type = PlanNodeType::kFilterCopy;
          residual.key = pn.key;
          residual.server = pn.server;
          residual.left = d.reuse_source;
          residual.cost = d.marginal_cost;
          rec.plan_to_gp[i] = CreateNode(std::move(residual));
          rec.residual_cost += d.marginal_cost;
        }
        break;
      case NodeDecision::kFresh: {
        GPNode fresh;
        fresh.type = pn.type;
        fresh.key = pn.key;
        fresh.server = pn.server;
        fresh.base_table = pn.base_table;
        if (pn.left >= 0) {
          fresh.left = rec.plan_to_gp[static_cast<size_t>(pn.left)];
        }
        if (pn.right >= 0) {
          fresh.right = rec.plan_to_gp[static_cast<size_t>(pn.right)];
        }
        fresh.cost = d.marginal_cost;
        rec.plan_to_gp[i] = CreateNode(std::move(fresh));
        break;
      }
    }
  }

  double standalone_total = 0.0;
  for (const double c : rec.standalone_cost) standalone_total += c;
  rec.gpc = standalone_total + rec.residual_cost;

  // Distinct non-leaf keys, interned once at admission so every later
  // costing refresh aggregates savings over dense ids. Plans are small, so
  // a linear dedup beats a hash set here.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (size_t i = 0; i < n; ++i) {
      const PlanNode& pn = plan.nodes[i];
      if (pn.type == PlanNodeType::kLeaf) continue;
      const int kid = InternKeyLocked(pn.key);
      bool seen = false;
      for (const auto& [prev_kid, prev_node] : rec.distinct_keys) {
        (void)prev_node;
        if (prev_kid == kid) {
          seen = true;
          break;
        }
      }
      if (!seen) rec.distinct_keys.emplace_back(kid, static_cast<int>(i));
    }
  }

  // Closure: every GP node this sharing depends on, transitively.
  std::unordered_set<int> closure;
  std::function<void(int)> reach = [&](int gp) {
    if (gp < 0 || !closure.insert(gp).second) return;
    const GPNode& g = nodes_[static_cast<size_t>(gp)];
    reach(g.left);
    reach(g.right);
  };
  for (const int gp : rec.plan_to_gp) reach(gp);

  std::vector<int> closure_vec(closure.begin(), closure.end());
  for (const int gp : closure_vec) {
    GPNode& g = nodes_[static_cast<size_t>(gp)];
    ++g.refcount;
    sharings_by_server_[g.server].insert(id);
  }
  closures_[id] = std::move(closure_vec);
  records_[id] = std::move(rec);
  return eval;
}

Status GlobalPlan::RemoveSharing(SharingId id) {
  const auto it = closures_.find(id);
  if (it == closures_.end()) {
    return Status::NotFound("unknown sharing id");
  }
  for (const int gp : it->second) {
    GPNode& node = nodes_[static_cast<size_t>(gp)];
    const auto sit = sharings_by_server_.find(node.server);
    if (sit != sharings_by_server_.end()) {
      sit->second.erase(id);
      if (sit->second.empty()) sharings_by_server_.erase(sit);
    }
    if (--node.refcount == 0 && node.alive) {
      KillNode(gp);
    }
  }
  closures_.erase(it);
  records_.erase(id);
  return Status::OK();
}

double GlobalPlan::ServerLoad(ServerId server) const {
  const auto it = server_load_.find(server);
  return it == server_load_.end() ? 0.0 : it->second;
}

bool GlobalPlan::HasUnpredicatedView(TableSet tables) const {
  const auto it = by_tables_.find(tables.mask());
  if (it == by_tables_.end()) return false;
  // The unpredicated view, if any, lives in the empty-fingerprint
  // sub-bucket; other fingerprints can only collide into it, so the
  // predicate check below still verifies.
  static const uint64_t kEmptyFp = PredicateFingerprint({});
  const auto fit = it->second.by_fingerprint.find(kEmptyFp);
  if (fit == it->second.by_fingerprint.end()) return false;
  for (const int id : fit->second) {
    const GPNode& node = nodes_[static_cast<size_t>(id)];
    if (node.alive && node.key.predicates.empty()) return true;
  }
  return false;
}

std::vector<SharingId> GlobalPlan::SharingsTouchingServer(
    ServerId server) const {
  const auto it = sharings_by_server_.find(server);
  if (it == sharings_by_server_.end()) return {};
  return std::vector<SharingId>(it->second.begin(), it->second.end());
}

std::vector<SharingId> GlobalPlan::sharing_ids() const {
  std::vector<SharingId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

const GlobalPlan::SharingRecord* GlobalPlan::record(SharingId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

double GlobalPlan::GPC(SharingId id) const {
  const SharingRecord* rec = record(id);
  return rec == nullptr ? 0.0 : rec->gpc;
}

const std::vector<int>* GlobalPlan::closure(SharingId id) const {
  const auto it = closures_.find(id);
  return it == closures_.end() ? nullptr : &it->second;
}

void GlobalPlan::AccumulateReuseLocked(std::vector<double>* saving,
                                       std::vector<int>* num) const {
  saving->assign(interned_keys_.size(), 0.0);
  num->assign(interned_keys_.size(), 0);
  for (const auto& [id, rec] : records_) {
    for (const auto& [kid, node] : rec.distinct_keys) {
      const auto k = static_cast<size_t>(kid);
      const auto n = static_cast<size_t>(node);
      ++(*num)[k];
      const NodeDecision& d = rec.decisions[n];
      if (d.state == NodeDecision::kReused) {
        (*saving)[k] +=
            std::max(0.0, rec.subtree_cost[n] - d.marginal_cost);
      }
    }
  }
}

std::vector<GlobalPlan::ReuseStat> GlobalPlan::ComputeReuseStats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<double> saving;
  std::vector<int> num;
  AccumulateReuseLocked(&saving, &num);
  std::vector<ReuseStat> out;
  for (size_t kid = 0; kid < num.size(); ++kid) {
    if (num[kid] == 0) continue;
    ReuseStat st;
    st.key = interned_keys_[kid];
    st.saving = saving[kid];
    st.num = num[kid];
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<double> GlobalPlan::ComputeSavingShares() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<double> saving;
  std::vector<int> num;
  AccumulateReuseLocked(&saving, &num);
  for (size_t kid = 0; kid < num.size(); ++kid) {
    saving[kid] = num[kid] > 0 ? saving[kid] / num[kid] : 0.0;
  }
  return saving;
}

}  // namespace dsm
