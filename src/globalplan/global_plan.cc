#include "globalplan/global_plan.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "obs/metrics.h"

namespace dsm {

int GlobalPlan::FindBestReuse(const ViewKey& needed, ServerId server,
                              const AddOptions& options,
                              double* residual_cost) const {
  if (!options.allow_reuse) return -1;
  if (options.forbid_reuse_keys != nullptr &&
      options.forbid_reuse_keys->count(needed) != 0) {
    return -1;
  }
  const auto it = by_tables_.find(needed.tables.mask());
  if (it == by_tables_.end()) return -1;
  int best = -1;
  double best_cost = 0.0;
  bool best_exact = false;
  for (const int id : it->second) {
    const GPNode& cand = nodes_[static_cast<size_t>(id)];
    if (!cand.alive || !cand.key.Subsumes(needed)) continue;
    // A view on a down server is lost; it cannot feed anyone.
    if (!cluster_->is_up(cand.server)) continue;
    const bool exact = cand.key == needed && cand.server == server;
    const double cost =
        exact ? 0.0
              : model_->FilterCopyCost(cand.key, cand.server, needed,
                                       server);
    // Prefer cheaper sources; on ties prefer an exact match, which needs
    // no residual filter/copy node at all.
    if (best < 0 || cost < best_cost ||
        (cost == best_cost && exact && !best_exact)) {
      best = id;
      best_cost = cost;
      best_exact = exact;
    }
  }
  if (best >= 0) *residual_cost = best_cost;
  return best;
}

void GlobalPlan::Decide(const SharingPlan& plan, const AddOptions& options,
                        PlanEvaluation* eval) const {
  const size_t n = plan.nodes.size();
  eval->decisions.assign(n, NodeDecision{});

  std::vector<double> op_cost(n);
  for (size_t i = 0; i < n; ++i) {
    op_cost[i] = PlanNodeCost(plan, i, model_);
  }

  std::function<void(int)> mark_skipped = [&](int i) {
    eval->decisions[static_cast<size_t>(i)].state = NodeDecision::kSkipped;
    eval->decisions[static_cast<size_t>(i)].marginal_cost = 0.0;
    const PlanNode& pn = plan.nodes[static_cast<size_t>(i)];
    if (pn.left >= 0) mark_skipped(pn.left);
    if (pn.right >= 0) mark_skipped(pn.right);
  };

  // Serving node i: either reuse an existing view (whole subtree skipped)
  // or compute it fresh (pay the op; children decided recursively).
  std::function<double(int)> decide = [&](int i) -> double {
    const PlanNode& pn = plan.nodes[static_cast<size_t>(i)];
    NodeDecision& d = eval->decisions[static_cast<size_t>(i)];

    double fresh = op_cost[static_cast<size_t>(i)];
    // Children must be decided before comparing; their decisions stand if
    // we stay fresh and are overwritten to kSkipped if we reuse.
    if (pn.left >= 0) fresh += decide(pn.left);
    if (pn.right >= 0) fresh += decide(pn.right);

    double residual = 0.0;
    const int src = FindBestReuse(pn.key, pn.server, options, &residual);
    if (src >= 0 && residual <= fresh) {
      d.state = NodeDecision::kReused;
      d.reuse_source = src;
      const GPNode& s = nodes_[static_cast<size_t>(src)];
      d.needs_residual = !(s.key == pn.key && s.server == pn.server);
      d.marginal_cost = residual;
      if (pn.left >= 0) mark_skipped(pn.left);
      if (pn.right >= 0) mark_skipped(pn.right);
      return residual;
    }
    d.state = NodeDecision::kFresh;
    d.marginal_cost = op_cost[static_cast<size_t>(i)];
    return fresh;
  };

  eval->marginal_cost = decide(plan.root_index());

  // Capacity feasibility: added load per server.
  std::unordered_map<ServerId, double> added;
  for (size_t i = 0; i < n; ++i) {
    const PlanNode& pn = plan.nodes[i];
    const NodeDecision& d = eval->decisions[i];
    double load = 0.0;
    if (d.state == NodeDecision::kFresh) {
      load = PlanNodeLoad(plan, i, model_);
    } else if (d.state == NodeDecision::kReused && d.needs_residual) {
      load = model_->DeltaRate(
          nodes_[static_cast<size_t>(d.reuse_source)].key);
    }
    if (load > 0.0) added[pn.server] += load;
  }
  eval->feasible = true;
  // Liveness: no node may be materialized on a down server — a fresh
  // view can't be built there and a residual filter/copy can't run there.
  // This also covers leaves (the base table's home machine is gone) and
  // the root (the sharing's destination is unreachable).
  for (size_t i = 0; i < n; ++i) {
    const NodeDecision& d = eval->decisions[i];
    const bool places_work =
        d.state == NodeDecision::kFresh ||
        (d.state == NodeDecision::kReused && d.needs_residual);
    if (places_work && !cluster_->is_up(plan.nodes[i].server)) {
      eval->feasible = false;
      return;
    }
  }
  for (const auto& [server, load] : added) {
    const double current =
        server_load_.count(server) != 0 ? server_load_.at(server) : 0.0;
    if (current + load > cluster_->effective_capacity(server)) {
      eval->feasible = false;
      break;
    }
  }
}

GlobalPlan::PlanEvaluation GlobalPlan::EvaluatePlan(
    const SharingPlan& plan, const AddOptions& options) const {
  PlanEvaluation eval;
  Decide(plan, options, &eval);
  return eval;
}

double GlobalPlan::NodeLoad(const GPNode& node) const {
  switch (node.type) {
    case PlanNodeType::kLeaf:
      return node.key.predicates.empty()
                 ? 0.0
                 : model_->DeltaRate(ViewKey(TableSet::Of(node.base_table)));
    case PlanNodeType::kJoin:
      return model_->DeltaRate(nodes_[static_cast<size_t>(node.left)].key) +
             model_->DeltaRate(nodes_[static_cast<size_t>(node.right)].key);
    case PlanNodeType::kFilterCopy:
      return model_->DeltaRate(nodes_[static_cast<size_t>(node.left)].key);
  }
  return 0.0;
}

int GlobalPlan::CreateNode(GPNode node) {
  node.load = NodeLoad(node);
  node.refcount = 0;
  node.alive = true;
  const int id = static_cast<int>(nodes_.size());
  total_cost_ += node.cost;
  server_load_[node.server] += node.load;
  by_tables_[node.key.tables.mask()].push_back(id);
  ++alive_count_;
  nodes_.push_back(std::move(node));
  DSM_METRIC_COUNTER_ADD("dsm.globalplan.nodes_created", 1);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.total_cost", total_cost_);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.alive_views",
                       static_cast<double>(alive_count_));
  return id;
}

void GlobalPlan::KillNode(int id) {
  GPNode& node = nodes_[static_cast<size_t>(id)];
  assert(node.alive && node.refcount == 0);
  node.alive = false;
  total_cost_ -= node.cost;
  server_load_[node.server] -= node.load;
  auto& bucket = by_tables_[node.key.tables.mask()];
  bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
  --alive_count_;
  DSM_METRIC_COUNTER_ADD("dsm.globalplan.nodes_killed", 1);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.total_cost", total_cost_);
  DSM_METRIC_GAUGE_SET("dsm.globalplan.alive_views",
                       static_cast<double>(alive_count_));
}

Result<GlobalPlan::PlanEvaluation> GlobalPlan::AddSharing(
    SharingId id, const Sharing& sharing, const SharingPlan& plan,
    const AddOptions& options) {
  if (records_.count(id) != 0) {
    return Status::AlreadyExists("sharing id already integrated");
  }
  if (plan.empty()) {
    return Status::InvalidArgument("empty plan");
  }

  PlanEvaluation eval;
  Decide(plan, options, &eval);

  const size_t n = plan.nodes.size();
  SharingRecord rec;
  rec.sharing = sharing;
  rec.plan = plan;
  rec.decisions = eval.decisions;
  rec.plan_to_gp.assign(n, -1);
  rec.standalone_cost.assign(n, 0.0);
  rec.subtree_cost.assign(n, 0.0);
  rec.marginal_cost = eval.marginal_cost;

  for (size_t i = 0; i < n; ++i) {
    const PlanNode& pn = plan.nodes[i];
    rec.standalone_cost[i] = PlanNodeCost(plan, i, model_);
    rec.subtree_cost[i] = rec.standalone_cost[i];
    if (pn.left >= 0) {
      rec.subtree_cost[i] += rec.subtree_cost[static_cast<size_t>(pn.left)];
    }
    if (pn.right >= 0) {
      rec.subtree_cost[i] += rec.subtree_cost[static_cast<size_t>(pn.right)];
    }

    const NodeDecision& d = eval.decisions[i];
    // Reuse accounting covers committed integrations only — EvaluatePlan
    // dry-runs during scoring would swamp the counters with candidates the
    // planner never picked.
    if (d.state == NodeDecision::kReused) {
      DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_hits", 1);
    } else if (d.state == NodeDecision::kFresh &&
               pn.type != PlanNodeType::kLeaf) {
      DSM_METRIC_COUNTER_ADD("dsm.globalplan.reuse_misses", 1);
    }
    switch (d.state) {
      case NodeDecision::kSkipped:
        break;
      case NodeDecision::kReused:
        if (!d.needs_residual) {
          rec.plan_to_gp[i] = d.reuse_source;
        } else {
          GPNode residual;
          residual.type = PlanNodeType::kFilterCopy;
          residual.key = pn.key;
          residual.server = pn.server;
          residual.left = d.reuse_source;
          residual.cost = d.marginal_cost;
          rec.plan_to_gp[i] = CreateNode(std::move(residual));
          rec.residual_cost += d.marginal_cost;
        }
        break;
      case NodeDecision::kFresh: {
        GPNode fresh;
        fresh.type = pn.type;
        fresh.key = pn.key;
        fresh.server = pn.server;
        fresh.base_table = pn.base_table;
        if (pn.left >= 0) {
          fresh.left = rec.plan_to_gp[static_cast<size_t>(pn.left)];
        }
        if (pn.right >= 0) {
          fresh.right = rec.plan_to_gp[static_cast<size_t>(pn.right)];
        }
        fresh.cost = d.marginal_cost;
        rec.plan_to_gp[i] = CreateNode(std::move(fresh));
        break;
      }
    }
  }

  double standalone_total = 0.0;
  for (const double c : rec.standalone_cost) standalone_total += c;
  rec.gpc = standalone_total + rec.residual_cost;

  // Closure: every GP node this sharing depends on, transitively.
  std::unordered_set<int> closure;
  std::function<void(int)> reach = [&](int gp) {
    if (gp < 0 || !closure.insert(gp).second) return;
    const GPNode& g = nodes_[static_cast<size_t>(gp)];
    reach(g.left);
    reach(g.right);
  };
  for (const int gp : rec.plan_to_gp) reach(gp);

  std::vector<int> closure_vec(closure.begin(), closure.end());
  for (const int gp : closure_vec) {
    ++nodes_[static_cast<size_t>(gp)].refcount;
  }
  closures_[id] = std::move(closure_vec);
  records_[id] = std::move(rec);
  return eval;
}

Status GlobalPlan::RemoveSharing(SharingId id) {
  const auto it = closures_.find(id);
  if (it == closures_.end()) {
    return Status::NotFound("unknown sharing id");
  }
  for (const int gp : it->second) {
    GPNode& node = nodes_[static_cast<size_t>(gp)];
    if (--node.refcount == 0 && node.alive) {
      KillNode(gp);
    }
  }
  closures_.erase(it);
  records_.erase(id);
  return Status::OK();
}

double GlobalPlan::ServerLoad(ServerId server) const {
  const auto it = server_load_.find(server);
  return it == server_load_.end() ? 0.0 : it->second;
}

bool GlobalPlan::HasUnpredicatedView(TableSet tables) const {
  const auto it = by_tables_.find(tables.mask());
  if (it == by_tables_.end()) return false;
  for (const int id : it->second) {
    const GPNode& node = nodes_[static_cast<size_t>(id)];
    if (node.alive && node.key.predicates.empty()) return true;
  }
  return false;
}

std::vector<SharingId> GlobalPlan::SharingsTouchingServer(
    ServerId server) const {
  std::vector<SharingId> out;
  for (const auto& [id, closure] : closures_) {
    for (const int gp : closure) {
      const GPNode& node = nodes_[static_cast<size_t>(gp)];
      if (node.alive && node.server == server) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

std::vector<SharingId> GlobalPlan::sharing_ids() const {
  std::vector<SharingId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

const GlobalPlan::SharingRecord* GlobalPlan::record(SharingId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

double GlobalPlan::GPC(SharingId id) const {
  const SharingRecord* rec = record(id);
  return rec == nullptr ? 0.0 : rec->gpc;
}

const std::vector<int>* GlobalPlan::closure(SharingId id) const {
  const auto it = closures_.find(id);
  return it == closures_.end() ? nullptr : &it->second;
}

std::vector<GlobalPlan::ReuseStat> GlobalPlan::ComputeReuseStats() const {
  std::unordered_map<ViewKey, ReuseStat, ViewKeyHash> stats;
  for (const auto& [id, rec] : records_) {
    std::unordered_set<ViewKey, ViewKeyHash> counted;
    for (size_t i = 0; i < rec.plan.nodes.size(); ++i) {
      const PlanNode& pn = rec.plan.nodes[i];
      if (pn.type == PlanNodeType::kLeaf) continue;
      if (!counted.insert(pn.key).second) continue;
      ReuseStat& st = stats[pn.key];
      st.key = pn.key;
      ++st.num;
      if (rec.decisions[i].state == NodeDecision::kReused) {
        st.saving += std::max(
            0.0, rec.subtree_cost[i] - rec.decisions[i].marginal_cost);
      }
    }
  }
  std::vector<ReuseStat> out;
  out.reserve(stats.size());
  for (auto& [key, st] : stats) out.push_back(std::move(st));
  return out;
}

}  // namespace dsm
