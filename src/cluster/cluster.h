// The cloud infrastructure model: servers rented from an IaaS provider,
// their capacity limits, the dollar rates for resources, and the placement
// of base tables on servers.

#ifndef DSM_CLUSTER_CLUSTER_H_
#define DSM_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "catalog/table_set.h"
#include "common/status.h"

namespace dsm {

using ServerId = uint32_t;

// The server capacity constraint from Definition 4.1, "expressed ... such
// as how many tuples the server can handle per second": an upper bound on
// the total update-tuple rate the views placed on a server may process.
struct Server {
  ServerId id = 0;
  std::string name;
  double capacity_tuples_per_unit = std::numeric_limits<double>::infinity();
  // Liveness: a down server has lost its machine (and every view
  // materialized on it). Placement on a down server is infeasible and its
  // effective capacity is zero until MarkUp() restores it.
  bool up = true;
};

// Dollar prices for cloud resources per time unit, mirroring how IaaS
// providers bill. The DefaultCostModel multiplies resource usage estimates
// by these rates (see src/cost/default_cost_model.h). The defaults are
// calibrated so that for high-update-rate data (the dynamic-data setting
// of the paper) maintenance compute and delta traffic dominate the bill
// and view storage is a secondary term, matching the emphasis of the
// substrate system's cost model [9].
struct CostRates {
  // $ per tuple-comparison of maintenance work.
  double cpu_per_tuple = 1e-6;
  // $ per byte moved between two different servers.
  double network_per_byte = 2e-8;
  // $ per byte of materialized view storage per time unit.
  double storage_per_byte = 1e-11;
};

class Cluster {
 public:
  Cluster() = default;

  // Adds a server and returns its id.
  ServerId AddServer(std::string name,
                     double capacity = std::numeric_limits<double>::infinity());

  size_t num_servers() const { return servers_.size(); }
  const Server& server(ServerId id) const { return servers_[id]; }
  Server& mutable_server(ServerId id) { return servers_[id]; }

  // --- Liveness ------------------------------------------------------------
  // Takes a server down: its capacity is revoked (effective capacity 0)
  // and no plan may place a view on it until MarkUp(). Idempotent.
  Status MarkDown(ServerId id);
  // Brings a server back with its original capacity. Idempotent.
  Status MarkUp(ServerId id);

  bool is_up(ServerId id) const {
    return id < servers_.size() && servers_[id].up;
  }
  // Monotone counter bumped on every liveness transition (MarkDown /
  // MarkUp that actually flips a server). Caches whose validity depends on
  // which servers are up — e.g. the global plan's best-reuse-source cache —
  // compare this against the epoch they were filled at.
  uint64_t liveness_epoch() const { return liveness_epoch_; }
  // Rated capacity while up, 0 while down.
  double effective_capacity(ServerId id) const {
    return is_up(id) ? servers_[id].capacity_tuples_per_unit : 0.0;
  }
  size_t num_live_servers() const { return live_count_; }
  std::vector<ServerId> live_servers() const;

  const CostRates& rates() const { return rates_; }
  void set_rates(CostRates rates) { rates_ = rates; }

  // Assigns table `t` to live on server `s`. A base table has one home
  // server; consumers on other servers receive its delta stream via copy
  // operators (Figure 2 of the paper).
  Status PlaceTable(TableId t, ServerId s);

  // Places tables 0..n-1 round-robin across all servers, as the paper's
  // evaluation does for both the Twitter and the synthetic schemas.
  void PlaceRoundRobin(size_t num_tables);

  // Home server of table `t`; error if unplaced.
  Result<ServerId> HomeOf(TableId t) const;

 private:
  std::vector<Server> servers_;
  std::vector<int64_t> home_;  // home_[table] = server id or -1
  CostRates rates_;
  size_t live_count_ = 0;
  uint64_t liveness_epoch_ = 0;
};

}  // namespace dsm

#endif  // DSM_CLUSTER_CLUSTER_H_
