#include "cluster/cluster.h"

namespace dsm {

ServerId Cluster::AddServer(std::string name, double capacity) {
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.push_back(Server{id, std::move(name), capacity, /*up=*/true});
  ++live_count_;
  return id;
}

Status Cluster::MarkDown(ServerId id) {
  if (id >= servers_.size()) {
    return Status::InvalidArgument("no such server");
  }
  if (servers_[id].up) {
    servers_[id].up = false;
    --live_count_;
    ++liveness_epoch_;
  }
  return Status::OK();
}

Status Cluster::MarkUp(ServerId id) {
  if (id >= servers_.size()) {
    return Status::InvalidArgument("no such server");
  }
  if (!servers_[id].up) {
    servers_[id].up = true;
    ++live_count_;
    ++liveness_epoch_;
  }
  return Status::OK();
}

std::vector<ServerId> Cluster::live_servers() const {
  std::vector<ServerId> out;
  out.reserve(live_count_);
  for (const Server& s : servers_) {
    if (s.up) out.push_back(s.id);
  }
  return out;
}

Status Cluster::PlaceTable(TableId t, ServerId s) {
  if (s >= servers_.size()) {
    return Status::InvalidArgument("no such server");
  }
  if (home_.size() <= t) home_.resize(t + 1, -1);
  home_[t] = static_cast<int64_t>(s);
  return Status::OK();
}

void Cluster::PlaceRoundRobin(size_t num_tables) {
  if (servers_.empty()) return;
  home_.assign(num_tables, -1);
  for (size_t t = 0; t < num_tables; ++t) {
    home_[t] = static_cast<int64_t>(t % servers_.size());
  }
}

Result<ServerId> Cluster::HomeOf(TableId t) const {
  if (t >= home_.size() || home_[t] < 0) {
    return Status::NotFound("table has no home server");
  }
  return static_cast<ServerId>(home_[t]);
}

}  // namespace dsm
