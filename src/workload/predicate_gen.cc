#include "workload/predicate_gen.h"

namespace dsm {

Predicate RandomPredicate(const Catalog& catalog, TableSet tables,
                          Rng* rng) {
  const std::vector<TableId> members = tables.ToVector();
  const TableId table = members[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
  const TableDef& def = catalog.table(table);

  Predicate pred;
  pred.table = table;
  pred.column = static_cast<uint16_t>(
      rng->UniformInt(0, static_cast<int64_t>(def.columns.size()) - 1));
  switch (rng->UniformInt(0, 2)) {
    case 0:
      pred.op = CompareOp::kLt;
      break;
    case 1:
      pred.op = CompareOp::kGt;
      break;
    default:
      pred.op = CompareOp::kEq;
      break;
  }
  const ColumnDef& col = def.columns[pred.column];
  if (pred.op == CompareOp::kEq) {
    // Equality against an existing value: an integer within the domain.
    pred.value = static_cast<double>(rng->UniformInt(
        static_cast<int64_t>(col.min_value),
        static_cast<int64_t>(std::max(col.min_value, col.max_value))));
  } else {
    pred.value = rng->UniformDouble(col.min_value, col.max_value);
  }
  return pred;
}

std::vector<Predicate> RandomPredicates(const Catalog& catalog,
                                        TableSet tables, int count,
                                        Rng* rng) {
  std::vector<Predicate> preds;
  preds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    preds.push_back(RandomPredicate(catalog, tables, rng));
  }
  return preds;
}

}  // namespace dsm
