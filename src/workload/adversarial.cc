#include "workload/adversarial.h"

#include <cassert>
#include <string>

#include "common/rng.h"

namespace dsm {
namespace {

TableDef SimpleTable(const std::string& name) {
  TableDef def;
  def.name = name;
  ColumnDef col;
  col.name = "k_" + name;
  col.distinct_values = 1000;
  col.max_value = 1000;
  def.columns = {col};
  def.stats.cardinality = 1000;
  def.stats.update_rate = 1.0;
  return def;
}

// A scenario over `n + 2` tables a, b, c_1..c_n on one server with the
// path join graph a - b - c_x (so each sharing (a,b,c_x) has exactly the
// two plans of Examples 4.1/4.2).
Scenario MakeTrapBase(int n) {
  assert(n >= 1 && n <= 62);
  Scenario sc;
  sc.catalog = std::make_unique<Catalog>();
  sc.cluster = std::make_unique<Cluster>();
  sc.cluster->AddServer("s0");

  const TableId a = *sc.catalog->AddTable(SimpleTable("a"));
  const TableId b = *sc.catalog->AddTable(SimpleTable("b"));
  std::vector<TableId> c(static_cast<size_t>(n));
  for (int x = 0; x < n; ++x) {
    c[static_cast<size_t>(x)] =
        *sc.catalog->AddTable(SimpleTable("c" + std::to_string(x + 1)));
  }
  sc.cluster->PlaceRoundRobin(sc.catalog->num_tables());

  sc.graph = std::make_unique<JoinGraph>(sc.catalog->num_tables());
  sc.graph->AddEdge(a, b);
  for (int x = 0; x < n; ++x) {
    sc.graph->AddEdge(b, c[static_cast<size_t>(x)]);
  }

  TableDrivenCostModel::Options opts;
  opts.random_min = 1.0;
  opts.random_max = 1.0;  // unused pairs: deterministic small cost
  sc.model = std::make_unique<TableDrivenCostModel>(opts);

  for (int x = 0; x < n; ++x) {
    TableSet tables;
    tables.Add(a);
    tables.Add(b);
    tables.Add(c[static_cast<size_t>(x)]);
    sc.sharings.emplace_back(tables, std::vector<Predicate>{},
                             /*destination=*/0,
                             "buyer" + std::to_string(x + 1));
  }
  return sc;
}

}  // namespace

Scenario MakeGreedyTrap(int n, double risky_cost, double alt_cost,
                        double epsilon) {
  Scenario sc = MakeTrapBase(n);
  const TableSet a = TableSet::Of(0);
  const TableSet b = TableSet::Of(1);
  const TableSet ab = a.Union(b);
  sc.model->SetJoinCost(a, b, risky_cost);
  for (int x = 0; x < n; ++x) {
    const TableSet cx = TableSet::Of(static_cast<TableId>(2 + x));
    sc.model->SetJoinCost(ab, cx, epsilon);          // c[(ab)c_x]
    sc.model->SetJoinCost(b, cx, alt_cost / 2);      // c[bc_x]
    sc.model->SetJoinCost(a, b.Union(cx), alt_cost / 2);  // c[a(bc_x)]
  }
  return sc;
}

Scenario MakeNormalizeTrap(int n, double epsilon) {
  Scenario sc = MakeTrapBase(n);
  const TableSet a = TableSet::Of(0);
  const TableSet b = TableSet::Of(1);
  const TableSet ab = a.Union(b);
  sc.model->SetJoinCost(a, b, static_cast<double>(n));  // c[ab] = n
  for (int x = 0; x < n; ++x) {
    const TableSet cx = TableSet::Of(static_cast<TableId>(2 + x));
    sc.model->SetJoinCost(ab, cx, epsilon);  // c[(ab)c_x] = eps
    if (x + 1 < n) {
      // C[a(bc_x)] = eps for the first n-1 sharings.
      sc.model->SetJoinCost(b, cx, epsilon / 2);
      sc.model->SetJoinCost(a, b.Union(cx), epsilon / 2);
    } else {
      // C[a(bc_n)] = 1 + 2*eps for the final sharing.
      sc.model->SetJoinCost(b, cx, 0.5 + epsilon);
      sc.model->SetJoinCost(a, b.Union(cx), 0.5 + epsilon);
    }
  }
  return sc;
}

Scenario MakeEquationOneTrap(int n, bool include_tail) {
  assert(n >= 1 && n <= 60);
  Scenario sc;
  sc.catalog = std::make_unique<Catalog>();
  sc.cluster = std::make_unique<Cluster>();
  sc.cluster->AddServer("s0");

  const TableId a = *sc.catalog->AddTable(SimpleTable("a"));
  const TableId b = *sc.catalog->AddTable(SimpleTable("b"));
  const TableId c = *sc.catalog->AddTable(SimpleTable("c"));
  const TableId g = *sc.catalog->AddTable(SimpleTable("g"));
  std::vector<TableId> d(static_cast<size_t>(n));
  for (int x = 0; x < n; ++x) {
    d[static_cast<size_t>(x)] =
        *sc.catalog->AddTable(SimpleTable("d" + std::to_string(x + 1)));
  }
  sc.cluster->PlaceRoundRobin(sc.catalog->num_tables());

  sc.graph = std::make_unique<JoinGraph>(sc.catalog->num_tables());
  sc.graph->AddEdge(a, b);
  sc.graph->AddEdge(b, c);
  sc.graph->AddEdge(b, g);
  for (int x = 0; x < n; ++x) {
    sc.graph->AddEdge(c, d[static_cast<size_t>(x)]);
  }

  // Unset join pairs default to 50: prohibitively expensive, pinning the
  // interesting plan space.
  TableDrivenCostModel::Options opts;
  opts.random_min = 50.0;
  opts.random_max = 50.0;
  sc.model = std::make_unique<TableDrivenCostModel>(opts);

  const TableSet ta = TableSet::Of(a);
  const TableSet tb = TableSet::Of(b);
  const TableSet tc = TableSet::Of(c);
  const TableSet tg = TableSet::Of(g);
  sc.model->SetJoinCost(tb, tc, 20.0);                   // c[bc]
  sc.model->SetJoinCost(ta, tb.Union(tc), 5.0);          // c[a(bc)]
  sc.model->SetJoinCost(ta, tb, 35.0);                   // c[ab]
  sc.model->SetJoinCost(ta.Union(tb), tg, 0.1);          // c[(ab)g]
  sc.model->SetJoinCost(tb, tg, 1.5);                    // c[bg]
  sc.model->SetJoinCost(ta, tb.Union(tg), 1.5);          // c[a(bg)]
  for (int x = 0; x < n; ++x) {
    const TableSet td = TableSet::Of(d[static_cast<size_t>(x)]);
    sc.model->SetJoinCost(tc, td, 1.0);                         // c[cd_x]
    sc.model->SetJoinCost(tb, tc.Union(td), 1.0);               // c[b(cd)]
    sc.model->SetJoinCost(ta, tb.Union(tc).Union(td), 1.0);     // c[a(bcd)]
    sc.model->SetJoinCost(ta.Union(tb).Union(tc), td, 1.0);     // c[(abc)d]
  }

  for (int x = 0; x < n; ++x) {
    TableSet tables = ta.Union(tb).Union(tc);
    tables.Add(d[static_cast<size_t>(x)]);
    sc.sharings.emplace_back(tables, std::vector<Predicate>{},
                             /*destination=*/0,
                             "phase1-" + std::to_string(x + 1));
  }
  if (include_tail) {
    sc.sharings.emplace_back(ta.Union(tb).Union(tg),
                             std::vector<Predicate>{}, /*destination=*/0,
                             "tail");
  }
  return sc;
}

Scenario MakeRandomThreeWay(uint64_t seed, int num_sharings,
                            int table_pool) {
  assert(table_pool >= 3 && table_pool <= 64);
  Scenario sc;
  sc.catalog = std::make_unique<Catalog>();
  sc.cluster = std::make_unique<Cluster>();
  sc.cluster->AddServer("s0");

  Rng rng(seed);
  for (int i = 0; i < table_pool; ++i) {
    (void)*sc.catalog->AddTable(SimpleTable("t" + std::to_string(i)));
  }
  sc.cluster->PlaceRoundRobin(sc.catalog->num_tables());

  // Path backbone plus random chords keeps the graph connected while
  // varying the per-sharing plan spaces.
  sc.graph = std::make_unique<JoinGraph>(sc.catalog->num_tables());
  for (int i = 0; i + 1 < table_pool; ++i) {
    sc.graph->AddEdge(static_cast<TableId>(i), static_cast<TableId>(i + 1));
  }
  const int chords = table_pool / 2;
  for (int i = 0; i < chords; ++i) {
    const auto u = static_cast<TableId>(rng.UniformInt(0, table_pool - 1));
    const auto v = static_cast<TableId>(rng.UniformInt(0, table_pool - 1));
    if (u != v) sc.graph->AddEdge(u, v);
  }

  TableDrivenCostModel::Options opts;
  opts.seed = seed ^ 0xabcdef;
  opts.random_min = 1.0;
  opts.random_max = 1e5;  // Section 6.1.2's cost range
  sc.model = std::make_unique<TableDrivenCostModel>(opts);

  // Sharings: random walks of length 2 from a random start table.
  for (int s = 0; s < num_sharings; ++s) {
    TableSet tables;
    auto cur = static_cast<TableId>(rng.UniformInt(0, table_pool - 1));
    tables.Add(cur);
    int guard = 0;
    while (tables.size() < 3 && guard < 200) {
      ++guard;
      const auto next = static_cast<TableId>(
          rng.UniformInt(0, table_pool - 1));
      if (!tables.Contains(next) &&
          sc.graph->Joinable(tables, TableSet::Of(next))) {
        tables.Add(next);
      }
    }
    if (tables.size() < 3) continue;  // unreachable: backbone is connected
    sc.sharings.emplace_back(tables, std::vector<Predicate>{},
                             /*destination=*/0,
                             "rand" + std::to_string(s));
  }
  return sc;
}

}  // namespace dsm
