#include "workload/synthetic.h"

#include <algorithm>

#include "common/rng.h"

namespace dsm {

Result<StarSchema> BuildStarCatalog(Catalog* catalog,
                                    const StarSchemaOptions& options) {
  if (options.num_fact < 1 || options.num_dim < 1) {
    return Status::InvalidArgument("need at least one fact and one dim");
  }
  if (options.num_fact + options.num_dim > TableSet::kMaxTables) {
    return Status::InvalidArgument("star schema exceeds 64 tables");
  }
  StarSchema schema;

  for (int d = 0; d < options.num_dim; ++d) {
    TableDef def;
    def.name = "DIM" + std::to_string(d);
    const std::string key = "d" + std::to_string(d) + "_key";
    ColumnDef kcol;
    kcol.name = key;
    kcol.distinct_values = 1e4;
    kcol.max_value = 1e4;
    ColumnDef attr;
    attr.name = "d" + std::to_string(d) + "_attr";
    attr.distinct_values = 100;
    attr.max_value = 100;
    def.columns = {kcol, attr};
    def.stats.cardinality = 1e4;
    def.stats.update_rate = 1.0;
    DSM_ASSIGN_OR_RETURN(const TableId id, catalog->AddTable(std::move(def)));
    schema.dims.push_back(id);
  }

  for (int f = 0; f < options.num_fact; ++f) {
    TableDef def;
    def.name = "FACT" + std::to_string(f);
    ColumnDef id_col;
    id_col.name = "f" + std::to_string(f) + "_id";
    id_col.distinct_values = 1e6;
    id_col.max_value = 1e6;
    def.columns.push_back(id_col);
    for (int d = 0; d < options.num_dim; ++d) {
      ColumnDef fk;
      fk.name = "d" + std::to_string(d) + "_key";
      fk.distinct_values = 1e4;
      fk.max_value = 1e4;
      def.columns.push_back(fk);
    }
    def.stats.cardinality = 1e6;
    def.stats.update_rate = 100.0;
    def.stats.tuple_bytes = 32.0 * (options.num_dim + 1);
    DSM_ASSIGN_OR_RETURN(const TableId id, catalog->AddTable(std::move(def)));
    schema.facts.push_back(id);
  }
  return schema;
}

std::vector<Sharing> GenerateStarSharings(
    const StarSchema& schema, const Cluster& cluster,
    const StarSequenceOptions& options) {
  Rng rng(options.seed);
  std::vector<Sharing> sequence;
  sequence.reserve(options.num_sharings);
  const auto num_dims = static_cast<uint32_t>(schema.dims.size());
  for (size_t i = 0; i < options.num_sharings; ++i) {
    const TableId fact = schema.facts[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(schema.facts.size()) - 1))];
    const int max_dims =
        std::min<int>(options.max_tables - 1, static_cast<int>(num_dims));
    const int ndims =
        options.exact_size
            ? max_dims
            : static_cast<int>(rng.UniformInt(1, std::max(1, max_dims)));
    TableSet tables = TableSet::Of(fact);
    // Zipf-skewed draws (with rejection on duplicates) concentrate the
    // sharings on popular dimensions.
    int added = 0;
    int guard = 0;
    while (added < ndims && guard < 1000) {
      ++guard;
      const uint32_t d = rng.Zipf(num_dims, options.dim_zipf);
      const TableId dim = schema.dims[d];
      if (tables.Contains(dim)) continue;
      tables.Add(dim);
      ++added;
    }
    const ServerId dest = static_cast<ServerId>(rng.UniformInt(
        0, static_cast<int64_t>(cluster.num_servers()) - 1));
    sequence.emplace_back(tables, std::vector<Predicate>{}, dest,
                          "synth" + std::to_string(i));
  }
  return sequence;
}

}  // namespace dsm
