// The synthetic star-schema workload of Section 6.1.2: up to 5 fact tables
// and 30 dimension tables distributed over 1–20 machines; sharings are
// star joins (a fact plus dimensions) with no predicates; the cost of each
// join is a random number in [1, 1e5] (use TableDrivenCostModel).

#ifndef DSM_WORKLOAD_SYNTHETIC_H_
#define DSM_WORKLOAD_SYNTHETIC_H_

#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "sharing/sharing.h"

namespace dsm {

struct StarSchemaOptions {
  int num_fact = 1;
  int num_dim = 20;
};

struct StarSchema {
  std::vector<TableId> facts;
  std::vector<TableId> dims;
};

// Fact tables join every dimension (via per-dimension key columns);
// facts do not join facts, dimensions do not join dimensions.
Result<StarSchema> BuildStarCatalog(Catalog* catalog,
                                    const StarSchemaOptions& options);

struct StarSequenceOptions {
  size_t num_sharings = 1000;
  // Tables per sharing: 1 fact + (max_tables - 1) dimensions.
  int max_tables = 8;
  // When false, each sharing uses between 2 and max_tables tables;
  // when true, exactly max_tables (for the sharing-size sweeps).
  bool exact_size = false;
  // Zipf skew of the dimension choice; >0 makes repeated sharings likely,
  // matching the paper's observation that later sharings in a long
  // sequence have often occurred before.
  double dim_zipf = 0.8;
  uint64_t seed = 13;
};

std::vector<Sharing> GenerateStarSharings(const StarSchema& schema,
                                          const Cluster& cluster,
                                          const StarSequenceOptions& options);

}  // namespace dsm

#endif  // DSM_WORKLOAD_SYNTHETIC_H_
