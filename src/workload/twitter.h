// The Twitter workload of Section 6.1.2: nine base relations derived from
// a gardenhose tweet stream, and the 25 base sharings of Table 1 (each
// motivated by a real mobile application).
//
// Substitution note (see DESIGN.md): the original 6-month 10%-sample
// Twitter dataset is not available. Only table *statistics* reach the
// planners (via the cost model), so the schema below carries synthetic
// cardinalities/update rates of plausible Twitter-like proportions, and a
// tuple generator feeds the maintenance-engine examples.

#ifndef DSM_WORKLOAD_TWITTER_H_
#define DSM_WORKLOAD_TWITTER_H_

#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "maintain/value.h"
#include "sharing/sharing.h"

namespace dsm {

struct TwitterTables {
  TableId users = 0;
  TableId tweets = 0;
  TableId curloc = 0;
  TableId loc = 0;
  TableId socnet = 0;
  TableId urls = 0;
  TableId foursq = 0;
  TableId hashtags = 0;
  TableId photos = 0;
};

// Registers the nine relations (USERS, TWEETS, CURLOC, LOC, SOCNET, URLS,
// FOURSQ, HASHTAGS, PHOTOS) with statistics.
Result<TwitterTables> BuildTwitterCatalog(Catalog* catalog);

// The 25 base sharings S1..S25 of Table 1, in order, with no predicates.
// Destinations cycle round-robin over the cluster's servers.
std::vector<Sharing> TwitterBaseSharings(const TwitterTables& tables,
                                         const Cluster& cluster);

struct TwitterSequenceOptions {
  size_t num_sharings = 30;
  // Maximum predicates per sharing (0..3 in the paper's experiments).
  int max_predicates = 0;
  // When max_predicates >= 1: this fraction of sharings get between 1 and
  // max_predicates random predicates (uniformly many); the rest get none —
  // the paper's half-and-half setup.
  double frac_with_predicates = 0.5;
  uint64_t seed = 7;
};

// A sharing sequence drawn (with repetition) from the 25 base sharings,
// with random predicates attached per the options.
std::vector<Sharing> GenerateTwitterSequence(
    const Catalog& catalog, const TwitterTables& tables,
    const Cluster& cluster, const TwitterSequenceOptions& options);

// A random tuple for `table` matching its schema (for DeltaEngine runs).
Tuple RandomTwitterTuple(const Catalog& catalog, TableId table, Rng* rng);

}  // namespace dsm

#endif  // DSM_WORKLOAD_TWITTER_H_
