// Adversarial sharing sequences reproducing Section 4's worked examples
// and the worst-case study of Figure 4: sequences of three-way joins where
// a shared subexpression is either worth the risk (Example 4.1 — GREEDY
// loses unboundedly) or not (Example 4.2 — NORMALIZE loses unboundedly).

#ifndef DSM_WORKLOAD_ADVERSARIAL_H_
#define DSM_WORKLOAD_ADVERSARIAL_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "cost/table_cost_model.h"
#include "plan/join_graph.h"
#include "sharing/sharing.h"

namespace dsm {

// A self-contained planning scenario (tables, servers, join graph,
// explicit costs, sharing sequence).
struct Scenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<TableDrivenCostModel> model;
  std::vector<Sharing> sharings;
};

// Example 4.1 generalized: n sharings (a, b, c_x) with exactly two plans
// each — (ab)c_x and a(bc_x) — where c[ab] = risky_cost,
// c[(ab)c_x] = epsilon and C[a(bc_x)] = alt_cost. The optimal solution
// computes ab once; GREEDY never does and pays alt_cost forever.
// Requires n <= 62 (tables a, b, c_1..c_n share one 64-table catalog).
Scenario MakeGreedyTrap(int n, double risky_cost = 10.0,
                        double alt_cost = 10.0, double epsilon = 1e-3);

// Example 4.2: c[ab] = n; plans cost ~epsilon for the first n-1 sharings;
// the final sharing's a(bc_n) plan costs 1 + 2*epsilon while (ab)c_n costs
// epsilon on top of the huge c[ab]. NORMALIZE takes the unrewarded risk on
// the last sharing; MANAGEDRISK declines it and is optimal.
Scenario MakeNormalizeTrap(int n, double epsilon = 1e-2);

// Random mixture for the Figure 4 sweep: three-way joins over a pool of
// tables on a random connected join graph with random subexpression costs.
Scenario MakeRandomThreeWay(uint64_t seed, int num_sharings,
                            int table_pool = 16);

// A scenario exercising both correction terms of Eq. (1) (Section 4.4):
// `n` four-way sharings (a,b,c,d_x) over the path a-b-c-d_x whose cheap
// plan costs 3 while a risky plan materializes bc and abc for 26, followed
// (when `include_tail` is set) by a final sharing (a,b,g) that tempts the
// planner into computing the never-again-used ab for 35.
//
//  * Without the "- Σ rg_j(s')" subtraction, the residual of the sharing
//    that takes the bc/abc risk is over-counted into ab's pending regret,
//    and the tail sharing takes an unrewarded 35-dollar risk.
//  * Without the 1/(m-1) factor, the combined bc+abc incentive doubles and
//    the risk is taken around x = 5 instead of x = 9 — too early to pay
//    off on short sequences.
Scenario MakeEquationOneTrap(int n, bool include_tail);

}  // namespace dsm

#endif  // DSM_WORKLOAD_ADVERSARIAL_H_
