// Random predicate generation, mirroring Section 6.1.2: "Predicates are
// randomly generated ... each predicate has the form of
// 'Table.Attribute [>, <, =] Constant'".

#ifndef DSM_WORKLOAD_PREDICATE_GEN_H_
#define DSM_WORKLOAD_PREDICATE_GEN_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "expr/predicate.h"

namespace dsm {

// A predicate over a random numeric column of a random member of `tables`,
// with the constant drawn uniformly from the column's value range.
Predicate RandomPredicate(const Catalog& catalog, TableSet tables, Rng* rng);

std::vector<Predicate> RandomPredicates(const Catalog& catalog,
                                        TableSet tables, int count, Rng* rng);

}  // namespace dsm

#endif  // DSM_WORKLOAD_PREDICATE_GEN_H_
