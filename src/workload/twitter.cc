#include "workload/twitter.h"

#include <algorithm>

#include "workload/predicate_gen.h"

namespace dsm {
namespace {

ColumnDef Col(const char* name, double distinct, double min_value,
              double max_value) {
  ColumnDef col;
  col.name = name;
  col.type = DataType::kInt64;
  col.distinct_values = distinct;
  col.min_value = min_value;
  col.max_value = max_value;
  return col;
}

TableDef Table(const char* name, double cardinality, double update_rate,
               double tuple_bytes, std::vector<ColumnDef> columns) {
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  def.stats.cardinality = cardinality;
  def.stats.update_rate = update_rate;
  def.stats.tuple_bytes = tuple_bytes;
  return def;
}

}  // namespace

Result<TwitterTables> BuildTwitterCatalog(Catalog* catalog) {
  TwitterTables t;
  const double kUsers = 1e6;
  const double kTweets = 1e7;

  // Shared column names define the natural-join graph: "uid" links the
  // user-centric tables, "tid" links the tweet-centric ones. URLS,
  // HASHTAGS and PHOTOS carry the author's uid as well, which is what lets
  // Table 1's location sharings (S7, S23, S24) join them with CURLOC.
  DSM_ASSIGN_OR_RETURN(
      t.users, catalog->AddTable(Table(
                   "USERS", kUsers, 20.0, 96,
                   {Col("uid", kUsers, 0, kUsers), Col("name_id", kUsers, 0, kUsers),
                    Col("lang", 40, 0, 40), Col("followers", 1e5, 0, 1e7)})));
  DSM_ASSIGN_OR_RETURN(
      t.tweets, catalog->AddTable(Table(
                    "TWEETS", kTweets, 1000.0, 200,
                    {Col("tid", kTweets, 0, kTweets), Col("uid", kUsers, 0, kUsers),
                     Col("len", 140, 0, 140), Col("ts", 1e6, 0, 1e6)})));
  DSM_ASSIGN_OR_RETURN(
      t.curloc, catalog->AddTable(Table(
                    "CURLOC", kUsers, 300.0, 48,
                    {Col("uid", kUsers, 0, kUsers), Col("lat", 1.8e4, -90, 90),
                     Col("lon", 3.6e4, -180, 180), Col("city", 5e3, 0, 5e3)})));
  DSM_ASSIGN_OR_RETURN(
      t.loc, catalog->AddTable(Table(
                 "LOC", 8e5, 10.0, 64,
                 {Col("lid", 8e5, 0, 8e5), Col("uid", 8e5, 0, kUsers),
                  Col("city", 5e3, 0, 5e3), Col("country", 200, 0, 200)})));
  DSM_ASSIGN_OR_RETURN(
      t.socnet, catalog->AddTable(Table(
                    "SOCNET", 5e6, 100.0, 24,
                    {Col("uid", kUsers, 0, kUsers), Col("fid", kUsers, 0, kUsers)})));
  DSM_ASSIGN_OR_RETURN(
      t.urls, catalog->AddTable(Table(
                  "URLS", 3e6, 250.0, 120,
                  {Col("tid", 3e6, 0, kTweets), Col("uid", 9e5, 0, kUsers),
                   Col("url_host", 1e5, 0, 1e5)})));
  DSM_ASSIGN_OR_RETURN(
      t.foursq, catalog->AddTable(Table(
                    "FOURSQ", 2e6, 150.0, 80,
                    {Col("fsid", 2e6, 0, 2e6), Col("uid", 7e5, 0, kUsers),
                     Col("venue", 5e4, 0, 5e4), Col("ts", 1e6, 0, 1e6)})));
  DSM_ASSIGN_OR_RETURN(
      t.hashtags, catalog->AddTable(Table(
                      "HASHTAGS", 4e6, 400.0, 40,
                      {Col("tid", 3.5e6, 0, kTweets), Col("uid", 8e5, 0, kUsers),
                       Col("tag", 2e5, 0, 2e5)})));
  DSM_ASSIGN_OR_RETURN(
      t.photos, catalog->AddTable(Table(
                    "PHOTOS", 1.5e6, 120.0, 150,
                    {Col("tid", 1.5e6, 0, kTweets), Col("uid", 6e5, 0, kUsers),
                     Col("photo_id", 1.5e6, 0, 1.5e6)})));
  return t;
}

std::vector<Sharing> TwitterBaseSharings(const TwitterTables& t,
                                         const Cluster& cluster) {
  // Table 1, S1..S25.
  const std::vector<std::vector<TableId>> base = {
      {t.users, t.socnet},                                    // S1 twitaholic
      {t.users, t.tweets, t.curloc},                          // S2 twellow
      {t.users, t.tweets, t.urls},                            // S3 tweetmeme
      {t.users, t.tweets, t.urls, t.curloc},                  // S4 twitdom
      {t.users, t.tweets},                                    // S5 tweetstats
      {t.tweets, t.curloc},                                   // S6 nearbytweets
      {t.urls, t.curloc},                                     // S7 nearbyurls
      {t.tweets, t.photos},                                   // S8 twitpic
      {t.foursq, t.tweets},                                   // S9 checkoutcheckins
      {t.hashtags, t.tweets},                                 // S10 monitter
      {t.foursq, t.users, t.tweets, t.curloc},                // S11 arrivaltracker
      {t.foursq, t.users, t.tweets},                          // S12 route
      {t.foursq, t.users, t.tweets, t.loc},                   // S13 locc.us
      {t.tweets, t.loc},                                      // S14 locafollow
      {t.users, t.loc, t.tweets, t.curloc},                   // S15 twittervision
      {t.foursq, t.users, t.tweets, t.socnet},                // S16 yelp
      {t.users, t.loc},                                       // S17 twittermap
      {t.users, t.tweets, t.photos, t.curloc},                // S18 twittermap
      {t.users, t.tweets, t.hashtags, t.curloc},              // S19 hashtags.org
      {t.users, t.tweets, t.hashtags, t.photos, t.curloc},    // S20 nearbytweets
      {t.users, t.tweets, t.foursq, t.photos, t.curloc},      // S21 nearbytweets
      {t.foursq, t.curloc},                                   // S22 nearbytweets
      {t.photos, t.curloc},                                   // S23 twitxr
      {t.hashtags, t.curloc},                                 // S24 nearbytweets
      {t.hashtags, t.users, t.tweets},                        // S25 twistori
  };

  std::vector<Sharing> sharings;
  sharings.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    TableSet tables;
    for (const TableId id : base[i]) tables.Add(id);
    const ServerId dest = static_cast<ServerId>(
        i % std::max<size_t>(1, cluster.num_servers()));
    sharings.emplace_back(tables, std::vector<Predicate>{}, dest,
                          "S" + std::to_string(i + 1));
  }
  return sharings;
}

std::vector<Sharing> GenerateTwitterSequence(
    const Catalog& catalog, const TwitterTables& tables,
    const Cluster& cluster, const TwitterSequenceOptions& options) {
  Rng rng(options.seed);
  const std::vector<Sharing> base = TwitterBaseSharings(tables, cluster);
  std::vector<Sharing> sequence;
  sequence.reserve(options.num_sharings);
  for (size_t i = 0; i < options.num_sharings; ++i) {
    const Sharing& proto = base[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(base.size()) - 1))];
    std::vector<Predicate> preds;
    if (options.max_predicates > 0 &&
        rng.Bernoulli(options.frac_with_predicates)) {
      const int count =
          static_cast<int>(rng.UniformInt(1, options.max_predicates));
      preds = RandomPredicates(catalog, proto.tables(), count, &rng);
    }
    const ServerId dest = static_cast<ServerId>(rng.UniformInt(
        0, static_cast<int64_t>(cluster.num_servers()) - 1));
    sequence.emplace_back(proto.tables(), std::move(preds), dest,
                          "buyer" + std::to_string(i));
  }
  return sequence;
}

Tuple RandomTwitterTuple(const Catalog& catalog, TableId table, Rng* rng) {
  const TableDef& def = catalog.table(table);
  Tuple tuple;
  tuple.reserve(def.columns.size());
  for (const ColumnDef& col : def.columns) {
    const auto lo = static_cast<int64_t>(col.min_value);
    const auto hi =
        std::max(lo, static_cast<int64_t>(col.distinct_values) + lo - 1);
    tuple.emplace_back(rng->UniformInt(lo, hi));
  }
  return tuple;
}

}  // namespace dsm
