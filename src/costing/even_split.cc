#include "costing/even_split.h"

#include <unordered_map>

namespace dsm {

Result<std::vector<double>> EvenSplitCosts(
    const GlobalPlan& global_plan, const std::vector<SharingId>& ids) {
  // How many sharings (of the whole plan, not just `ids`) use each node.
  std::unordered_map<int, int> users;
  for (const SharingId id : global_plan.sharing_ids()) {
    const std::vector<int>* closure = global_plan.closure(id);
    for (const int node : *closure) ++users[node];
  }

  std::vector<double> ac;
  ac.reserve(ids.size());
  for (const SharingId id : ids) {
    const std::vector<int>* closure = global_plan.closure(id);
    if (closure == nullptr) {
      return Status::NotFound("unknown sharing id in even-split costing");
    }
    double cost = 0.0;
    for (const int node : *closure) {
      cost += global_plan.node_cost(node) / users[node];
    }
    ac.push_back(cost);
  }
  return ac;
}

}  // namespace dsm
