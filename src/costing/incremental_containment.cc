#include "costing/incremental_containment.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "expr/predicate.h"
#include "obs/metrics.h"

namespace dsm {

namespace {
// Must match BuildContainmentDag's LPC comparison tolerance exactly: the
// incremental index is required to reproduce the scratch DAG bit-for-bit.
constexpr double kLpcTol = 1e-12;
}  // namespace

void IncrementalContainmentIndex::AddMember(SharingId id,
                                            const Sharing& sharing,
                                            double lpc) {
  Member m;
  m.sharing = sharing;
  m.lpc = lpc;
  m.qhash = sharing.QueryHash();
  m.table_mask = sharing.tables().mask();
  m.pred_sig = PredicateSignature(sharing.predicates());
  m.pred_count = sharing.predicates().size();

  // Identity group: adopt the group of an identical member, found through
  // the QueryHash bucket (collisions are disambiguated by IdenticalTo;
  // identity is transitive, so any match determines the group).
  m.group = next_group_;
  const auto bucket = by_qhash_.find(m.qhash);
  if (bucket != by_qhash_.end()) {
    for (const SharingId other : bucket->second) {
      const Member& om = members_.at(other);
      if (om.sharing.IdenticalTo(sharing)) {
        m.group = om.group;
        break;
      }
    }
  }
  if (m.group == next_group_) ++next_group_;

  // Containment edges against every existing member, in both directions.
  // ContainedIn(a, b) needs b's predicates to be a subset of a's, so a
  // directed pair is refuted without the exact check when the table masks
  // differ, the would-be container has more predicates, or its signature
  // bits are not a subset of the containee's.
  uint64_t compared = 0;
  uint64_t skipped = 0;
  for (auto& [oid, om] : members_) {
    if (om.group == m.group) continue;
    if (om.table_mask != m.table_mask) {
      skipped += 2;
      continue;
    }
    if (om.pred_count <= m.pred_count &&
        (om.pred_sig & ~m.pred_sig) == 0) {
      ++compared;
      if (sharing.ContainedIn(om.sharing) && m.lpc <= om.lpc + kLpcTol) {
        m.containers.push_back(oid);
      }
    } else {
      ++skipped;
    }
    if (m.pred_count <= om.pred_count &&
        (m.pred_sig & ~om.pred_sig) == 0) {
      ++compared;
      if (om.sharing.ContainedIn(sharing) && om.lpc <= m.lpc + kLpcTol) {
        om.containers.push_back(id);
      }
    } else {
      ++skipped;
    }
  }
  DSM_METRIC_COUNTER_ADD("dsm.costing.dag_pairs_compared", compared);
  DSM_METRIC_COUNTER_ADD("dsm.costing.dag_pairs_skipped", skipped);

  by_qhash_[m.qhash].push_back(id);
  members_.emplace(id, std::move(m));
}

void IncrementalContainmentIndex::RemoveMembers(
    const std::vector<SharingId>& removed) {
  if (removed.empty()) return;
  const std::unordered_set<SharingId> gone(removed.begin(), removed.end());
  for (const SharingId id : removed) {
    const auto it = members_.find(id);
    if (it == members_.end()) continue;
    auto& bucket = by_qhash_[it->second.qhash];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                 bucket.end());
    if (bucket.empty()) by_qhash_.erase(it->second.qhash);
    members_.erase(it);
  }
  for (auto& [oid, om] : members_) {
    auto& c = om.containers;
    c.erase(std::remove_if(c.begin(), c.end(),
                           [&](SharingId x) { return gone.count(x) > 0; }),
            c.end());
  }
}

ContainmentDag IncrementalContainmentIndex::Update(
    const std::vector<SharingId>& ids, const std::vector<Sharing>& sharings,
    const std::vector<double>& lpc) {
  assert(ids.size() == sharings.size() && ids.size() == lpc.size());
  const size_t n = ids.size();

  std::unordered_map<SharingId, size_t> pos;
  pos.reserve(n);
  for (size_t i = 0; i < n; ++i) pos.emplace(ids[i], i);

  // Drop members that left the population — and, defensively, members
  // whose LPC changed since they were indexed (LPCs are memoized upstream,
  // so this is a re-add guard, not a steady-state path).
  std::vector<SharingId> removed;
  for (const auto& [id, m] : members_) {
    const auto it = pos.find(id);
    if (it == pos.end() || m.lpc != lpc[it->second]) removed.push_back(id);
  }
  RemoveMembers(removed);

  // Index arrivals in input order so emitted edge sets match the scratch
  // build's deterministic order.
  for (size_t i = 0; i < n; ++i) {
    if (members_.find(ids[i]) == members_.end()) {
      AddMember(ids[i], sharings[i], lpc[i]);
    }
  }

  // Emit in input order. Persistent group labels are densely renumbered by
  // first appearance, matching the scratch build's group numbering; edge
  // lists are translated to indices and sorted ascending, matching the
  // scratch build's j-ascending scan.
  ContainmentDag dag;
  dag.identity_group.assign(n, 0);
  dag.containers.assign(n, {});
  std::unordered_map<uint32_t, uint32_t> dense;
  dense.reserve(n);
  uint32_t next_dense = 0;
  for (size_t i = 0; i < n; ++i) {
    const Member& m = members_.at(ids[i]);
    const auto [it, inserted] = dense.emplace(m.group, next_dense);
    if (inserted) ++next_dense;
    dag.identity_group[i] = it->second;
    auto& out = dag.containers[i];
    out.reserve(m.containers.size());
    for (const SharingId c : m.containers) {
      const auto p = pos.find(c);
      if (p != pos.end()) out.push_back(static_cast<int>(p->second));
    }
    std::sort(out.begin(), out.end());
  }
  return dag;
}

void IncrementalContainmentIndex::Reset() {
  members_.clear();
  by_qhash_.clear();
  next_group_ = 0;
}

}  // namespace dsm
