// Builds a FairCost problem (entries + global cost) from a live GlobalPlan:
// LPCs via plan enumeration, GPCs and saving(r)/num(r) from the global
// plan's per-sharing records, and the identity/containment partial order.

#ifndef DSM_COSTING_SAVINGS_H_
#define DSM_COSTING_SAVINGS_H_

#include <vector>

#include "common/status.h"
#include "costing/fair_cost.h"
#include "costing/incremental_containment.h"
#include "costing/lpc.h"
#include "globalplan/global_plan.h"

namespace dsm {

struct FairCostProblem {
  std::vector<SharingId> ids;     // parallel to entries
  std::vector<Sharing> sharings;  // parallel to entries
  std::vector<FairCostEntry> entries;
  double global_cost = 0.0;
};

// Speculative provider-owned views (ids >= SpeculativeViewAdvisor's base)
// are included: they are sharings of the provider itself and their cost
// must be recovered too.
//
// When `dag_index` is non-null, the identity/containment partial order is
// taken from the persistent index (only population changes since its last
// Update are compared) instead of a scratch O(n²) BuildContainmentDag; the
// result is identical either way.
Result<FairCostProblem> BuildFairCostProblem(
    const GlobalPlan& global_plan, LpcCalculator* lpc,
    IncrementalContainmentIndex* dag_index = nullptr);

}  // namespace dsm

#endif  // DSM_COSTING_SAVINGS_H_
