// LPC(S): the lowest possible cost of a sharing — the cheapest standalone
// plan, with no reuse of any other sharing's views (Section 5, criterion
// (2)). "It represents the actual complexity of S."

#ifndef DSM_COSTING_LPC_H_
#define DSM_COSTING_LPC_H_

#include <unordered_map>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/enumerator.h"
#include "sharing/sharing.h"

namespace dsm {

class LpcCalculator {
 public:
  LpcCalculator(const PlanEnumerator* enumerator, CostModel* model)
      : enumerator_(enumerator), model_(model) {}

  // Minimum standalone plan cost for `sharing`. Memoized per query (and
  // destination, since delivery is part of the plan).
  Result<double> Lpc(const Sharing& sharing);

 private:
  const PlanEnumerator* enumerator_;
  CostModel* model_;
  std::unordered_map<uint64_t, double> cache_;
};

}  // namespace dsm

#endif  // DSM_COSTING_LPC_H_
