#include "costing/costing_session.h"

#include <algorithm>

#include "costing/savings.h"
#include "obs/metrics.h"

namespace dsm {

Result<CostingSession::Snapshot> CostingSession::Refresh() {
  DSM_METRIC_COUNTER_ADD("dsm.costing.refreshes", 1);
  DSM_ASSIGN_OR_RETURN(
      const FairCostProblem problem,
      BuildFairCostProblem(*global_plan_, lpc_,
                           incremental_dag_enabled_ ? &dag_index_ : nullptr));
  FairCost::Options options;
  options.lpc_overrun_fallback = true;  // bill even mid-amortization
  DSM_ASSIGN_OR_RETURN(
      const FairCostResult result,
      FairCost::Compute(problem.entries, problem.global_cost, options));

  Snapshot snapshot;
  snapshot.alpha = result.alpha;
  snapshot.global_cost = problem.global_cost;
  snapshot.criteria_satisfied = result.criteria_satisfied;
  for (size_t i = 0; i < problem.ids.size(); ++i) {
    snapshot.ac[problem.ids[i]] = result.ac[i];
    snapshot.lpc[problem.ids[i]] = problem.entries[i].lpc;
  }
  history_.push_back(snapshot);
  return snapshot;
}

double CostingSession::MaxAcIncreaseFractionOfLpc() const {
  double worst = 0.0;
  for (size_t i = 1; i < history_.size(); ++i) {
    const Snapshot& prev = history_[i - 1];
    const Snapshot& cur = history_[i];
    for (const auto& [id, ac] : cur.ac) {
      const auto it = prev.ac.find(id);
      if (it == prev.ac.end()) continue;
      const auto lpc_it = cur.lpc.find(id);
      const double lpc = lpc_it == cur.lpc.end() ? 0.0 : lpc_it->second;
      if (lpc <= 0.0) continue;
      worst = std::max(worst, (ac - it->second) / lpc);
    }
  }
  return worst;
}

double CostingSession::CurrentAc(SharingId id) const {
  if (history_.empty()) return -1.0;
  const auto it = history_.back().ac.find(id);
  return it == history_.back().ac.end() ? -1.0 : it->second;
}

}  // namespace dsm
