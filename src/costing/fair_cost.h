// Algorithm FAIRCOST (Section 5, Algorithm 3): attribute the global plan's
// cost to the sharings while satisfying the five fairness criteria and
// maximizing the fairness degree α.
//
// For a given α, each sharing's attributed cost is bounded above by
//   (2)  LPC(S),
//   (4)  GPC(S) − α · Σ_{r ∈ S} saving(r)/num(r),
//   (1)  the bound of any identical sharing, and
//   (3)  the bound of any sharing containing S (so the contained, cheaper
//        sharing never pays more than its container).
// The bounds are non-increasing in α, so a binary search finds the largest
// α whose bounds still sum to at least cost(GP) (criterion (5)); the final
// ACs are the bounds scaled down proportionally to recover cost(GP)
// exactly, which preserves criteria (1)–(4).
//
// Note on criterion (3): the paper's Algorithm 3 sketch processes sharings
// in increasing LPC order and takes a min over DAG "predecessors"; read
// literally that caps a *container* by its containees, the reverse of what
// criterion (3) states. We implement the direction criterion (3) demands —
// each sharing is capped by its containers' bounds, computed containers-
// first (decreasing LPC) — which reproduces the paper's worked Example 5.1
// exactly and keeps the "Contained" fairness metric at 1.

#ifndef DSM_COSTING_FAIR_COST_H_
#define DSM_COSTING_FAIR_COST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sharing/sharing.h"

namespace dsm {

struct FairCostEntry {
  SharingId id = 0;
  double lpc = 0.0;
  double gpc = 0.0;
  // Σ_{r ∈ S's plan} saving(r) / num(r)  (Definition 5.1).
  double saving_term = 0.0;
  uint32_t identity_group = 0;
  std::vector<int> containers;  // indices of containing sharings
};

struct FairCostResult {
  std::vector<double> ac;  // attributed cost per entry
  double alpha = 0.0;      // maximized fairness degree
  // True when even α = 1 left slack and ACs were scaled down to recover
  // cost(GP) exactly.
  bool scaled_down = false;
  // False only in the lpc_overrun_fallback regime: cost(GP) exceeded
  // Σ LPC (Lemma 5.2's unsatisfiable case), so criterion (2) is violated
  // proportionally across all sharings.
  bool criteria_satisfied = true;
};

class FairCost {
 public:
  struct Options {
    double tolerance = 1e-9;
    int max_iterations = 80;
    // When cost(GP) > Σ LPC the five criteria are unsatisfiable
    // (Lemma 5.2). With this flag the computation does not fail: every
    // sharing is charged its LPC scaled up by the common overrun factor —
    // the uniform minimal violation of criterion (2) — and the result is
    // marked criteria_satisfied = false. A provider can still bill while
    // the online planner's investment is being amortized.
    bool lpc_overrun_fallback = false;
  };

  // Returns kInfeasible iff the criteria are unsatisfiable, i.e.
  // Σ LPC(S) < cost(GP) (Lemma 5.2).
  static Result<FairCostResult> Compute(
      const std::vector<FairCostEntry>& entries, double global_cost,
      Options options);
  static Result<FairCostResult> Compute(
      const std::vector<FairCostEntry>& entries, double global_cost) {
    return Compute(entries, global_cost, Options{});
  }
};

}  // namespace dsm

#endif  // DSM_COSTING_FAIR_COST_H_
