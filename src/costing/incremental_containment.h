// IncrementalContainmentIndex: the containment DAG of BuildContainmentDag
// maintained across costing refreshes.
//
// A CostingSession re-runs FAIRCOST after every arrival, and the scratch
// DAG build is O(n²) pairwise IdenticalTo/ContainedIn — the dominant
// FAIRCOST cost once LPCs are memoized. Sharings rarely change between
// refreshes, so this index keeps the identity groups and containment
// edges of the surviving population and only compares newly arrived
// sharings (against everyone) and drops removed ones. New-vs-existing
// comparisons are pruned before the exact ContainedIn check by
//   * QueryHash identity buckets (identical twins found in O(1)),
//   * the table mask (containment requires the same table set),
//   * predicate count (a container has a subset of the predicates), and
//   * a bloom-style predicate signature (subset refutation in one AND).
// The emitted Output is field-for-field identical to BuildContainmentDag
// over the same (sharings, lpc) input — the randomized equivalence test
// asserts this after arbitrary add/remove interleavings.

#ifndef DSM_COSTING_INCREMENTAL_CONTAINMENT_H_
#define DSM_COSTING_INCREMENTAL_CONTAINMENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "costing/containment_dag.h"
#include "sharing/sharing.h"

namespace dsm {

class IncrementalContainmentIndex {
 public:
  // Brings the index up to date with the current population (`ids`,
  // `sharings` and `lpc` are parallel; ids are unique) and returns the
  // DAG in input order, exactly as BuildContainmentDag would.
  ContainmentDag Update(const std::vector<SharingId>& ids,
                        const std::vector<Sharing>& sharings,
                        const std::vector<double>& lpc);

  void Reset();

  size_t num_members() const { return members_.size(); }

 private:
  struct Member {
    Sharing sharing;
    double lpc = 0.0;
    uint64_t qhash = 0;
    uint64_t table_mask = 0;
    uint64_t pred_sig = 0;
    size_t pred_count = 0;
    uint32_t group = 0;                 // persistent identity group label
    std::vector<SharingId> containers;  // ids of containing sharings
  };

  void AddMember(SharingId id, const Sharing& sharing, double lpc);
  void RemoveMembers(const std::vector<SharingId>& removed);

  std::unordered_map<SharingId, Member> members_;
  // QueryHash -> member ids (identity-candidate buckets).
  std::unordered_map<uint64_t, std::vector<SharingId>> by_qhash_;
  uint32_t next_group_ = 0;
};

}  // namespace dsm

#endif  // DSM_COSTING_INCREMENTAL_CONTAINMENT_H_
