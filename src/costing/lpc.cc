#include "costing/lpc.h"

#include <limits>

namespace dsm {

Result<double> LpcCalculator::Lpc(const Sharing& sharing) {
  const uint64_t key = sharing.QueryHash() ^
                       (0x9e3779b97f4a7c15ULL * (sharing.destination() + 1));
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  DSM_ASSIGN_OR_RETURN(const std::vector<SharingPlan> plans,
                       enumerator_->Enumerate(sharing));
  if (plans.empty()) {
    return Status::InvalidArgument("sharing has no plans");
  }
  double lpc = std::numeric_limits<double>::infinity();
  for (const SharingPlan& plan : plans) {
    lpc = std::min(lpc, PlanCost(plan, model_));
  }
  cache_.emplace(key, lpc);
  return lpc;
}

}  // namespace dsm
