// Fairness metrics for a cost assignment (Section 6.3 / Figure 7):
//   alpha     — the largest α such that every sharing's AC still respects
//               criterion (4)'s saving-award bound,
//   LPC       — fraction of sharings with AC <= LPC (criterion (2)),
//   Identical — fraction of identical pairs charged equally (criterion (1)),
//   Contained — fraction of containment pairs with the contained sharing
//               charged no more (criterion (3)).
// Higher is fairer; FAIRCOST scores 1 on the last three by construction.

#ifndef DSM_COSTING_FAIRNESS_METRICS_H_
#define DSM_COSTING_FAIRNESS_METRICS_H_

#include <vector>

#include "costing/fair_cost.h"

namespace dsm {

struct FairnessReport {
  double alpha = 1.0;
  double lpc_fraction = 1.0;
  double identical_fraction = 1.0;
  double contained_fraction = 1.0;
  // |Σ AC − cost(GP)| / cost(GP); criterion (5) wants 0.
  double recovery_error = 0.0;
};

FairnessReport EvaluateFairness(const std::vector<FairCostEntry>& entries,
                                double global_cost,
                                const std::vector<double>& ac,
                                double tolerance = 1e-6);

}  // namespace dsm

#endif  // DSM_COSTING_FAIRNESS_METRICS_H_
