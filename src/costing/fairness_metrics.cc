#include "costing/fairness_metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace dsm {

FairnessReport EvaluateFairness(const std::vector<FairCostEntry>& entries,
                                double global_cost,
                                const std::vector<double>& ac,
                                double tolerance) {
  FairnessReport report;
  const size_t n = entries.size();
  if (n == 0 || ac.size() != n) return report;

  // alpha: per-sharing achievable α, clamped to [0, 1]; sharings with no
  // shared intermediate results impose no constraint.
  double alpha = 1.0;
  for (size_t i = 0; i < n; ++i) {
    if (entries[i].saving_term <= 0.0) continue;
    const double a = (entries[i].gpc - ac[i]) / entries[i].saving_term;
    alpha = std::min(alpha, std::clamp(a, 0.0, 1.0));
  }
  report.alpha = alpha;

  // LPC fraction (criterion (2)).
  size_t lpc_ok = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ac[i] <= entries[i].lpc * (1.0 + tolerance) + tolerance) ++lpc_ok;
  }
  report.lpc_fraction = static_cast<double>(lpc_ok) / static_cast<double>(n);

  // Identical pairs (criterion (1)).
  std::map<uint32_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    groups[entries[i].identity_group].push_back(i);
  }
  size_t ident_pairs = 0;
  size_t ident_ok = 0;
  for (const auto& [g, members] : groups) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        ++ident_pairs;
        const double diff = std::fabs(ac[members[a]] - ac[members[b]]);
        const double scale =
            std::max({1.0, std::fabs(ac[members[a]]),
                      std::fabs(ac[members[b]])});
        if (diff <= tolerance * scale) ++ident_ok;
      }
    }
  }
  report.identical_fraction =
      ident_pairs == 0 ? 1.0
                       : static_cast<double>(ident_ok) /
                             static_cast<double>(ident_pairs);

  // Containment pairs (criterion (3)).
  size_t cont_pairs = 0;
  size_t cont_ok = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const int j : entries[i].containers) {
      ++cont_pairs;
      const double scale = std::max(
          {1.0, std::fabs(ac[i]), std::fabs(ac[static_cast<size_t>(j)])});
      if (ac[i] <= ac[static_cast<size_t>(j)] + tolerance * scale) {
        ++cont_ok;
      }
    }
  }
  report.contained_fraction =
      cont_pairs == 0 ? 1.0
                      : static_cast<double>(cont_ok) /
                            static_cast<double>(cont_pairs);

  double total = 0.0;
  for (const double a : ac) total += a;
  report.recovery_error =
      global_cost > 0.0 ? std::fabs(total - global_cost) / global_cost : 0.0;
  return report;
}

}  // namespace dsm
