#include "costing/fair_cost.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

// Alpha-independent scratch state of ComputeBounds. The bisection loop
// calls ComputeBounds dozens of times over the same entries; the LPC order
// and group count only depend on the entries, and the group_min/ub buffers
// can be recycled, so all allocations are hoisted out of the loop here.
struct BoundsWorkspace {
  explicit BoundsWorkspace(const std::vector<FairCostEntry>& entries) {
    const size_t n = entries.size();
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries[a].lpc > entries[b].lpc;
    });
    size_t num_groups = 0;
    for (const FairCostEntry& e : entries) {
      num_groups = std::max(num_groups,
                            static_cast<size_t>(e.identity_group) + 1);
    }
    group_min.resize(num_groups);
    ub.resize(n);
  }

  std::vector<size_t> order;      // indices by decreasing LPC
  std::vector<double> group_min;  // one slot per identity group
  std::vector<double> ub;         // reused result buffer
};

// Cost upper bounds per sharing at fairness degree `alpha`. The returned
// reference aliases `ws.ub` and is invalidated by the next call.
const std::vector<double>& ComputeBounds(
    const std::vector<FairCostEntry>& entries, double alpha,
    BoundsWorkspace& ws) {
  const size_t n = entries.size();
  std::vector<double>& ub = ws.ub;
  // Criteria (2) and (4); attributed costs cannot go negative.
  for (size_t i = 0; i < n; ++i) {
    ub[i] = std::max(
        0.0, std::min(entries[i].lpc,
                      entries[i].gpc - alpha * entries[i].saving_term));
  }

  // Criteria (1) and (3) interact (an identical twin may have a cheaper
  // container), so both monotone caps are applied until a fixpoint:
  //  (1) identical sharings share one bound — the tightest of the group
  //      (their GPCs can differ when the provider used different plans);
  //  (3) each sharing is capped by its containers' bounds, processed in
  //      decreasing LPC order (containers have LPC no smaller).
  for (size_t pass = 0; pass < n + 2; ++pass) {
    bool changed = false;
    std::fill(ws.group_min.begin(), ws.group_min.end(),
              std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < n; ++i) {
      const uint32_t g = entries[i].identity_group;
      ws.group_min[g] = std::min(ws.group_min[g], ub[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      const double v = ws.group_min[entries[i].identity_group];
      if (v < ub[i]) {
        ub[i] = v;
        changed = true;
      }
    }
    for (const size_t i : ws.order) {
      for (const int j : entries[i].containers) {
        const double v = ub[static_cast<size_t>(j)];
        if (v < ub[i]) {
          ub[i] = v;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return ub;
}

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

}  // namespace

Result<FairCostResult> FairCost::Compute(
    const std::vector<FairCostEntry>& entries, double global_cost,
    Options options) {
  if (entries.empty()) {
    return Status::InvalidArgument("no sharings to cost");
  }
  DSM_METRIC_COUNTER_ADD("dsm.costing.faircost_runs", 1);
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.costing.faircost_ms");
  DSM_TRACE_SPAN("costing/faircost");

  BoundsWorkspace ws(entries);

  // Lemma 5.2: satisfiable iff the bounds at α = 0 (which equal the LPCs
  // when GPC >= LPC) can still recover the global plan cost.
  const std::vector<double>& ub0 = ComputeBounds(entries, 0.0, ws);
  if (Sum(ub0) + options.tolerance < global_cost) {
    if (!options.lpc_overrun_fallback) {
      return Status::Infeasible(
          "fairness criteria unsatisfiable: sum of LPCs below cost(GP) "
          "(Lemma 5.2)");
    }
    // Uniform minimal violation of criterion (2): scale the α = 0 bounds
    // up to recover cost(GP). Equalities and orderings survive.
    DSM_METRIC_COUNTER_ADD("dsm.costing.lpc_overrun_fallbacks", 1);
    DSM_TRACE_ANNOTATE("lpc_overrun_fallback", "true");
    FairCostResult fallback;
    fallback.alpha = 0.0;
    fallback.criteria_satisfied = false;
    const double total = Sum(ub0);
    const double scale = total > 0.0 ? global_cost / total : 0.0;
    fallback.ac.resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      fallback.ac[i] = ub0[i] * scale;
    }
    return fallback;
  }

  FairCostResult result;
  const std::vector<double>& ub = ComputeBounds(entries, 1.0, ws);
  if (Sum(ub) + options.tolerance >= global_cost) {
    // Maximum fairness achievable outright.
    result.alpha = 1.0;
  } else {
    // Binary search the largest α whose bounds still cover cost(GP).
    double lo = 0.0;  // SumBounds(lo) >= global_cost
    double hi = 1.0;  // SumBounds(hi) <  global_cost
    for (int iter = 0; iter < options.max_iterations; ++iter) {
      DSM_METRIC_COUNTER_ADD("dsm.costing.bisect_iterations", 1);
      const double mid = 0.5 * (lo + hi);
      if (Sum(ComputeBounds(entries, mid, ws)) >= global_cost) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    result.alpha = lo;
    ComputeBounds(entries, lo, ws);  // refreshes ws.ub (== ub) for α = lo
  }

  // Criterion (5): recover cost(GP) exactly. The bounds sum to at least
  // cost(GP), so the scale factor is <= 1 and every criterion-(1)-(4)
  // constraint (equalities and orderings included) survives the scaling.
  const double total = Sum(ub);
  const double scale = total > 0.0 ? global_cost / total : 0.0;
  result.scaled_down = total > global_cost + options.tolerance &&
                       result.alpha >= 1.0;
  result.ac.resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    result.ac[i] = ub[i] * scale;
  }
  return result;
}

}  // namespace dsm
