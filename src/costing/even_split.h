// The even-split baseline costing (Section 6.1.1): the cost of every view
// in the global plan is divided evenly among the sharings whose plans use
// it — the fairness notion of prior work [17, 36], where all users of a
// shared structure pay the same for it. Recovers cost(GP) by construction
// but violates the paper's criteria (1)–(4) in general.

#ifndef DSM_COSTING_EVEN_SPLIT_H_
#define DSM_COSTING_EVEN_SPLIT_H_

#include <vector>

#include "common/status.h"
#include "globalplan/global_plan.h"

namespace dsm {

// Attributed costs parallel to `ids` (which must all exist in the plan).
Result<std::vector<double>> EvenSplitCosts(const GlobalPlan& global_plan,
                                           const std::vector<SharingId>& ids);

}  // namespace dsm

#endif  // DSM_COSTING_EVEN_SPLIT_H_
