// The partial order over sharings induced by fairness criteria (1) and
// (3): identical sharings must share one attributed cost, and a sharing
// whose tuples are contained in another's (with no larger LPC) must not be
// charged more than the container.

#ifndef DSM_COSTING_CONTAINMENT_DAG_H_
#define DSM_COSTING_CONTAINMENT_DAG_H_

#include <cstdint>
#include <vector>

#include "sharing/sharing.h"

namespace dsm {

struct ContainmentDag {
  // identity_group[i] == identity_group[j] iff sharings i and j are the
  // same query (criterion (1)); group values are dense, starting at 0.
  std::vector<uint32_t> identity_group;
  // containers[i] = indices j such that sharing i is (strictly) contained
  // in sharing j and LPC(i) <= LPC(j); criterion (3) then requires
  // AC(i) <= AC(j).
  std::vector<std::vector<int>> containers;
};

ContainmentDag BuildContainmentDag(const std::vector<Sharing>& sharings,
                                   const std::vector<double>& lpc);

}  // namespace dsm

#endif  // DSM_COSTING_CONTAINMENT_DAG_H_
