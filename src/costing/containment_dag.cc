#include "costing/containment_dag.h"

#include <cassert>

namespace dsm {

ContainmentDag BuildContainmentDag(const std::vector<Sharing>& sharings,
                                   const std::vector<double>& lpc) {
  assert(sharings.size() == lpc.size());
  const size_t n = sharings.size();
  ContainmentDag dag;
  dag.identity_group.assign(n, 0);
  dag.containers.assign(n, {});

  // Identity groups by pairwise comparison (n is modest; the quadratic
  // pass keeps IdenticalTo the single source of truth).
  std::vector<int> group_of(n, -1);
  uint32_t next_group = 0;
  for (size_t i = 0; i < n; ++i) {
    if (group_of[i] >= 0) continue;
    group_of[i] = static_cast<int>(next_group);
    for (size_t j = i + 1; j < n; ++j) {
      if (group_of[j] < 0 && sharings[i].IdenticalTo(sharings[j])) {
        group_of[j] = static_cast<int>(next_group);
      }
    }
    ++next_group;
  }
  for (size_t i = 0; i < n; ++i) {
    dag.identity_group[i] = static_cast<uint32_t>(group_of[i]);
  }

  const double kTol = 1e-12;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j || group_of[i] == group_of[j]) continue;
      if (sharings[i].ContainedIn(sharings[j]) && lpc[i] <= lpc[j] + kTol) {
        dag.containers[i].push_back(static_cast<int>(j));
      }
    }
  }
  return dag;
}

}  // namespace dsm
