// CostingSession: fair costing over time.
//
// FAIRCOST's input is the whole global plan, so "when a new sharing
// arrives, the costs of existing sharings may change" (Section 5). The
// paper argues this is acceptable because an AC can never exceed the
// sharing's LPC. A CostingSession re-runs FAIRCOST after each arrival (or
// whenever the provider re-bills), records the per-sharing AC history and
// exposes the drift statistics that substantiate that claim.

#ifndef DSM_COSTING_COSTING_SESSION_H_
#define DSM_COSTING_COSTING_SESSION_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "costing/fair_cost.h"
#include "costing/incremental_containment.h"
#include "costing/lpc.h"
#include "globalplan/global_plan.h"

namespace dsm {

class CostingSession {
 public:
  CostingSession(const GlobalPlan* global_plan, LpcCalculator* lpc)
      : global_plan_(global_plan), lpc_(lpc) {}

  struct Snapshot {
    double alpha = 0.0;
    double global_cost = 0.0;
    // False while the planner's risk investments exceed Σ LPC (Lemma
    // 5.2's transient): ACs are then LPCs scaled by the overrun factor.
    bool criteria_satisfied = true;
    std::map<SharingId, double> ac;
    std::map<SharingId, double> lpc;
  };

  // Runs FAIRCOST over the current global plan and appends a snapshot.
  Result<Snapshot> Refresh();

  size_t num_refreshes() const { return history_.size(); }
  const std::vector<Snapshot>& history() const { return history_; }

  // Largest increase of any sharing's AC between consecutive refreshes,
  // as a fraction of its LPC. Bounded by 1 by construction (AC <= LPC).
  double MaxAcIncreaseFractionOfLpc() const;

  // Current AC of a sharing per the latest snapshot (-1 if unknown).
  double CurrentAc(SharingId id) const;

  // When disabled, each Refresh rebuilds the containment DAG from scratch
  // instead of diffing against the persistent index (same result; used by
  // benchmarks to measure the scratch baseline).
  void set_incremental_dag_enabled(bool enabled) {
    incremental_dag_enabled_ = enabled;
    if (!enabled) dag_index_.Reset();
  }
  bool incremental_dag_enabled() const { return incremental_dag_enabled_; }

 private:
  const GlobalPlan* global_plan_;
  LpcCalculator* lpc_;
  std::vector<Snapshot> history_;
  // Containment DAG carried across refreshes; only sharings added or
  // removed since the previous Refresh are compared.
  IncrementalContainmentIndex dag_index_;
  bool incremental_dag_enabled_ = true;
};

}  // namespace dsm

#endif  // DSM_COSTING_COSTING_SESSION_H_
