#include "costing/savings.h"

#include "costing/containment_dag.h"

namespace dsm {

Result<FairCostProblem> BuildFairCostProblem(
    const GlobalPlan& global_plan, LpcCalculator* lpc,
    IncrementalContainmentIndex* dag_index) {
  FairCostProblem problem;
  problem.global_cost = global_plan.TotalCost();
  const size_t n = global_plan.num_sharings();
  problem.ids.reserve(n);
  problem.sharings.reserve(n);
  problem.entries.reserve(n);

  // saving(r)/num(r) per intermediate result, dense over interned key
  // ids; each record carries its distinct key ids since admission, so
  // this whole aggregation never hashes a ViewKey.
  const std::vector<double> shares = global_plan.ComputeSavingShares();

  std::vector<double> lpcs;
  lpcs.reserve(n);
  for (const auto& [id, rec] : global_plan.records()) {
    problem.ids.push_back(id);
    problem.sharings.push_back(rec.sharing);

    FairCostEntry entry;
    entry.id = id;
    entry.gpc = rec.gpc;
    DSM_ASSIGN_OR_RETURN(entry.lpc, lpc->Lpc(rec.sharing));

    // Σ_{r ∈ S's plan} saving(r)/num(r), over distinct intermediate
    // results of the sharing's individual plan.
    for (const auto& [kid, node] : rec.distinct_keys) {
      (void)node;
      entry.saving_term += shares[static_cast<size_t>(kid)];
    }

    lpcs.push_back(entry.lpc);
    problem.entries.push_back(std::move(entry));
  }

  const ContainmentDag dag =
      dag_index != nullptr
          ? dag_index->Update(problem.ids, problem.sharings, lpcs)
          : BuildContainmentDag(problem.sharings, lpcs);
  for (size_t i = 0; i < problem.entries.size(); ++i) {
    problem.entries[i].identity_group = dag.identity_group[i];
    problem.entries[i].containers = dag.containers[i];
  }
  return problem;
}

}  // namespace dsm
