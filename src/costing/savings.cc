#include "costing/savings.h"

#include <unordered_map>
#include <unordered_set>

#include "costing/containment_dag.h"

namespace dsm {

Result<FairCostProblem> BuildFairCostProblem(const GlobalPlan& global_plan,
                                             LpcCalculator* lpc) {
  FairCostProblem problem;
  problem.global_cost = global_plan.TotalCost();
  problem.ids = global_plan.sharing_ids();

  // saving(r) and num(r) per intermediate result.
  struct SavingNum {
    double saving = 0.0;
    int num = 0;
  };
  std::unordered_map<ViewKey, SavingNum, ViewKeyHash> stats;
  for (const GlobalPlan::ReuseStat& st : global_plan.ComputeReuseStats()) {
    stats[st.key] = SavingNum{st.saving, st.num};
  }

  std::vector<double> lpcs;
  for (const SharingId id : problem.ids) {
    const GlobalPlan::SharingRecord* rec = global_plan.record(id);
    problem.sharings.push_back(rec->sharing);

    FairCostEntry entry;
    entry.id = id;
    entry.gpc = rec->gpc;
    DSM_ASSIGN_OR_RETURN(entry.lpc, lpc->Lpc(rec->sharing));

    // Σ_{r ∈ S's plan} saving(r)/num(r), over distinct intermediate
    // results of the sharing's individual plan.
    std::unordered_set<ViewKey, ViewKeyHash> seen;
    for (const PlanNode& node : rec->plan.nodes) {
      if (node.type == PlanNodeType::kLeaf) continue;
      if (!seen.insert(node.key).second) continue;
      const auto it = stats.find(node.key);
      if (it == stats.end() || it->second.num == 0) continue;
      entry.saving_term += it->second.saving / it->second.num;
    }

    lpcs.push_back(entry.lpc);
    problem.entries.push_back(std::move(entry));
  }

  const ContainmentDag dag = BuildContainmentDag(problem.sharings, lpcs);
  for (size_t i = 0; i < problem.entries.size(); ++i) {
    problem.entries[i].identity_group = dag.identity_group[i];
    problem.entries[i].containers = dag.containers[i];
  }
  return problem;
}

}  // namespace dsm
