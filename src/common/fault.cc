#include "common/fault.h"

namespace dsm {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  state.spec = spec;
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  rng_ = Rng(kDefaultSeed);
}

bool FaultInjector::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  const int hit = state.hits++;
  if (!state.armed) return false;
  if (hit < state.spec.fail_after) return false;
  if (state.spec.max_fires >= 0 && state.fires >= state.spec.max_fires) {
    return false;
  }
  if (state.spec.probability < 1.0 &&
      !rng_.Bernoulli(state.spec.probability)) {
    return false;
  }
  ++state.fires;
  return true;
}

bool FaultInjector::armed(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() && it->second.armed;
}

int FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace dsm
