#include "common/fault.h"

namespace dsm {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::PointState& FaultInjector::StateFor(const std::string& point) {
  PointState& state = points_[point];
  if (state.hits == nullptr) {
    auto& registry = obs::MetricsRegistry::Global();
    state.hits = registry.GetCounter("dsm.fault.hits." + point);
    state.fires = registry.GetCounter("dsm.fault.fires." + point);
  }
  return state;
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = StateFor(point);
  state.spec = spec;
  state.armed = true;
  state.hits->Reset();
  state.fires->Reset();
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Zero the registry counters too: a metrics dump taken after Reset must
  // not show fault activity from before it.
  for (auto& [point, state] : points_) {
    state.hits->Reset();
    state.fires->Reset();
  }
  points_.clear();
  rng_ = Rng(kDefaultSeed);
}

bool FaultInjector::ShouldFail(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = StateFor(point);
  const uint64_t hit = state.hits->value();
  state.hits->Increment();
  if (!state.armed) return false;
  if (state.spec.fail_after > 0 &&
      hit < static_cast<uint64_t>(state.spec.fail_after)) {
    return false;
  }
  if (state.spec.max_fires >= 0 &&
      state.fires->value() >= static_cast<uint64_t>(state.spec.max_fires)) {
    return false;
  }
  if (state.spec.probability < 1.0 &&
      !rng_.Bernoulli(state.spec.probability)) {
    return false;
  }
  state.fires->Increment();
  return true;
}

bool FaultInjector::armed(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() && it->second.armed;
}

int FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : static_cast<int>(it->second.hits->value());
}

int FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0
                             : static_cast<int>(it->second.fires->value());
}

}  // namespace dsm
