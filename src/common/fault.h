// Deterministic fault injection for robustness testing.
//
// Production distributed systems treat machine loss and mid-operation
// crashes as the common case; this registry lets tests and the market
// simulation provoke those failures deterministically. Code under test
// declares *named injection points* with DSM_INJECT_FAULT("io/journal-
// append"); tests arm a point with a trigger — fire with probability p,
// fire after the first N hits, fire at most M times — through a scoped
// RAII guard, and the instrumented code simulates the failure (partial
// write, dead server, dropped message) when the point fires.
//
// All randomness flows through the registry's own seeded Rng, so a failing
// run replays bit-for-bit. When DSM_DISABLE_FAULT_INJECTION is defined the
// macro compiles to a constant false and the whole mechanism costs nothing.

#ifndef DSM_COMMON_FAULT_H_
#define DSM_COMMON_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "obs/metrics.h"

namespace dsm {

// When a point should fire. Default: every hit.
struct FaultSpec {
  // Probability that an eligible hit fires (1.0 = always).
  double probability = 1.0;
  // Skip the first `fail_after` hits (0 = eligible immediately). A spec
  // with fail_after = N models "the N+1-th operation crashes".
  int fail_after = 0;
  // Maximum number of fires; -1 = unlimited. fail_after + max_fires = 1
  // models a single injected crash.
  int max_fires = -1;
};

// Registry of named injection points. Thread-safe; usually accessed via
// the process-wide Global() instance and the DSM_INJECT_FAULT macro.
class FaultInjector {
 public:
  FaultInjector() : rng_(kDefaultSeed) {}

  static FaultInjector& Global();

  // Re-seeds the randomness driving probabilistic triggers (deterministic
  // replay) without touching armed points or counters.
  void Seed(uint64_t seed);

  // Arms `point`; replaces any previous spec and resets its counters.
  void Arm(const std::string& point, FaultSpec spec = {});

  // Disarms `point`; hits no longer fire (counters are kept).
  void Disarm(const std::string& point);

  // Disarms every point and clears all counters.
  void Reset();

  // Called by instrumented code at the injection point. Counts the hit and
  // returns true when the armed trigger fires. Unarmed points never fire.
  bool ShouldFail(const std::string& point);

  bool armed(const std::string& point) const;
  // Times the point was reached / actually fired (0 for unknown points).
  // Backed by the metrics registry (`dsm.fault.hits.<point>` and
  // `dsm.fault.fires.<point>`), so injected-fault runs are auditable from
  // any metrics dump, not just through this accessor.
  int hits(const std::string& point) const;
  int fires(const std::string& point) const;

 private:
  static constexpr uint64_t kDefaultSeed = 0x5eed5eedULL;

  struct PointState {
    FaultSpec spec;
    bool armed = false;
    // Registry-backed hit/fire counters, created on first touch of the
    // point. Owned by the registry; valid for the process lifetime.
    obs::Counter* hits = nullptr;
    obs::Counter* fires = nullptr;
  };

  // points_[point] with its registry counters resolved.
  PointState& StateFor(const std::string& point);

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
  Rng rng_;
};

// RAII activation guard: arms a point on the global injector for the
// enclosing scope, disarms it on exit (tests never leak armed faults into
// each other).
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, FaultSpec spec = {})
      : point_(std::move(point)) {
    FaultInjector::Global().Arm(point_, spec);
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

}  // namespace dsm

// The injection point. Reads as a condition: the failure branch runs only
// when a test (or the simulation) armed the point and its trigger fires.
#ifndef DSM_DISABLE_FAULT_INJECTION
#define DSM_INJECT_FAULT(point) \
  (::dsm::FaultInjector::Global().ShouldFail(point))
#else
#define DSM_INJECT_FAULT(point) (false)
#endif

#endif  // DSM_COMMON_FAULT_H_
