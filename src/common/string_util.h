// Small string helpers shared across modules.

#ifndef DSM_COMMON_STRING_UTIL_H_
#define DSM_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace dsm {

// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Formats a dollar cost with fixed precision, e.g. "12.60".
std::string FormatCost(double cost);

}  // namespace dsm

#endif  // DSM_COMMON_STRING_UTIL_H_
