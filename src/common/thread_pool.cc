#include "common/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"

namespace dsm {
namespace {

// The pool a worker thread belongs to, so nested ParallelFor calls from
// inside a task detect re-entrancy and run inline instead of deadlocking
// on their own pool.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

int ResolveThreadCount(const ThreadPoolOptions& options) {
  if (options.num_threads > 0) return options.num_threads;
  if (const char* env = std::getenv("DSM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
    return 1;  // malformed or explicitly disabled: stay serial
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ += n;
}

void WaitGroup::Done() {
  // Notify while holding the lock: the moment the waiter observes
  // pending_ == 0 it may destroy this WaitGroup, so cv_ must not be
  // touched after the unlock.
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  if (pending_ == 0) cv_.notify_all();
}

void WaitGroup::CaptureException(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::move(e);
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr e = std::move(error_);
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : num_threads_(ResolveThreadCount(options)) {
  DSM_METRIC_GAUGE_SET("dsm.common.pool_threads", num_threads_);
  if (num_threads_ <= 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::OnWorkerThread() const { return current_pool == this; }

void ThreadPool::Submit(WaitGroup* wg, std::function<void()> fn) {
  DSM_METRIC_COUNTER_ADD("dsm.common.pool_tasks", 1);
  wg->Add(1);
  auto wrapped = [wg, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      wg->CaptureException(std::current_exception());
    }
    wg->Done();
  };
  // Inline mode — single-threaded pools and re-entrant submissions from a
  // worker run the task immediately on the calling thread, preserving
  // submission order exactly.
  if (num_threads_ <= 1 || OnWorkerThread()) {
    DSM_METRIC_COUNTER_ADD("dsm.common.pool_tasks_inline", 1);
    wrapped();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || num_threads_ <= 1 || OnWorkerThread()) {
    // Same exception contract as the pooled path: the whole batch runs,
    // the first exception is rethrown afterwards.
    std::exception_ptr first;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  WaitGroup wg;
  for (size_t i = 0; i < n; ++i) {
    Submit(&wg, [&fn, i] { fn(i); });
  }
  wg.Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* const pool = new ThreadPool(ThreadPoolOptions{});
  return *pool;
}

}  // namespace dsm
