// Status / Result<T> error handling for the dsm library.
//
// Public APIs in this library do not throw exceptions. Fallible operations
// return a Status (when there is no payload) or a Result<T> (a Status plus a
// value on success), following the idiom used by production database
// libraries such as RocksDB and Apache Arrow.

#ifndef DSM_COMMON_STATUS_H_
#define DSM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dsm {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  // A sharing was rejected because no plan satisfies every server's
  // capacity constraint (Algorithm 2's reject branch).
  kCapacityExceeded,
  // The fair-costing criteria cannot all be satisfied (Lemma 5.2:
  // sum of LPCs is below the global plan cost).
  kInfeasible,
  kInternal,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

// A success-or-error outcome. Cheap to copy in the success case.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status with a payload of type T on success.
template <typename T>
class Result {
 public:
  // Implicit conversions from a value / an error Status keep call sites
  // readable (`return value;` / `return Status::NotFound(...);`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dsm

// Propagates a non-OK Status to the caller.
#define DSM_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dsm::Status _dsm_status = (expr);      \
    if (!_dsm_status.ok()) return _dsm_status; \
  } while (false)

// Evaluates a Result<T> expression; on error propagates the Status,
// otherwise assigns the value to `lhs`.
#define DSM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define DSM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DSM_ASSIGN_OR_RETURN_NAME(a, b) DSM_ASSIGN_OR_RETURN_CONCAT(a, b)
#define DSM_ASSIGN_OR_RETURN(lhs, expr) \
  DSM_ASSIGN_OR_RETURN_IMPL(            \
      DSM_ASSIGN_OR_RETURN_NAME(_dsm_result_, __LINE__), lhs, expr)

#endif  // DSM_COMMON_STATUS_H_
