// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (workload generators, predicate
// generators, synthetic cost models) draw from an explicitly seeded Rng so
// that every experiment is reproducible bit-for-bit across runs.

#ifndef DSM_COMMON_RNG_H_
#define DSM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dsm {

// xoshiro256** seeded via splitmix64. Not cryptographic; fast and
// statistically solid for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Zipf-distributed index in [0, n) with exponent `s` (s = 0 is uniform).
  // Uses a precomputed CDF cached for the (n, s) pair most recently used.
  uint32_t Zipf(uint32_t n, double s);

  // Returns a uniformly random subset of size k of {0, .., n-1}.
  std::vector<uint32_t> Sample(uint32_t n, uint32_t k);

 private:
  uint64_t state_[4];

  // Cache for Zipf CDF.
  uint32_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace dsm

#endif  // DSM_COMMON_RNG_H_
