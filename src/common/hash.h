// Shared hashing primitives for the engine's hash tables.
//
// One seeded fnv1a-style byte mix plus a splitmix64 finalizer, used by both
// the legacy row store's TupleHash and the compact data plane's pre-hashed
// bag tables (maintain/tuple_store.h). Keeping the mix in one place means a
// hash-quality fix lands everywhere at once, and the forced-collision
// regression tests can reason about a single function.

#ifndef DSM_COMMON_HASH_H_
#define DSM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dsm {

inline constexpr uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ULL;

// fnv1a over raw bytes. The seed replaces the standard offset basis, so
// independent tables can hash the same keys differently.
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = kFnv1a64Offset) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnv1a64Prime;
  }
  return h;
}

// splitmix64 finalizer: full-avalanche bit mix. fnv1a alone is weak in the
// high bits (the last byte only reaches them through one multiply); open
// addressing masks with the low bits of the *finished* hash, so every input
// byte must influence every output bit.
inline uint64_t HashFinish(uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

// Folds one 64-bit lane into a running fnv1a state.
inline uint64_t HashMix64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xff;
    h *= kFnv1a64Prime;
    v >>= 8;
  }
  return h;
}

// Hash of a contiguous array of 64-bit words (a flat tuple's slots):
// seeded fnv1a over the words, then finished. This is THE row hash of the
// compact data plane — stored next to each row and never recomputed on
// rehash or probe.
inline uint64_t HashWords64(const uint64_t* words, size_t count,
                            uint64_t seed = kFnv1a64Offset) {
  uint64_t h = seed;
  for (size_t i = 0; i < count; ++i) h = HashMix64(h, words[i]);
  return HashFinish(h);
}

}  // namespace dsm

#endif  // DSM_COMMON_HASH_H_
