#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsm {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint32_t Rng::Zipf(uint32_t n, double s) {
  assert(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint32_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  const double u = UniformDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint32_t>(it - zipf_cdf_.begin());
}

std::vector<uint32_t> Rng::Sample(uint32_t n, uint32_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  for (uint32_t i = 0; i < k; ++i) {
    const auto j =
        static_cast<uint32_t>(UniformInt(i, static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dsm
