#include "common/string_util.h"

#include <cstdio>

namespace dsm {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatCost(double cost) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", cost);
  return buf;
}

}  // namespace dsm
