// ThreadPool: a small fixed-size task pool for intra-process parallelism.
//
// The maintenance engine fans independent per-view delta propagations out
// across views, and the plan enumerator fans out across predicate-pushdown
// choices; both need the same primitive: submit a batch of independent
// tasks, wait for all of them, and get deterministic results regardless of
// the pool size. Determinism is the caller's contract — tasks write only
// to caller-preallocated, index-addressed slots — and the pool's: with one
// thread every task runs inline, in submission order, on the caller's
// thread, so a pool of size 1 is bit-identical to not having a pool at
// all.
//
// Sizing: ThreadPoolOptions::num_threads == 0 resolves to the DSM_THREADS
// environment variable when set (clamped to >= 1), else the hardware
// concurrency. Exceptions thrown by tasks are captured and rethrown from
// WaitGroup::Wait / ParallelFor on the waiting thread (first one wins; the
// rest of the batch still runs to completion).

#ifndef DSM_COMMON_THREAD_POOL_H_
#define DSM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsm {

struct ThreadPoolOptions {
  // Worker threads. 0 = auto: DSM_THREADS env var if set, else
  // std::thread::hardware_concurrency(), else 1.
  int num_threads = 0;
};

// The thread count `options` resolves to (always >= 1).
int ResolveThreadCount(const ThreadPoolOptions& options);

// Counts outstanding tasks; Wait blocks until the count drains to zero and
// rethrows the first exception captured from a task.
class WaitGroup {
 public:
  WaitGroup() = default;
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void Add(size_t n);
  void Done();
  // First captured exception wins; later ones are dropped.
  void CaptureException(std::exception_ptr e);
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
  std::exception_ptr error_;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues `fn` under `wg` (Add is called here, Done when the task
  // finishes; a thrown exception is captured into the wait group). With a
  // single-threaded pool the task runs inline before Submit returns, so
  // submission order is execution order.
  void Submit(WaitGroup* wg, std::function<void()> fn);

  // Runs fn(0) .. fn(n-1) and blocks until all complete, rethrowing the
  // first task exception. Callers keep results deterministic by writing
  // only to slot i from fn(i). Nested calls from inside a pool task run
  // inline serially (no deadlock, same results).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  // Process-wide default pool, sized once from default ThreadPoolOptions
  // (i.e. DSM_THREADS) on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  int num_threads_ = 1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dsm

#endif  // DSM_COMMON_THREAD_POOL_H_
