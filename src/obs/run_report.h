// RunReport: the machine-readable record of one market run.
//
// A seeded MarketSimulation epoch produces a RunReport carrying the
// provider-visible outcome (ticks, maintenance work, view sizes, fault and
// recovery tallies), the buyer-visible outcome (FAIRCOST bill, when the
// caller attaches one), and the full telemetry snapshot. ToJsonText() is
// deterministic: with include_timings disabled the document is
// byte-stable for a fixed PRNG seed, which is what the golden tests and
// any regression harness key on.
//
// The same module owns the schema validators: required-key checks for run
// reports and for the bench --json reports, shared by the gtest suite and
// the report_lint tool so there is exactly one definition of "valid".

#ifndef DSM_OBS_RUN_REPORT_H_
#define DSM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace dsm {
namespace obs {

struct RunReportOptions {
  // Timing histograms are the only wall-clock-derived (hence
  // nondeterministic) content; excluding them makes the report byte-stable
  // across identically-seeded runs.
  bool include_timings = true;
  int indent = 2;
};

struct RunReport {
  int schema_version = 1;
  uint64_t seed = 0;
  int epoch = 0;  // number of completed Run() calls
  int ticks = 0;
  uint64_t updates_applied = 0;
  uint64_t maintenance_work = 0;  // tuple-pairs probed by view maintenance

  struct Recovery {
    int failures = 0;
    int recoveries = 0;
    int migrated = 0;
    int parked_total = 0;  // cumulative parkings
    int readmitted = 0;
    int last_event_tick = -1;
    double migration_cost_delta = 0.0;
  };
  Recovery recovery;
  size_t parked_now = 0;  // sharings parked at report time

  // (sharing id, view tuples) per registered buyer view.
  std::vector<std::pair<uint64_t, int64_t>> view_sizes;

  struct Costing {
    double alpha = 0.0;
    double global_cost = 0.0;
    bool criteria_satisfied = true;
    // (sharing id, attributed cost, LPC).
    std::vector<std::tuple<uint64_t, double, double>> sharings;
  };
  bool has_costing = false;
  Costing costing;

  MetricsSnapshot metrics;

  // Attaches the buyer-facing bill (typically from a
  // CostingSession::Snapshot, copied field by field by the caller).
  void SetCosting(Costing c) {
    has_costing = true;
    costing = std::move(c);
  }

  JsonValue ToJson(const RunReportOptions& options = {}) const;
  std::string ToJsonText(const RunReportOptions& options = {}) const {
    return ToJson(options).Dump(options.indent) + "\n";
  }
};

// Top-level keys every run report must carry.
// {"schema_version","seed","epoch","ticks","updates_applied",
//  "maintenance_work","recovery","views","telemetry"}
Status ValidateRunReportJson(const std::string& text);

// Bench --json documents: {"schema_version","bench","full_scale","smoke",
// "sections" (array of {"name","rows"}), "telemetry"}.
Status ValidateBenchReportJson(const std::string& text);

}  // namespace obs
}  // namespace dsm

#endif  // DSM_OBS_RUN_REPORT_H_
