// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms.
//
// The paper's argument is entirely quantitative (plan costs, fairness
// degrees, planning latencies), so the runtime meters itself: hot paths
// update instruments through the DSM_METRIC_* macros below, and reporting
// surfaces (RunReport, the bench --json reporter, dsm_inspect) pull a
// consistent MetricsSnapshot and export it as JSON or Prometheus text.
//
// Design points:
//  * Counters are sharded across cache-line-padded atomics so concurrent
//    increments from many threads never contend on one line; value() sums
//    the shards (exact — increments are never lost, only summed lazily).
//  * Histograms have fixed, immutable bucket upper bounds; observation is
//    two relaxed atomic adds plus CAS loops for sum/min/max. Percentiles
//    are estimated from the cumulative bucket counts.
//  * Instruments are created on first use and never destroyed; Reset()
//    zeroes values but keeps every name and pointer valid, so call sites
//    may cache instrument pointers in function-local statics (the macros
//    do exactly that — one registry lock per call site per process).
//  * Metric names follow the `dsm.<module>.<name>` convention (DESIGN.md
//    §9); nothing enforces it, everything assumes it.
//
// Compiling with -DDSM_DISABLE_TELEMETRY turns every DSM_METRIC_* macro
// into a no-op with zero code at the call site. The registry classes stay
// available (FaultInjector's audit counters and the tests use them
// directly), only the hot-path instrumentation compiles out.

#ifndef DSM_OBS_METRICS_H_
#define DSM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace dsm {
namespace obs {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Exact sum of all shards. Concurrent Adds that complete before the call
  // are always included.
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  // Hash of the thread id, so threads spread across shards.
  static size_t ShardIndex();

  Shard shards_[kShards];
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }

  void Reset();

 private:
  const std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Default latency buckets in milliseconds: 0.001ms .. ~16s, powers of 4.
const std::vector<double>& DefaultLatencyBucketsMs();

// Point-in-time copy of one histogram, with percentile estimation.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  // Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  // uses the recorded min/max for the extreme buckets. 0 when empty.
  double Percentile(double q) const;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // min, max, p50, p95, buckets: [...]}}}. With include_timings false the
  // histograms section is omitted entirely — wall-clock-derived values are
  // the only nondeterminism in a seeded run, and dropping them makes the
  // snapshot byte-stable.
  JsonValue ToJson(bool include_timings = true) const;

  // Prometheus text exposition format (names have '.' mapped to '_').
  std::string ToPrometheusText() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // Find-or-create. Returned pointers are valid for the registry's
  // lifetime (process lifetime for Global()).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` is only used on first creation; later callers get the
  // existing histogram regardless of the bounds they pass.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBucketsMs());

  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument. Names and instrument pointers stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII timer observing its lifetime (in ms) into a histogram.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram)
      : histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace dsm

// --- Instrumentation macros -------------------------------------------------
// Each call site caches its instrument pointer in a function-local static:
// the registry lock is taken once per site, then updates are lock-free.

#ifndef DSM_DISABLE_TELEMETRY

#define DSM_METRIC_COUNTER_ADD(name, delta)                               \
  do {                                                                    \
    static ::dsm::obs::Counter* const dsm_metric_counter_ =               \
        ::dsm::obs::MetricsRegistry::Global().GetCounter(name);           \
    dsm_metric_counter_->Add(static_cast<uint64_t>(delta));               \
  } while (0)

#define DSM_METRIC_GAUGE_SET(name, value)                                 \
  do {                                                                    \
    static ::dsm::obs::Gauge* const dsm_metric_gauge_ =                   \
        ::dsm::obs::MetricsRegistry::Global().GetGauge(name);             \
    dsm_metric_gauge_->Set(static_cast<double>(value));                   \
  } while (0)

#define DSM_METRIC_HISTOGRAM_OBSERVE(name, value)                         \
  do {                                                                    \
    static ::dsm::obs::Histogram* const dsm_metric_histogram_ =           \
        ::dsm::obs::MetricsRegistry::Global().GetHistogram(name);         \
    dsm_metric_histogram_->Observe(static_cast<double>(value));           \
  } while (0)

#define DSM_METRIC_SCOPED_LATENCY_MS_CAT2(a, b) a##b
#define DSM_METRIC_SCOPED_LATENCY_MS_CAT(a, b) \
  DSM_METRIC_SCOPED_LATENCY_MS_CAT2(a, b)
// Observes the enclosing scope's duration (ms) into histogram `name`.
#define DSM_METRIC_SCOPED_LATENCY_MS(name)                                \
  static ::dsm::obs::Histogram* const DSM_METRIC_SCOPED_LATENCY_MS_CAT(   \
      dsm_metric_scoped_hist_, __LINE__) =                                \
      ::dsm::obs::MetricsRegistry::Global().GetHistogram(name);           \
  ::dsm::obs::ScopedLatencyTimer DSM_METRIC_SCOPED_LATENCY_MS_CAT(        \
      dsm_metric_scoped_timer_, __LINE__)(                                \
      DSM_METRIC_SCOPED_LATENCY_MS_CAT(dsm_metric_scoped_hist_, __LINE__))

#else  // DSM_DISABLE_TELEMETRY

#define DSM_METRIC_COUNTER_ADD(name, delta) ((void)0)
#define DSM_METRIC_GAUGE_SET(name, value) ((void)0)
#define DSM_METRIC_HISTOGRAM_OBSERVE(name, value) ((void)0)
#define DSM_METRIC_SCOPED_LATENCY_MS(name) ((void)0)

#endif  // DSM_DISABLE_TELEMETRY

#endif  // DSM_OBS_METRICS_H_
