// Minimal JSON document model for the observability layer.
//
// Every machine-readable artifact this library emits — metrics snapshots,
// trace dumps, run reports, bench reports — is built as a JsonValue tree
// and serialized with Dump(). Serialization is deliberately deterministic:
// object members are stored in a sorted map, integers print without an
// exponent, and doubles use the shortest round-trip form (std::to_chars),
// so two structurally identical documents are byte-identical. ParseJson is
// the matching reader used by tests (round-trip checks) and by the
// report_lint tool to validate emitted reports without any external
// dependency.

#ifndef DSM_OBS_JSON_H_
#define DSM_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dsm {
namespace obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(int v) : type_(Type::kInt), int_(v) {}     // NOLINT
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}  // NOLINT
  JsonValue(uint64_t v)  // NOLINT
      : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}  // NOLINT
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  // Numeric value regardless of integer/double storage.
  double number() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  int64_t int_value() const {
    return type_ == Type::kInt ? int_ : static_cast<int64_t>(double_);
  }
  const std::string& string_value() const { return string_; }

  // Array access.
  std::vector<JsonValue>& items() { return items_; }
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  // Object access (sorted by key — the source of deterministic output).
  std::map<std::string, JsonValue>& members() { return members_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }
  void Set(const std::string& key, JsonValue v) {
    members_[key] = std::move(v);
  }
  bool Has(const std::string& key) const {
    return members_.count(key) != 0;
  }
  // nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  // Serializes the tree. indent < 0 emits the compact one-line form;
  // indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

// Shortest round-trip decimal form of `v` (std::to_chars); "null" is never
// produced — non-finite values are clamped to 0 (JSON has no inf/nan).
std::string FormatJsonDouble(double v);

// Strict-enough recursive-descent parser for the documents this library
// emits (and general JSON): objects, arrays, strings with escapes,
// integers, doubles, true/false/null. Trailing garbage is an error.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace obs
}  // namespace dsm

#endif  // DSM_OBS_JSON_H_
