// Lightweight hierarchical tracing: scoped spans in a ring buffer.
//
// A ScopedSpan measures one region with the monotonic clock and records
// itself into a Tracer when it closes. Nesting is tracked per thread, so a
// span opened while another is active becomes its child (parent id +
// depth), giving a call-tree view of a planning pass: process-sharing >
// enumerate > faircost, with per-span key/value annotations (plan counts,
// chosen costs, fired fault points...).
//
// The Tracer keeps the most recent `capacity` completed spans in a ring
// buffer — tracing a million-tick simulation costs bounded memory and the
// tail, the most recent activity, is exactly what a post-mortem wants.
// DumpJson()/ToJson() export the buffer; ParseSpansJson round-trips a dump
// back into spans (used by tests and offline tooling).
//
// DSM_TRACE_SPAN compiles to nothing under -DDSM_DISABLE_TELEMETRY, like
// the metrics macros.

#ifndef DSM_OBS_TRACE_H_
#define DSM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace dsm {
namespace obs {

struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  int depth = 0;
  std::string name;
  // Nanoseconds since the tracer's epoch (steady_clock at construction).
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void Record(TraceSpan span);

  // Completed spans, oldest first (at most capacity()).
  std::vector<TraceSpan> spans() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Spans recorded since construction/Clear, including overwritten ones.
  uint64_t total_recorded() const;
  uint64_t dropped() const;

  void Clear();

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // {"capacity": N, "total_recorded": N, "dropped": N, "spans": [...]}.
  JsonValue ToJson() const;
  std::string DumpJson(int indent = 2) const { return ToJson().Dump(indent); }

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  size_t head_ = 0;  // next write position once the ring is full
  uint64_t total_ = 0;
  std::atomic<uint64_t> next_id_{1};
};

// Parses the "spans" array of a Tracer JSON dump (or a bare span array).
Result<std::vector<TraceSpan>> ParseSpansJson(const std::string& text);

// RAII span. Constructing one while another ScopedSpan is alive on the
// same thread makes this one its child.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string key, std::string value) {
    span_.annotations.emplace_back(std::move(key), std::move(value));
  }

  // Annotates the innermost active span of this thread, if any — lets
  // instrumented callees attach data to their caller's span without
  // plumbing a span pointer through.
  static void AnnotateCurrent(std::string key, std::string value);

  uint64_t id() const { return span_.id; }

 private:
  Tracer* tracer_;
  TraceSpan span_;
  ScopedSpan* parent_;
};

}  // namespace obs
}  // namespace dsm

#ifndef DSM_DISABLE_TELEMETRY

#define DSM_TRACE_CAT2(a, b) a##b
#define DSM_TRACE_CAT(a, b) DSM_TRACE_CAT2(a, b)
// Opens a span on the global tracer for the enclosing scope.
#define DSM_TRACE_SPAN(name)                        \
  ::dsm::obs::ScopedSpan DSM_TRACE_CAT(dsm_span_, __LINE__)( \
      &::dsm::obs::Tracer::Global(), (name))
// Key/value annotation on this thread's innermost active span.
#define DSM_TRACE_ANNOTATE(key, value) \
  ::dsm::obs::ScopedSpan::AnnotateCurrent((key), (value))

#else  // DSM_DISABLE_TELEMETRY

#define DSM_TRACE_SPAN(name) ((void)0)
#define DSM_TRACE_ANNOTATE(key, value) ((void)0)

#endif  // DSM_DISABLE_TELEMETRY

#endif  // DSM_OBS_TRACE_H_
