#include "obs/run_report.h"

namespace dsm {
namespace obs {

JsonValue RunReport::ToJson(const RunReportOptions& options) const {
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", JsonValue(schema_version));
  root.Set("seed", JsonValue(seed));
  root.Set("epoch", JsonValue(epoch));
  root.Set("ticks", JsonValue(ticks));
  root.Set("updates_applied", JsonValue(updates_applied));
  root.Set("maintenance_work", JsonValue(maintenance_work));

  JsonValue rec = JsonValue::Object();
  rec.Set("failures", JsonValue(recovery.failures));
  rec.Set("recoveries", JsonValue(recovery.recoveries));
  rec.Set("migrated", JsonValue(recovery.migrated));
  rec.Set("parked_total", JsonValue(recovery.parked_total));
  rec.Set("readmitted", JsonValue(recovery.readmitted));
  rec.Set("last_event_tick", JsonValue(recovery.last_event_tick));
  rec.Set("migration_cost_delta", JsonValue(recovery.migration_cost_delta));
  rec.Set("parked_now", JsonValue(parked_now));
  root.Set("recovery", std::move(rec));

  JsonValue views = JsonValue::Array();
  for (const auto& [id, size] : view_sizes) {
    JsonValue v = JsonValue::Object();
    v.Set("sharing_id", JsonValue(id));
    v.Set("tuples", JsonValue(size));
    views.Append(std::move(v));
  }
  root.Set("views", std::move(views));

  if (has_costing) {
    JsonValue cj = JsonValue::Object();
    cj.Set("alpha", JsonValue(costing.alpha));
    cj.Set("global_cost", JsonValue(costing.global_cost));
    cj.Set("criteria_satisfied", JsonValue(costing.criteria_satisfied));
    JsonValue sharings = JsonValue::Array();
    for (const auto& [id, ac, lpc] : costing.sharings) {
      JsonValue s = JsonValue::Object();
      s.Set("sharing_id", JsonValue(id));
      s.Set("attributed_cost", JsonValue(ac));
      s.Set("lpc", JsonValue(lpc));
      sharings.Append(std::move(s));
    }
    cj.Set("sharings", std::move(sharings));
    root.Set("costing", std::move(cj));
  }

  root.Set("telemetry", metrics.ToJson(options.include_timings));
  return root;
}

namespace {

Status RequireKeys(const JsonValue& doc,
                   const std::vector<const char*>& keys,
                   const std::string& what) {
  if (!doc.is_object()) {
    return Status::InvalidArgument(what + " is not a JSON object");
  }
  for (const char* key : keys) {
    if (!doc.Has(key)) {
      return Status::InvalidArgument(what + " missing required key '" +
                                     key + "'");
    }
  }
  return Status::OK();
}

Status RequireTelemetry(const JsonValue& doc) {
  const JsonValue* telemetry = doc.Find("telemetry");
  DSM_RETURN_IF_ERROR(
      RequireKeys(*telemetry, {"counters", "gauges"}, "telemetry"));
  return Status::OK();
}

}  // namespace

Status ValidateRunReportJson(const std::string& text) {
  DSM_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(text));
  DSM_RETURN_IF_ERROR(RequireKeys(
      doc,
      {"schema_version", "seed", "epoch", "ticks", "updates_applied",
       "maintenance_work", "recovery", "views", "telemetry"},
      "run report"));
  DSM_RETURN_IF_ERROR(RequireKeys(
      *doc.Find("recovery"),
      {"failures", "recoveries", "migrated", "parked_total", "readmitted"},
      "recovery section"));
  if (!doc.Find("views")->is_array()) {
    return Status::InvalidArgument("'views' is not an array");
  }
  return RequireTelemetry(doc);
}

Status ValidateBenchReportJson(const std::string& text) {
  DSM_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(text));
  DSM_RETURN_IF_ERROR(RequireKeys(
      doc, {"schema_version", "bench", "full_scale", "smoke", "sections",
            "telemetry"},
      "bench report"));
  const JsonValue* sections = doc.Find("sections");
  if (!sections->is_array()) {
    return Status::InvalidArgument("'sections' is not an array");
  }
  for (const JsonValue& section : sections->items()) {
    DSM_RETURN_IF_ERROR(RequireKeys(section, {"name", "rows"}, "section"));
    if (!section.Find("rows")->is_array()) {
      return Status::InvalidArgument("section 'rows' is not an array");
    }
  }
  return RequireTelemetry(doc);
}

}  // namespace obs
}  // namespace dsm
