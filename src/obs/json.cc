#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dsm {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  std::string out(buf, res.ptr);
  // Bare integers like "42" stay valid JSON numbers but lose the "this was
  // a double" hint on round-trip; that ambiguity is acceptable here.
  return out;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
             : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble:
      *out += FormatJsonDouble(double_);
      break;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        *out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      size_t i = 0;
      for (const auto& [key, value] : members_) {
        *out += pad;
        *out += '"';
        *out += JsonEscape(key);
        *out += '"';
        *out += colon;
        value.DumpTo(out, indent, depth + 1);
        if (++i < members_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    DSM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      DSM_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  Result<JsonValue> ParseKeyword() {
    static const struct {
      const char* word;
      JsonValue value;
    } kKeywords[] = {{"true", JsonValue(true)},
                     {"false", JsonValue(false)},
                     {"null", JsonValue()}};
    for (const auto& kw : kKeywords) {
      const size_t len = std::string(kw.word).size();
      if (text_.compare(pos_, len, kw.word) == 0) {
        pos_ += len;
        return kw.value;
      }
    }
    return Error("invalid keyword");
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Only the control-character range is ever emitted by our writer;
          // encode the code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    const bool integral =
        token.find_first_of(".eE") == std::string::npos;
    if (integral) {
      int64_t v = 0;
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), v);
      if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
        return JsonValue(v);
      }
      // Overflow: fall through to double.
    }
    double d = 0.0;
    const auto res =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(d);
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      DSM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      DSM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      DSM_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace dsm
