#include "obs/metrics.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace dsm {
namespace obs {

size_t Counter::ShardIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return index;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([](std::vector<double> b) {
        std::sort(b.begin(), b.end());
        b.erase(std::unique(b.begin(), b.end()), b.end());
        return b;
      }(std::move(bounds))),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);

  // fetch_add on atomic<double> is C++20 but spotty across stdlibs; CAS
  // loops keep the sum/min/max updates portable.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
  if (prior == 0) {
    // First observation seeds min and max. A concurrent first observation
    // is resolved by the CAS loops below on subsequent updates; metering
    // precision, not strict linearizability, is the goal here.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur_min = min_.load(std::memory_order_relaxed);
  while (v < cur_min && !min_.compare_exchange_weak(
                            cur_min, v, std::memory_order_relaxed)) {
  }
  double cur_max = max_.load(std::memory_order_relaxed);
  while (v > cur_max && !max_.compare_exchange_weak(
                            cur_max, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>* const buckets = [] {
    auto* b = new std::vector<double>();
    // 0.001ms .. ~16.7s in powers of 4: 13 buckets + overflow.
    double bound = 0.001;
    for (int i = 0; i < 13; ++i) {
      b->push_back(bound);
      bound *= 4.0;
    }
    return b;
  }();
  return *buckets;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i == 0) return std::min(max, bounds.empty() ? max : bounds[0]);
      if (i >= bounds.size()) return max;  // overflow bucket
      return std::min(max, bounds[i]);
    }
  }
  return max;
}

JsonValue MetricsSnapshot::ToJson(bool include_timings) const {
  JsonValue root = JsonValue::Object();
  JsonValue counters_json = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, JsonValue(value));
  }
  root.Set("counters", std::move(counters_json));

  JsonValue gauges_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_json.Set(name, JsonValue(value));
  }
  root.Set("gauges", std::move(gauges_json));

  if (include_timings) {
    JsonValue hists_json = JsonValue::Object();
    for (const auto& [name, h] : histograms) {
      JsonValue hj = JsonValue::Object();
      hj.Set("count", JsonValue(h.count));
      hj.Set("sum", JsonValue(h.sum));
      hj.Set("min", JsonValue(h.min));
      hj.Set("max", JsonValue(h.max));
      hj.Set("mean", JsonValue(h.mean()));
      hj.Set("p50", JsonValue(h.Percentile(0.50)));
      hj.Set("p95", JsonValue(h.Percentile(0.95)));
      hj.Set("p99", JsonValue(h.Percentile(0.99)));
      JsonValue bounds_json = JsonValue::Array();
      for (const double b : h.bounds) bounds_json.Append(JsonValue(b));
      hj.Set("bounds", std::move(bounds_json));
      JsonValue buckets_json = JsonValue::Array();
      for (const uint64_t b : h.buckets) buckets_json.Append(JsonValue(b));
      hj.Set("buckets", std::move(buckets_json));
      hists_json.Set(name, std::move(hj));
    }
    root.Set("histograms", std::move(hists_json));
  }
  return root;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
// (and any other byte) to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + FormatJsonDouble(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += pname + "_bucket{le=\"" + FormatJsonDouble(h.bounds[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + FormatJsonDouble(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = hist->bounds();
    hs.buckets.resize(hist->num_buckets());
    for (size_t i = 0; i < hs.buckets.size(); ++i) {
      hs.buckets[i] = hist->bucket_count(i);
    }
    hs.count = hist->count();
    hs.sum = hist->sum();
    hs.min = hist->min();
    hs.max = hist->max();
    snapshot.histograms[name] = std::move(hs);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace dsm
