#include "obs/trace.h"

#include <algorithm>

namespace dsm {
namespace obs {

namespace {
thread_local ScopedSpan* tls_current_span = nullptr;
}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::Global() {
  static Tracer* const instance = new Tracer();
  return *instance;
}

void Tracer::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  // Ring full: overwrite the oldest span.
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

JsonValue Tracer::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue spans_json = JsonValue::Array();
  for (const TraceSpan& span : spans()) {
    JsonValue sj = JsonValue::Object();
    sj.Set("id", JsonValue(span.id));
    sj.Set("parent_id", JsonValue(span.parent_id));
    sj.Set("depth", JsonValue(span.depth));
    sj.Set("name", JsonValue(span.name));
    sj.Set("start_ns", JsonValue(span.start_ns));
    sj.Set("duration_ns", JsonValue(span.duration_ns));
    JsonValue ann = JsonValue::Object();
    for (const auto& [key, value] : span.annotations) {
      ann.Set(key, JsonValue(value));
    }
    sj.Set("annotations", std::move(ann));
    spans_json.Append(std::move(sj));
  }
  root.Set("capacity", JsonValue(capacity_));
  root.Set("total_recorded", JsonValue(total_recorded()));
  root.Set("dropped", JsonValue(dropped()));
  root.Set("spans", std::move(spans_json));
  return root;
}

Result<std::vector<TraceSpan>> ParseSpansJson(const std::string& text) {
  DSM_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(text));
  const JsonValue* spans_json = &doc;
  if (doc.is_object()) {
    spans_json = doc.Find("spans");
    if (spans_json == nullptr) {
      return Status::InvalidArgument("trace dump has no 'spans' array");
    }
  }
  if (!spans_json->is_array()) {
    return Status::InvalidArgument("'spans' is not an array");
  }
  std::vector<TraceSpan> out;
  out.reserve(spans_json->items().size());
  for (const JsonValue& sj : spans_json->items()) {
    if (!sj.is_object()) {
      return Status::InvalidArgument("span entry is not an object");
    }
    TraceSpan span;
    const JsonValue* field = nullptr;
    if ((field = sj.Find("id")) == nullptr || !field->is_number()) {
      return Status::InvalidArgument("span missing numeric 'id'");
    }
    span.id = static_cast<uint64_t>(field->int_value());
    if ((field = sj.Find("parent_id")) != nullptr && field->is_number()) {
      span.parent_id = static_cast<uint64_t>(field->int_value());
    }
    if ((field = sj.Find("depth")) != nullptr && field->is_number()) {
      span.depth = static_cast<int>(field->int_value());
    }
    if ((field = sj.Find("name")) == nullptr || !field->is_string()) {
      return Status::InvalidArgument("span missing string 'name'");
    }
    span.name = field->string_value();
    if ((field = sj.Find("start_ns")) != nullptr && field->is_number()) {
      span.start_ns = static_cast<uint64_t>(field->int_value());
    }
    if ((field = sj.Find("duration_ns")) != nullptr && field->is_number()) {
      span.duration_ns = static_cast<uint64_t>(field->int_value());
    }
    if ((field = sj.Find("annotations")) != nullptr && field->is_object()) {
      for (const auto& [key, value] : field->members()) {
        if (!value.is_string()) {
          return Status::InvalidArgument("span annotation is not a string");
        }
        span.annotations.emplace_back(key, value.string_value());
      }
    }
    out.push_back(std::move(span));
  }
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name)
    : tracer_(tracer), parent_(tls_current_span) {
  span_.id = tracer_->NextSpanId();
  span_.parent_id = parent_ == nullptr ? 0 : parent_->span_.id;
  span_.depth = parent_ == nullptr ? 0 : parent_->span_.depth + 1;
  span_.name = std::move(name);
  span_.start_ns = tracer_->NowNanos();
  tls_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  span_.duration_ns = tracer_->NowNanos() - span_.start_ns;
  tls_current_span = parent_;
  tracer_->Record(std::move(span_));
}

void ScopedSpan::AnnotateCurrent(std::string key, std::string value) {
  if (tls_current_span != nullptr) {
    tls_current_span->Annotate(std::move(key), std::move(value));
  }
}

}  // namespace obs
}  // namespace dsm
