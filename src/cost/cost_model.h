// CostModel: dollar cost per time unit of maintenance operators.
//
// The paper assumes "the data market service provider has a cost model for
// estimating the dollar cost of each subexpression" (Section 3.3) and, in
// the evaluation, uses the calibrated analytical model of its substrate
// system [9] "instead of setting up and running the sharings". This
// interface is that assumption made explicit. Two implementations ship:
//  * DefaultCostModel — analytical, driven by catalog statistics and the
//    cluster's dollar rates (the [9]-style model).
//  * TableDrivenCostModel — explicit per-join costs, used for the paper's
//    synthetic experiments ("the cost of each join is a random number
//    between 1 and 1e5") and the worked examples (4.1, 4.2, 5.1).

#ifndef DSM_COST_COST_MODEL_H_
#define DSM_COST_COST_MODEL_H_

#include "cluster/cluster.h"
#include "expr/view_key.h"
#include "plan/plan.h"

namespace dsm {

// Per-resource dollar decomposition of an operator's cost, mirroring how
// an IaaS bill itemizes compute, traffic and storage.
struct CostBreakdown {
  double cpu = 0.0;
  double network = 0.0;
  double storage = 0.0;

  double total() const { return cpu + network + storage; }
  CostBreakdown& operator+=(const CostBreakdown& other) {
    cpu += other.cpu;
    network += other.network;
    storage += other.storage;
    return *this;
  }
};

class CostModel {
 public:
  virtual ~CostModel() = default;

  // True if the model's query methods may be called from multiple threads
  // concurrently AND answer independently of query order. The online
  // planner only fans candidate scoring out over a thread pool when this
  // holds; models whose memoization is order-dependent (e.g. the
  // TableDrivenCostModel, which draws memoized values from an Rng in
  // first-query order) must keep the default false.
  virtual bool SupportsConcurrentQueries() const { return false; }

  // $ per time unit to maintain the join view `out` at `server` from the
  // child views (each possibly on a different server; cross-server children
  // imply delta-copy traffic as in Figure 2).
  virtual double JoinCost(const ViewKey& out, ServerId server,
                          const ViewKey& left, ServerId left_server,
                          const ViewKey& right, ServerId right_server) = 0;

  // $ per time unit to derive `out` from the existing view `src` by
  // applying residual predicates and/or relocating the delta stream to
  // `out_server`. Zero when src == out on the same server.
  virtual double FilterCopyCost(const ViewKey& src, ServerId src_server,
                                const ViewKey& out, ServerId out_server) = 0;

  // $ per time unit for a (possibly filtered) base-table leaf. Unfiltered
  // leaves cost nothing: owners already maintain their tables.
  virtual double LeafCost(TableId table, const ViewKey& key,
                          ServerId server) = 0;

  // Update tuples per time unit emitted by the view — both the input load
  // its consumers must process and the basis for capacity accounting.
  virtual double DeltaRate(const ViewKey& key) = 0;

  // perc_s(P) from Eq. (3): the fraction of the *unpredicated* result of
  // key.tables that this (possibly predicated) view materializes.
  virtual double Perc(const ViewKey& key) = 0;

  // Itemized versions of the cost queries. The default attributes the
  // whole cost to cpu; models that distinguish resources override these
  // (DefaultCostModel does).
  virtual CostBreakdown JoinCostDetail(const ViewKey& out, ServerId server,
                                       const ViewKey& left,
                                       ServerId left_server,
                                       const ViewKey& right,
                                       ServerId right_server) {
    return CostBreakdown{
        JoinCost(out, server, left, left_server, right, right_server), 0.0,
        0.0};
  }
  virtual CostBreakdown FilterCopyCostDetail(const ViewKey& src,
                                             ServerId src_server,
                                             const ViewKey& out,
                                             ServerId out_server) {
    return CostBreakdown{FilterCopyCost(src, src_server, out, out_server),
                         0.0, 0.0};
  }
};

// Standalone $ cost of one plan node (no reuse considered).
double PlanNodeCost(const SharingPlan& plan, size_t index, CostModel* model);

// Standalone $ cost of a whole plan: the sum of its node costs. This is
// C[P] in the paper's notation when no subexpression is reused.
double PlanCost(const SharingPlan& plan, CostModel* model);

// Input delta rate a node imposes on its server (for capacity checks).
double PlanNodeLoad(const SharingPlan& plan, size_t index, CostModel* model);

// Itemized standalone cost of a whole plan (cpu / network / storage).
CostBreakdown PlanCostBreakdown(const SharingPlan& plan, CostModel* model);

}  // namespace dsm

#endif  // DSM_COST_COST_MODEL_H_
