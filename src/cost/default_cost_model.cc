#include "cost/default_cost_model.h"

#include <algorithm>

namespace dsm {

double DefaultCostModel::JoinCost(const ViewKey& out, ServerId server,
                                  const ViewKey& left, ServerId left_server,
                                  const ViewKey& right,
                                  ServerId right_server) {
  return JoinCostDetail(out, server, left, left_server, right, right_server)
      .total();
}

CostBreakdown DefaultCostModel::JoinCostDetail(const ViewKey& out,
                                               ServerId server,
                                               const ViewKey& left,
                                               ServerId left_server,
                                               const ViewKey& right,
                                               ServerId right_server) {
  const CostRates& rates = cluster_->rates();
  const double out_card = estimator_.Cardinality(out);
  const double left_card = estimator_.Cardinality(left);
  const double right_card = estimator_.Cardinality(right);
  const double left_rate = estimator_.DeltaRate(left);
  const double right_rate = estimator_.DeltaRate(right);

  // Network: child delta streams copied to `server` when remote.
  double net_bytes = 0.0;
  if (left_server != server) {
    net_bytes += left_rate * estimator_.TupleBytes(left.tables);
  }
  if (right_server != server) {
    net_bytes += right_rate * estimator_.TupleBytes(right.tables);
  }

  // CPU: each incoming delta tuple probes the opposite side's index and
  // emits its matching output tuples (fanout = |out| / |input side|).
  const double cpu_tuples =
      left_rate * (1.0 + out_card / std::max(1.0, left_card)) +
      right_rate * (1.0 + out_card / std::max(1.0, right_card));

  // Storage: the materialized join view.
  const double storage_bytes = out_card * estimator_.TupleBytes(out.tables);

  CostBreakdown detail;
  detail.network = net_bytes * rates.network_per_byte;
  detail.cpu = cpu_tuples * rates.cpu_per_tuple;
  detail.storage = storage_bytes * rates.storage_per_byte;
  return detail;
}

double DefaultCostModel::FilterCopyCost(const ViewKey& src,
                                        ServerId src_server,
                                        const ViewKey& out,
                                        ServerId out_server) {
  return FilterCopyCostDetail(src, src_server, out, out_server).total();
}

CostBreakdown DefaultCostModel::FilterCopyCostDetail(const ViewKey& src,
                                                     ServerId src_server,
                                                     const ViewKey& out,
                                                     ServerId out_server) {
  if (src == out && src_server == out_server) return CostBreakdown{};
  const CostRates& rates = cluster_->rates();
  const double src_rate = estimator_.DeltaRate(src);

  double net_bytes = 0.0;
  if (src_server != out_server) {
    net_bytes = src_rate * estimator_.TupleBytes(src.tables);
  }
  // Filtering inspects every source delta tuple.
  const double cpu_tuples = src_rate;
  const double storage_bytes =
      estimator_.Cardinality(out) * estimator_.TupleBytes(out.tables);

  CostBreakdown detail;
  detail.network = net_bytes * rates.network_per_byte;
  detail.cpu = cpu_tuples * rates.cpu_per_tuple;
  detail.storage = storage_bytes * rates.storage_per_byte;
  return detail;
}

double DefaultCostModel::LeafCost(TableId table, const ViewKey& key,
                                  ServerId server) {
  if (key.predicates.empty()) return 0.0;  // owner maintains the base table
  const ViewKey base(TableSet::Of(table));
  return FilterCopyCost(base, server, key, server);
}

double DefaultCostModel::DeltaRate(const ViewKey& key) {
  return estimator_.DeltaRate(key);
}

double DefaultCostModel::Perc(const ViewKey& key) {
  if (key.predicates.empty()) return 1.0;
  const ViewKey unpred(key.tables);
  return std::clamp(
      estimator_.Cardinality(key) / estimator_.Cardinality(unpred), 0.0, 1.0);
}

}  // namespace dsm
