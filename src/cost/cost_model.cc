#include "cost/cost_model.h"

#include <cassert>

namespace dsm {

double PlanNodeCost(const SharingPlan& plan, size_t index, CostModel* model) {
  const PlanNode& n = plan.nodes[index];
  switch (n.type) {
    case PlanNodeType::kLeaf:
      return model->LeafCost(n.base_table, n.key, n.server);
    case PlanNodeType::kJoin: {
      const PlanNode& l = plan.nodes[static_cast<size_t>(n.left)];
      const PlanNode& r = plan.nodes[static_cast<size_t>(n.right)];
      return model->JoinCost(n.key, n.server, l.key, l.server, r.key,
                             r.server);
    }
    case PlanNodeType::kFilterCopy: {
      const PlanNode& src = plan.nodes[static_cast<size_t>(n.left)];
      return model->FilterCopyCost(src.key, src.server, n.key, n.server);
    }
  }
  assert(false && "unreachable");
  return 0.0;
}

double PlanCost(const SharingPlan& plan, CostModel* model) {
  double total = 0.0;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    total += PlanNodeCost(plan, i, model);
  }
  return total;
}

CostBreakdown PlanCostBreakdown(const SharingPlan& plan, CostModel* model) {
  CostBreakdown total;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& n = plan.nodes[i];
    switch (n.type) {
      case PlanNodeType::kLeaf:
        // Leaf filtering is a cpu-side cost.
        total.cpu += model->LeafCost(n.base_table, n.key, n.server);
        break;
      case PlanNodeType::kJoin: {
        const PlanNode& l = plan.nodes[static_cast<size_t>(n.left)];
        const PlanNode& r = plan.nodes[static_cast<size_t>(n.right)];
        total += model->JoinCostDetail(n.key, n.server, l.key, l.server,
                                       r.key, r.server);
        break;
      }
      case PlanNodeType::kFilterCopy: {
        const PlanNode& src = plan.nodes[static_cast<size_t>(n.left)];
        total += model->FilterCopyCostDetail(src.key, src.server, n.key,
                                             n.server);
        break;
      }
    }
  }
  return total;
}

double PlanNodeLoad(const SharingPlan& plan, size_t index, CostModel* model) {
  const PlanNode& n = plan.nodes[index];
  switch (n.type) {
    case PlanNodeType::kLeaf:
      // Filtered leaves process the base table's delta stream.
      return n.key.predicates.empty()
                 ? 0.0
                 : model->DeltaRate(ViewKey(TableSet::Of(n.base_table)));
    case PlanNodeType::kJoin: {
      const PlanNode& l = plan.nodes[static_cast<size_t>(n.left)];
      const PlanNode& r = plan.nodes[static_cast<size_t>(n.right)];
      return model->DeltaRate(l.key) + model->DeltaRate(r.key);
    }
    case PlanNodeType::kFilterCopy: {
      const PlanNode& src = plan.nodes[static_cast<size_t>(n.left)];
      return model->DeltaRate(src.key);
    }
  }
  assert(false && "unreachable");
  return 0.0;
}

}  // namespace dsm
