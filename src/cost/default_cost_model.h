// DefaultCostModel: analytical cost model in the style of the substrate
// system [9] (Al-Kiswany et al., EDBT 2013).
//
// Resource usage is estimated from catalog statistics (cardinalities,
// update rates, tuple widths) and mapped to dollars with the cluster's
// CostRates, the way IaaS bills map resource consumption to money:
//   cpu      — delta tuples processed and output tuples produced,
//   network  — delta bytes shipped between servers,
//   storage  — bytes of materialized view state.

#ifndef DSM_COST_DEFAULT_COST_MODEL_H_
#define DSM_COST_DEFAULT_COST_MODEL_H_

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "cost/cost_model.h"
#include "expr/selectivity.h"

namespace dsm {

class DefaultCostModel : public CostModel {
 public:
  DefaultCostModel(const Catalog* catalog, const Cluster* cluster)
      : catalog_(catalog), cluster_(cluster), estimator_(catalog) {}

  // All estimates are pure functions of the catalog; the estimator's
  // memo is lock-protected, so concurrent queries are safe and
  // order-independent.
  bool SupportsConcurrentQueries() const override { return true; }

  double JoinCost(const ViewKey& out, ServerId server, const ViewKey& left,
                  ServerId left_server, const ViewKey& right,
                  ServerId right_server) override;
  double FilterCopyCost(const ViewKey& src, ServerId src_server,
                        const ViewKey& out, ServerId out_server) override;
  double LeafCost(TableId table, const ViewKey& key,
                  ServerId server) override;
  double DeltaRate(const ViewKey& key) override;
  double Perc(const ViewKey& key) override;

  CostBreakdown JoinCostDetail(const ViewKey& out, ServerId server,
                               const ViewKey& left, ServerId left_server,
                               const ViewKey& right,
                               ServerId right_server) override;
  CostBreakdown FilterCopyCostDetail(const ViewKey& src,
                                     ServerId src_server,
                                     const ViewKey& out,
                                     ServerId out_server) override;

  StatsEstimator& estimator() { return estimator_; }

 private:
  const Catalog* catalog_;
  const Cluster* cluster_;
  StatsEstimator estimator_;
};

}  // namespace dsm

#endif  // DSM_COST_DEFAULT_COST_MODEL_H_
