#include "cost/table_cost_model.h"

#include <algorithm>
#include <cmath>

namespace dsm {

TableDrivenCostModel::PairKey TableDrivenCostModel::MakeKey(TableSet a,
                                                            TableSet b) {
  return PairKey{std::min(a.mask(), b.mask()), std::max(a.mask(), b.mask())};
}

void TableDrivenCostModel::SetJoinCost(TableSet a, TableSet b, double cost) {
  join_costs_[MakeKey(a, b)] = cost;
}

double TableDrivenCostModel::LookupJoinCost(TableSet a, TableSet b) {
  const PairKey key = MakeKey(a, b);
  const auto it = join_costs_.find(key);
  if (it != join_costs_.end()) return it->second;
  const double cost =
      rng_.UniformDouble(options_.random_min, options_.random_max);
  join_costs_.emplace(key, cost);
  return cost;
}

double TableDrivenCostModel::JoinCost(const ViewKey& /*out*/, ServerId server,
                                      const ViewKey& left,
                                      ServerId left_server,
                                      const ViewKey& right,
                                      ServerId right_server) {
  double cost = LookupJoinCost(left.tables, right.tables);
  if (left_server != server) cost += options_.transfer_cost;
  if (right_server != server) cost += options_.transfer_cost;
  return cost;
}

double TableDrivenCostModel::FilterCopyCost(const ViewKey& src,
                                            ServerId src_server,
                                            const ViewKey& out,
                                            ServerId out_server) {
  if (src == out && src_server == out_server) return 0.0;
  double cost = 0.0;
  if (src_server != out_server) cost += options_.transfer_cost;
  return cost;
}

double TableDrivenCostModel::LeafCost(TableId /*table*/,
                                      const ViewKey& /*key*/,
                                      ServerId /*server*/) {
  return 0.0;
}

double TableDrivenCostModel::DeltaRate(const ViewKey& /*key*/) {
  return options_.delta_rate;
}

double TableDrivenCostModel::Perc(const ViewKey& key) {
  return std::pow(options_.predicate_selectivity,
                  static_cast<double>(key.predicates.size()));
}

}  // namespace dsm
