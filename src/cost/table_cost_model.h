// TableDrivenCostModel: explicit per-join costs.
//
// Used for (a) the paper's synthetic scalability experiments, where "the
// cost of each join is a random number between 1 and 1e5" (Section 6.1.2),
// and (b) reconstructing the worked examples (4.1, 4.2, 5.1) whose
// arithmetic depends on exact hand-picked subexpression costs.
//
// The cost of a join depends on the unordered pair of input table sets, so
// c[(ab)c] and c[a(bc)] are independent knobs, exactly as in Example 4.1.

#ifndef DSM_COST_TABLE_COST_MODEL_H_
#define DSM_COST_TABLE_COST_MODEL_H_

#include <unordered_map>

#include "common/rng.h"
#include "cost/cost_model.h"

namespace dsm {

class TableDrivenCostModel : public CostModel {
 public:
  struct Options {
    // Costs for join pairs not set explicitly are drawn uniformly from
    // [random_min, random_max] and memoized (deterministic per seed).
    double random_min = 1.0;
    double random_max = 1e5;
    uint64_t seed = 42;
    // $ charged whenever a delta stream crosses servers.
    double transfer_cost = 0.0;
    // Per-predicate selectivity used for Perc (Eq. 3) in synthetic runs.
    double predicate_selectivity = 0.5;
    // Uniform per-view delta rate used for capacity accounting.
    double delta_rate = 1.0;
  };

  TableDrivenCostModel() : TableDrivenCostModel(Options{}) {}
  explicit TableDrivenCostModel(Options options)
      : options_(options), rng_(options.seed) {}

  // Pins the cost of joining (a result over) `a` with (a result over) `b`.
  // Order-insensitive.
  void SetJoinCost(TableSet a, TableSet b, double cost);

  double JoinCost(const ViewKey& out, ServerId server, const ViewKey& left,
                  ServerId left_server, const ViewKey& right,
                  ServerId right_server) override;
  double FilterCopyCost(const ViewKey& src, ServerId src_server,
                        const ViewKey& out, ServerId out_server) override;
  double LeafCost(TableId table, const ViewKey& key,
                  ServerId server) override;
  double DeltaRate(const ViewKey& key) override;
  double Perc(const ViewKey& key) override;

 private:
  struct PairKey {
    uint64_t lo;
    uint64_t hi;
    friend bool operator==(const PairKey& a, const PairKey& b) {
      return a.lo == b.lo && a.hi == b.hi;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t z = k.lo * 0x9e3779b97f4a7c15ULL ^ (k.hi + 0x94d049bb133111ebULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  static PairKey MakeKey(TableSet a, TableSet b);

  // Explicit or memoized-random cost of the pair.
  double LookupJoinCost(TableSet a, TableSet b);

  Options options_;
  Rng rng_;
  std::unordered_map<PairKey, double, PairKeyHash> join_costs_;
};

}  // namespace dsm

#endif  // DSM_COST_TABLE_COST_MODEL_H_
