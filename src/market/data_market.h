// DataMarket: the service-provider facade.
//
// Data owners register tables (with the monetary value they ask for);
// buyers submit dynamic data sharings as ad-hoc queries. The market plans
// each sharing online (MANAGEDRISK by default), maintains the global plan,
// and attributes operational costs fairly with FAIRCOST. Prices combine
// the owners' data values with the attributed operational cost; mapping
// cost to final price beyond a linear margin is the economics problem the
// paper leaves external.

#ifndef DSM_MARKET_DATA_MARKET_H_
#define DSM_MARKET_DATA_MARKET_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "cost/default_cost_model.h"
#include "costing/fair_cost.h"
#include "costing/incremental_containment.h"
#include "costing/lpc.h"
#include "globalplan/global_plan.h"
#include "online/planner.h"
#include "online/replanner.h"
#include "plan/enumerator.h"
#include "plan/join_graph.h"
#include "sharing/sharing.h"

namespace dsm {

struct DataMarketOptions {
  enum class Planner { kGreedy, kNormalize, kManagedRisk };
  Planner planner = Planner::kManagedRisk;
  EnumeratorOptions enumerator;
  // price = Σ member tables' data value + price_margin × attributed cost.
  double price_margin = 1.2;
};

class DataMarket {
 public:
  DataMarket() : DataMarket(DataMarketOptions{}) {}
  explicit DataMarket(DataMarketOptions options);
  ~DataMarket();

  DataMarket(const DataMarket&) = delete;
  DataMarket& operator=(const DataMarket&) = delete;

  // --- Provider setup -----------------------------------------------------
  ServerId AddServer(std::string name,
                     double capacity =
                         std::numeric_limits<double>::infinity());

  // A data owner offers a table, hosted on `home`, asking `data_value`
  // dollars per time unit for access. Tables cannot be added once the
  // first sharing has been submitted (the join graph is then frozen).
  Result<TableId> RegisterTable(TableDef def, ServerId home,
                                double data_value = 0.0,
                                std::string owner = "");

  // --- Buyers -------------------------------------------------------------
  struct SharingReceipt {
    SharingId id = 0;
    std::string plan;            // human-readable chosen plan
    double marginal_cost = 0.0;  // $ added to the provider's bill
    bool reused_identical = false;
  };

  // Submits the sharing ⋈(table_names) filtered by `predicates`, delivered
  // to `destination`. Returns kCapacityExceeded if it must be rejected.
  Result<SharingReceipt> SubmitSharing(
      const std::vector<std::string>& table_names,
      std::vector<Predicate> predicates, ServerId destination,
      std::string buyer);

  Status CancelSharing(SharingId id);

  // --- Costing & pricing ----------------------------------------------------
  struct SharingCost {
    SharingId id = 0;
    std::string buyer;
    double attributed_cost = 0.0;  // AC(S), FAIRCOST
    double lpc = 0.0;
    double data_value = 0.0;  // Σ owner-asked values of member tables
    double price = 0.0;       // data_value + margin × AC
  };
  // Revenue a data owner earns from the active sharings: each sharing pays
  // every member table's asked value, so an owner's revenue is the sum of
  // their tables' values over the sharings that include them (the simple
  // per-table split of [20]'s multi-seller revenue-sharing question).
  struct OwnerRevenue {
    std::string owner;
    double revenue = 0.0;
  };

  struct CostReport {
    std::vector<SharingCost> sharings;
    std::vector<OwnerRevenue> owner_revenue;
    double alpha = 0.0;
    double total_cost = 0.0;
  };

  // Runs FAIRCOST over the current global plan. ACs of existing sharings
  // may change as new sharings arrive (Section 5) but never exceed LPC.
  Result<CostReport> ComputeCosts();

  // Re-plans existing sharings against the current global plan (Section
  // 7's first future-work item); buyers keep receiving the same data.
  // Returns the cost before/after and the number of plans changed.
  Result<ReplanReport> ReplanExistingSharings();

  double TotalOperationalCost() const;
  size_t num_sharings() const;
  const Catalog& catalog() const { return catalog_; }
  const Cluster& cluster() const { return cluster_; }
  const GlobalPlan& global_plan() const { return *global_plan_; }

 private:
  Status EnsurePlanner();

  DataMarketOptions options_;
  Catalog catalog_;
  Cluster cluster_;
  std::vector<double> table_value_;
  std::vector<std::string> table_owner_;

  std::unique_ptr<DefaultCostModel> model_;
  std::unique_ptr<JoinGraph> graph_;
  std::unique_ptr<PlanEnumerator> enumerator_;
  std::unique_ptr<GlobalPlan> global_plan_;
  std::unique_ptr<OnlinePlanner> planner_;
  std::unique_ptr<LpcCalculator> lpc_;
  // Containment DAG persisted across ComputeCosts calls; only sharings
  // submitted or cancelled in between are re-compared.
  IncrementalContainmentIndex dag_index_;
};

}  // namespace dsm

#endif  // DSM_MARKET_DATA_MARKET_H_
