#include "market/data_market.h"

#include <map>

#include "costing/savings.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"

namespace dsm {

DataMarket::DataMarket(DataMarketOptions options)
    : options_(std::move(options)) {
  model_ = std::make_unique<DefaultCostModel>(&catalog_, &cluster_);
}

DataMarket::~DataMarket() = default;

ServerId DataMarket::AddServer(std::string name, double capacity) {
  return cluster_.AddServer(std::move(name), capacity);
}

Result<TableId> DataMarket::RegisterTable(TableDef def, ServerId home,
                                          double data_value,
                                          std::string owner) {
  if (planner_ != nullptr) {
    return Status::InvalidArgument(
        "tables cannot be registered after the first sharing");
  }
  DSM_ASSIGN_OR_RETURN(const TableId id, catalog_.AddTable(std::move(def)));
  DSM_RETURN_IF_ERROR(cluster_.PlaceTable(id, home));
  table_value_.resize(id + 1, 0.0);
  table_value_[id] = data_value;
  table_owner_.resize(id + 1);
  table_owner_[id] = std::move(owner);
  model_->estimator().InvalidateCache();
  return id;
}

Status DataMarket::EnsurePlanner() {
  if (planner_ != nullptr) return Status::OK();
  if (cluster_.num_servers() == 0) {
    return Status::InvalidArgument("no servers registered");
  }
  if (catalog_.num_tables() == 0) {
    return Status::InvalidArgument("no tables registered");
  }
  graph_ = std::make_unique<JoinGraph>(JoinGraph::FromCatalog(catalog_));
  enumerator_ = std::make_unique<PlanEnumerator>(
      &catalog_, &cluster_, graph_.get(), model_.get(), options_.enumerator);
  global_plan_ = std::make_unique<GlobalPlan>(&cluster_, model_.get());
  lpc_ = std::make_unique<LpcCalculator>(enumerator_.get(), model_.get());

  PlannerContext ctx;
  ctx.catalog = &catalog_;
  ctx.cluster = &cluster_;
  ctx.graph = graph_.get();
  ctx.model = model_.get();
  ctx.global_plan = global_plan_.get();
  ctx.enumerator = enumerator_.get();

  switch (options_.planner) {
    case DataMarketOptions::Planner::kGreedy:
      planner_ = std::make_unique<GreedyPlanner>(ctx);
      break;
    case DataMarketOptions::Planner::kNormalize:
      planner_ = std::make_unique<NormalizePlanner>(ctx);
      break;
    case DataMarketOptions::Planner::kManagedRisk:
      planner_ = std::make_unique<ManagedRiskPlanner>(ctx);
      break;
  }
  return Status::OK();
}

Result<DataMarket::SharingReceipt> DataMarket::SubmitSharing(
    const std::vector<std::string>& table_names,
    std::vector<Predicate> predicates, ServerId destination,
    std::string buyer) {
  DSM_RETURN_IF_ERROR(EnsurePlanner());
  if (destination >= cluster_.num_servers()) {
    return Status::InvalidArgument("unknown destination server");
  }
  TableSet tables;
  for (const std::string& name : table_names) {
    DSM_ASSIGN_OR_RETURN(const TableId id, catalog_.FindTable(name));
    tables.Add(id);
  }
  if (tables.empty()) {
    return Status::InvalidArgument("sharing lists no tables");
  }
  for (const Predicate& p : predicates) {
    if (!tables.Contains(p.table)) {
      return Status::InvalidArgument(
          "predicate references a table outside the sharing");
    }
  }
  const Sharing sharing(tables, std::move(predicates), destination,
                        std::move(buyer));
  DSM_ASSIGN_OR_RETURN(const PlanChoice choice,
                       planner_->ProcessSharing(sharing));
  SharingReceipt receipt;
  receipt.id = choice.id;
  receipt.plan = choice.plan.ToString(catalog_);
  receipt.marginal_cost = choice.marginal_cost;
  receipt.reused_identical = choice.reused_identical;
  return receipt;
}

Status DataMarket::CancelSharing(SharingId id) {
  if (global_plan_ == nullptr) {
    return Status::NotFound("no sharings submitted yet");
  }
  return global_plan_->RemoveSharing(id);
}

Result<DataMarket::CostReport> DataMarket::ComputeCosts() {
  if (global_plan_ == nullptr || global_plan_->num_sharings() == 0) {
    return Status::InvalidArgument("no active sharings to cost");
  }
  DSM_ASSIGN_OR_RETURN(
      const FairCostProblem problem,
      BuildFairCostProblem(*global_plan_, lpc_.get(), &dag_index_));
  DSM_ASSIGN_OR_RETURN(
      const FairCostResult fair,
      FairCost::Compute(problem.entries, problem.global_cost));

  CostReport report;
  report.alpha = fair.alpha;
  report.total_cost = problem.global_cost;
  report.sharings.reserve(problem.entries.size());
  std::map<std::string, double> revenue;
  for (size_t i = 0; i < problem.entries.size(); ++i) {
    SharingCost cost;
    cost.id = problem.ids[i];
    cost.buyer = problem.sharings[i].buyer();
    cost.attributed_cost = fair.ac[i];
    cost.lpc = problem.entries[i].lpc;
    for (const TableId t : problem.sharings[i].tables().ToVector()) {
      cost.data_value += table_value_[t];
      if (t < table_owner_.size() && !table_owner_[t].empty()) {
        revenue[table_owner_[t]] += table_value_[t];
      }
    }
    cost.price = cost.data_value + options_.price_margin * fair.ac[i];
    report.sharings.push_back(std::move(cost));
  }
  report.owner_revenue.reserve(revenue.size());
  for (auto& [owner, total] : revenue) {
    report.owner_revenue.push_back(OwnerRevenue{owner, total});
  }
  return report;
}

Result<ReplanReport> DataMarket::ReplanExistingSharings() {
  if (planner_ == nullptr || global_plan_->num_sharings() == 0) {
    return Status::InvalidArgument("no active sharings to re-plan");
  }
  PlannerContext ctx;
  ctx.catalog = &catalog_;
  ctx.cluster = &cluster_;
  ctx.graph = graph_.get();
  ctx.model = model_.get();
  ctx.global_plan = global_plan_.get();
  ctx.enumerator = enumerator_.get();
  Replanner replanner(ctx);
  return replanner.Improve();
}

double DataMarket::TotalOperationalCost() const {
  return global_plan_ == nullptr ? 0.0 : global_plan_->TotalCost();
}

size_t DataMarket::num_sharings() const {
  return global_plan_ == nullptr ? 0 : global_plan_->num_sharings();
}

}  // namespace dsm
