#include "market/simulation.h"

#include <algorithm>
#include <cmath>

#include "common/fault.h"
#include "obs/metrics.h"

namespace dsm {

namespace {

Tuple RandomTupleCompressed(const Catalog& catalog, TableId table, Rng* rng,
                            double compression) {
  const TableDef& def = catalog.table(table);
  Tuple tuple;
  tuple.reserve(def.columns.size());
  for (const ColumnDef& col : def.columns) {
    const auto lo = static_cast<int64_t>(col.min_value);
    const auto domain = std::max<int64_t>(
        1, static_cast<int64_t>(col.distinct_values * compression));
    tuple.emplace_back(rng->UniformInt(lo, lo + domain - 1));
  }
  return tuple;
}

}  // namespace

Tuple RandomTupleForTable(const Catalog& catalog, TableId table, Rng* rng) {
  return RandomTupleCompressed(catalog, table, rng, 1.0);
}

Status MarketSimulation::EnsureBase(TableId table) {
  if (engine_.base(table) != nullptr) return Status::OK();
  return engine_.RegisterBase(table);
}

Status MarketSimulation::AddBuyerView(SharingId id, const ViewKey& key) {
  if (buyer_views_.count(id) != 0) {
    return Status::AlreadyExists("buyer view already registered");
  }
  for (const TableId t : key.tables.ToVector()) {
    DSM_RETURN_IF_ERROR(EnsureBase(t));
  }
  DSM_ASSIGN_OR_RETURN(const ViewId view, engine_.RegisterView(key));
  buyer_views_[id] = view;
  return Status::OK();
}

void MarketSimulation::AttachFaultDomain(Cluster* cluster,
                                         RecoveryPlanner* recovery) {
  cluster_ = cluster;
  recovery_ = recovery;
}

Status MarketSimulation::ScheduleServerFailure(int tick, ServerId server) {
  if (cluster_ == nullptr || recovery_ == nullptr) {
    return Status::InvalidArgument(
        "attach a fault domain before scheduling failures");
  }
  if (server >= cluster_->num_servers()) {
    return Status::InvalidArgument("no such server");
  }
  events_.push_back(ServerEvent{tick, server, /*up=*/false});
  return Status::OK();
}

Status MarketSimulation::ScheduleServerRecovery(int tick, ServerId server) {
  if (cluster_ == nullptr || recovery_ == nullptr) {
    return Status::InvalidArgument(
        "attach a fault domain before scheduling recoveries");
  }
  if (server >= cluster_->num_servers()) {
    return Status::InvalidArgument("no such server");
  }
  events_.push_back(ServerEvent{tick, server, /*up=*/true});
  return Status::OK();
}

Status MarketSimulation::SetSharingViewActive(SharingId id, bool active) {
  const auto it = buyer_views_.find(id);
  // Sharings without a registered buyer view (planned but not simulated)
  // have nothing to deactivate.
  if (it == buyer_views_.end()) return Status::OK();
  return engine_.SetViewActive(it->second, active);
}

Status MarketSimulation::HandleServerDown(ServerId server) {
  DSM_RETURN_IF_ERROR(cluster_->MarkDown(server));
  DSM_ASSIGN_OR_RETURN(const RecoveryReport report,
                       recovery_->OnServerDown(server, ticks_elapsed_));
  ++stats_.failures;
  DSM_METRIC_COUNTER_ADD("dsm.market.failure_events", 1);
  stats_.last_event_tick = ticks_elapsed_;
  for (const MigratedSharing& m : report.migrated) {
    ++stats_.migrated;
    stats_.migration_cost_delta += m.cost_after - m.cost_before;
  }
  for (const SharingId id : report.parked) {
    ++stats_.parked;
    DSM_RETURN_IF_ERROR(SetSharingViewActive(id, false));
  }
  return Status::OK();
}

Status MarketSimulation::ApplyReadmissions(
    const std::vector<MigratedSharing>& readmitted) {
  for (const MigratedSharing& m : readmitted) {
    ++stats_.readmitted;
    stats_.migration_cost_delta += m.cost_after - m.cost_before;
    DSM_RETURN_IF_ERROR(SetSharingViewActive(m.id, true));
  }
  return Status::OK();
}

Status MarketSimulation::HandleServerUp(ServerId server) {
  DSM_RETURN_IF_ERROR(cluster_->MarkUp(server));
  ++stats_.recoveries;
  DSM_METRIC_COUNTER_ADD("dsm.market.recovery_events", 1);
  stats_.last_event_tick = ticks_elapsed_;
  // Capacity just returned: retry every parked sharing immediately.
  DSM_ASSIGN_OR_RETURN(
      const std::vector<MigratedSharing> readmitted,
      recovery_->RetryParked(ticks_elapsed_, /*force=*/true));
  return ApplyReadmissions(readmitted);
}

Status MarketSimulation::ProcessServerEvents() {
  if (cluster_ == nullptr || recovery_ == nullptr) return Status::OK();

  for (auto it = events_.begin(); it != events_.end();) {
    if (it->tick != ticks_elapsed_) {
      ++it;
      continue;
    }
    const ServerEvent event = *it;
    it = events_.erase(it);
    DSM_RETURN_IF_ERROR(event.up ? HandleServerUp(event.server)
                                 : HandleServerDown(event.server));
  }

  // Probabilistic chaos, armed by tests/demos: kill a random live server.
  if (DSM_INJECT_FAULT("sim/random-server-failure") &&
      cluster_->num_live_servers() > 0) {
    const std::vector<ServerId> live = cluster_->live_servers();
    const ServerId victim = live[static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(live.size()) - 1))];
    DSM_RETURN_IF_ERROR(HandleServerDown(victim));
  }

  // Parked sharings whose backoff elapsed get another chance.
  if (recovery_->num_parked() > 0) {
    DSM_ASSIGN_OR_RETURN(const std::vector<MigratedSharing> readmitted,
                         recovery_->RetryParked(ticks_elapsed_));
    DSM_RETURN_IF_ERROR(ApplyReadmissions(readmitted));
  }
  return Status::OK();
}

Status MarketSimulation::Run(int ticks, double scale,
                             double delete_fraction) {
  for (int tick = 0; tick < ticks; ++tick) {
    DSM_RETURN_IF_ERROR(ProcessServerEvents());
    // Per-table batch sizes derive from the catalog's update rates: the
    // same statistics the planners' cost model consumed. The whole tick is
    // generated first, then applied through the engine's batched path so
    // every view is refreshed once per table per tick.
    std::vector<TableUpdate> tick_updates;
    for (TableId t = 0; t < catalog_->num_tables(); ++t) {
      if (engine_.base(t) == nullptr) continue;
      const double rate = catalog_->table(t).stats.update_rate;
      const int batch =
          std::max(0, static_cast<int>(std::llround(rate * scale)));
      if (batch == 0) continue;
      TableUpdate update;
      update.table = t;
      std::vector<Tuple>& live = live_tuples_[t];
      for (int i = 0; i < batch; ++i) {
        if (!live.empty() && rng_.Bernoulli(delete_fraction)) {
          const size_t idx = static_cast<size_t>(rng_.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          update.deletes.push_back(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
          Tuple tuple = RandomTupleCompressed(*catalog_, t, &rng_,
                                              domain_compression_);
          live.push_back(tuple);
          update.inserts.push_back(std::move(tuple));
        }
      }
      updates_applied_ += update.inserts.size() + update.deletes.size();
      tick_updates.push_back(std::move(update));
    }
    if (!tick_updates.empty()) {
      DSM_RETURN_IF_ERROR(engine_.ApplyUpdates(tick_updates));
    }
    ++ticks_elapsed_;
    DSM_METRIC_COUNTER_ADD("dsm.market.ticks", 1);
  }
  ++epoch_;
  return Status::OK();
}

obs::RunReport MarketSimulation::BuildRunReport() const {
  obs::RunReport report;
  report.seed = seed_;
  report.epoch = epoch_;
  report.ticks = ticks_elapsed_;
  report.updates_applied = updates_applied_;
  report.maintenance_work = engine_.work();

  report.recovery.failures = stats_.failures;
  report.recovery.recoveries = stats_.recoveries;
  report.recovery.migrated = stats_.migrated;
  report.recovery.parked_total = stats_.parked;
  report.recovery.readmitted = stats_.readmitted;
  report.recovery.last_event_tick = stats_.last_event_tick;
  report.recovery.migration_cost_delta = stats_.migration_cost_delta;
  report.parked_now = parked_sharings();

  for (const auto& [id, view] : buyer_views_) {
    report.view_sizes.emplace_back(id, engine_.view(view)->TotalSize());
  }

  report.metrics = obs::MetricsRegistry::Global().Snapshot();
  return report;
}

Result<bool> MarketSimulation::VerifyViews() const {
  for (const auto& [id, view] : buyer_views_) {
    if (!engine_.view_active(view)) continue;  // parked: nothing served
    DSM_ASSIGN_OR_RETURN(const Relation expected,
                         engine_.Recompute(engine_.view_key(view)));
    if (!engine_.view(view)->BagEquals(expected)) {
      return false;
    }
  }
  return true;
}

int64_t MarketSimulation::ViewSize(SharingId id) const {
  const auto it = buyer_views_.find(id);
  if (it == buyer_views_.end()) return -1;
  return engine_.view(it->second)->TotalSize();
}

}  // namespace dsm
