#include "market/simulation.h"

#include <algorithm>
#include <cmath>

namespace dsm {

namespace {

Tuple RandomTupleCompressed(const Catalog& catalog, TableId table, Rng* rng,
                            double compression) {
  const TableDef& def = catalog.table(table);
  Tuple tuple;
  tuple.reserve(def.columns.size());
  for (const ColumnDef& col : def.columns) {
    const auto lo = static_cast<int64_t>(col.min_value);
    const auto domain = std::max<int64_t>(
        1, static_cast<int64_t>(col.distinct_values * compression));
    tuple.emplace_back(rng->UniformInt(lo, lo + domain - 1));
  }
  return tuple;
}

}  // namespace

Tuple RandomTupleForTable(const Catalog& catalog, TableId table, Rng* rng) {
  return RandomTupleCompressed(catalog, table, rng, 1.0);
}

Status MarketSimulation::EnsureBase(TableId table) {
  if (engine_.base(table) != nullptr) return Status::OK();
  return engine_.RegisterBase(table);
}

Status MarketSimulation::AddBuyerView(SharingId id, const ViewKey& key) {
  if (buyer_views_.count(id) != 0) {
    return Status::AlreadyExists("buyer view already registered");
  }
  for (const TableId t : key.tables.ToVector()) {
    DSM_RETURN_IF_ERROR(EnsureBase(t));
  }
  DSM_ASSIGN_OR_RETURN(const ViewId view, engine_.RegisterView(key));
  buyer_views_[id] = view;
  return Status::OK();
}

Status MarketSimulation::Run(int ticks, double scale,
                             double delete_fraction) {
  for (int tick = 0; tick < ticks; ++tick) {
    // Per-table batch sizes derive from the catalog's update rates: the
    // same statistics the planners' cost model consumed.
    for (TableId t = 0; t < catalog_->num_tables(); ++t) {
      if (engine_.base(t) == nullptr) continue;
      const double rate = catalog_->table(t).stats.update_rate;
      const int batch =
          std::max(0, static_cast<int>(std::llround(rate * scale)));
      if (batch == 0) continue;
      std::vector<Tuple> inserts;
      std::vector<Tuple> deletes;
      std::vector<Tuple>& live = live_tuples_[t];
      for (int i = 0; i < batch; ++i) {
        if (!live.empty() && rng_.Bernoulli(delete_fraction)) {
          const size_t idx = static_cast<size_t>(rng_.UniformInt(
              0, static_cast<int64_t>(live.size()) - 1));
          deletes.push_back(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
          Tuple tuple = RandomTupleCompressed(*catalog_, t, &rng_,
                                              domain_compression_);
          live.push_back(tuple);
          inserts.push_back(std::move(tuple));
        }
      }
      updates_applied_ += inserts.size() + deletes.size();
      DSM_RETURN_IF_ERROR(engine_.ApplyUpdate(t, inserts, deletes));
    }
    ++ticks_elapsed_;
  }
  return Status::OK();
}

Result<bool> MarketSimulation::VerifyViews() const {
  for (const auto& [id, view] : buyer_views_) {
    DSM_ASSIGN_OR_RETURN(const Relation expected,
                         engine_.Recompute(engine_.view_key(view)));
    if (!engine_.view(view)->BagEquals(expected)) {
      return false;
    }
  }
  return true;
}

int64_t MarketSimulation::ViewSize(SharingId id) const {
  const auto it = buyer_views_.find(id);
  if (it == buyer_views_.end()) return -1;
  return engine_.view(it->second)->TotalSize();
}

}  // namespace dsm
