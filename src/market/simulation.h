// MarketSimulation: discrete-time execution of a data market.
//
// The paper's evaluation stops at the cost model; this module actually
// runs the market: every tick, each base table receives fresh tuples in
// proportion to its catalog update rate (plus a share of deletions), the
// delta engine maintains every buyer's purchased view, and the provider's
// measured maintenance work accumulates. It is the end-to-end harness the
// examples and integration tests use to demonstrate that planned sharings
// really stay fresh.
//
// With a cluster and a RecoveryPlanner attached, the simulation also
// exercises the provider's fault model: server failure/recovery events can
// be scheduled at specific ticks (or injected probabilistically through
// the "sim/random-server-failure" fault point). A failure migrates every
// recoverable sharing to live servers and parks the rest — parked buyer
// views are deactivated, re-admitted views are recomputed — and the
// degradation is reported through parked_sharings()/recovery_stats()
// instead of failing opaquely.

#ifndef DSM_MARKET_SIMULATION_H_
#define DSM_MARKET_SIMULATION_H_

#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "maintain/delta_engine.h"
#include "obs/run_report.h"
#include "online/recovery_planner.h"
#include "sharing/sharing.h"

namespace dsm {

// A random tuple matching `table`'s schema: each column drawn uniformly
// from [min_value, min_value + distinct_values).
Tuple RandomTupleForTable(const Catalog& catalog, TableId table, Rng* rng);

class MarketSimulation {
 public:
  // Cumulative fault/recovery bookkeeping for reporting.
  struct RecoveryStats {
    int failures = 0;    // server-down events processed
    int recoveries = 0;  // server-up events processed
    int migrated = 0;    // sharings re-planned onto live servers
    int parked = 0;      // sharings parked (cumulative)
    int readmitted = 0;  // parked sharings later re-admitted
    int last_event_tick = -1;
    // Σ (new − old) marginal cost over migrations: what the failures cost
    // the provider per time unit, the input to FAIRCOST re-pricing.
    double migration_cost_delta = 0.0;
  };

  // `domain_compression` < 1 shrinks every column's value domain by that
  // factor when generating tuples, raising join hit rates — useful for
  // demos that stream far fewer tuples than the catalog's cardinalities.
  // `engine_options` controls the maintenance engine's fan-out pool and
  // operand caching; the default honors DSM_THREADS.
  MarketSimulation(const Catalog* catalog, uint64_t seed,
                   double domain_compression = 1.0,
                   DeltaEngineOptions engine_options = {})
      : catalog_(catalog),
        engine_(catalog, engine_options),
        rng_(seed),
        seed_(seed),
        domain_compression_(domain_compression) {}

  MarketSimulation(const MarketSimulation&) = delete;
  MarketSimulation& operator=(const MarketSimulation&) = delete;

  // Registers the buyer's purchased view; its base tables are registered
  // on demand.
  Status AddBuyerView(SharingId id, const ViewKey& key);

  // --- Fault domain --------------------------------------------------------
  // Wires the simulation to the provider's cluster and recovery planner;
  // required before scheduling failure/recovery events. The cluster must
  // be the one the recovery planner's context points at.
  void AttachFaultDomain(Cluster* cluster, RecoveryPlanner* recovery);

  // Schedules server `s` to fail (resp. return) at the start of absolute
  // tick `tick` (ticks count from 0 across Run() calls).
  Status ScheduleServerFailure(int tick, ServerId server);
  Status ScheduleServerRecovery(int tick, ServerId server);

  // Advances `ticks` time units. Per tick each registered base table
  // receives round(update_rate * scale) random inserts; `delete_fraction`
  // of previously inserted tuples are deleted instead.
  Status Run(int ticks, double scale, double delete_fraction = 0.1);

  // Checks every *active* buyer view against a from-scratch recomputation
  // (parked sharings have no view to check).
  Result<bool> VerifyViews() const;

  const DeltaEngine& engine() const { return engine_; }
  // Tuples of each buyer's view (for reporting). -1 if unknown.
  int64_t ViewSize(SharingId id) const;
  uint64_t updates_applied() const { return updates_applied_; }
  int ticks_elapsed() const { return ticks_elapsed_; }

  // --- Degradation reporting ----------------------------------------------
  // Sharings currently parked (waiting for capacity to return).
  size_t parked_sharings() const {
    return recovery_ == nullptr ? 0 : recovery_->num_parked();
  }
  const RecoveryStats& recovery_stats() const { return stats_; }

  // --- Reporting -----------------------------------------------------------
  // Number of completed Run() calls (one "epoch" per call).
  int epoch() const { return epoch_; }
  uint64_t seed() const { return seed_; }

  // Machine-readable record of the run so far: seed, epochs, maintenance
  // work, per-buyer view sizes, recovery tallies, and the current global
  // metrics snapshot. Callers attach the FAIRCOST bill via
  // RunReport::SetCosting before serializing.
  obs::RunReport BuildRunReport() const;

 private:
  struct ServerEvent {
    int tick = 0;
    ServerId server = 0;
    bool up = false;  // false = failure, true = recovery
  };

  Status EnsureBase(TableId table);
  Status ProcessServerEvents();
  Status HandleServerDown(ServerId server);
  Status HandleServerUp(ServerId server);
  Status ApplyReadmissions(const std::vector<MigratedSharing>& readmitted);
  Status SetSharingViewActive(SharingId id, bool active);

  const Catalog* catalog_;
  DeltaEngine engine_;
  Rng rng_;
  uint64_t seed_ = 0;
  double domain_compression_ = 1.0;
  std::map<SharingId, ViewId> buyer_views_;
  std::map<TableId, std::vector<Tuple>> live_tuples_;
  uint64_t updates_applied_ = 0;
  int ticks_elapsed_ = 0;
  int epoch_ = 0;

  Cluster* cluster_ = nullptr;             // not owned
  RecoveryPlanner* recovery_ = nullptr;    // not owned
  std::vector<ServerEvent> events_;        // pending, unordered
  RecoveryStats stats_;
};

}  // namespace dsm

#endif  // DSM_MARKET_SIMULATION_H_
