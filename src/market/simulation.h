// MarketSimulation: discrete-time execution of a data market.
//
// The paper's evaluation stops at the cost model; this module actually
// runs the market: every tick, each base table receives fresh tuples in
// proportion to its catalog update rate (plus a share of deletions), the
// delta engine maintains every buyer's purchased view, and the provider's
// measured maintenance work accumulates. It is the end-to-end harness the
// examples and integration tests use to demonstrate that planned sharings
// really stay fresh.

#ifndef DSM_MARKET_SIMULATION_H_
#define DSM_MARKET_SIMULATION_H_

#include <map>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "maintain/delta_engine.h"
#include "sharing/sharing.h"

namespace dsm {

// A random tuple matching `table`'s schema: each column drawn uniformly
// from [min_value, min_value + distinct_values).
Tuple RandomTupleForTable(const Catalog& catalog, TableId table, Rng* rng);

class MarketSimulation {
 public:
  // `domain_compression` < 1 shrinks every column's value domain by that
  // factor when generating tuples, raising join hit rates — useful for
  // demos that stream far fewer tuples than the catalog's cardinalities.
  MarketSimulation(const Catalog* catalog, uint64_t seed,
                   double domain_compression = 1.0)
      : catalog_(catalog),
        engine_(catalog),
        rng_(seed),
        domain_compression_(domain_compression) {}

  MarketSimulation(const MarketSimulation&) = delete;
  MarketSimulation& operator=(const MarketSimulation&) = delete;

  // Registers the buyer's purchased view; its base tables are registered
  // on demand.
  Status AddBuyerView(SharingId id, const ViewKey& key);

  // Advances `ticks` time units. Per tick each registered base table
  // receives round(update_rate * scale) random inserts; `delete_fraction`
  // of previously inserted tuples are deleted instead.
  Status Run(int ticks, double scale, double delete_fraction = 0.1);

  // Checks every buyer view against a from-scratch recomputation.
  Result<bool> VerifyViews() const;

  const DeltaEngine& engine() const { return engine_; }
  // Tuples of each buyer's view (for reporting). -1 if unknown.
  int64_t ViewSize(SharingId id) const;
  uint64_t updates_applied() const { return updates_applied_; }
  int ticks_elapsed() const { return ticks_elapsed_; }

 private:
  Status EnsureBase(TableId table);

  const Catalog* catalog_;
  DeltaEngine engine_;
  Rng rng_;
  double domain_compression_ = 1.0;
  std::map<SharingId, ViewId> buyer_views_;
  std::map<TableId, std::vector<Tuple>> live_tuples_;
  uint64_t updates_applied_ = 0;
  int ticks_elapsed_ = 0;
};

}  // namespace dsm

#endif  // DSM_MARKET_SIMULATION_H_
