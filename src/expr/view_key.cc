#include "expr/view_key.h"

#include "common/string_util.h"

namespace dsm {

ViewKey::ViewKey(TableSet t, std::vector<Predicate> preds)
    : tables(t), predicates(std::move(preds)) {
  NormalizePredicates(&predicates);
}

bool ViewKey::Subsumes(const ViewKey& needed) const {
  if (!(tables == needed.tables)) return false;
  return PredicateSubset(predicates, needed.predicates);
}

std::string ViewKey::ToString(const Catalog& catalog) const {
  std::vector<std::string> names;
  for (TableId t : tables.ToVector()) names.push_back(catalog.table(t).name);
  std::string out = "{" + Join(names, ",") + "}";
  if (!predicates.empty()) {
    std::vector<std::string> ps;
    for (const Predicate& p : predicates) ps.push_back(p.ToString(catalog));
    out += " | " + Join(ps, " AND ");
  }
  return out;
}

size_t ViewKeyHash::operator()(const ViewKey& k) const {
  uint64_t h = k.tables.mask() * 0x9e3779b97f4a7c15ULL;
  for (const Predicate& p : k.predicates) {
    uint64_t v = (static_cast<uint64_t>(p.table) << 40) ^
                 (static_cast<uint64_t>(p.column) << 24) ^
                 (static_cast<uint64_t>(p.op) << 16);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(p.value));
    __builtin_memcpy(&bits, &p.value, sizeof(bits));
    v ^= bits;
    // boost::hash_combine-style mixing.
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

}  // namespace dsm
