// Predicates of the form "Table.Attribute {<, >, =} Constant", the form the
// paper's evaluation generates (Section 6.1.2).

#ifndef DSM_EXPR_PREDICATE_H_
#define DSM_EXPR_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_set.h"

namespace dsm {

enum class CompareOp : uint8_t {
  kLt,
  kGt,
  kEq,
};

const char* CompareOpToString(CompareOp op);

struct Predicate {
  TableId table = 0;
  uint16_t column = 0;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;

  // "USERS.followers > 1000".
  std::string ToString(const Catalog& catalog) const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.table == b.table && a.column == b.column && a.op == b.op &&
           a.value == b.value;
  }
  // Total order used to keep predicate lists in canonical form.
  friend bool operator<(const Predicate& a, const Predicate& b);
};

// Sorts and dedupes, producing the canonical representation used in view
// keys (so that e.g. {p1, p2} and {p2, p1} identify the same view).
void NormalizePredicates(std::vector<Predicate>* preds);

// The subset of `preds` whose table is a member of `tables`.
std::vector<Predicate> PredicatesOnTables(
    const std::vector<Predicate>& preds, TableSet tables);

// True if `a` is a subset of `b` (both must be normalized).
bool PredicateSubset(const std::vector<Predicate>& a,
                     const std::vector<Predicate>& b);

// Predicates in `b` but not in `a` (both normalized; a must be a subset of
// b for the result to be meaningful as "residual predicates").
std::vector<Predicate> PredicateDifference(
    const std::vector<Predicate>& a, const std::vector<Predicate>& b);

// Order-sensitive 64-bit fingerprint of a normalized predicate list. Equal
// lists have equal fingerprints, so a hash bucket keyed by it finds
// exact-predicate-set matches in O(1); collisions are possible and callers
// must re-verify equality.
uint64_t PredicateFingerprint(const std::vector<Predicate>& preds);

// Bloom-style superset signature: each predicate sets one bit. If
// PredicateSubset(a, b) then (Signature(a) & ~Signature(b)) == 0, so a
// failed bit test refutes subset-ness without walking the lists. The
// converse does not hold (false positives are verified by PredicateSubset).
uint64_t PredicateSignature(const std::vector<Predicate>& preds);

}  // namespace dsm

#endif  // DSM_EXPR_PREDICATE_H_
