#include "expr/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dsm {

Histogram::Histogram(double min_value, double max_value, size_t buckets)
    : min_value_(min_value), max_value_(max_value) {
  assert(buckets >= 1);
  assert(min_value < max_value);
  counts_.assign(buckets, 0);
}

Histogram Histogram::FromValues(const std::vector<double>& values,
                                size_t buckets) {
  if (values.empty()) return Histogram();
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  const double min_value = *lo;
  // Widen degenerate ranges so every value lands in a valid bucket.
  const double max_value = *hi > *lo ? *hi : *lo + 1.0;
  Histogram h(min_value, max_value, buckets);
  for (const double v : values) h.Add(v);
  return h;
}

double Histogram::BucketWidth() const {
  return (max_value_ - min_value_) / static_cast<double>(counts_.size());
}

double Histogram::BucketLow(size_t index) const {
  return min_value_ + BucketWidth() * static_cast<double>(index);
}

void Histogram::Add(double value) {
  if (counts_.empty()) return;
  const double width = BucketWidth();
  auto index = static_cast<int64_t>(std::floor((value - min_value_) / width));
  index = std::clamp<int64_t>(index, 0,
                              static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(index)];
  ++total_count_;
}

double Histogram::Selectivity(CompareOp op, double value) const {
  if (total_count_ == 0) return 1.0;
  const double width = BucketWidth();
  const double total = static_cast<double>(total_count_);

  if (op == CompareOp::kEq) {
    // All of the matching bucket's mass divided by the bucket's width in
    // "distinct slots": approximate as count/total * (1/width), capped.
    if (value < min_value_ || value >= max_value_) return 0.0;
    const auto index = static_cast<size_t>((value - min_value_) / width);
    const double bucket =
        static_cast<double>(counts_[std::min(index, counts_.size() - 1)]);
    return std::clamp(bucket / total / std::max(1.0, width), 0.0, 1.0);
  }

  // Range predicates: full buckets plus a linear fraction of the boundary
  // bucket.
  double below = 0.0;  // mass strictly below `value`
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double lo = BucketLow(i);
    const double hi = lo + width;
    if (hi <= value) {
      below += static_cast<double>(counts_[i]);
    } else if (lo < value) {
      below += static_cast<double>(counts_[i]) * (value - lo) / width;
    }
  }
  const double frac_below = below / total;
  return op == CompareOp::kLt ? frac_below : 1.0 - frac_below;
}

}  // namespace dsm
