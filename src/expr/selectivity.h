// StatsEstimator: cardinality, selectivity, update-rate and width estimates
// for arbitrary view keys, derived from catalog statistics.
//
// These estimates feed the DefaultCostModel and the perc_s(P) weighting of
// Algorithm 2 (the fraction of a subexpression's tuples a predicated plan
// node materializes). Classic System-R style assumptions are used:
// attribute-value independence, uniform value distributions, and
// containment of value sets for join selectivity.

#ifndef DSM_EXPR_SELECTIVITY_H_
#define DSM_EXPR_SELECTIVITY_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "expr/predicate.h"
#include "expr/view_key.h"

namespace dsm {

class StatsEstimator {
 public:
  explicit StatsEstimator(const Catalog* catalog) : catalog_(catalog) {}

  // Fraction of a table's tuples satisfying `pred`, in (0, 1].
  double PredicateSelectivity(const Predicate& pred) const;

  // Product of the member predicates' selectivities (independence).
  double CombinedSelectivity(const std::vector<Predicate>& preds) const;

  // Estimated number of tuples in the view. Memoized per key. Safe to
  // call concurrently: memoized values are pure functions of the catalog,
  // so the lock only protects the cache map, never the answer.
  double Cardinality(const ViewKey& key);

  // Estimated update tuples per time unit flowing *into* the view, i.e.
  // the delta-stream rate its maintenance must process. An update to base
  // table t produces on average |view| / |t| derived deltas.
  double DeltaRate(const ViewKey& key);

  // Width in bytes of a view tuple (join concatenates member tuples).
  double TupleBytes(TableSet tables) const;

  // Drops memoized values (call after catalog statistics change).
  void InvalidateCache();

 private:
  // Cardinality of the unpredicated natural join of `tables`.
  double JoinCardinality(TableSet tables);

  const Catalog* catalog_;
  std::mutex cache_mu_;  // guards join_card_cache_ under concurrent queries
  std::unordered_map<TableSet, double, TableSetHash> join_card_cache_;
};

}  // namespace dsm

#endif  // DSM_EXPR_SELECTIVITY_H_
