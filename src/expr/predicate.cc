#include "expr/predicate.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace dsm {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

std::string Predicate::ToString(const Catalog& catalog) const {
  const TableDef& t = catalog.table(table);
  const std::string col = column < t.columns.size()
                              ? t.columns[column].name
                              : "col" + std::to_string(column);
  char val[32];
  std::snprintf(val, sizeof(val), "%g", value);
  return t.name + "." + col + " " + CompareOpToString(op) + " " + val;
}

bool operator<(const Predicate& a, const Predicate& b) {
  return std::tie(a.table, a.column, a.op, a.value) <
         std::tie(b.table, b.column, b.op, b.value);
}

void NormalizePredicates(std::vector<Predicate>* preds) {
  std::sort(preds->begin(), preds->end());
  preds->erase(std::unique(preds->begin(), preds->end()), preds->end());
}

std::vector<Predicate> PredicatesOnTables(
    const std::vector<Predicate>& preds, TableSet tables) {
  std::vector<Predicate> out;
  for (const Predicate& p : preds) {
    if (tables.Contains(p.table)) out.push_back(p);
  }
  return out;
}

bool PredicateSubset(const std::vector<Predicate>& a,
                     const std::vector<Predicate>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<Predicate> PredicateDifference(
    const std::vector<Predicate>& a, const std::vector<Predicate>& b) {
  std::vector<Predicate> out;
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(out));
  return out;
}

namespace {

uint64_t HashPredicate(const Predicate& p) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(p.value));
  __builtin_memcpy(&bits, &p.value, sizeof(bits));
  uint64_t v = (static_cast<uint64_t>(p.table) << 40) ^
               (static_cast<uint64_t>(p.column) << 24) ^
               (static_cast<uint64_t>(p.op) << 16) ^ bits;
  // splitmix64 finalizer: spreads the structured bit layout above.
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

}  // namespace

uint64_t PredicateFingerprint(const std::vector<Predicate>& preds) {
  uint64_t h = 0x6a09e667f3bcc909ULL;
  for (const Predicate& p : preds) {
    h ^= HashPredicate(p) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

uint64_t PredicateSignature(const std::vector<Predicate>& preds) {
  uint64_t sig = 0;
  for (const Predicate& p : preds) {
    sig |= 1ULL << (HashPredicate(p) & 63);
  }
  return sig;
}

}  // namespace dsm
