#include "expr/predicate.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace dsm {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kEq:
      return "=";
  }
  return "?";
}

std::string Predicate::ToString(const Catalog& catalog) const {
  const TableDef& t = catalog.table(table);
  const std::string col = column < t.columns.size()
                              ? t.columns[column].name
                              : "col" + std::to_string(column);
  char val[32];
  std::snprintf(val, sizeof(val), "%g", value);
  return t.name + "." + col + " " + CompareOpToString(op) + " " + val;
}

bool operator<(const Predicate& a, const Predicate& b) {
  return std::tie(a.table, a.column, a.op, a.value) <
         std::tie(b.table, b.column, b.op, b.value);
}

void NormalizePredicates(std::vector<Predicate>* preds) {
  std::sort(preds->begin(), preds->end());
  preds->erase(std::unique(preds->begin(), preds->end()), preds->end());
}

std::vector<Predicate> PredicatesOnTables(
    const std::vector<Predicate>& preds, TableSet tables) {
  std::vector<Predicate> out;
  for (const Predicate& p : preds) {
    if (tables.Contains(p.table)) out.push_back(p);
  }
  return out;
}

bool PredicateSubset(const std::vector<Predicate>& a,
                     const std::vector<Predicate>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<Predicate> PredicateDifference(
    const std::vector<Predicate>& a, const std::vector<Predicate>& b) {
  std::vector<Predicate> out;
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace dsm
