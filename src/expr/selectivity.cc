#include "expr/selectivity.h"

#include <algorithm>
#include <cmath>

#include "expr/histogram.h"

namespace dsm {

double StatsEstimator::PredicateSelectivity(const Predicate& pred) const {
  const TableDef& t = catalog_->table(pred.table);
  if (pred.column >= t.columns.size()) return 1.0;
  const ColumnDef& col = t.columns[pred.column];
  if (col.histogram != nullptr && !col.histogram->empty()) {
    return std::clamp(col.histogram->Selectivity(pred.op, pred.value), 1e-6,
                      1.0);
  }
  double sel = 1.0;
  switch (pred.op) {
    case CompareOp::kEq:
      sel = 1.0 / std::max(1.0, col.distinct_values);
      break;
    case CompareOp::kLt:
    case CompareOp::kGt: {
      const double range = col.max_value - col.min_value;
      if (range <= 0.0) {
        sel = 0.5;  // no range information: the textbook 1/2 default
      } else {
        double frac = (pred.value - col.min_value) / range;
        frac = std::clamp(frac, 0.0, 1.0);
        sel = pred.op == CompareOp::kLt ? frac : 1.0 - frac;
      }
      break;
    }
  }
  // Keep selectivities strictly positive so costs and perc stay nonzero.
  return std::clamp(sel, 1e-6, 1.0);
}

double StatsEstimator::CombinedSelectivity(
    const std::vector<Predicate>& preds) const {
  double sel = 1.0;
  for (const Predicate& p : preds) sel *= PredicateSelectivity(p);
  return sel;
}

double StatsEstimator::JoinCardinality(TableSet tables) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = join_card_cache_.find(tables);
    if (it != join_card_cache_.end()) return it->second;
  }

  const std::vector<TableId> members = tables.ToVector();
  double card = 0.0;
  if (!members.empty()) {
    // Fold tables in id order; each newly joined table contributes its
    // cardinality times the selectivity of its join columns against the
    // already-joined prefix (containment-of-value-sets assumption:
    // sel = 1 / max(V(a, col), V(b, col)) per shared column).
    card = catalog_->table(members[0]).stats.cardinality;
    TableSet joined = TableSet::Of(members[0]);
    for (size_t i = 1; i < members.size(); ++i) {
      const TableDef& t = catalog_->table(members[i]);
      card *= std::max(1.0, t.stats.cardinality);
      for (TableId prev : joined.ToVector()) {
        const TableDef& pt = catalog_->table(prev);
        for (const ColumnDef& c : t.columns) {
          const int pc = pt.FindColumn(c.name);
          if (pc < 0) continue;
          const double v = std::max(
              {1.0, c.distinct_values, pt.columns[pc].distinct_values});
          card /= v;
        }
      }
      joined.Add(members[i]);
    }
    card = std::max(card, 1.0);
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  join_card_cache_.emplace(tables, card);
  return card;
}

double StatsEstimator::Cardinality(const ViewKey& key) {
  return std::max(1.0, JoinCardinality(key.tables) *
                           CombinedSelectivity(key.predicates));
}

double StatsEstimator::DeltaRate(const ViewKey& key) {
  const double view_card = Cardinality(key);
  double rate = 0.0;
  for (TableId t : key.tables.ToVector()) {
    const TableStats& s = catalog_->table(t).stats;
    const double base = std::max(1.0, s.cardinality);
    rate += s.update_rate * (view_card / base);
  }
  return rate;
}

double StatsEstimator::TupleBytes(TableSet tables) const {
  double bytes = 0.0;
  for (TableId t : tables.ToVector()) {
    bytes += catalog_->table(t).stats.tuple_bytes;
  }
  return bytes;
}

void StatsEstimator::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  join_card_cache_.clear();
}

}  // namespace dsm
