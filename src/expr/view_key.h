// ViewKey: canonical identity of a subexpression result.
//
// Two plan nodes compute the same data — and can therefore share one
// materialized view in the global plan — iff they have equal ViewKeys:
// the same set of base tables natural-joined, filtered by the same
// (normalized) predicate set. The key is independent of join order, so the
// results of plans (ab)c and a(bc) both carry the key {a,b,c} as the paper
// requires ("no sharing prior to S_i uses subexpression (ab)c or a(bc)").

#ifndef DSM_EXPR_VIEW_KEY_H_
#define DSM_EXPR_VIEW_KEY_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table_set.h"
#include "expr/predicate.h"

namespace dsm {

struct ViewKey {
  TableSet tables;
  // Normalized (sorted, deduped). Empty means the full join result.
  std::vector<Predicate> predicates;

  ViewKey() = default;
  explicit ViewKey(TableSet t) : tables(t) {}
  ViewKey(TableSet t, std::vector<Predicate> preds);

  bool unpredicated() const { return predicates.empty(); }

  // True if this view's data is a superset of what `needed` requires on the
  // same table set, i.e. `needed` can be computed from this view by
  // applying `needed`'s residual predicates.
  bool Subsumes(const ViewKey& needed) const;

  // Debug form like "{USERS,TWEETS} | USERS.followers > 10".
  std::string ToString(const Catalog& catalog) const;

  friend bool operator==(const ViewKey& a, const ViewKey& b) {
    return a.tables == b.tables && a.predicates == b.predicates;
  }
};

struct ViewKeyHash {
  size_t operator()(const ViewKey& k) const;
};

}  // namespace dsm

#endif  // DSM_EXPR_VIEW_KEY_H_
