// Equi-width histograms for predicate selectivity estimation.
//
// The paper's general case leans on "various existing techniques for
// selectivity estimation" to compute perc_s(P) (Section 4.5). The default
// uniform-range estimate is adequate for uniformly distributed columns;
// histograms capture skew (heavy hitters, empty ranges) the way production
// optimizers do. A histogram can be attached to any ColumnDef; the
// StatsEstimator consults it before falling back to the uniform model.

#ifndef DSM_EXPR_HISTOGRAM_H_
#define DSM_EXPR_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "expr/predicate.h"

namespace dsm {

class Histogram {
 public:
  Histogram() = default;

  // An equi-width histogram over [min_value, max_value) with `buckets`
  // buckets. Requires buckets >= 1 and min_value < max_value.
  Histogram(double min_value, double max_value, size_t buckets);

  // Builds a histogram from observed values.
  static Histogram FromValues(const std::vector<double>& values,
                              size_t buckets);

  bool empty() const { return total_count_ == 0; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t total_count() const { return total_count_; }

  // Records one observed value (values outside the range clamp to the
  // first/last bucket).
  void Add(double value);

  // Estimated fraction of values satisfying `op value`, in [0, 1].
  // Assumes uniform spread within each bucket (the textbook model).
  double Selectivity(CompareOp op, double value) const;

 private:
  double BucketLow(size_t index) const;
  double BucketWidth() const;

  double min_value_ = 0.0;
  double max_value_ = 1.0;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace dsm

#endif  // DSM_EXPR_HISTOGRAM_H_
