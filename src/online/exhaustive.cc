#include "online/exhaustive.h"

#include <algorithm>
#include <chrono>

#include "globalplan/global_plan.h"

namespace dsm {
namespace {

using Clock = std::chrono::steady_clock;

struct SearchState {
  const std::vector<Sharing>* sharings = nullptr;
  const std::vector<std::vector<SharingPlan>>* plan_sets = nullptr;
  GlobalPlan* scratch = nullptr;
  double best_cost = 0.0;
  std::vector<size_t> current;
  std::vector<size_t> best;
  bool have_best = false;
  uint64_t explored = 0;
  Clock::time_point deadline;
  bool timed_out = false;
};

void Search(SearchState* st, size_t depth) {
  if (st->timed_out) return;
  if ((st->explored & 0x3ff) == 0 && Clock::now() > st->deadline) {
    st->timed_out = true;
    return;
  }
  const size_t n = st->sharings->size();
  if (depth == n) {
    const double cost = st->scratch->TotalCost();
    if (!st->have_best || cost < st->best_cost) {
      st->best_cost = cost;
      st->best = st->current;
      st->have_best = true;
    }
    return;
  }
  // Branch and bound: the global plan cost only grows as plans are added.
  if (st->have_best && st->scratch->TotalCost() >= st->best_cost) return;

  const std::vector<SharingPlan>& plans = (*st->plan_sets)[depth];
  for (size_t p = 0; p < plans.size(); ++p) {
    ++st->explored;
    const GlobalPlan::PlanEvaluation probe =
        st->scratch->EvaluatePlan(plans[p]);
    if (!probe.feasible) continue;
    if (st->have_best &&
        st->scratch->TotalCost() + probe.marginal_cost >= st->best_cost) {
      continue;
    }
    const SharingId id = static_cast<SharingId>(depth + 1);
    if (!st->scratch->AddSharing(id, (*st->sharings)[depth], plans[p]).ok()) {
      continue;
    }
    st->current[depth] = p;
    Search(st, depth + 1);
    (void)st->scratch->RemoveSharing(id);
    if (st->timed_out) return;
  }
}

}  // namespace

Result<ExhaustiveResult> ExhaustivePlanner::Solve(
    const std::vector<Sharing>& sharings) {
  std::vector<std::vector<SharingPlan>> plan_sets;
  plan_sets.reserve(sharings.size());
  for (const Sharing& s : sharings) {
    DSM_ASSIGN_OR_RETURN(std::vector<SharingPlan> plans,
                         ctx_.enumerator->Enumerate(s));
    if (plans.empty()) {
      return Status::InvalidArgument("sharing has no plans");
    }
    // Cheapest standalone plans first: improves pruning and makes the
    // per-sharing cap keep the most promising candidates.
    std::vector<std::pair<double, size_t>> order;
    order.reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      order.emplace_back(PlanCost(plans[i], ctx_.model), i);
    }
    std::sort(order.begin(), order.end());
    std::vector<SharingPlan> sorted;
    const size_t limit =
        options_.max_plans_per_sharing == 0
            ? plans.size()
            : std::min(plans.size(), options_.max_plans_per_sharing);
    sorted.reserve(limit);
    for (size_t i = 0; i < limit; ++i) {
      sorted.push_back(std::move(plans[order[i].second]));
    }
    plan_sets.push_back(std::move(sorted));
  }

  GlobalPlan scratch(ctx_.cluster, ctx_.model);
  SearchState st;
  st.sharings = &sharings;
  st.plan_sets = &plan_sets;
  st.scratch = &scratch;
  st.current.assign(sharings.size(), 0);
  st.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       options_.time_limit_seconds));
  Search(&st, 0);

  if (!st.have_best) {
    return Status::Infeasible("no feasible joint plan assignment found");
  }
  ExhaustiveResult result;
  result.total_cost = st.best_cost;
  result.completed = !st.timed_out;
  result.nodes_explored = st.explored;
  result.plans.reserve(sharings.size());
  for (size_t i = 0; i < sharings.size(); ++i) {
    result.plans.push_back(plan_sets[i][st.best[i]]);
  }
  return result;
}

}  // namespace dsm
