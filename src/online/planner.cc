#include "online/planner.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {

uint64_t OnlinePlanner::IdenticalKey(const Sharing& sharing) const {
  return sharing.QueryHash() ^
         (0x9e3779b97f4a7c15ULL * (sharing.destination() + 1));
}

Result<PlanChoice> OnlinePlanner::ProcessSharing(const Sharing& sharing) {
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.online.plan_ms");
  DSM_TRACE_SPAN("online/process_sharing");
  OnSharingArrived(sharing);

  const SharingId id = next_id_++;
  const uint64_t ident = IdenticalKey(sharing);

  // Fast path: an identical sharing (same query, same destination) was
  // planned before; reuse its plan wholesale. Integration makes the
  // marginal cost (near) zero since every view already exists. The stored
  // sharing is compared for real equality — the 64-bit key alone would let
  // a hash collision silently reuse the wrong plan.
  const auto it = identical_plans_.find(ident);
  if (it != identical_plans_.end() &&
      sharing.IdenticalTo(it->second.sharing) &&
      sharing.destination() == it->second.sharing.destination()) {
    const GlobalPlan::PlanEvaluation probe =
        ctx_.global_plan->EvaluatePlan(it->second.plan);
    if (probe.feasible) {
      DSM_ASSIGN_OR_RETURN(
          const GlobalPlan::PlanEvaluation eval,
          ctx_.global_plan->AddSharing(id, sharing, it->second.plan));
      OnPlanChosen(sharing, it->second.plan, eval);
      DSM_METRIC_COUNTER_ADD("dsm.online.sharings_planned", 1);
      DSM_METRIC_COUNTER_ADD("dsm.online.reuse_identical_hits", 1);
      DSM_TRACE_ANNOTATE("reused_identical", "true");
      PlanChoice choice;
      choice.id = id;
      choice.plan = it->second.plan;
      choice.marginal_cost = eval.marginal_cost;
      choice.reused_identical = true;
      return choice;
    }
    // Capacity changed since; fall through to full planning.
  }

  DSM_ASSIGN_OR_RETURN(std::vector<SharingPlan> plans,
                       ctx_.enumerator->Enumerate(sharing));
  if (plans.empty()) {
    return Status::InvalidArgument("no plan found for sharing");
  }

  // Dry-run every candidate against the global plan. EvaluatePlan is
  // const, so the loop fans out on the scoring pool when the cost model
  // tolerates concurrent queries; results land in index-addressed slots,
  // keeping the merge deterministic for every pool size. Score runs
  // serially afterwards in index order — scorers may hold order-sensitive
  // state (NORMALIZE's counts, MANAGEDRISK's tracker and cost model).
  std::vector<GlobalPlan::PlanEvaluation> evals(plans.size());
  if (ctx_.scoring_pool != nullptr &&
      ctx_.model->SupportsConcurrentQueries()) {
    ctx_.scoring_pool->ParallelFor(plans.size(), [&](size_t i) {
      evals[i] = ctx_.global_plan->EvaluatePlan(plans[i]);
    });
  } else {
    for (size_t i = 0; i < plans.size(); ++i) {
      evals[i] = ctx_.global_plan->EvaluatePlan(plans[i]);
    }
  }

  struct Scored {
    size_t index;
    double score;
    GlobalPlan::PlanEvaluation eval;
  };
  std::vector<Scored> scored;
  scored.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const double s = Score(sharing, plans[i], evals[i]);
    scored.push_back(Scored{i, s, std::move(evals[i])});
  }
  DSM_METRIC_COUNTER_ADD("dsm.online.plans_considered", plans.size());
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });

  // Algorithm 2: take plans in descending score order; use the first one
  // that does not violate any server capacity, else reject the sharing.
  for (const Scored& cand : scored) {
    if (!cand.eval.feasible) continue;
    DSM_ASSIGN_OR_RETURN(
        const GlobalPlan::PlanEvaluation eval,
        ctx_.global_plan->AddSharing(id, sharing, plans[cand.index]));
    OnPlanChosen(sharing, plans[cand.index], eval);
    identical_plans_[ident] = IdenticalEntry{sharing, plans[cand.index]};
    DSM_METRIC_COUNTER_ADD("dsm.online.sharings_planned", 1);
    PlanChoice choice;
    choice.id = id;
    choice.plan = plans[cand.index];
    choice.marginal_cost = eval.marginal_cost;
    choice.score = cand.score;
    choice.plans_considered = plans.size();
    return choice;
  }
  DSM_METRIC_COUNTER_ADD("dsm.online.sharings_rejected", 1);
  return Status::CapacityExceeded(
      "no feasible plan: sharing rejected (server capacity)");
}

}  // namespace dsm
