#include "online/greedy.h"

namespace dsm {

double GreedyPlanner::Score(const Sharing& /*sharing*/,
                            const SharingPlan& /*plan*/,
                            const GlobalPlan::PlanEvaluation& eval) {
  return -eval.marginal_cost;
}

}  // namespace dsm
