#include "online/speculative.h"

#include <limits>

#include "globalplan/global_plan.h"

namespace dsm {

Result<SpeculationReport> SpeculativeViewAdvisor::MaybeSpeculate() {
  SpeculationReport report;
  const PlannerContext& ctx = planner_->context();

  for (const auto& [tables, pending] : planner_->tracker().PendingSets()) {
    if (views_created_ >= options_.max_views) break;
    if (ctx.global_plan->HasUnpredicatedView(tables)) continue;

    // Build the subexpression as an unpredicated sharing delivered to the
    // home server of its lowest table (a provider-internal view needs no
    // buyer-side copy).
    DSM_ASSIGN_OR_RETURN(const ServerId dest,
                         ctx.cluster->HomeOf(tables.ToVector().front()));
    const Sharing view(tables, {}, dest, "provider-speculative");

    DSM_ASSIGN_OR_RETURN(std::vector<SharingPlan> plans,
                         ctx.enumerator->Enumerate(view));
    double cheapest = std::numeric_limits<double>::infinity();
    const SharingPlan* best = nullptr;
    GlobalPlan::PlanEvaluation best_eval;
    for (const SharingPlan& plan : plans) {
      GlobalPlan::PlanEvaluation eval = ctx.global_plan->EvaluatePlan(plan);
      if (!eval.feasible) continue;
      if (eval.marginal_cost < cheapest) {
        cheapest = eval.marginal_cost;
        best = &plan;
        best_eval = std::move(eval);
      }
    }
    if (best == nullptr) continue;
    if (pending < options_.regret_multiple * cheapest) continue;

    const SharingId id = kSpeculativeIdBase + views_created_;
    DSM_RETURN_IF_ERROR(
        ctx.global_plan->AddSharing(id, view, *best).status());
    planner_->mutable_tracker()->MarkProduced(tables);
    ++views_created_;
    ++report.views_created;
    report.cost_added += cheapest;
  }
  return report;
}

}  // namespace dsm
