#include "online/managed_risk.h"

#include "obs/metrics.h"

namespace dsm {

int ManagedRiskPlanner::EffectiveJoins(const Sharing& sharing) const {
  // With divide_by_joins disabled (ablation), the divisor is forced to 1.
  return options_.divide_by_joins ? sharing.NumJoins() : 2;
}

double ManagedRiskPlanner::RegretIncentive(
    const Sharing& sharing, const SharingPlan& plan,
    const GlobalPlan::PlanEvaluation& eval) const {
  double incentive = 0.0;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (!node.is_join()) continue;
    if (eval.decisions[i].state != GlobalPlan::NodeDecision::kFresh) {
      continue;  // reused/skipped nodes produce nothing new
    }
    const double rg =
        tracker_.Regret(node.key.tables, EffectiveJoins(sharing));
    if (rg <= 0.0) continue;
    const double perc = options_.use_perc ? ctx_.model->Perc(node.key) : 1.0;
    incentive += rg * perc;
  }
  return incentive;
}

double ManagedRiskPlanner::Score(const Sharing& sharing,
                                 const SharingPlan& plan,
                                 const GlobalPlan::PlanEvaluation& eval) {
  DSM_METRIC_COUNTER_ADD("dsm.online.risk_scores", 1);
  const double incentive = RegretIncentive(sharing, plan, eval);
  if (incentive > 0.0) {
    DSM_METRIC_COUNTER_ADD("dsm.online.risk_incentive_plans", 1);
  }
  return incentive - eval.marginal_cost;
}

void ManagedRiskPlanner::OnPlanChosen(
    const Sharing& sharing, const SharingPlan& plan,
    const GlobalPlan::PlanEvaluation& eval) {
  const double consumed = options_.subtract_consumed_regret
                              ? RegretIncentive(sharing, plan, eval)
                              : 0.0;

  std::vector<TableSet> produced_full;
  std::vector<std::pair<TableSet, double>> produced_partial;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (!node.is_join()) continue;
    if (eval.decisions[i].state != GlobalPlan::NodeDecision::kFresh) {
      continue;
    }
    if (node.key.predicates.empty()) {
      produced_full.push_back(node.key.tables);
    } else {
      produced_partial.emplace_back(node.key.tables,
                                    ctx_.model->Perc(node.key));
    }
  }
  tracker_.OnPlanChosen(sharing, eval.marginal_cost, consumed, produced_full,
                        produced_partial);
}

}  // namespace dsm
