#include "online/regret_tracker.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dsm {

double RegretTracker::Pending(TableSet s) const {
  if (produced_.count(s) != 0) return 0.0;
  const auto it = pending_.find(s);
  return it == pending_.end() ? 0.0 : it->second;
}

bool RegretTracker::Produced(TableSet s) const {
  return produced_.count(s) != 0;
}

double RegretTracker::Regret(TableSet s, int num_joins) const {
  const double divisor = std::max(1, num_joins - 1);
  return Pending(s) / divisor;
}

void RegretTracker::OnPlanChosen(
    const Sharing& sharing, double marginal_cost, double consumed_regret,
    const std::vector<TableSet>& produced_full,
    const std::vector<std::pair<TableSet, double>>& produced_partial) {
  // The regrets already "spent" on this plan must not influence future
  // choices again (the subtraction in Eq. 1); what remains is the residual
  // this sharing contributes to the pending regret of the subexpressions
  // it contains but did not produce.
  const double residual = marginal_cost - consumed_regret;
  DSM_METRIC_COUNTER_ADD("dsm.online.regret_updates", 1);

  for (const TableSet s : produced_full) {
    produced_.insert(s);
    pending_.erase(s);
  }
  for (const auto& [s, perc] : produced_partial) {
    const auto it = pending_.find(s);
    if (it != pending_.end()) {
      it->second *= std::max(0.0, 1.0 - perc);
    }
  }

  for (const TableSet s :
       graph_->ConnectedSubsets(sharing.tables(), /*min_size=*/2)) {
    if (produced_.count(s) != 0) continue;
    pending_[s] += residual;
  }
}

std::vector<std::pair<TableSet, double>> RegretTracker::PendingSets() const {
  std::vector<std::pair<TableSet, double>> out;
  out.reserve(pending_.size());
  for (const auto& [s, v] : pending_) {
    if (v > 0.0 && produced_.count(s) == 0) out.emplace_back(s, v);
  }
  return out;
}

}  // namespace dsm
