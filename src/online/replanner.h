// Replanner: Section 7's first future-work item, implemented — "whether it
// is feasible to change the plan of an existing sharing when a new sharing
// arrives". After the online planner commits a sharing, the replanner
// revisits existing sharings one at a time: it removes a sharing from the
// global plan, re-evaluates its candidate plans against the current state,
// and keeps the cheapest; the original plan is restored when nothing
// improves. Buyers are unaffected — only the provider's internal plan
// changes (their attributed costs may drop, never their data).

#ifndef DSM_ONLINE_REPLANNER_H_
#define DSM_ONLINE_REPLANNER_H_

#include "common/status.h"
#include "online/planner.h"

namespace dsm {

struct ReplannerOptions {
  // Maximum improvement sweeps over all sharings per Improve() call.
  int max_rounds = 2;
  // Stop a sweep early once relative improvement falls below this.
  double min_relative_gain = 1e-6;
};

struct ReplanReport {
  double cost_before = 0.0;
  double cost_after = 0.0;
  int plans_changed = 0;
  int rounds = 0;
};

class Replanner {
 public:
  Replanner(PlannerContext context, ReplannerOptions options = {})
      : ctx_(context), options_(options) {}

  // Greedily improves the global plan by re-planning existing sharings.
  Result<ReplanReport> Improve();

 private:
  PlannerContext ctx_;
  ReplannerOptions options_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_REPLANNER_H_
