// Algorithm GREEDY (Section 4.2), the baseline from prior work [9]:
// among all plans for the new sharing, choose the one adding the smallest
// additional dollar cost to the global plan. Takes no risk — and can be
// arbitrarily worse than optimal (Example 4.1).

#ifndef DSM_ONLINE_GREEDY_H_
#define DSM_ONLINE_GREEDY_H_

#include "online/planner.h"

namespace dsm {

class GreedyPlanner : public OnlinePlanner {
 public:
  explicit GreedyPlanner(PlannerContext context)
      : OnlinePlanner(context) {}

  const char* name() const override { return "Greedy"; }

 protected:
  double Score(const Sharing& sharing, const SharingPlan& plan,
               const GlobalPlan::PlanEvaluation& eval) override;
};

}  // namespace dsm

#endif  // DSM_ONLINE_GREEDY_H_
