// Algorithm NORMALIZE (Section 4.3): divides the cost of each fresh
// subexpression by the number of sharings seen so far that *contain* it
// (Definition 4.2), betting that frequently-contained subexpressions will
// recur. Chooses the plan with the smallest normalized cost. Can be
// arbitrarily worse than optimal by taking an unrewarded risk at the end
// of a sequence (Example 4.2).

#ifndef DSM_ONLINE_NORMALIZE_H_
#define DSM_ONLINE_NORMALIZE_H_

#include <unordered_map>

#include "online/planner.h"

namespace dsm {

class NormalizePlanner : public OnlinePlanner {
 public:
  explicit NormalizePlanner(PlannerContext context)
      : OnlinePlanner(context) {}

  const char* name() const override { return "Normalize"; }

  // Number of sharings seen so far (incl. the current one) containing the
  // subexpression over `tables`.
  int OccurrenceCount(TableSet tables) const;

 protected:
  double Score(const Sharing& sharing, const SharingPlan& plan,
               const GlobalPlan::PlanEvaluation& eval) override;
  void OnSharingArrived(const Sharing& sharing) override;

 private:
  std::unordered_map<TableSet, int, TableSetHash> counts_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_NORMALIZE_H_
