// Algorithm MANAGEDRISK (Sections 4.4–4.5, Algorithms 1 and 2), the
// paper's proposed online planner.
//
// Each candidate plan P for sharing S_i is scored (Eq. 3)
//
//     score(P) = Σ_{s ∈ P} rg_i(s) · perc_s(P) − C[P]
//
// where rg_i(s) is the regret of subexpression s (Definition 4.3, tracked
// by RegretTracker), perc_s(P) the fraction of s's unpredicated result the
// plan materializes, and C[P] the cost the plan adds to the global plan.
// The incentive rg makes the planner take a risk on a never-produced
// subexpression once enough prior sharings could have used it — but never
// a risk bigger than the cost of those prior sharings, avoiding both
// GREEDY's too-late and NORMALIZE's too-early failure modes.

#ifndef DSM_ONLINE_MANAGED_RISK_H_
#define DSM_ONLINE_MANAGED_RISK_H_

#include "online/planner.h"
#include "online/regret_tracker.h"

namespace dsm {

struct ManagedRiskOptions {
  // Ablation knobs for the design choices Section 4.4 calls out. Disabling
  // either reintroduces the unbounded-cost pathologies the paper warns of.
  bool subtract_consumed_regret = true;  // the "− Σ rg_j(s')" term of Eq. 1
  bool divide_by_joins = true;           // the 1/(m − 1) factor of Eq. 1
  bool use_perc = true;                  // Eq. 3's perc weighting
};

class ManagedRiskPlanner : public OnlinePlanner {
 public:
  explicit ManagedRiskPlanner(PlannerContext context,
                              ManagedRiskOptions options = {})
      : OnlinePlanner(context),
        options_(options),
        tracker_(context.graph) {}

  const char* name() const override { return "ManagedRisk"; }

  const RegretTracker& tracker() const { return tracker_; }
  RegretTracker* mutable_tracker() { return &tracker_; }

 protected:
  double Score(const Sharing& sharing, const SharingPlan& plan,
               const GlobalPlan::PlanEvaluation& eval) override;
  void OnPlanChosen(const Sharing& sharing, const SharingPlan& plan,
                    const GlobalPlan::PlanEvaluation& eval) override;

 private:
  // Σ rg_i(s)·perc_s over the plan's fresh join nodes.
  double RegretIncentive(const Sharing& sharing, const SharingPlan& plan,
                         const GlobalPlan::PlanEvaluation& eval) const;

  int EffectiveJoins(const Sharing& sharing) const;

  ManagedRiskOptions options_;
  RegretTracker tracker_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_MANAGED_RISK_H_
