// Algorithm EXHAUSTIVE (Section 6.1.1): the offline reference that knows
// the whole sharing sequence in advance and searches the joint plan space
// for the global plan with minimum total cost. Exponential — the paper
// only runs it on sequences of 3–5 sharings, and so do we (branch-and-
// bound plus per-sharing plan caps keep it tractable there).

#ifndef DSM_ONLINE_EXHAUSTIVE_H_
#define DSM_ONLINE_EXHAUSTIVE_H_

#include <vector>

#include "common/status.h"
#include "online/planner.h"

namespace dsm {

struct ExhaustiveOptions {
  // Cap on plans considered per sharing (cheapest-first). 0 = all.
  size_t max_plans_per_sharing = 0;
  // Abort the search after this much wall time; the best assignment found
  // so far is returned with completed = false.
  double time_limit_seconds = 120.0;
};

struct ExhaustiveResult {
  double total_cost = 0.0;
  std::vector<SharingPlan> plans;  // one per input sharing
  bool completed = true;
  uint64_t nodes_explored = 0;
};

class ExhaustivePlanner {
 public:
  // `context.global_plan` is ignored; the search uses its own scratch
  // global plans built from the same cluster and cost model.
  ExhaustivePlanner(PlannerContext context, ExhaustiveOptions options = {})
      : ctx_(context), options_(options) {}

  Result<ExhaustiveResult> Solve(const std::vector<Sharing>& sharings);

 private:
  PlannerContext ctx_;
  ExhaustiveOptions options_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_EXHAUSTIVE_H_
