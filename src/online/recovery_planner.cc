#include "online/recovery_planner.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {

Result<double> RecoveryPlanner::PlanOnLiveServers(SharingId id,
                                                 const Sharing& sharing) {
  GlobalPlan* gp = ctx_.global_plan;
  DSM_ASSIGN_OR_RETURN(const std::vector<SharingPlan> plans,
                       ctx_.enumerator->Enumerate(sharing));
  const SharingPlan* best = nullptr;
  double best_marginal = std::numeric_limits<double>::infinity();
  for (const SharingPlan& plan : plans) {
    const GlobalPlan::PlanEvaluation eval = gp->EvaluatePlan(plan);
    if (!eval.feasible) continue;
    if (eval.marginal_cost < best_marginal) {
      best_marginal = eval.marginal_cost;
      best = &plan;
    }
  }
  if (best == nullptr) {
    return Status::CapacityExceeded(
        "no plan fits on the live servers; sharing parked");
  }
  DSM_ASSIGN_OR_RETURN(const GlobalPlan::PlanEvaluation eval,
                       gp->AddSharing(id, sharing, *best));
  return eval.marginal_cost;
}

Result<RecoveryReport> RecoveryPlanner::OnServerDown(ServerId server,
                                                     int64_t now_tick) {
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.recovery.server_down_ms");
  DSM_TRACE_SPAN("recovery/server_down");
  GlobalPlan* gp = ctx_.global_plan;
  RecoveryReport report;
  report.server = server;
  report.cost_before = gp->TotalCost();

  // Collect and detach every victim first: migration must re-plan against
  // a global plan that no longer offers the dead server's views for reuse.
  struct Victim {
    SharingId id;
    Sharing sharing;
    double old_marginal;
  };
  std::vector<Victim> victims;
  for (const SharingId id : gp->SharingsTouchingServer(server)) {
    const GlobalPlan::SharingRecord* rec = gp->record(id);
    victims.push_back(Victim{id, rec->sharing, rec->marginal_cost});
  }
  for (const Victim& v : victims) {
    DSM_RETURN_IF_ERROR(gp->RemoveSharing(v.id));
  }

  for (const Victim& v : victims) {
    const Result<double> migrated = PlanOnLiveServers(v.id, v.sharing);
    if (migrated.ok()) {
      DSM_METRIC_COUNTER_ADD("dsm.recovery.migrations", 1);
      report.migrated.push_back(
          MigratedSharing{v.id, v.old_marginal, *migrated, true});
      continue;
    }
    if (migrated.status().code() != StatusCode::kCapacityExceeded) {
      return migrated.status();
    }
    ParkedSharing parked;
    parked.id = v.id;
    parked.sharing = v.sharing;
    parked.cost_before = v.old_marginal;
    parked.attempts = 0;
    parked.backoff_ticks = options_.initial_backoff_ticks;
    parked.next_retry_tick = now_tick + parked.backoff_ticks;
    parked_.push_back(std::move(parked));
    report.parked.push_back(v.id);
    DSM_METRIC_COUNTER_ADD("dsm.recovery.parkings", 1);
  }

  report.cost_after = gp->TotalCost();
  return report;
}

Result<std::vector<MigratedSharing>> RecoveryPlanner::RetryParked(
    int64_t now_tick, bool force) {
  std::vector<MigratedSharing> readmitted;
  std::vector<ParkedSharing> still_parked;
  still_parked.reserve(parked_.size());

  for (ParkedSharing& p : parked_) {
    if (!force && now_tick < p.next_retry_tick) {
      still_parked.push_back(std::move(p));
      continue;
    }
    DSM_METRIC_COUNTER_ADD("dsm.recovery.retry_attempts", 1);
    const Result<double> placed = PlanOnLiveServers(p.id, p.sharing);
    if (placed.ok()) {
      DSM_METRIC_COUNTER_ADD("dsm.recovery.readmissions", 1);
      readmitted.push_back(
          MigratedSharing{p.id, p.cost_before, *placed, false});
      continue;
    }
    if (placed.status().code() != StatusCode::kCapacityExceeded) {
      return placed.status();
    }
    ++p.attempts;
    p.backoff_ticks =
        std::min(p.backoff_ticks * 2, options_.max_backoff_ticks);
    p.next_retry_tick = now_tick + p.backoff_ticks;
    still_parked.push_back(std::move(p));
  }
  parked_ = std::move(still_parked);
  return readmitted;
}

}  // namespace dsm
