// RecoveryPlanner: degraded-mode replanning after server loss.
//
// The Replanner (Section 7's future-work item) improves a healthy global
// plan; this class repairs a wounded one. When a server goes down, every
// view materialized on it is lost, so each sharing whose plan closure
// touches the dead machine must be re-planned: the recovery planner
// removes the victims, then re-runs Algorithm 2 for each one restricted to
// live servers (plans placing any work on a down server are infeasible —
// see GlobalPlan::EvaluatePlan) and commits the cheapest feasible plan.
//
// Sharings that no longer fit anywhere — destination dead, a member
// table's home machine dead, or live capacity exhausted — are *parked*
// with kCapacityExceeded rather than dropped: they wait in a retry queue
// with bounded exponential backoff (in simulation ticks) and are
// re-admitted automatically once capacity returns. Every migration reports
// the marginal-cost delta so FAIRCOST can re-price the surviving sharings.

#ifndef DSM_ONLINE_RECOVERY_PLANNER_H_
#define DSM_ONLINE_RECOVERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "online/planner.h"

namespace dsm {

struct RecoveryOptions {
  // Backoff before the first retry of a parked sharing, in ticks.
  int64_t initial_backoff_ticks = 1;
  // Backoff doubles per failed retry up to this bound.
  int64_t max_backoff_ticks = 64;
};

// One sharing moved to a new plan on live servers.
struct MigratedSharing {
  SharingId id = 0;
  double cost_before = 0.0;  // marginal cost under the old plan
  double cost_after = 0.0;   // marginal cost under the new plan
  // False when the sharing was re-admitted from the parked queue (there
  // was no live plan to compare against).
  bool was_active = true;
};

// A sharing the provider currently cannot serve.
struct ParkedSharing {
  SharingId id = 0;
  Sharing sharing;
  double cost_before = 0.0;  // marginal cost when it was last active
  int attempts = 0;          // failed re-admission attempts so far
  int64_t backoff_ticks = 0;
  int64_t next_retry_tick = 0;
};

struct RecoveryReport {
  ServerId server = 0;       // the machine that was lost
  double cost_before = 0.0;  // global plan cost including the dead views
  double cost_after = 0.0;
  std::vector<MigratedSharing> migrated;
  std::vector<SharingId> parked;  // newly parked sharings
};

class RecoveryPlanner {
 public:
  explicit RecoveryPlanner(PlannerContext context,
                           RecoveryOptions options = {})
      : ctx_(context), options_(options) {}

  RecoveryPlanner(const RecoveryPlanner&) = delete;
  RecoveryPlanner& operator=(const RecoveryPlanner&) = delete;

  // Handles the loss of `server` (the caller has already MarkDown()ed it
  // on the cluster): removes every affected sharing from the global plan,
  // migrates the recoverable ones to live servers, parks the rest.
  // `now_tick` anchors the parked sharings' retry backoff.
  Result<RecoveryReport> OnServerDown(ServerId server, int64_t now_tick);

  // Attempts to re-admit parked sharings. Without `force`, only sharings
  // whose backoff has elapsed at `now_tick` are tried; with `force` (e.g.
  // right after a server returned) every parked sharing is tried. Returns
  // the sharings that were re-admitted; the rest back off further.
  Result<std::vector<MigratedSharing>> RetryParked(int64_t now_tick,
                                                   bool force = false);

  const std::vector<ParkedSharing>& parked() const { return parked_; }
  size_t num_parked() const { return parked_.size(); }

  const PlannerContext& context() const { return ctx_; }

 private:
  // Algorithm 2 restricted to live servers: cheapest feasible plan for
  // `sharing`, committed under `id`. kCapacityExceeded when nothing fits.
  Result<double> PlanOnLiveServers(SharingId id, const Sharing& sharing);

  PlannerContext ctx_;
  RecoveryOptions options_;
  std::vector<ParkedSharing> parked_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_RECOVERY_PLANNER_H_
