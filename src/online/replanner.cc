#include "online/replanner.h"

#include <limits>

namespace dsm {

Result<ReplanReport> Replanner::Improve() {
  GlobalPlan* gp = ctx_.global_plan;
  ReplanReport report;
  report.cost_before = gp->TotalCost();

  for (int round = 0; round < options_.max_rounds; ++round) {
    const double round_start_cost = gp->TotalCost();
    bool changed = false;

    for (const SharingId id : gp->sharing_ids()) {
      const GlobalPlan::SharingRecord* rec = gp->record(id);
      if (rec == nullptr) continue;
      const Sharing sharing = rec->sharing;
      const SharingPlan original = rec->plan;

      DSM_RETURN_IF_ERROR(gp->RemoveSharing(id));

      DSM_ASSIGN_OR_RETURN(std::vector<SharingPlan> plans,
                           ctx_.enumerator->Enumerate(sharing));
      const SharingPlan* best = &original;
      double best_marginal = std::numeric_limits<double>::infinity();
      {
        const GlobalPlan::PlanEvaluation orig_eval =
            gp->EvaluatePlan(original);
        if (orig_eval.feasible) best_marginal = orig_eval.marginal_cost;
      }
      for (const SharingPlan& plan : plans) {
        const GlobalPlan::PlanEvaluation eval = gp->EvaluatePlan(plan);
        if (!eval.feasible) continue;
        if (eval.marginal_cost < best_marginal) {
          best_marginal = eval.marginal_cost;
          best = &plan;
        }
      }
      DSM_RETURN_IF_ERROR(gp->AddSharing(id, sharing, *best).status());
      if (best != &original) {
        ++report.plans_changed;
        changed = true;
      }
    }

    ++report.rounds;
    const double gained = round_start_cost - gp->TotalCost();
    if (!changed ||
        gained <= options_.min_relative_gain * round_start_cost) {
      break;
    }
  }

  report.cost_after = gp->TotalCost();
  return report;
}

}  // namespace dsm
