// RegretTracker: the bookkeeping behind Definition 4.3 (regret).
//
// For every subexpression s (identified by its base-table set) that has not
// yet been produced, the tracker accumulates the *residuals* of the prior
// sharings containing s:
//
//     resid_j = C[P_j] − Σ_{s' ∈ P_j} rg_j(s')          (Eq. 1's numerator)
//     rg_i(s) = Σ_{j<i, s ◁ S_j, s unproduced} resid_j / (#join(S_i) − 1)
//
// Once some plan produces s's full result, rg(s) is zero forever. Plans in
// the general case may materialize only a *predicated* fraction perc of s;
// the tracker then scales the pending incentive by (1 − perc): the portion
// of s that now exists no longer needs encouragement (Eq. 3's spirit).

#ifndef DSM_ONLINE_REGRET_TRACKER_H_
#define DSM_ONLINE_REGRET_TRACKER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "catalog/table_set.h"
#include "plan/join_graph.h"
#include "sharing/sharing.h"

namespace dsm {

class RegretTracker {
 public:
  explicit RegretTracker(const JoinGraph* graph) : graph_(graph) {}

  // Raw accumulated residual for table set `s` (the numerator of Eq. 1);
  // zero if `s` was produced. Divide by max(1, #join(S_i) − 1) for rg_i(s).
  double Pending(TableSet s) const;

  bool Produced(TableSet s) const;

  // rg_i(s) for a sharing with `num_joins` joins.
  double Regret(TableSet s, int num_joins) const;

  // Bookkeeping after sharing S's plan was chosen.
  //   marginal_cost     — C[P] (the cost the plan added to the global plan)
  //   consumed_regret   — Σ rg(s')·perc over the plan's fresh join nodes
  //   produced_full     — table sets whose unpredicated result the plan
  //                       materialized
  //   produced_partial  — (table set, perc) pairs materialized with
  //                       predicates
  void OnPlanChosen(const Sharing& sharing, double marginal_cost,
                    double consumed_regret,
                    const std::vector<TableSet>& produced_full,
                    const std::vector<std::pair<TableSet, double>>&
                        produced_partial);

  // Table sets with nonzero pending regret (used by the speculative-view
  // advisor extension).
  std::vector<std::pair<TableSet, double>> PendingSets() const;

  // Marks `s` produced out-of-band (speculative materialization).
  void MarkProduced(TableSet s) {
    produced_.insert(s);
    pending_.erase(s);
  }

 private:
  const JoinGraph* graph_;
  std::unordered_map<TableSet, double, TableSetHash> pending_;
  std::unordered_set<TableSet, TableSetHash> produced_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_REGRET_TRACKER_H_
