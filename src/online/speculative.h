// SpeculativeViewAdvisor: Section 7's second future-work item, implemented
// — "whether it is beneficial to create and maintain views that do not
// belong to any existing sharing plan (so that future sharings may reuse
// them)". The advisor watches the regret tracker: a subexpression whose
// pending regret exceeds `regret_multiple` times the cost of materializing
// it is a strong recurring demand signal, so the view is built proactively
// as a provider-owned pseudo-sharing.

#ifndef DSM_ONLINE_SPECULATIVE_H_
#define DSM_ONLINE_SPECULATIVE_H_

#include <vector>

#include "common/status.h"
#include "online/managed_risk.h"

namespace dsm {

struct SpeculativeOptions {
  // Materialize a pending subexpression once pending regret exceeds this
  // multiple of its cheapest materialization cost.
  double regret_multiple = 2.0;
  // Upper bound on speculative views alive at once.
  size_t max_views = 16;
};

struct SpeculationReport {
  int views_created = 0;
  double cost_added = 0.0;
};

// Wraps a ManagedRiskPlanner; call MaybeSpeculate() after each processed
// sharing. Speculative views are integrated as pseudo-sharings with ids
// starting at kSpeculativeIdBase so they never collide with buyer ids.
class SpeculativeViewAdvisor {
 public:
  static constexpr SharingId kSpeculativeIdBase = 1ULL << 62;

  SpeculativeViewAdvisor(ManagedRiskPlanner* planner,
                         SpeculativeOptions options = {})
      : planner_(planner), options_(options) {}

  Result<SpeculationReport> MaybeSpeculate();

  size_t num_views() const { return views_created_; }

 private:
  ManagedRiskPlanner* planner_;
  SpeculativeOptions options_;
  size_t views_created_ = 0;
};

}  // namespace dsm

#endif  // DSM_ONLINE_SPECULATIVE_H_
