#include "online/normalize.h"

#include <algorithm>

namespace dsm {

int NormalizePlanner::OccurrenceCount(TableSet tables) const {
  const auto it = counts_.find(tables);
  return it == counts_.end() ? 0 : it->second;
}

void NormalizePlanner::OnSharingArrived(const Sharing& sharing) {
  for (const TableSet s :
       ctx_.graph->ConnectedSubsets(sharing.tables(), /*min_size=*/2)) {
    ++counts_[s];
  }
}

double NormalizePlanner::Score(const Sharing& /*sharing*/,
                               const SharingPlan& plan,
                               const GlobalPlan::PlanEvaluation& eval) {
  // Normalized plan cost: fresh join nodes are discounted by how many
  // sharings (so far) contain their subexpression; residual/leaf costs are
  // charged as-is.
  double normalized = 0.0;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const GlobalPlan::NodeDecision& d = eval.decisions[i];
    if (d.state == GlobalPlan::NodeDecision::kSkipped) continue;
    double cost = d.marginal_cost;
    if (d.state == GlobalPlan::NodeDecision::kFresh &&
        plan.nodes[i].is_join()) {
      cost /= std::max(1, OccurrenceCount(plan.nodes[i].key.tables));
    }
    normalized += cost;
  }
  return -normalized;
}

}  // namespace dsm
