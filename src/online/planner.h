// OnlinePlanner: the online sharing-plan selection loop (Definition 4.1).
//
// Each arriving sharing is planned without knowledge of future sharings:
// the planner enumerates the sharing's possible plans, scores each after a
// dry-run integration into the global plan, and commits the best-scoring
// plan that violates no server capacity (Algorithm 2); if none is feasible
// the sharing is rejected. Subclasses differ only in the scoring rule:
// GREEDY, NORMALIZE and MANAGEDRISK from Section 4.

#ifndef DSM_ONLINE_PLANNER_H_
#define DSM_ONLINE_PLANNER_H_

#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "cluster/cluster.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "globalplan/global_plan.h"
#include "plan/enumerator.h"
#include "plan/join_graph.h"
#include "plan/plan.h"
#include "sharing/sharing.h"

namespace dsm {

// Shared, externally owned infrastructure the planner operates on.
struct PlannerContext {
  const Catalog* catalog = nullptr;
  const Cluster* cluster = nullptr;
  const JoinGraph* graph = nullptr;
  CostModel* model = nullptr;
  GlobalPlan* global_plan = nullptr;
  PlanEnumerator* enumerator = nullptr;
  // When set (and the cost model supports concurrent queries), candidate
  // plans are dry-run-evaluated on this pool. EvaluatePlan is const and
  // results land in index-addressed slots before the serial Score pass, so
  // any pool size — including 1, which runs inline — produces the exact
  // PlanChoice of the serial path.
  ThreadPool* scoring_pool = nullptr;
};

struct PlanChoice {
  SharingId id = 0;
  SharingPlan plan;
  double marginal_cost = 0.0;  // $ the sharing added to the global plan
  double score = 0.0;
  size_t plans_considered = 0;
  // True when an identical sharing had been planned before and its plan was
  // reused wholesale without enumeration (Section 6.2.2's observation that
  // repeated sharings "don't need to be processed").
  bool reused_identical = false;
};

class OnlinePlanner {
 public:
  explicit OnlinePlanner(PlannerContext context) : ctx_(context) {}
  virtual ~OnlinePlanner() = default;

  OnlinePlanner(const OnlinePlanner&) = delete;
  OnlinePlanner& operator=(const OnlinePlanner&) = delete;

  virtual const char* name() const = 0;

  // Plans and integrates the next sharing of the online sequence.
  // Returns kCapacityExceeded if every plan violates some server capacity.
  Result<PlanChoice> ProcessSharing(const Sharing& sharing);

  const PlannerContext& context() const { return ctx_; }

 protected:
  // Higher is better. `eval` is the dry-run integration of `plan`.
  virtual double Score(const Sharing& sharing, const SharingPlan& plan,
                       const GlobalPlan::PlanEvaluation& eval) = 0;

  // Called once per arriving sharing before planning (e.g. NORMALIZE's
  // occurrence counts, which include the current sharing).
  virtual void OnSharingArrived(const Sharing& /*sharing*/) {}

  // Called after the chosen plan has been integrated.
  virtual void OnPlanChosen(const Sharing& /*sharing*/,
                            const SharingPlan& /*plan*/,
                            const GlobalPlan::PlanEvaluation& /*eval*/) {}

  // Hash key of the identical-sharing fast path (query + destination).
  // Virtual so a test can force collisions; the cache verifies the stored
  // sharing is really identical before reusing its plan, so a collision
  // degrades to a miss, never to the wrong plan.
  virtual uint64_t IdenticalKey(const Sharing& sharing) const;

  PlannerContext ctx_;

 private:
  // A previously planned sharing and the plan chosen for it; the sharing
  // itself is kept so a 64-bit hash collision cannot smuggle in another
  // query's plan.
  struct IdenticalEntry {
    Sharing sharing;
    SharingPlan plan;
  };

  SharingId next_id_ = 1;
  // IdenticalKey(query incl. destination) -> entry previously chosen.
  std::unordered_map<uint64_t, IdenticalEntry> identical_plans_;
};

}  // namespace dsm

#endif  // DSM_ONLINE_PLANNER_H_
