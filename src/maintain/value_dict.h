// Process-wide value dictionary: every Value encodes to a tagged 8-byte
// Slot, so a tuple becomes a flat fixed-width uint64_t array with no
// per-probe allocation or string comparison anywhere in the data plane.
//
// Encoding (tag = top 2 bits, payload = low 62):
//   kInlineInt  int64 in [-2^61, 2^61): stored directly (sign bits folded
//               into the payload). The overwhelmingly common case — no
//               dictionary traffic at all.
//   kString     payload is the id of an interned string. Interning is
//               canonical: equal strings always get the same id, so slot
//               equality IS string equality and probes never touch bytes.
//   kDouble     payload is the id of an interned double (by bit pattern,
//               with -0.0 canonicalized to +0.0 so Value equality and slot
//               equality agree). NaN payloads are unsupported, exactly as
//               they already were in the legacy row store, whose hash was
//               inconsistent with NaN equality.
//   kWideInt    payload is the id of an interned int64 outside the inline
//               range.
//
// Concurrency (DESIGN.md §12): interning takes the writer lock; resolving
// an id takes the reader lock. The maintenance engine's parallel fan-out
// (PR 3) never interns — joins, filters, projections and merges only
// rearrange slots that already exist — so the fan-out's only dictionary
// traffic is rare reader-locked numeric lookups for non-inline operands of
// predicates. New values enter the dictionary on the serial ingest path
// (building a delta from caller Tuples), strictly before the fan-out that
// reads them; the pool barrier orders publication.

#ifndef DSM_MAINTAIN_VALUE_DICT_H_
#define DSM_MAINTAIN_VALUE_DICT_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "maintain/value.h"

namespace dsm {

using Slot = uint64_t;

enum class SlotTag : uint64_t {
  kInlineInt = 0,
  kString = 1,
  kDouble = 2,
  kWideInt = 3,
};

inline constexpr int kSlotTagShift = 62;
inline constexpr Slot kSlotPayloadMask = (Slot{1} << kSlotTagShift) - 1;
inline constexpr int64_t kInlineIntMax =
    (int64_t{1} << (kSlotTagShift - 1)) - 1;
inline constexpr int64_t kInlineIntMin = -(int64_t{1} << (kSlotTagShift - 1));

inline SlotTag GetSlotTag(Slot s) {
  return static_cast<SlotTag>(s >> kSlotTagShift);
}
inline uint64_t SlotPayload(Slot s) { return s & kSlotPayloadMask; }
inline Slot MakeSlot(SlotTag tag, uint64_t payload) {
  return (static_cast<uint64_t>(tag) << kSlotTagShift) |
         (payload & kSlotPayloadMask);
}
// Sign-extends a 62-bit inline-int payload.
inline int64_t InlineIntValue(Slot s) {
  return static_cast<int64_t>(s << (64 - kSlotTagShift)) >>
         (64 - kSlotTagShift);
}

class ValueDict {
 public:
  ValueDict() = default;
  ValueDict(const ValueDict&) = delete;
  ValueDict& operator=(const ValueDict&) = delete;

  // The process-wide dictionary every compact relation encodes through.
  // One dictionary per process keeps slots comparable across engines,
  // relations and threads.
  static ValueDict& Global();

  // Canonical slot for `v`, interning on first sight. Equal Values always
  // yield equal slots; distinct Values always yield distinct slots.
  Slot Encode(const Value& v);

  // Lookup without interning: false when `v` was never encoded (a probe
  // for a never-seen value cannot match anything, and must not grow the
  // dictionary). Inline ints always succeed.
  bool Find(const Value& v, Slot* out) const;

  Value Decode(Slot s) const;

  // Numeric view for predicate evaluation; false for strings (string
  // values satisfy no numeric predicate, matching ValueSatisfies).
  bool SlotNumeric(Slot s, double* out) const;

  // Interned entries by kind, and total (the dsm.maintain.dict_entries
  // gauge). Inline ints never intern and are not counted.
  size_t num_strings() const;
  size_t num_entries() const;
  // Approximate heap footprint of the interned payloads and their maps.
  size_t resident_bytes() const;

 private:
  mutable std::shared_mutex mu_;
  // Deques give stable element addresses, so the string_view map keys stay
  // valid across growth.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint64_t> string_ids_;
  std::deque<double> doubles_;
  std::unordered_map<uint64_t, uint64_t> double_ids_;  // key: bit pattern
  std::deque<int64_t> wide_ints_;
  std::unordered_map<int64_t, uint64_t> wide_ids_;
};

// Out-of-line tail of SlotSatisfies for non-inline tags.
bool SlotSatisfiesSlow(Slot s, CompareOp op, double constant);

// ValueSatisfies over an encoded slot: inline ints (the common case)
// compare without any dictionary access; strings fail without any
// dictionary access; interned doubles / wide ints take one reader-locked
// lookup.
inline bool SlotSatisfies(Slot s, CompareOp op, double constant) {
  if (GetSlotTag(s) == SlotTag::kInlineInt) {
    const auto v = static_cast<double>(InlineIntValue(s));
    switch (op) {
      case CompareOp::kLt:
        return v < constant;
      case CompareOp::kGt:
        return v > constant;
      case CompareOp::kEq:
        return v == constant;
    }
    return false;
  }
  return SlotSatisfiesSlow(s, op, constant);
}

}  // namespace dsm

#endif  // DSM_MAINTAIN_VALUE_DICT_H_
