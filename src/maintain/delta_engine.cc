#include "maintain/delta_engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

std::vector<std::string> TableColumnNames(const Catalog& catalog,
                                          TableId table) {
  std::vector<std::string> names;
  for (const ColumnDef& col : catalog.table(table).columns) {
    names.push_back(col.name);
  }
  return names;
}

}  // namespace

Status DeltaEngine::RegisterBase(TableId table) {
  if (table >= catalog_->num_tables()) {
    return Status::InvalidArgument("unknown table id");
  }
  if (bases_.count(table) != 0) {
    return Status::AlreadyExists("base table already registered");
  }
  bases_.emplace(table, Relation(TableColumnNames(*catalog_, table)));
  return Status::OK();
}

Relation DeltaEngine::ApplyTablePredicates(const ViewKey& key, TableId table,
                                           Relation rel) const {
  for (const Predicate& pred : key.predicates) {
    if (pred.table != table) continue;
    const TableDef& def = catalog_->table(table);
    if (pred.column >= def.columns.size()) continue;
    rel = rel.Filter(def.columns[pred.column].name, pred.op, pred.value);
  }
  return rel;
}

Result<Relation> DeltaEngine::Recompute(const ViewKey& key) const {
  DSM_METRIC_COUNTER_ADD("dsm.maintain.recomputes", 1);
  Relation acc;
  bool first = true;
  for (const TableId t : key.tables.ToVector()) {
    const auto it = bases_.find(t);
    if (it == bases_.end()) {
      return Status::NotFound("view references an unregistered base table");
    }
    Relation filtered = ApplyTablePredicates(key, t, it->second);
    if (first) {
      acc = std::move(filtered);
      first = false;
    } else {
      acc = NaturalJoin(acc, filtered, nullptr);
    }
  }
  return acc;
}

Result<Relation> DeltaEngine::Recompute(
    const ViewKey& key, const std::vector<std::string>& projection) const {
  DSM_ASSIGN_OR_RETURN(Relation full, Recompute(key));
  if (projection.empty()) return full;
  return full.Project(projection);
}

Result<ViewId> DeltaEngine::RegisterView(const ViewKey& key,
                                         std::vector<std::string> projection) {
  DSM_ASSIGN_OR_RETURN(Relation initial, Recompute(key, projection));
  views_.push_back(View{key, std::move(projection), std::move(initial)});
  return views_.size() - 1;
}

Status DeltaEngine::ApplyUpdate(TableId table,
                                const std::vector<Tuple>& inserts,
                                const std::vector<Tuple>& deletes) {
  const auto base_it = bases_.find(table);
  if (base_it == bases_.end()) {
    return Status::NotFound("base table not registered");
  }
  DSM_METRIC_COUNTER_ADD("dsm.maintain.updates", 1);
  DSM_METRIC_COUNTER_ADD("dsm.maintain.delta_tuples",
                         inserts.size() + deletes.size());
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.maintain.apply_ms");
  DSM_TRACE_SPAN("maintain/apply_update");

  // The signed delta relation ΔT.
  Relation delta(base_it->second.columns());
  for (const Tuple& t : inserts) delta.Apply(t, +1);
  for (const Tuple& t : deletes) delta.Apply(t, -1);

  // Propagate to every view over `table`: ΔV = σ(ΔT) ⋈ σ(T_other) ...,
  // using the *current* (pre-update) state of the other base tables.
  for (View& view : views_) {
    if (!view.active || !view.key.tables.Contains(table)) continue;
    DSM_METRIC_COUNTER_ADD("dsm.maintain.view_refreshes", 1);
    Relation cur = ApplyTablePredicates(view.key, table, delta);
    for (const TableId other : view.key.tables.ToVector()) {
      if (other == table) continue;
      const Relation filtered =
          ApplyTablePredicates(view.key, other, bases_.at(other));
      cur = NaturalJoin(cur, filtered, &work_);
    }
    // Project to the view's output columns (bag semantics keep projected
    // deltas exact), then permute into the view's canonical column order.
    if (!view.projection.empty()) {
      cur = cur.Project(view.projection);
    }
    cur = cur.WithColumnOrder(view.contents.columns());
    for (const auto& [tuple, count] : cur.rows()) {
      view.contents.Apply(tuple, count);
    }
  }

  // Merge the delta into the base relation.
  for (const auto& [tuple, count] : delta.rows()) {
    base_it->second.Apply(tuple, count);
  }
  DSM_METRIC_GAUGE_SET("dsm.maintain.join_work",
                       static_cast<double>(work_));
  return Status::OK();
}

Status DeltaEngine::SetViewActive(ViewId id, bool active) {
  if (id >= views_.size()) {
    return Status::NotFound("unknown view id");
  }
  View& view = views_[id];
  if (view.active == active) return Status::OK();
  if (!active) {
    // The machine holding the view is gone; so are its contents.
    view.contents = Relation(view.contents.columns());
    view.active = false;
    return Status::OK();
  }
  DSM_ASSIGN_OR_RETURN(view.contents,
                       Recompute(view.key, view.projection));
  view.active = true;
  return Status::OK();
}

const Relation* DeltaEngine::base(TableId table) const {
  const auto it = bases_.find(table);
  return it == bases_.end() ? nullptr : &it->second;
}

const Relation* DeltaEngine::view(ViewId id) const {
  return id < views_.size() ? &views_[id].contents : nullptr;
}

}  // namespace dsm
