#include "maintain/delta_engine.h"

#include <algorithm>
#include <atomic>

#include "maintain/tuple_store.h"
#include "maintain/value_dict.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsm {
namespace {

std::vector<std::string> TableColumnNames(const Catalog& catalog,
                                          TableId table) {
  std::vector<std::string> names;
  for (const ColumnDef& col : catalog.table(table).columns) {
    names.push_back(col.name);
  }
  return names;
}

// Mirrors the compact data plane's global stats into the metrics registry.
// The stats are cumulative process-wide atomics; counters get the delta
// since the last export (monotone guard keeps concurrent engines from
// double-counting), gauges get the current value.
void ExportTupleStoreMetrics() {
#ifndef DSM_DISABLE_TELEMETRY
  const TupleStoreStats& stats = TupleStoreStats::Global();
  static std::atomic<uint64_t> last_probes{0};
  static std::atomic<uint64_t> last_rehashes{0};
  const uint64_t probes = stats.probes.load(std::memory_order_relaxed);
  const uint64_t rehashes = stats.rehashes.load(std::memory_order_relaxed);
  const uint64_t prev_probes =
      last_probes.exchange(probes, std::memory_order_relaxed);
  const uint64_t prev_rehashes =
      last_rehashes.exchange(rehashes, std::memory_order_relaxed);
  if (probes > prev_probes) {
    DSM_METRIC_COUNTER_ADD("dsm.maintain.bag_probes", probes - prev_probes);
  }
  if (rehashes > prev_rehashes) {
    DSM_METRIC_COUNTER_ADD("dsm.maintain.bag_rehashes",
                           rehashes - prev_rehashes);
  }
  DSM_METRIC_GAUGE_SET("dsm.maintain.dict_entries",
                       ValueDict::Global().num_entries());
  DSM_METRIC_GAUGE_SET(
      "dsm.maintain.resident_bytes",
      stats.resident_bytes.load(std::memory_order_relaxed));
#endif  // DSM_DISABLE_TELEMETRY
}

}  // namespace

DeltaEngine::DeltaEngine(const Catalog* catalog, DeltaEngineOptions options)
    : catalog_(catalog), options_(options) {
  if (ResolveThreadCount(options_.pool) > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.pool);
  }
}

Status DeltaEngine::RegisterBase(TableId table) {
  if (table >= catalog_->num_tables()) {
    return Status::InvalidArgument("unknown table id");
  }
  if (bases_.count(table) != 0) {
    return Status::AlreadyExists("base table already registered");
  }
  bases_.emplace(table, Relation(TableColumnNames(*catalog_, table),
                                 row_encoding()));
  return Status::OK();
}

bool DeltaEngine::HasPredicatesOn(const ViewKey& key, TableId table) const {
  const TableDef& def = catalog_->table(table);
  for (const Predicate& pred : key.predicates) {
    if (pred.table == table && pred.column < def.columns.size()) return true;
  }
  return false;
}

const Relation& DeltaEngine::ApplyTablePredicates(const ViewKey& key,
                                                  TableId table,
                                                  const Relation& rel,
                                                  Relation* scratch) const {
  const Relation* cur = &rel;
  for (const Predicate& pred : key.predicates) {
    if (pred.table != table) continue;
    const TableDef& def = catalog_->table(table);
    if (pred.column >= def.columns.size()) continue;
    *scratch = cur->Filter(def.columns[pred.column].name, pred.op,
                           pred.value);
    cur = scratch;
  }
  return *cur;
}

Result<Relation> DeltaEngine::Recompute(const ViewKey& key) const {
  DSM_METRIC_COUNTER_ADD("dsm.maintain.recomputes", 1);
  Relation acc;
  bool first = true;
  for (const TableId t : key.tables.ToVector()) {
    const auto it = bases_.find(t);
    if (it == bases_.end()) {
      return Status::NotFound("view references an unregistered base table");
    }
    Relation scratch;
    const Relation& filtered =
        ApplyTablePredicates(key, t, it->second, &scratch);
    if (first) {
      acc = filtered;
      first = false;
    } else {
      acc = NaturalJoin(acc, filtered, nullptr);
    }
  }
  return acc;
}

Result<Relation> DeltaEngine::Recompute(
    const ViewKey& key, const std::vector<std::string>& projection) const {
  DSM_ASSIGN_OR_RETURN(Relation full, Recompute(key));
  if (projection.empty()) return full;
  return full.Project(projection);
}

std::vector<DeltaEngine::JoinStep> DeltaEngine::BuildJoinPlan(
    const ViewKey& key, TableId delta_table) const {
  // Orders the probes by connectivity: each step joins the lowest-id
  // remaining table that shares a column with the schema accumulated so
  // far, so a delta entering mid-chain never takes a cartesian product
  // with an unconnected table (ascending order did exactly that for
  // deltas on a chain's tail, and the blowup dwarfed every other cost).
  // Only if no remaining table connects — a genuinely disconnected view —
  // does the plan fall back to the lowest-id table.
  std::vector<std::string> schema = TableColumnNames(*catalog_, delta_table);
  std::vector<TableId> remaining;
  for (const TableId other : key.tables.ToVector()) {
    if (other != delta_table) remaining.push_back(other);
  }
  std::vector<JoinStep> steps;
  while (!remaining.empty()) {
    size_t pick = 0;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!SharedJoinColumns(schema, bases_.at(remaining[i])).empty()) {
        pick = i;
        break;
      }
    }
    const Relation& rel = bases_.at(remaining[pick]);
    JoinStep step;
    step.other = remaining[pick];
    step.key_columns = SharedJoinColumns(schema, rel);
    for (const std::string& col : rel.columns()) {
      if (std::find(schema.begin(), schema.end(), col) == schema.end()) {
        schema.push_back(col);
      }
    }
    steps.push_back(std::move(step));
    remaining.erase(remaining.begin() + static_cast<long>(pick));
  }
  return steps;
}

Result<ViewId> DeltaEngine::RegisterView(const ViewKey& key,
                                         std::vector<std::string> projection) {
  DSM_ASSIGN_OR_RETURN(Relation initial, Recompute(key, projection));
  View view;
  view.key = key;
  view.projection = std::move(projection);
  view.contents = std::move(initial);
  for (const TableId t : key.tables.ToVector()) {
    view.join_plans[t] = BuildJoinPlan(key, t);
  }
  views_.push_back(std::move(view));
  return views_.size() - 1;
}

void DeltaEngine::PrepareOperands(ViewId id, TableId table) {
  const View& view = views_[id];
  for (const JoinStep& step : view.join_plans.at(table)) {
    Operand& op = operands_[{id, step.other}];
    if (op.filtered == nullptr && !op.use_base) {
      if (HasPredicatesOn(view.key, step.other)) {
        Relation scratch;
        const Relation& filtered = ApplyTablePredicates(
            view.key, step.other, bases_.at(step.other), &scratch);
        (void)filtered;  // predicates exist, so `filtered` aliases scratch
        op.filtered = std::make_unique<Relation>(std::move(scratch));
      } else {
        op.use_base = true;
      }
      DSM_METRIC_COUNTER_ADD("dsm.maintain.operand_cache_builds", 1);
    } else {
      DSM_METRIC_COUNTER_ADD("dsm.maintain.operand_cache_hits", 1);
    }
    Relation& rel = op.use_base ? bases_.at(step.other) : *op.filtered;
    rel.EnsureIndex(step.key_columns);
  }
}

const Relation& DeltaEngine::OperandRelation(ViewId id,
                                             TableId other) const {
  const Operand& op = operands_.at({id, other});
  return op.use_base ? bases_.at(other) : *op.filtered;
}

uint64_t DeltaEngine::MaintainView(ViewId id, TableId table,
                                   const Relation& delta) {
  DSM_METRIC_COUNTER_ADD("dsm.maintain.view_refreshes", 1);
  View& view = views_[id];
  uint64_t local_work = 0;
  Relation delta_scratch;
  const Relation* cur =
      &ApplyTablePredicates(view.key, table, delta, &delta_scratch);
  Relation owned;
  if (options_.operand_cache) {
    for (const JoinStep& step : view.join_plans.at(table)) {
      const Relation& operand = OperandRelation(id, step.other);
      const Relation::JoinIndex* index =
          operand.FindIndex(step.key_columns);
      owned = index != nullptr
                  ? NaturalJoin(*cur, operand, *index, &local_work)
                  : NaturalJoin(*cur, operand, &local_work);
      cur = &owned;
    }
  } else {
    // Legacy path: same connectivity-ordered plan, but re-filters (and
    // re-hashes, inside NaturalJoin) every operand on every update.
    for (const JoinStep& step : view.join_plans.at(table)) {
      Relation scratch;
      const Relation& filtered = ApplyTablePredicates(
          view.key, step.other, bases_.at(step.other), &scratch);
      owned = NaturalJoin(*cur, filtered, &local_work);
      cur = &owned;
    }
  }
  // Project to the view's output columns (bag semantics keep projected
  // deltas exact), then permute into the view's canonical column order.
  Relation result;
  if (cur == &owned) {
    result = std::move(owned);
  } else if (cur == &delta_scratch) {
    result = std::move(delta_scratch);
  } else {
    result = *cur;  // single-table unpredicated view: delta-sized copy
  }
  if (!view.projection.empty()) {
    result = result.Project(view.projection);
  }
  result = result.WithColumnOrder(view.contents.columns());
  // Same schema and order: in compact mode the merge transfers the stored
  // row hashes — no tuple is rehashed on its way into the view.
  view.contents.ApplyAll(result);
  return local_work;
}

Status DeltaEngine::PropagateDelta(TableId table, const Relation& delta) {
  DSM_METRIC_COUNTER_ADD("dsm.maintain.updates", 1);
  DSM_METRIC_SCOPED_LATENCY_MS("dsm.maintain.apply_ms");
  DSM_TRACE_SPAN("maintain/apply_update");

  std::vector<ViewId> affected;
  for (ViewId id = 0; id < views_.size(); ++id) {
    if (views_[id].active && views_[id].key.tables.Contains(table)) {
      affected.push_back(id);
    }
  }
  if (affected.empty()) return Status::OK();

  // Serial prelude: materialize every operand cache and index the fan-out
  // will probe. After this point shared state is read-only until the
  // barrier.
  if (options_.operand_cache) {
    for (const ViewId id : affected) PrepareOperands(id, table);
  }

  std::vector<uint64_t> task_work(affected.size(), 0);
  const auto maintain = [&](size_t i) {
    task_work[i] = MaintainView(affected[i], table, delta);
  };
  if (pool_ != nullptr && affected.size() > 1) {
    pool_->ParallelFor(affected.size(), maintain);
  } else {
    for (size_t i = 0; i < affected.size(); ++i) maintain(i);
  }
  // Deterministic merge: summation in view order, independent of which
  // thread ran which view.
  for (const uint64_t w : task_work) work_ += w;
  DSM_METRIC_GAUGE_SET("dsm.maintain.join_work",
                       static_cast<double>(work_));
  return Status::OK();
}

void DeltaEngine::MergeDelta(TableId table, const Relation& delta) {
  Relation& base = bases_.at(table);
  base.ApplyAll(delta);  // also patches the base's indexes
  // Patch every cached filtered operand over this table — including those
  // of inactive views, whose caches must stay consistent with the base for
  // re-admission.
  for (auto& [key, op] : operands_) {
    if (key.second != table || op.filtered == nullptr) continue;
    const View& view = views_[key.first];
    Relation scratch;
    const Relation& filtered =
        ApplyTablePredicates(view.key, table, delta, &scratch);
    op.filtered->ApplyAll(filtered);
    DSM_METRIC_COUNTER_ADD("dsm.maintain.operand_cache_patches", 1);
  }
}

Status DeltaEngine::ApplyUpdate(TableId table,
                                const std::vector<Tuple>& inserts,
                                const std::vector<Tuple>& deletes) {
  const auto base_it = bases_.find(table);
  if (base_it == bases_.end()) {
    return Status::NotFound("base table not registered");
  }
  DSM_METRIC_COUNTER_ADD("dsm.maintain.delta_tuples",
                         inserts.size() + deletes.size());

  // The signed delta relation ΔT.
  Relation delta(base_it->second.columns(), row_encoding());
  for (const Tuple& t : inserts) delta.Apply(t, +1);
  for (const Tuple& t : deletes) delta.Apply(t, -1);

  DSM_RETURN_IF_ERROR(PropagateDelta(table, delta));
  MergeDelta(table, delta);
  ExportTupleStoreMetrics();
  return Status::OK();
}

Status DeltaEngine::ApplyUpdates(std::span<const TableUpdate> updates) {
  for (const TableUpdate& update : updates) {
    if (bases_.find(update.table) == bases_.end()) {
      return Status::NotFound("base table not registered");
    }
  }
  DSM_METRIC_COUNTER_ADD("dsm.maintain.batches", 1);

  // Coalesce per table (ascending), so each view is refreshed once per
  // table regardless of how fragmented the batch is.
  std::map<TableId, Relation> deltas;
  for (const TableUpdate& update : updates) {
    DSM_METRIC_COUNTER_ADD("dsm.maintain.delta_tuples",
                           update.inserts.size() + update.deletes.size());
    auto [it, inserted] = deltas.try_emplace(
        update.table,
        Relation(bases_.at(update.table).columns(), row_encoding()));
    if (!inserted) {
      DSM_METRIC_COUNTER_ADD("dsm.maintain.batch_coalesced", 1);
    }
    Relation& delta = it->second;
    for (const Tuple& t : update.inserts) delta.Apply(t, +1);
    for (const Tuple& t : update.deletes) delta.Apply(t, -1);
  }
  for (const auto& [table, delta] : deltas) {
    DSM_RETURN_IF_ERROR(PropagateDelta(table, delta));
    MergeDelta(table, delta);
  }
  ExportTupleStoreMetrics();
  return Status::OK();
}

Status DeltaEngine::SetViewActive(ViewId id, bool active) {
  if (id >= views_.size()) {
    return Status::NotFound("unknown view id");
  }
  View& view = views_[id];
  if (view.active == active) return Status::OK();
  if (!active) {
    // The machine holding the view is gone; so are its contents.
    view.contents = Relation(view.contents.columns(), row_encoding());
    view.active = false;
    return Status::OK();
  }
  DSM_ASSIGN_OR_RETURN(view.contents,
                       Recompute(view.key, view.projection));
  view.active = true;
  return Status::OK();
}

const Relation* DeltaEngine::base(TableId table) const {
  const auto it = bases_.find(table);
  return it == bases_.end() ? nullptr : &it->second;
}

const Relation* DeltaEngine::view(ViewId id) const {
  return id < views_.size() ? &views_[id].contents : nullptr;
}

}  // namespace dsm
