#include "maintain/value_dict.h"

#include <cmath>
#include <mutex>

namespace dsm {
namespace {

uint64_t CanonicalDoubleBits(double d) {
  if (d == 0.0) d = 0.0;  // -0.0 and +0.0 are equal Values: one slot
  uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

bool CompareNumeric(double v, CompareOp op, double constant) {
  switch (op) {
    case CompareOp::kLt:
      return v < constant;
    case CompareOp::kGt:
      return v > constant;
    case CompareOp::kEq:
      return v == constant;
  }
  return false;
}

}  // namespace

ValueDict& ValueDict::Global() {
  static ValueDict* dict = new ValueDict();  // never destroyed
  return *dict;
}

Slot ValueDict::Encode(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    if (*i >= kInlineIntMin && *i <= kInlineIntMax) {
      return MakeSlot(SlotTag::kInlineInt, static_cast<uint64_t>(*i));
    }
    std::unique_lock lock(mu_);
    const auto it = wide_ids_.find(*i);
    if (it != wide_ids_.end()) return MakeSlot(SlotTag::kWideInt, it->second);
    const uint64_t id = wide_ints_.size();
    wide_ints_.push_back(*i);
    wide_ids_.emplace(*i, id);
    return MakeSlot(SlotTag::kWideInt, id);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    const uint64_t bits = CanonicalDoubleBits(*d);
    std::unique_lock lock(mu_);
    const auto it = double_ids_.find(bits);
    if (it != double_ids_.end()) return MakeSlot(SlotTag::kDouble, it->second);
    const uint64_t id = doubles_.size();
    doubles_.push_back(DoubleFromBits(bits));
    double_ids_.emplace(bits, id);
    return MakeSlot(SlotTag::kDouble, id);
  }
  const std::string& s = std::get<std::string>(v);
  {
    std::shared_lock lock(mu_);
    const auto it = string_ids_.find(std::string_view(s));
    if (it != string_ids_.end()) return MakeSlot(SlotTag::kString, it->second);
  }
  std::unique_lock lock(mu_);
  const auto it = string_ids_.find(std::string_view(s));  // lost the race?
  if (it != string_ids_.end()) return MakeSlot(SlotTag::kString, it->second);
  const uint64_t id = strings_.size();
  strings_.push_back(s);
  string_ids_.emplace(std::string_view(strings_.back()), id);
  return MakeSlot(SlotTag::kString, id);
}

bool ValueDict::Find(const Value& v, Slot* out) const {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    if (*i >= kInlineIntMin && *i <= kInlineIntMax) {
      *out = MakeSlot(SlotTag::kInlineInt, static_cast<uint64_t>(*i));
      return true;
    }
    std::shared_lock lock(mu_);
    const auto it = wide_ids_.find(*i);
    if (it == wide_ids_.end()) return false;
    *out = MakeSlot(SlotTag::kWideInt, it->second);
    return true;
  }
  if (const auto* d = std::get_if<double>(&v)) {
    std::shared_lock lock(mu_);
    const auto it = double_ids_.find(CanonicalDoubleBits(*d));
    if (it == double_ids_.end()) return false;
    *out = MakeSlot(SlotTag::kDouble, it->second);
    return true;
  }
  const std::string& s = std::get<std::string>(v);
  std::shared_lock lock(mu_);
  const auto it = string_ids_.find(std::string_view(s));
  if (it == string_ids_.end()) return false;
  *out = MakeSlot(SlotTag::kString, it->second);
  return true;
}

Value ValueDict::Decode(Slot s) const {
  switch (GetSlotTag(s)) {
    case SlotTag::kInlineInt:
      return Value(InlineIntValue(s));
    case SlotTag::kString: {
      std::shared_lock lock(mu_);
      return Value(strings_[SlotPayload(s)]);
    }
    case SlotTag::kDouble: {
      std::shared_lock lock(mu_);
      return Value(doubles_[SlotPayload(s)]);
    }
    case SlotTag::kWideInt: {
      std::shared_lock lock(mu_);
      return Value(wide_ints_[SlotPayload(s)]);
    }
  }
  return Value(int64_t{0});  // unreachable
}

bool ValueDict::SlotNumeric(Slot s, double* out) const {
  switch (GetSlotTag(s)) {
    case SlotTag::kInlineInt:
      *out = static_cast<double>(InlineIntValue(s));
      return true;
    case SlotTag::kString:
      return false;
    case SlotTag::kDouble: {
      std::shared_lock lock(mu_);
      *out = doubles_[SlotPayload(s)];
      return true;
    }
    case SlotTag::kWideInt: {
      std::shared_lock lock(mu_);
      *out = static_cast<double>(wide_ints_[SlotPayload(s)]);
      return true;
    }
  }
  return false;
}

size_t ValueDict::num_strings() const {
  std::shared_lock lock(mu_);
  return strings_.size();
}

size_t ValueDict::num_entries() const {
  std::shared_lock lock(mu_);
  return strings_.size() + doubles_.size() + wide_ints_.size();
}

size_t ValueDict::resident_bytes() const {
  std::shared_lock lock(mu_);
  // Payload bytes plus one map entry (~4 words with bucket overhead) per
  // interned value; an estimate, not an allocator audit.
  constexpr size_t kPerEntry = 4 * sizeof(void*);
  size_t bytes = 0;
  for (const std::string& s : strings_) {
    bytes += sizeof(std::string) + s.capacity() + kPerEntry;
  }
  bytes += doubles_.size() * (sizeof(double) + kPerEntry);
  bytes += wide_ints_.size() * (sizeof(int64_t) + kPerEntry);
  return bytes;
}

bool SlotSatisfiesSlow(Slot s, CompareOp op, double constant) {
  if (GetSlotTag(s) == SlotTag::kString) return false;
  double v;
  if (!ValueDict::Global().SlotNumeric(s, &v)) return false;
  return CompareNumeric(v, op, constant);
}

}  // namespace dsm
