// DeltaEngine: an executable incremental view maintenance substrate.
//
// The paper's evaluation costs plans analytically, but a real data market
// must actually keep purchased views fresh. The engine maintains
// materialized views σ_Q(⋈ T_1..T_k) under base-table inserts and deletes
// using the counting algorithm: a delta to table t is filtered, joined
// against the other (current) base tables, and the resulting signed delta
// is merged into the view — the apply-updates / copy / merge / join
// pipeline of the paper's Figure 2, collapsed onto one machine. It also
// meters the work performed, providing a measured counterpart to the
// DefaultCostModel's CPU estimates.

#ifndef DSM_MAINTAIN_DELTA_ENGINE_H_
#define DSM_MAINTAIN_DELTA_ENGINE_H_

#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/view_key.h"
#include "maintain/relation.h"

namespace dsm {

using ViewId = size_t;

class DeltaEngine {
 public:
  explicit DeltaEngine(const Catalog* catalog) : catalog_(catalog) {}

  DeltaEngine(const DeltaEngine&) = delete;
  DeltaEngine& operator=(const DeltaEngine&) = delete;

  // Creates an empty base relation with the table's catalog schema.
  Status RegisterBase(TableId table);

  // Registers a view to maintain; its content is computed from the current
  // base tables and kept incrementally fresh afterwards. The optional
  // `projection` (column names) restricts the view to those columns, with
  // bag semantics — the counting algorithm keeps projected views correct
  // under deletions. An empty projection keeps every column.
  Result<ViewId> RegisterView(const ViewKey& key,
                              std::vector<std::string> projection = {});

  // Applies inserts/deletes to base `table`: all registered views over the
  // table are brought up to date, then the base relation is updated.
  Status ApplyUpdate(TableId table, const std::vector<Tuple>& inserts,
                     const std::vector<Tuple>& deletes);

  // Degraded mode: an inactive view is not maintained (its contents are
  // dropped — the hosting machine is gone). Reactivating recomputes the
  // view from the current base tables, the provider's recovery story for
  // a sharing re-admitted after being parked.
  Status SetViewActive(ViewId id, bool active);
  bool view_active(ViewId id) const {
    return id < views_.size() && views_[id].active;
  }

  // nullptr when not registered.
  const Relation* base(TableId table) const;
  const Relation* view(ViewId id) const;
  const ViewKey& view_key(ViewId id) const { return views_[id].key; }
  size_t num_views() const { return views_.size(); }

  // From-scratch evaluation of `key` over the current base tables (the
  // oracle the incremental path is tested against).
  Result<Relation> Recompute(const ViewKey& key) const;
  Result<Relation> Recompute(const ViewKey& key,
                             const std::vector<std::string>& projection)
      const;

  // Tuple-pairs probed by joins so far (measured maintenance work).
  uint64_t work() const { return work_; }

 private:
  struct View {
    ViewKey key;
    std::vector<std::string> projection;  // empty = all columns
    Relation contents;
    bool active = true;
  };

  // Filters `rel` by the key's predicates that apply to `table`.
  Relation ApplyTablePredicates(const ViewKey& key, TableId table,
                                Relation rel) const;

  const Catalog* catalog_;
  std::map<TableId, Relation> bases_;
  std::vector<View> views_;
  uint64_t work_ = 0;
};

}  // namespace dsm

#endif  // DSM_MAINTAIN_DELTA_ENGINE_H_
