// DeltaEngine: an executable incremental view maintenance substrate.
//
// The paper's evaluation costs plans analytically, but a real data market
// must actually keep purchased views fresh. The engine maintains
// materialized views σ_Q(⋈ T_1..T_k) under base-table inserts and deletes
// using the counting algorithm: a delta to table t is filtered, joined
// against the other (current) base tables, and the resulting signed delta
// is merged into the view — the apply-updates / copy / merge / join
// pipeline of the paper's Figure 2, collapsed onto one machine. It also
// meters the work performed, providing a measured counterpart to the
// DefaultCostModel's CPU estimates.
//
// Two amortizations make maintenance scale with the sharing population
// (DESIGN.md §10):
//  * Operand caching. For every (view, base table) pair the engine keeps
//    the filtered join operand — σ_view(T) — as a persistent relation with
//    a prebuilt equi-join index, incrementally patched by each delta
//    instead of being re-filtered and re-hashed from scratch per update.
//    Views without predicates on a table share the base relation (and its
//    index) directly; no copy is made.
//  * Parallel fan-out. Views are independent, so per-view delta
//    propagation runs on a ThreadPool (DeltaEngineOptions::pool, honoring
//    DSM_THREADS). Tasks read shared state (bases, operand caches) that is
//    frozen during the fan-out and write only their own view; join-work
//    counts accumulate per task and merge after the barrier, so results
//    and meters are identical for every pool size.

#ifndef DSM_MAINTAIN_DELTA_ENGINE_H_
#define DSM_MAINTAIN_DELTA_ENGINE_H_

#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "expr/view_key.h"
#include "maintain/relation.h"

namespace dsm {

using ViewId = size_t;

// One base table's batch of a multi-table update round.
struct TableUpdate {
  TableId table = 0;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

struct DeltaEngineOptions {
  // Sizing for the per-view fan-out pool. The default resolves through
  // DSM_THREADS; num_threads = 1 forces fully serial maintenance.
  ThreadPoolOptions pool;
  // Keep per-(view, table) filtered+indexed operands between updates.
  // Disabling falls back to re-filtering every base table per update (the
  // pre-cache behavior; kept for benchmarking the cache's effect).
  bool operand_cache = true;
  // Store relations in the compact columnar encoding (interned tagged
  // slots, flat tuples, pre-hashed bag tables — DESIGN.md §12). Disabling
  // falls back to the legacy std::unordered_map<Tuple, int64_t> row store;
  // results and work counters are bit-identical either way.
  bool compact_rows = true;
};

class DeltaEngine {
 public:
  explicit DeltaEngine(const Catalog* catalog,
                       DeltaEngineOptions options = {});

  DeltaEngine(const DeltaEngine&) = delete;
  DeltaEngine& operator=(const DeltaEngine&) = delete;

  // Creates an empty base relation with the table's catalog schema.
  Status RegisterBase(TableId table);

  // Registers a view to maintain; its content is computed from the current
  // base tables and kept incrementally fresh afterwards. The optional
  // `projection` (column names) restricts the view to those columns, with
  // bag semantics — the counting algorithm keeps projected views correct
  // under deletions. An empty projection keeps every column.
  Result<ViewId> RegisterView(const ViewKey& key,
                              std::vector<std::string> projection = {});

  // Applies inserts/deletes to base `table`: all registered views over the
  // table are brought up to date, then the base relation is updated.
  Status ApplyUpdate(TableId table, const std::vector<Tuple>& inserts,
                     const std::vector<Tuple>& deletes);

  // Batched entry point: coalesces same-table deltas, then propagates one
  // combined delta per table in ascending table order. Equivalent to the
  // corresponding sequence of ApplyUpdate calls (deltas to one table
  // commute through filters and joins), but each view is refreshed once
  // per table instead of once per batch entry. Validates every table
  // before touching any state.
  Status ApplyUpdates(std::span<const TableUpdate> updates);

  // Degraded mode: an inactive view is not maintained (its contents are
  // dropped — the hosting machine is gone). Reactivating recomputes the
  // view from the current base tables, the provider's recovery story for
  // a sharing re-admitted after being parked.
  Status SetViewActive(ViewId id, bool active);
  bool view_active(ViewId id) const {
    return id < views_.size() && views_[id].active;
  }

  // nullptr when not registered.
  const Relation* base(TableId table) const;
  const Relation* view(ViewId id) const;
  const ViewKey& view_key(ViewId id) const { return views_[id].key; }
  size_t num_views() const { return views_.size(); }

  // From-scratch evaluation of `key` over the current base tables (the
  // oracle the incremental path is tested against).
  Result<Relation> Recompute(const ViewKey& key) const;
  Result<Relation> Recompute(const ViewKey& key,
                             const std::vector<std::string>& projection)
      const;

  // Tuple-pairs probed by joins so far (measured maintenance work). The
  // value is identical for every pool size and with the operand cache on
  // or off: caching changes where the operand comes from, not which pairs
  // match.
  uint64_t work() const { return work_; }

  const DeltaEngineOptions& options() const { return options_; }
  // Materialized (view, table) operand caches built so far.
  size_t num_cached_operands() const { return operands_.size(); }
  // The row encoding this engine's relations use.
  RowEncoding row_encoding() const {
    return options_.compact_rows ? RowEncoding::kCompact
                                 : RowEncoding::kLegacy;
  }

 private:
  // One probe step of a view's delta-propagation join pipeline.
  struct JoinStep {
    TableId other = 0;
    // Shared columns between the accumulated join schema and `other`, in
    // `other`-schema order — the key the operand's index is built on.
    std::vector<std::string> key_columns;
  };

  struct View {
    ViewKey key;
    std::vector<std::string> projection;  // empty = all columns
    Relation contents;
    bool active = true;
    // Per updated table: the other tables in join order with the index
    // key for each probe. Fixed at registration (schemas are static).
    std::map<TableId, std::vector<JoinStep>> join_plans;
  };

  // Cached filtered operand for one (view, table) pair. When the view has
  // no (applicable) predicates on the table, the shared base relation is
  // used directly instead of a copy.
  struct Operand {
    std::unique_ptr<Relation> filtered;  // null when use_base
    bool use_base = false;
  };

  // Returns `rel` filtered by the key's predicates that apply to `table`;
  // when none apply the input reference is returned and `scratch` is left
  // untouched (no copy).
  const Relation& ApplyTablePredicates(const ViewKey& key, TableId table,
                                       const Relation& rel,
                                       Relation* scratch) const;
  bool HasPredicatesOn(const ViewKey& key, TableId table) const;

  std::vector<JoinStep> BuildJoinPlan(const ViewKey& key,
                                      TableId delta_table) const;

  // Serial prelude to a fan-out: materializes the operand caches and
  // indexes every affected view will probe, so the parallel phase only
  // reads shared state.
  void PrepareOperands(ViewId id, TableId table);
  const Relation& OperandRelation(ViewId id, TableId other) const;

  // Joins the (filtered) delta through the view's pipeline and merges the
  // result into the view. Returns the join work performed. Thread-safe
  // across distinct views: reads frozen shared state, writes only `view`.
  uint64_t MaintainView(ViewId id, TableId table, const Relation& delta);

  // Refreshes every active view over `table` (fanning out when a pool is
  // available), without merging the delta into the base.
  Status PropagateDelta(TableId table, const Relation& delta);
  // Merges the delta into the base relation and patches every cached
  // filtered operand over `table` (active or not — parked views' caches
  // must stay fresh for re-admission).
  void MergeDelta(TableId table, const Relation& delta);

  const Catalog* catalog_;
  DeltaEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when maintenance is serial
  std::map<TableId, Relation> bases_;
  std::vector<View> views_;
  std::map<std::pair<ViewId, TableId>, Operand> operands_;
  uint64_t work_ = 0;
};

}  // namespace dsm

#endif  // DSM_MAINTAIN_DELTA_ENGINE_H_
