// Values and tuples for the maintenance engine's in-memory relations.

#ifndef DSM_MAINTAIN_VALUE_H_
#define DSM_MAINTAIN_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "expr/predicate.h"

namespace dsm {

using Value = std::variant<int64_t, double, std::string>;
using Tuple = std::vector<Value>;

std::string ValueToString(const Value& value);

// Numeric comparison against a predicate constant. String values satisfy
// no numeric predicate (the paper's generated predicates are numeric:
// "Table.Attribute [>, <, =] Constant").
bool ValueSatisfies(const Value& value, CompareOp op, double constant);

struct TupleHash {
  size_t operator()(const Tuple& tuple) const;
};

}  // namespace dsm

#endif  // DSM_MAINTAIN_VALUE_H_
