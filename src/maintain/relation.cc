#include "maintain/relation.h"

#include <algorithm>
#include <cassert>

namespace dsm {
namespace {

// Column bookkeeping shared by both NaturalJoin overloads.
struct JoinShape {
  std::vector<int> shared_a;  // positions in a of the join columns
  std::vector<int> shared_b;  // positions in b of the join columns
  std::vector<int> b_extra;   // positions in b of the non-shared columns
  std::vector<std::string> out_columns;
};

JoinShape ComputeJoinShape(const Relation& a, const Relation& b) {
  JoinShape shape;
  for (size_t i = 0; i < b.columns().size(); ++i) {
    const int in_a = a.FindColumn(b.columns()[i]);
    if (in_a >= 0) {
      shape.shared_a.push_back(in_a);
      shape.shared_b.push_back(static_cast<int>(i));
    } else {
      shape.b_extra.push_back(static_cast<int>(i));
    }
  }
  shape.out_columns = a.columns();
  for (const int i : shape.b_extra) {
    shape.out_columns.push_back(b.columns()[static_cast<size_t>(i)]);
  }
  return shape;
}

Tuple ProjectKey(const Tuple& tuple, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (const int i : positions) key.push_back(tuple[static_cast<size_t>(i)]);
  return key;
}

}  // namespace

int Relation::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Relation::Apply(const Tuple& tuple, int64_t delta) {
  if (delta == 0) return;
  const auto it = rows_.find(tuple);
  if (it == rows_.end()) {
    rows_.emplace(tuple, delta);
  } else {
    it->second += delta;
    if (it->second == 0) rows_.erase(it);
  }
  for (const auto& index : indexes_) {
    PatchIndex(index.get(), tuple, delta);
  }
}

void Relation::PatchIndex(JoinIndex* index, const Tuple& tuple,
                          int64_t delta) {
  Tuple key = ProjectKey(tuple, index->key_positions);
  auto& bucket = index->buckets[std::move(key)];
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->first != tuple) continue;
    it->second += delta;
    if (it->second == 0) {
      bucket.erase(it);
      if (bucket.empty()) {
        index->buckets.erase(ProjectKey(tuple, index->key_positions));
      }
    }
    return;
  }
  bucket.emplace_back(tuple, delta);
}

const Relation::JoinIndex* Relation::EnsureIndex(
    const std::vector<std::string>& key_columns) {
  if (const JoinIndex* existing = FindIndex(key_columns)) return existing;
  auto index = std::make_unique<JoinIndex>();
  index->key_columns = key_columns;
  index->key_positions.reserve(key_columns.size());
  for (const std::string& name : key_columns) {
    const int pos = FindColumn(name);
    assert(pos >= 0 && "index key column not in schema");
    index->key_positions.push_back(pos);
  }
  for (const auto& [tuple, count] : rows_) {
    index->buckets[ProjectKey(tuple, index->key_positions)].emplace_back(
        tuple, count);
  }
  indexes_.push_back(std::move(index));
  return indexes_.back().get();
}

const Relation::JoinIndex* Relation::FindIndex(
    const std::vector<std::string>& key_columns) const {
  for (const auto& index : indexes_) {
    if (index->key_columns == key_columns) return index.get();
  }
  return nullptr;
}

int64_t Relation::Count(const Tuple& tuple) const {
  const auto it = rows_.find(tuple);
  return it == rows_.end() ? 0 : it->second;
}

int64_t Relation::TotalSize() const {
  int64_t total = 0;
  for (const auto& [tuple, count] : rows_) total += count;
  return total;
}

bool Relation::BagEquals(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.Count(tuple) != count) return false;
  }
  return true;
}

Relation Relation::Filter(const std::string& column, CompareOp op,
                          double constant) const {
  const int idx = FindColumn(column);
  if (idx < 0) return *this;
  Relation out(columns_);
  for (const auto& [tuple, count] : rows_) {
    if (ValueSatisfies(tuple[static_cast<size_t>(idx)], op, constant)) {
      out.Apply(tuple, count);
    }
  }
  return out;
}

Relation Relation::WithColumnOrder(
    const std::vector<std::string>& columns) const {
  if (columns == columns_) return *this;
  std::vector<int> source(columns.size(), -1);
  for (size_t i = 0; i < columns.size(); ++i) {
    source[i] = FindColumn(columns[i]);
    assert(source[i] >= 0 && "target schema is not a permutation");
  }
  Relation out(columns);
  for (const auto& [tuple, count] : rows_) {
    Tuple reordered;
    reordered.reserve(columns.size());
    for (const int idx : source) {
      reordered.push_back(tuple[static_cast<size_t>(idx)]);
    }
    out.Apply(reordered, count);
  }
  return out;
}

Relation Relation::Project(const std::vector<std::string>& columns) const {
  std::vector<int> source;
  std::vector<std::string> kept;
  for (const std::string& name : columns) {
    const int idx = FindColumn(name);
    if (idx < 0) continue;
    source.push_back(idx);
    kept.push_back(name);
  }
  Relation out(std::move(kept));
  for (const auto& [tuple, count] : rows_) {
    Tuple projected;
    projected.reserve(source.size());
    for (const int idx : source) {
      projected.push_back(tuple[static_cast<size_t>(idx)]);
    }
    out.Apply(projected, count);
  }
  return out;
}

std::vector<std::string> SharedJoinColumns(
    const std::vector<std::string>& a_columns, const Relation& b) {
  std::vector<std::string> shared;
  for (const std::string& name : b.columns()) {
    if (std::find(a_columns.begin(), a_columns.end(), name) !=
        a_columns.end()) {
      shared.push_back(name);
    }
  }
  return shared;
}

namespace {

// Probe loop shared by both overloads: `buckets` maps a key projection of
// b to its (row, count) pairs.
template <typename Buckets>
Relation ProbeJoin(const Relation& a, const JoinShape& shape,
                   const Buckets& buckets, uint64_t* work) {
  Relation out(shape.out_columns);
  for (const auto& [ta, ca] : a.rows()) {
    const auto it = buckets.find(ProjectKey(ta, shape.shared_a));
    if (it == buckets.end()) continue;
    for (const auto& [tb, cb] : it->second) {
      if (work != nullptr) ++*work;
      Tuple joined = ta;
      for (const int i : shape.b_extra) {
        joined.push_back(tb[static_cast<size_t>(i)]);
      }
      out.Apply(joined, ca * cb);
    }
  }
  return out;
}

}  // namespace

Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work) {
  const JoinShape shape = ComputeJoinShape(a, b);
  // Transient index on b's shared-column projection; buckets hold
  // (row pointer, count) pairs so each probe is one hash lookup.
  std::unordered_map<Tuple,
                     std::vector<std::pair<const Tuple*, int64_t>>,
                     TupleHash>
      index;
  for (const auto& [tuple, count] : b.rows()) {
    index[ProjectKey(tuple, shape.shared_b)].emplace_back(&tuple, count);
  }

  Relation out(shape.out_columns);
  for (const auto& [ta, ca] : a.rows()) {
    const auto it = index.find(ProjectKey(ta, shape.shared_a));
    if (it == index.end()) continue;
    for (const auto& [tb, cb] : it->second) {
      if (work != nullptr) ++*work;
      Tuple joined = ta;
      for (const int i : shape.b_extra) {
        joined.push_back((*tb)[static_cast<size_t>(i)]);
      }
      out.Apply(joined, ca * cb);
    }
  }
  return out;
}

Relation NaturalJoin(const Relation& a, const Relation& b,
                     const Relation::JoinIndex& b_index, uint64_t* work) {
  const JoinShape shape = ComputeJoinShape(a, b);
  // The prebuilt index must be keyed on exactly the shared columns; a
  // mismatched index cannot answer this join, so fall back to the
  // transient-index path rather than probe garbage.
  if (shape.shared_b != b_index.key_positions) {
    assert(false && "join index key does not match the shared columns");
    return NaturalJoin(a, b, work);
  }
  return ProbeJoin(a, shape, b_index.buckets, work);
}

}  // namespace dsm
