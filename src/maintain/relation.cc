#include "maintain/relation.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace dsm {
namespace {

// Column bookkeeping shared by all NaturalJoin paths.
struct JoinShape {
  std::vector<int> shared_a;  // positions in a of the join columns
  std::vector<int> shared_b;  // positions in b of the join columns
  std::vector<int> b_extra;   // positions in b of the non-shared columns
  std::vector<std::string> out_columns;
};

JoinShape ComputeJoinShape(const Relation& a, const Relation& b) {
  JoinShape shape;
  for (size_t i = 0; i < b.columns().size(); ++i) {
    const int in_a = a.FindColumn(b.columns()[i]);
    if (in_a >= 0) {
      shape.shared_a.push_back(in_a);
      shape.shared_b.push_back(static_cast<int>(i));
    } else {
      shape.b_extra.push_back(static_cast<int>(i));
    }
  }
  shape.out_columns = a.columns();
  for (const int i : shape.b_extra) {
    shape.out_columns.push_back(b.columns()[static_cast<size_t>(i)]);
  }
  return shape;
}

Tuple ProjectKey(const Tuple& tuple, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (const int i : positions) key.push_back(tuple[static_cast<size_t>(i)]);
  return key;
}

void GatherSlots(const Slot* row, const std::vector<int>& positions,
                 Slot* out) {
  for (size_t i = 0; i < positions.size(); ++i) {
    out[i] = row[static_cast<size_t>(positions[i])];
  }
}

}  // namespace

Relation::Relation(std::vector<std::string> column_names,
                   RowEncoding encoding)
    : columns_(std::move(column_names)), encoding_(encoding) {
  if (encoding_ == RowEncoding::kCompact) {
    store_ = std::make_shared<TupleStore>(
        static_cast<uint32_t>(columns_.size()));
  }
}

TupleStore* Relation::MutableStore() {
  // Copy-on-write: relations that merely returned the bag unchanged (no-op
  // filters, unpredicated operand caches) share one store; the deep copy
  // happens only when a sharer mutates.
  if (store_.use_count() > 1) {
    store_ = std::make_shared<TupleStore>(*store_);
  }
  return store_.get();
}

int Relation::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Relation Relation::WithEncoding(RowEncoding encoding) const {
  if (encoding == encoding_) return *this;
  Relation out(columns_, encoding);
  ForEachRow([&out](const Tuple& tuple, int64_t count) {
    out.Apply(tuple, count);
  });
  return out;
}

void Relation::Apply(const Tuple& tuple, int64_t delta) {
  if (delta == 0) return;
  if (encoding_ == RowEncoding::kLegacy) {
    const auto it = rows_.find(tuple);
    if (it == rows_.end()) {
      rows_.emplace(tuple, delta);
    } else {
      it->second += delta;
      if (it->second == 0) rows_.erase(it);
    }
    PatchIndexesLegacy(tuple, delta);
    return;
  }
  Slot stack_buf[16];
  std::vector<Slot> heap_buf;
  Slot* slots = stack_buf;
  if (tuple.size() > 16) {
    heap_buf.resize(tuple.size());
    slots = heap_buf.data();
  }
  ValueDict& dict = ValueDict::Global();
  for (size_t i = 0; i < tuple.size(); ++i) slots[i] = dict.Encode(tuple[i]);
  ApplyEncoded(slots, HashTupleSlots(slots, tuple.size()), delta);
}

void Relation::ApplyEncoded(const Slot* slots, uint64_t hash,
                            int64_t delta) {
  if (delta == 0) return;
  const uint32_t row = MutableStore()->Apply(slots, hash, delta);
  if (!indexes_.empty()) PatchIndexesEncoded(slots, row, delta);
}

void Relation::ApplyAll(const Relation& src) {
  if (encoding_ == RowEncoding::kCompact &&
      src.encoding_ == RowEncoding::kCompact) {
    assert(src.columns_ == columns_ && "ApplyAll requires matching schemas");
    const TupleStore& from = *src.store_;
    from.ForEachLive([&](uint32_t r) {
      // Same schema, same global hash function: the stored hash transfers.
      ApplyEncoded(from.row_slots(r), from.row_hash(r), from.row_count(r));
    });
    return;
  }
  src.ForEachRow(
      [this](const Tuple& tuple, int64_t count) { Apply(tuple, count); });
}

void Relation::PatchIndexesLegacy(const Tuple& tuple, int64_t delta) {
  for (const auto& index : indexes_) {
    Tuple key = ProjectKey(tuple, index->key_positions);
    auto& bucket = index->buckets[std::move(key)];
    bool patched = false;
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (it->first != tuple) continue;
      it->second += delta;
      if (it->second == 0) {
        bucket.erase(it);
        if (bucket.empty()) {
          index->buckets.erase(ProjectKey(tuple, index->key_positions));
        }
      }
      patched = true;
      break;
    }
    if (!patched) bucket.emplace_back(tuple, delta);
  }
}

void Relation::PatchIndexesEncoded(const Slot* slots, uint32_t row,
                                   int64_t delta) {
  Slot key_buf[16];
  std::vector<Slot> heap_buf;
  for (const auto& index : indexes_) {
    const size_t k = index->key_positions.size();
    Slot* key = key_buf;
    if (k > 16) {
      heap_buf.resize(k);
      key = heap_buf.data();
    }
    GatherSlots(slots, index->key_positions, key);
    index->slot_index->Patch(key, HashTupleSlots(key, k), row, delta);
  }
}

const Relation::JoinIndex* Relation::EnsureIndex(
    const std::vector<std::string>& key_columns) {
  if (const JoinIndex* existing = FindIndex(key_columns)) return existing;
  auto index = std::make_unique<JoinIndex>();
  index->key_columns = key_columns;
  index->key_positions.reserve(key_columns.size());
  for (const std::string& name : key_columns) {
    const int pos = FindColumn(name);
    assert(pos >= 0 && "index key column not in schema");
    index->key_positions.push_back(pos);
  }
  BuildIndex(index.get());
  indexes_.push_back(std::move(index));
  return indexes_.back().get();
}

void Relation::BuildIndex(JoinIndex* index) const {
  if (encoding_ == RowEncoding::kLegacy) {
    for (const auto& [tuple, count] : rows_) {
      index->buckets[ProjectKey(tuple, index->key_positions)].emplace_back(
          tuple, count);
    }
    return;
  }
  const size_t k = index->key_positions.size();
  index->slot_index = std::make_unique<SlotKeyIndex>(
      static_cast<uint32_t>(k));
  std::vector<Slot> key(k);
  const TupleStore& st = *store_;
  st.ForEachLive([&](uint32_t r) {
    GatherSlots(st.row_slots(r), index->key_positions, key.data());
    index->slot_index->Patch(key.data(), HashTupleSlots(key.data(), k), r,
                             st.row_count(r));
  });
}

const Relation::JoinIndex* Relation::FindIndex(
    const std::vector<std::string>& key_columns) const {
  for (const auto& index : indexes_) {
    if (index->key_columns == key_columns) return index.get();
  }
  return nullptr;
}

int64_t Relation::Count(const Tuple& tuple) const {
  if (encoding_ == RowEncoding::kLegacy) {
    const auto it = rows_.find(tuple);
    return it == rows_.end() ? 0 : it->second;
  }
  Slot stack_buf[16];
  std::vector<Slot> heap_buf;
  Slot* slots = stack_buf;
  if (tuple.size() > 16) {
    heap_buf.resize(tuple.size());
    slots = heap_buf.data();
  }
  const ValueDict& dict = ValueDict::Global();
  for (size_t i = 0; i < tuple.size(); ++i) {
    // Lookup only: probing for a never-interned value cannot match any row
    // and must not grow the dictionary.
    if (!dict.Find(tuple[i], &slots[i])) return 0;
  }
  return store_->Count(slots, HashTupleSlots(slots, tuple.size()));
}

int64_t Relation::TotalSize() const {
  int64_t total = 0;
  if (encoding_ == RowEncoding::kLegacy) {
    for (const auto& [tuple, count] : rows_) total += count;
  } else {
    store_->ForEachLive(
        [&](uint32_t r) { total += store_->row_count(r); });
  }
  return total;
}

bool Relation::BagEquals(const Relation& other) const {
  if (DistinctSize() != other.DistinctSize()) return false;
  if (encoding_ == RowEncoding::kCompact &&
      other.encoding_ == RowEncoding::kCompact) {
    if (store_ == other.store_) return true;  // shared bag
    if (store_->arity() != other.store_->arity()) {
      return DistinctSize() == 0;
    }
    const TupleStore& st = *store_;
    const TupleStore& ot = *other.store_;
    bool equal = true;
    st.ForEachLive([&](uint32_t r) {
      if (!equal) return;
      if (ot.Count(st.row_slots(r), st.row_hash(r)) != st.row_count(r)) {
        equal = false;
      }
    });
    return equal;
  }
  bool equal = true;
  ForEachRow([&](const Tuple& tuple, int64_t count) {
    if (equal && other.Count(tuple) != count) equal = false;
  });
  return equal;
}

Relation Relation::Filter(const std::string& column, CompareOp op,
                          double constant) const {
  const int idx = FindColumn(column);
  if (idx < 0) {
    // Unknown column: the bag is returned unchanged. In compact mode the
    // copy shares the row store — no rows are touched.
    return *this;
  }
  if (encoding_ == RowEncoding::kLegacy) {
    Relation out(columns_, RowEncoding::kLegacy);
    for (const auto& [tuple, count] : rows_) {
      if (ValueSatisfies(tuple[static_cast<size_t>(idx)], op, constant)) {
        out.Apply(tuple, count);
      }
    }
    return out;
  }
  // Columnar kernel: pass 1 scans one column of slots and collects
  // surviving row ids; pass 2 copies the flat rows. The schema is
  // unchanged, so every surviving row keeps its stored hash.
  const TupleStore& st = *store_;
  std::vector<uint32_t> keep;
  keep.reserve(st.live_rows());
  st.ForEachLive([&](uint32_t r) {
    if (SlotSatisfies(st.row_slots(r)[idx], op, constant)) {
      keep.push_back(r);
    }
  });
  Relation out(columns_, RowEncoding::kCompact);
  TupleStore* dst = out.store_.get();
  dst->Reserve(keep.size());
  for (const uint32_t r : keep) {
    dst->Apply(st.row_slots(r), st.row_hash(r), st.row_count(r));
  }
  return out;
}

Relation Relation::WithColumnOrder(
    const std::vector<std::string>& columns) const {
  if (columns == columns_) return *this;
  std::vector<int> source(columns.size(), -1);
  for (size_t i = 0; i < columns.size(); ++i) {
    source[i] = FindColumn(columns[i]);
    assert(source[i] >= 0 && "target schema is not a permutation");
  }
  if (encoding_ == RowEncoding::kLegacy) {
    Relation out(columns, RowEncoding::kLegacy);
    for (const auto& [tuple, count] : rows_) {
      Tuple reordered;
      reordered.reserve(columns.size());
      for (const int idx : source) {
        reordered.push_back(tuple[static_cast<size_t>(idx)]);
      }
      out.Apply(reordered, count);
    }
    return out;
  }
  // Position-remap loop over flat slots; no decoding, no per-row
  // allocation. Permuted slots hash differently, so hashes are recomputed.
  Relation out(columns, RowEncoding::kCompact);
  const TupleStore& st = *store_;
  TupleStore* dst = out.store_.get();
  dst->Reserve(st.live_rows());
  std::vector<Slot> scratch(columns.size());
  st.ForEachLive([&](uint32_t r) {
    GatherSlots(st.row_slots(r), source, scratch.data());
    dst->Apply(scratch.data(),
               HashTupleSlots(scratch.data(), scratch.size()),
               st.row_count(r));
  });
  return out;
}

Relation Relation::Project(const std::vector<std::string>& columns) const {
  std::vector<int> source;
  std::vector<std::string> kept;
  for (const std::string& name : columns) {
    const int idx = FindColumn(name);
    if (idx < 0) continue;
    source.push_back(idx);
    kept.push_back(name);
  }
  if (encoding_ == RowEncoding::kLegacy) {
    Relation out(std::move(kept), RowEncoding::kLegacy);
    for (const auto& [tuple, count] : rows_) {
      Tuple projected;
      projected.reserve(source.size());
      for (const int idx : source) {
        projected.push_back(tuple[static_cast<size_t>(idx)]);
      }
      out.Apply(projected, count);
    }
    return out;
  }
  Relation out(std::move(kept), RowEncoding::kCompact);
  const TupleStore& st = *store_;
  TupleStore* dst = out.store_.get();
  dst->Reserve(st.live_rows());
  std::vector<Slot> scratch(source.size());
  st.ForEachLive([&](uint32_t r) {
    GatherSlots(st.row_slots(r), source, scratch.data());
    // Collapsing projections merge multiplicities inside Apply.
    dst->Apply(scratch.data(),
               HashTupleSlots(scratch.data(), scratch.size()),
               st.row_count(r));
  });
  return out;
}

std::vector<std::string> SharedJoinColumns(
    const std::vector<std::string>& a_columns, const Relation& b) {
  std::vector<std::string> shared;
  for (const std::string& name : b.columns()) {
    if (std::find(a_columns.begin(), a_columns.end(), name) !=
        a_columns.end()) {
      shared.push_back(name);
    }
  }
  return shared;
}

namespace {

// Legacy probe loop shared by the transient and prebuilt index paths:
// `buckets` maps a key projection of b to its (row, count) pairs.
template <typename Buckets>
Relation ProbeJoinLegacy(const Relation& a, const JoinShape& shape,
                         const Buckets& buckets, uint64_t* work) {
  Relation out(shape.out_columns, RowEncoding::kLegacy);
  for (const auto& [ta, ca] : a.rows()) {
    const auto it = buckets.find(ProjectKey(ta, shape.shared_a));
    if (it == buckets.end()) continue;
    for (const auto& [tb, cb] : it->second) {
      if (work != nullptr) ++*work;
      Tuple joined = ta;
      for (const int i : shape.b_extra) {
        joined.push_back(tb[static_cast<size_t>(i)]);
      }
      out.Apply(joined, ca * cb);
    }
  }
  return out;
}

// Compact probe loop: keys are pre-hashed slot projections, output rows
// are flat slot copies. `b_index` is either a transient index built here
// or a persistent one patched by b's Apply. Work accounting (pairs
// probed) matches the legacy loop exactly: which tuple pairs meet is a
// property of the bags, not the encoding.
Relation ProbeJoinCompact(const Relation& a, const Relation& b,
                          const JoinShape& shape,
                          const SlotKeyIndex& b_index, uint64_t* work) {
  const TupleStore& sa = a.store();
  const TupleStore& sb = b.store();
  const size_t key_arity = shape.shared_a.size();
  const size_t a_arity = a.columns().size();
  const size_t out_arity = shape.out_columns.size();

  Relation out(shape.out_columns, RowEncoding::kCompact);
  // Writing through the private store would need friendship; ApplyEncoded
  // on a fresh relation has no indexes to patch, so it is equivalent.
  std::vector<Slot> key(key_arity);
  std::vector<Slot> joined(out_arity);
  uint64_t probes = 0;
  sa.ForEachLive([&](uint32_t ra) {
    const Slot* arow = sa.row_slots(ra);
    GatherSlots(arow, shape.shared_a, key.data());
    ++probes;
    const auto* bucket =
        b_index.Find(key.data(), HashTupleSlots(key.data(), key_arity));
    if (bucket == nullptr) return;
    const int64_t ca = sa.row_count(ra);
    if (a_arity > 0) {
      std::memcpy(joined.data(), arow, a_arity * sizeof(Slot));
    }
    for (const SlotKeyIndex::Entry& e : *bucket) {
      if (work != nullptr) ++*work;
      const Slot* brow = sb.row_slots(e.row);
      for (size_t j = 0; j < shape.b_extra.size(); ++j) {
        joined[a_arity + j] =
            brow[static_cast<size_t>(shape.b_extra[j])];
      }
      out.ApplyEncoded(joined.data(),
                       HashTupleSlots(joined.data(), out_arity),
                       ca * e.count);
    }
  });
  TupleStoreStats::Global().probes.fetch_add(probes,
                                             std::memory_order_relaxed);
  return out;
}

Relation JoinCompact(const Relation& a, const Relation& b,
                     const JoinShape& shape, uint64_t* work) {
  // Transient pre-hashed index on b's shared-column projection.
  const TupleStore& sb = b.store();
  const size_t key_arity = shape.shared_b.size();
  SlotKeyIndex index(static_cast<uint32_t>(key_arity));
  std::vector<Slot> key(key_arity);
  sb.ForEachLive([&](uint32_t rb) {
    GatherSlots(sb.row_slots(rb), shape.shared_b, key.data());
    index.Patch(key.data(), HashTupleSlots(key.data(), key_arity), rb,
                sb.row_count(rb));
  });
  return ProbeJoinCompact(a, b, shape, index, work);
}

}  // namespace

Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work) {
  if (a.encoding() != b.encoding()) {
    // Mixed encodings only occur in tests and conversions; join in a's
    // encoding.
    return NaturalJoin(a, b.WithEncoding(a.encoding()), work);
  }
  const JoinShape shape = ComputeJoinShape(a, b);
  if (a.encoding() == RowEncoding::kCompact) {
    return JoinCompact(a, b, shape, work);
  }
  // Transient index on b's shared-column projection; buckets hold
  // (row pointer, count) pairs so each probe is one hash lookup.
  std::unordered_map<Tuple,
                     std::vector<std::pair<const Tuple*, int64_t>>,
                     TupleHash>
      index;
  for (const auto& [tuple, count] : b.rows()) {
    index[ProjectKey(tuple, shape.shared_b)].emplace_back(&tuple, count);
  }

  Relation out(shape.out_columns, RowEncoding::kLegacy);
  for (const auto& [ta, ca] : a.rows()) {
    const auto it = index.find(ProjectKey(ta, shape.shared_a));
    if (it == index.end()) continue;
    for (const auto& [tb, cb] : it->second) {
      if (work != nullptr) ++*work;
      Tuple joined = ta;
      for (const int i : shape.b_extra) {
        joined.push_back((*tb)[static_cast<size_t>(i)]);
      }
      out.Apply(joined, ca * cb);
    }
  }
  return out;
}

Relation NaturalJoin(const Relation& a, const Relation& b,
                     const Relation::JoinIndex& b_index, uint64_t* work) {
  const JoinShape shape = ComputeJoinShape(a, b);
  // The prebuilt index must be keyed on exactly the shared columns; a
  // mismatched index cannot answer this join, so fall back to the
  // transient-index path rather than probe garbage.
  if (shape.shared_b != b_index.key_positions) {
    assert(false && "join index key does not match the shared columns");
    return NaturalJoin(a, b, work);
  }
  if (a.encoding() == RowEncoding::kCompact &&
      b.encoding() == RowEncoding::kCompact &&
      b_index.slot_index != nullptr) {
    return ProbeJoinCompact(a, b, shape, *b_index.slot_index, work);
  }
  if (a.encoding() == RowEncoding::kLegacy &&
      b.encoding() == RowEncoding::kLegacy &&
      b_index.slot_index == nullptr) {
    return ProbeJoinLegacy(a, shape, b_index.buckets, work);
  }
  // Encoding mismatch between the caller's relations and the index owner:
  // answer through the index-free path.
  return NaturalJoin(a, b, work);
}

}  // namespace dsm
