#include "maintain/relation.h"

#include <algorithm>

namespace dsm {

int Relation::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Relation::Apply(const Tuple& tuple, int64_t delta) {
  if (delta == 0) return;
  const auto it = rows_.find(tuple);
  if (it == rows_.end()) {
    rows_.emplace(tuple, delta);
    return;
  }
  it->second += delta;
  if (it->second == 0) rows_.erase(it);
}

int64_t Relation::Count(const Tuple& tuple) const {
  const auto it = rows_.find(tuple);
  return it == rows_.end() ? 0 : it->second;
}

int64_t Relation::TotalSize() const {
  int64_t total = 0;
  for (const auto& [tuple, count] : rows_) total += count;
  return total;
}

bool Relation::BagEquals(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [tuple, count] : rows_) {
    if (other.Count(tuple) != count) return false;
  }
  return true;
}

Relation Relation::Filter(const std::string& column, CompareOp op,
                          double constant) const {
  const int idx = FindColumn(column);
  if (idx < 0) return *this;
  Relation out(columns_);
  for (const auto& [tuple, count] : rows_) {
    if (ValueSatisfies(tuple[static_cast<size_t>(idx)], op, constant)) {
      out.Apply(tuple, count);
    }
  }
  return out;
}

Relation Relation::WithColumnOrder(
    const std::vector<std::string>& columns) const {
  if (columns == columns_) return *this;
  std::vector<int> source(columns.size(), -1);
  for (size_t i = 0; i < columns.size(); ++i) {
    source[i] = FindColumn(columns[i]);
    assert(source[i] >= 0 && "target schema is not a permutation");
  }
  Relation out(columns);
  for (const auto& [tuple, count] : rows_) {
    Tuple reordered;
    reordered.reserve(columns.size());
    for (const int idx : source) {
      reordered.push_back(tuple[static_cast<size_t>(idx)]);
    }
    out.Apply(reordered, count);
  }
  return out;
}

Relation Relation::Project(const std::vector<std::string>& columns) const {
  std::vector<int> source;
  std::vector<std::string> kept;
  for (const std::string& name : columns) {
    const int idx = FindColumn(name);
    if (idx < 0) continue;
    source.push_back(idx);
    kept.push_back(name);
  }
  Relation out(std::move(kept));
  for (const auto& [tuple, count] : rows_) {
    Tuple projected;
    projected.reserve(source.size());
    for (const int idx : source) {
      projected.push_back(tuple[static_cast<size_t>(idx)]);
    }
    out.Apply(projected, count);
  }
  return out;
}

Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work) {
  // Output schema: a's columns then b's non-shared columns.
  std::vector<int> shared_a;
  std::vector<int> shared_b;
  std::vector<int> b_extra;
  for (size_t i = 0; i < b.columns().size(); ++i) {
    const int in_a = a.FindColumn(b.columns()[i]);
    if (in_a >= 0) {
      shared_a.push_back(in_a);
      shared_b.push_back(static_cast<int>(i));
    } else {
      b_extra.push_back(static_cast<int>(i));
    }
  }
  std::vector<std::string> out_columns = a.columns();
  for (const int i : b_extra) {
    out_columns.push_back(b.columns()[static_cast<size_t>(i)]);
  }
  Relation out(std::move(out_columns));

  // Hash b on its shared-column projection.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  std::unordered_map<const Tuple*, int64_t> b_count;
  for (const auto& [tuple, count] : b.rows()) {
    Tuple key;
    key.reserve(shared_b.size());
    for (const int i : shared_b) key.push_back(tuple[static_cast<size_t>(i)]);
    index[std::move(key)].push_back(&tuple);
    b_count[&tuple] = count;
  }

  for (const auto& [ta, ca] : a.rows()) {
    Tuple key;
    key.reserve(shared_a.size());
    for (const int i : shared_a) key.push_back(ta[static_cast<size_t>(i)]);
    const auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* tb : it->second) {
      if (work != nullptr) ++*work;
      Tuple joined = ta;
      for (const int i : b_extra) {
        joined.push_back((*tb)[static_cast<size_t>(i)]);
      }
      out.Apply(joined, ca * b_count[tb]);
    }
  }
  return out;
}

}  // namespace dsm
