// TupleStore: the compact row store behind Relation's encoded mode.
//
// A tuple is `arity` contiguous 8-byte slots (maintain/value_dict.h) in one
// row-major flat array; its 64-bit hash is computed once on insert and
// stored next to the row. The store's own hash table is open addressing
// over row ids: a probe compares the stored hash, then (on a hash match)
// memcmps the slots — no per-probe allocation, no string compares, and a
// rehash only reshuffles 4-byte row ids using the stored hashes.
//
// SlotKeyIndex is the matching pre-hashed equi-join index: projected key
// slots -> (row id, count) entries, patched in place by Relation::Apply.
//
// Both tables feed the process-wide TupleStoreStats (probes, rehashes,
// deep copies, resident bytes), which the maintenance engine exports as
// dsm.maintain.* metrics. Mutating entry points count probes directly
// into the relaxed global atomic — every performed probe is visible the
// moment the call returns, which keeps the exported counters
// deterministic for a fixed seed; join kernels batch their index probes
// locally and flush once per join (maintain/relation.cc).

#ifndef DSM_MAINTAIN_TUPLE_STORE_H_
#define DSM_MAINTAIN_TUPLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "maintain/value_dict.h"

namespace dsm {

// Process-wide counters for the compact data plane. Plain atomics (not
// obs instruments) so benches and regression tests can read them even in
// DSM_DISABLE_TELEMETRY builds; the engine mirrors them into the metrics
// registry.
struct TupleStoreStats {
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> rehashes{0};
  std::atomic<uint64_t> deep_copies{0};
  std::atomic<int64_t> resident_bytes{0};

  static TupleStoreStats& Global();
};

inline uint64_t HashTupleSlots(const Slot* slots, size_t arity) {
  return HashWords64(slots, arity);
}

class TupleStore {
 public:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  explicit TupleStore(uint32_t arity);
  TupleStore(const TupleStore& other);
  TupleStore& operator=(const TupleStore& other);
  TupleStore(TupleStore&& other) noexcept;
  TupleStore& operator=(TupleStore&& other) noexcept;
  ~TupleStore();

  uint32_t arity() const { return arity_; }
  // Row ids run [0, physical_rows); dead rows have count 0 and their ids
  // are recycled by later inserts.
  uint32_t physical_rows() const {
    return static_cast<uint32_t>(counts_.size());
  }
  size_t live_rows() const { return live_; }

  const Slot* row_slots(uint32_t row) const {
    return slots_.data() + static_cast<size_t>(row) * arity_;
  }
  uint64_t row_hash(uint32_t row) const { return hashes_[row]; }
  int64_t row_count(uint32_t row) const { return counts_[row]; }

  // Adds `delta` to the tuple's multiplicity (erasing at zero). `hash`
  // must be HashTupleSlots(slots, arity); callers that copy or merge rows
  // pass the stored hash through instead of recomputing it. Returns the
  // row id the tuple occupies — or occupied, if this Apply erased it.
  uint32_t Apply(const Slot* slots, uint64_t hash, int64_t delta);

  uint32_t FindRow(const Slot* slots, uint64_t hash) const;
  int64_t Count(const Slot* slots, uint64_t hash) const {
    const uint32_t row = FindRow(slots, hash);
    return row == kNoRow ? 0 : counts_[row];
  }

  template <typename F>  // F(uint32_t row)
  void ForEachLive(F&& f) const {
    const uint32_t n = physical_rows();
    for (uint32_t r = 0; r < n; ++r) {
      if (counts_[r] != 0) f(r);
    }
  }

  void Reserve(size_t rows);

  // Test hook (forced-collision regression): inserts through the normal
  // probe path but with a caller-chosen hash, so distinct tuples can be
  // driven into one probe chain. Lookups must then pass the same hash.
  uint32_t ApplyWithHashForTest(const Slot* slots, uint64_t hash,
                                int64_t delta) {
    return Apply(slots, hash, delta);
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  static constexpr uint32_t kTombstone = 0xfffffffeu;

  void Rehash(size_t min_live);
  void SyncResidentBytes();
  size_t HeapBytes() const;

  uint32_t arity_;
  std::vector<Slot> slots_;       // row-major, physical_rows * arity
  std::vector<uint64_t> hashes_;  // per row, never recomputed
  std::vector<int64_t> counts_;   // 0 = dead row (id recyclable)
  std::vector<uint32_t> free_;    // dead row ids for reuse
  std::vector<uint32_t> table_;   // open addressing: row id / empty / tomb
  size_t mask_ = 0;               // table_.size() - 1
  size_t live_ = 0;
  size_t tombstones_ = 0;

  // Heap bytes last reported into the global resident-bytes gauge. Only
  // mutating entry points touch accounting: const lookups may run
  // concurrently from the maintenance fan-out and must stay write-free.
  int64_t reported_bytes_ = 0;
};

// Pre-hashed equi-join index: groups of (row id, count) entries keyed by a
// projection of the row onto `key_arity` slots. The key's slots and hash
// are stored per group; probing compares hashes then slots, exactly like
// TupleStore. Groups whose last entry leaves become tombstones and their
// storage is recycled.
class SlotKeyIndex {
 public:
  static constexpr uint32_t kNoGroup = 0xffffffffu;

  struct Entry {
    uint32_t row;
    int64_t count;
  };

  explicit SlotKeyIndex(uint32_t key_arity);

  uint32_t key_arity() const { return key_arity_; }

  // nullptr when no live group carries this key.
  const std::vector<Entry>* Find(const Slot* key, uint64_t hash) const;

  // Adds `delta` to `row`'s entry under `key` (appending / erasing entries
  // as counts cross zero).
  void Patch(const Slot* key, uint64_t hash, uint32_t row, int64_t delta);

  size_t num_groups() const { return live_; }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;
  static constexpr uint32_t kTombstone = 0xfffffffeu;

  uint32_t FindGroup(const Slot* key, uint64_t hash) const;
  void Rehash(size_t min_live);

  uint32_t key_arity_;
  std::vector<Slot> keys_;        // group-major, num groups * key_arity
  std::vector<uint64_t> hashes_;  // per group
  std::vector<std::vector<Entry>> entries_;  // empty = dead group
  std::vector<uint32_t> free_;
  std::vector<uint32_t> table_;
  size_t mask_ = 0;
  size_t live_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace dsm

#endif  // DSM_MAINTAIN_TUPLE_STORE_H_
