// Relation: a named-column bag of tuples with signed multiplicities — the
// representation used by the incremental (counting-algorithm) view
// maintenance engine. Negative counts occur only transiently inside delta
// relations; materialized views and base tables stay non-negative.
//
// A relation can carry persistent equi-join indexes (EnsureIndex): each
// maps the projection of a row onto a fixed column subset to the rows
// carrying that key, with multiplicities. Indexes are patched in place by
// every Apply(), so a long-lived operand (a base table, or a cached
// filtered copy of one) pays the hash build once instead of once per join.
// Copies drop indexes (a copy is a fresh operand); moves keep them.

#ifndef DSM_MAINTAIN_RELATION_H_
#define DSM_MAINTAIN_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/predicate.h"
#include "maintain/value.h"

namespace dsm {

class Relation {
 public:
  // A persistent hash index on the projection of each row onto
  // `key_columns`. Buckets store (row, count) value pairs — probing never
  // chases pointers into rows_, so rehashes and erasures there are
  // harmless. Empty `key_columns` is allowed: every row lands in one
  // bucket (the cross-product case).
  struct JoinIndex {
    std::vector<std::string> key_columns;  // names, in b-schema order
    std::vector<int> key_positions;        // same, as column positions
    std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>,
                       TupleHash>
        buckets;
  };

  Relation() = default;
  explicit Relation(std::vector<std::string> column_names)
      : columns_(std::move(column_names)) {}

  // Copies carry rows but not indexes (consumers index what they need);
  // moves carry both.
  Relation(const Relation& other)
      : columns_(other.columns_), rows_(other.rows_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      columns_ = other.columns_;
      rows_ = other.rows_;
      indexes_.clear();
    }
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::vector<std::string>& columns() const { return columns_; }
  int FindColumn(const std::string& name) const;

  // Adds `delta` to the tuple's multiplicity (entries at zero are erased).
  // Every persistent index is patched to match.
  void Apply(const Tuple& tuple, int64_t delta);

  int64_t Count(const Tuple& tuple) const;
  size_t DistinctSize() const { return rows_.size(); }
  // Σ multiplicities (meaningful for non-negative relations).
  int64_t TotalSize() const;

  const std::unordered_map<Tuple, int64_t, TupleHash>& rows() const {
    return rows_;
  }

  bool BagEquals(const Relation& other) const;

  // Returns the persistent index keyed on `key_columns` (each name must be
  // in the schema), building it on first request. The pointer stays valid
  // and current — Apply() patches it — for the relation's lifetime.
  const JoinIndex* EnsureIndex(const std::vector<std::string>& key_columns);
  // nullptr when no index on exactly `key_columns` exists yet.
  const JoinIndex* FindIndex(
      const std::vector<std::string>& key_columns) const;
  size_t num_indexes() const { return indexes_.size(); }

  // Tuples satisfying `column op constant`; schema unchanged. Columns
  // absent from the schema leave the relation unfiltered.
  Relation Filter(const std::string& column, CompareOp op,
                  double constant) const;

  // The same bag with columns permuted into `columns` order (which must be
  // a permutation of this relation's schema). Joins starting from
  // different tables produce permuted schemas; reordering makes their
  // results comparable and mergeable.
  Relation WithColumnOrder(const std::vector<std::string>& columns) const;

  // Bag projection onto `columns` (a subset of the schema, in any order):
  // multiplicities of collapsing tuples add up. Unknown column names are
  // dropped from the output schema.
  Relation Project(const std::vector<std::string>& columns) const;

 private:
  void PatchIndex(JoinIndex* index, const Tuple& tuple, int64_t delta);

  std::vector<std::string> columns_;
  std::unordered_map<Tuple, int64_t, TupleHash> rows_;
  // unique_ptr for pointer stability across container growth.
  std::vector<std::unique_ptr<JoinIndex>> indexes_;
};

// Natural join on all shared column names; multiplicities multiply
// (counting algorithm). `work` is incremented per probed pair, giving the
// measured-cost counter the cost model's CPU term mirrors.
Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work);

// Same join, probing `b_index` — a persistent index on `b` whose key must
// equal the shared columns of (a, b) in b-schema order (see
// SharedJoinColumns). Skips the per-call hash build; output and `work`
// accounting are identical to the index-free overload.
Relation NaturalJoin(const Relation& a, const Relation& b,
                     const Relation::JoinIndex& b_index, uint64_t* work);

// The columns NaturalJoin(a-with-schema `a_columns`, b) would join on:
// b's column names also present in `a_columns`, in b-schema order. This is
// the key to build b's persistent index on.
std::vector<std::string> SharedJoinColumns(
    const std::vector<std::string>& a_columns, const Relation& b);

}  // namespace dsm

#endif  // DSM_MAINTAIN_RELATION_H_
