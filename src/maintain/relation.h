// Relation: a named-column bag of tuples with signed multiplicities — the
// representation used by the incremental (counting-algorithm) view
// maintenance engine. Negative counts occur only transiently inside delta
// relations; materialized views and base tables stay non-negative.

#ifndef DSM_MAINTAIN_RELATION_H_
#define DSM_MAINTAIN_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/predicate.h"
#include "maintain/value.h"

namespace dsm {

class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> column_names)
      : columns_(std::move(column_names)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  int FindColumn(const std::string& name) const;

  // Adds `delta` to the tuple's multiplicity (entries at zero are erased).
  void Apply(const Tuple& tuple, int64_t delta);

  int64_t Count(const Tuple& tuple) const;
  size_t DistinctSize() const { return rows_.size(); }
  // Σ multiplicities (meaningful for non-negative relations).
  int64_t TotalSize() const;

  const std::unordered_map<Tuple, int64_t, TupleHash>& rows() const {
    return rows_;
  }

  bool BagEquals(const Relation& other) const;

  // Tuples satisfying `column op constant`; schema unchanged. Columns
  // absent from the schema leave the relation unfiltered.
  Relation Filter(const std::string& column, CompareOp op,
                  double constant) const;

  // The same bag with columns permuted into `columns` order (which must be
  // a permutation of this relation's schema). Joins starting from
  // different tables produce permuted schemas; reordering makes their
  // results comparable and mergeable.
  Relation WithColumnOrder(const std::vector<std::string>& columns) const;

  // Bag projection onto `columns` (a subset of the schema, in any order):
  // multiplicities of collapsing tuples add up. Unknown column names are
  // dropped from the output schema.
  Relation Project(const std::vector<std::string>& columns) const;

 private:
  std::vector<std::string> columns_;
  std::unordered_map<Tuple, int64_t, TupleHash> rows_;
};

// Natural join on all shared column names; multiplicities multiply
// (counting algorithm). `work` is incremented per probed pair, giving the
// measured-cost counter the cost model's CPU term mirrors.
Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work);

}  // namespace dsm

#endif  // DSM_MAINTAIN_RELATION_H_
