// Relation: a named-column bag of tuples with signed multiplicities — the
// representation used by the incremental (counting-algorithm) view
// maintenance engine. Negative counts occur only transiently inside delta
// relations; materialized views and base tables stay non-negative.
//
// Two row encodings live behind one interface (DESIGN.md §12):
//  * kCompact (the default): rows live in a TupleStore — every Value is a
//    tagged 8-byte slot (maintain/value_dict.h), a tuple is a flat
//    fixed-width uint64_t array, and the bag table is open addressing over
//    precomputed row hashes. Copies share the store (copy-on-write), so
//    returning a relation "unfiltered" or caching an unpredicated operand
//    costs one shared_ptr. Filter/Project/WithColumnOrder are position-
//    remap loops over the flat slots; Filter and same-schema merges reuse
//    the stored hashes outright.
//  * kLegacy: the original std::unordered_map<Tuple, int64_t> row store,
//    kept behind the toggle (like operand_cache / reuse_index_enabled) as
//    the bit-exact reference the compact plane is tested against.
//
// A relation can carry persistent equi-join indexes (EnsureIndex): each
// maps the projection of a row onto a fixed column subset to the rows
// carrying that key, with multiplicities. Indexes are patched in place by
// every Apply(), so a long-lived operand (a base table, or a cached
// filtered copy of one) pays the hash build once instead of once per join.
// Copies drop indexes (a copy is a fresh operand); moves keep them.

#ifndef DSM_MAINTAIN_RELATION_H_
#define DSM_MAINTAIN_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/predicate.h"
#include "maintain/tuple_store.h"
#include "maintain/value.h"
#include "maintain/value_dict.h"

namespace dsm {

enum class RowEncoding : uint8_t {
  kCompact,
  kLegacy,
};

class Relation {
 public:
  // A persistent hash index on the projection of each row onto
  // `key_columns`. Empty `key_columns` is allowed: every row lands in one
  // bucket (the cross-product case). The representation follows the owning
  // relation's encoding:
  //  * legacy: buckets store (row, count) value pairs — probing never
  //    chases pointers into the row map, so rehashes there are harmless.
  //  * compact: a SlotKeyIndex of (row id, count) entries keyed by
  //    pre-hashed key slots; row ids stay valid because an index entry
  //    exists exactly while its row is live in the store.
  struct JoinIndex {
    std::vector<std::string> key_columns;  // names, in b-schema order
    std::vector<int> key_positions;        // same, as column positions
    std::unordered_map<Tuple, std::vector<std::pair<Tuple, int64_t>>,
                       TupleHash>
        buckets;                              // legacy owners
    std::unique_ptr<SlotKeyIndex> slot_index;  // compact owners
  };

  Relation() : Relation(std::vector<std::string>{}) {}
  explicit Relation(std::vector<std::string> column_names,
                    RowEncoding encoding = RowEncoding::kCompact);

  // Copies carry rows but not indexes (consumers index what they need);
  // moves carry both. A compact copy shares the row store copy-on-write —
  // the deep copy happens only if one side later mutates.
  Relation(const Relation& other)
      : columns_(other.columns_),
        encoding_(other.encoding_),
        rows_(other.rows_),
        store_(other.store_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      columns_ = other.columns_;
      encoding_ = other.encoding_;
      rows_ = other.rows_;
      store_ = other.store_;
      indexes_.clear();
    }
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  RowEncoding encoding() const { return encoding_; }
  // The same bag re-encoded (decode + re-intern). Identity when `encoding`
  // already matches.
  Relation WithEncoding(RowEncoding encoding) const;

  const std::vector<std::string>& columns() const { return columns_; }
  int FindColumn(const std::string& name) const;

  // Adds `delta` to the tuple's multiplicity (entries at zero are erased).
  // Every persistent index is patched to match.
  void Apply(const Tuple& tuple, int64_t delta);

  int64_t Count(const Tuple& tuple) const;
  size_t DistinctSize() const {
    return encoding_ == RowEncoding::kLegacy ? rows_.size()
                                             : store_->live_rows();
  }
  // Σ multiplicities (meaningful for non-negative relations).
  int64_t TotalSize() const;

  // Legacy row map; only meaningful in kLegacy mode. Generic consumers use
  // ForEachRow, hot paths use the encoded entry points below.
  const std::unordered_map<Tuple, int64_t, TupleHash>& rows() const {
    return rows_;
  }

  // Calls f(const Tuple&, int64_t count) for every distinct row. In
  // compact mode each row is decoded through the dictionary — fine for
  // tests, reporting and conversions; hot paths stay on slots.
  template <typename F>
  void ForEachRow(F&& f) const {
    if (encoding_ == RowEncoding::kLegacy) {
      for (const auto& [tuple, count] : rows_) f(tuple, count);
      return;
    }
    const TupleStore& st = *store_;
    const ValueDict& dict = ValueDict::Global();
    const uint32_t arity = st.arity();
    st.ForEachLive([&](uint32_t r) {
      Tuple tuple;
      tuple.reserve(arity);
      const Slot* slots = st.row_slots(r);
      for (uint32_t c = 0; c < arity; ++c) {
        tuple.push_back(dict.Decode(slots[c]));
      }
      f(tuple, st.row_count(r));
    });
  }

  // True when the two relations hold the same tuple multiset, regardless
  // of encoding (cross-encoding comparison decodes through the dictionary).
  bool BagEquals(const Relation& other) const;

  // Returns the persistent index keyed on `key_columns` (each name must be
  // in the schema), building it on first request. The pointer stays valid
  // and current — Apply() patches it — for the relation's lifetime.
  const JoinIndex* EnsureIndex(const std::vector<std::string>& key_columns);
  // nullptr when no index on exactly `key_columns` exists yet.
  const JoinIndex* FindIndex(
      const std::vector<std::string>& key_columns) const;
  size_t num_indexes() const { return indexes_.size(); }

  // Tuples satisfying `column op constant`; schema unchanged. Columns
  // absent from the schema leave the relation unfiltered — in compact mode
  // that path shares the row store instead of deep-copying it. In compact
  // mode the predicate runs as a columnar kernel: one pass over the
  // column's slots collects surviving row ids, a second pass copies the
  // flat rows with their stored hashes (never recomputed).
  Relation Filter(const std::string& column, CompareOp op,
                  double constant) const;

  // The same bag with columns permuted into `columns` order (which must be
  // a permutation of this relation's schema). Joins starting from
  // different tables produce permuted schemas; reordering makes their
  // results comparable and mergeable.
  Relation WithColumnOrder(const std::vector<std::string>& columns) const;

  // Bag projection onto `columns` (a subset of the schema, in any order):
  // multiplicities of collapsing tuples add up. Unknown column names are
  // dropped from the output schema.
  Relation Project(const std::vector<std::string>& columns) const;

  // --- compact-mode hot-path entry points ----------------------------------

  // The compact row store (compact mode only).
  const TupleStore& store() const { return *store_; }

  // Apply on already-encoded slots with a precomputed hash
  // (HashTupleSlots); patches persistent indexes like Apply.
  void ApplyEncoded(const Slot* slots, uint64_t hash, int64_t delta);

  // Merges every row of `src` (same schema, in this relation's column
  // order) into this relation. When both sides are compact the stored row
  // hashes transfer directly — the merge never rehashes a tuple.
  void ApplyAll(const Relation& src);

 private:
  TupleStore* MutableStore();
  void PatchIndexesLegacy(const Tuple& tuple, int64_t delta);
  void PatchIndexesEncoded(const Slot* slots, uint32_t row, int64_t delta);
  void BuildIndex(JoinIndex* index) const;

  std::vector<std::string> columns_;
  RowEncoding encoding_ = RowEncoding::kCompact;
  std::unordered_map<Tuple, int64_t, TupleHash> rows_;  // legacy mode
  std::shared_ptr<TupleStore> store_;                   // compact mode
  // unique_ptr for pointer stability across container growth.
  std::vector<std::unique_ptr<JoinIndex>> indexes_;
};

// Natural join on all shared column names; multiplicities multiply
// (counting algorithm). `work` is incremented per probed pair, giving the
// measured-cost counter the cost model's CPU term mirrors. Output and
// work accounting are identical for both encodings; the compact kernel
// probes pre-hashed slot buckets and assembles output rows as flat slot
// copies. Mixed-encoding inputs are joined in `a`'s encoding.
Relation NaturalJoin(const Relation& a, const Relation& b, uint64_t* work);

// Same join, probing `b_index` — a persistent index on `b` whose key must
// equal the shared columns of (a, b) in b-schema order (see
// SharedJoinColumns). Skips the per-call hash build; output and `work`
// accounting are identical to the index-free overload.
Relation NaturalJoin(const Relation& a, const Relation& b,
                     const Relation::JoinIndex& b_index, uint64_t* work);

// The columns NaturalJoin(a-with-schema `a_columns`, b) would join on:
// b's column names also present in `a_columns`, in b-schema order. This is
// the key to build b's persistent index on.
std::vector<std::string> SharedJoinColumns(
    const std::vector<std::string>& a_columns, const Relation& b);

}  // namespace dsm

#endif  // DSM_MAINTAIN_RELATION_H_
