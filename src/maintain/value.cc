#include "maintain/value.h"

#include <cstdio>

#include "common/hash.h"

namespace dsm {

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    return buf;
  }
  return std::get<std::string>(value);
}

bool ValueSatisfies(const Value& value, CompareOp op, double constant) {
  double v = 0.0;
  if (const auto* i = std::get_if<int64_t>(&value)) {
    v = static_cast<double>(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    v = *d;
  } else {
    return false;
  }
  switch (op) {
    case CompareOp::kLt:
      return v < constant;
    case CompareOp::kGt:
      return v > constant;
    case CompareOp::kEq:
      return v == constant;
  }
  return false;
}

size_t TupleHash::operator()(const Tuple& tuple) const {
  // Seeded fnv1a over (alternative tag, payload) pairs with a splitmix64
  // finisher — the same mix the compact data plane's pre-hashed tables use
  // (common/hash.h). The tag keeps int64 5 and double 5.0 distinct even
  // though their payload bits could collide.
  uint64_t h = kFnv1a64Offset;
  for (const Value& value : tuple) {
    if (const auto* i = std::get_if<int64_t>(&value)) {
      h = HashMix64(h, 1);
      h = HashMix64(h, static_cast<uint64_t>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      uint64_t bits;
      __builtin_memcpy(&bits, d, sizeof(bits));
      h = HashMix64(h, 2);
      h = HashMix64(h, bits);
    } else {
      const std::string& s = std::get<std::string>(value);
      h = HashMix64(h, 3);
      h = Fnv1a64(s.data(), s.size(), h);
    }
  }
  return static_cast<size_t>(HashFinish(h));
}

}  // namespace dsm
