#include "maintain/value.h"

#include <cstdio>
#include <functional>

namespace dsm {

std::string ValueToString(const Value& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    return buf;
  }
  return std::get<std::string>(value);
}

bool ValueSatisfies(const Value& value, CompareOp op, double constant) {
  double v = 0.0;
  if (const auto* i = std::get_if<int64_t>(&value)) {
    v = static_cast<double>(*i);
  } else if (const auto* d = std::get_if<double>(&value)) {
    v = *d;
  } else {
    return false;
  }
  switch (op) {
    case CompareOp::kLt:
      return v < constant;
    case CompareOp::kGt:
      return v > constant;
    case CompareOp::kEq:
      return v == constant;
  }
  return false;
}

size_t TupleHash::operator()(const Tuple& tuple) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const Value& value : tuple) {
    if (const auto* i = std::get_if<int64_t>(&value)) {
      mix(static_cast<uint64_t>(*i) * 3 + 1);
    } else if (const auto* d = std::get_if<double>(&value)) {
      uint64_t bits;
      __builtin_memcpy(&bits, d, sizeof(bits));
      mix(bits * 3 + 2);
    } else {
      mix(std::hash<std::string>()(std::get<std::string>(value)) * 3);
    }
  }
  return static_cast<size_t>(h);
}

}  // namespace dsm
