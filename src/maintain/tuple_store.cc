#include "maintain/tuple_store.h"

#include <cstring>
#include <utility>

namespace dsm {
namespace {

constexpr size_t kMinTable = 16;

size_t TableSizeFor(size_t live) {
  size_t size = kMinTable;
  while (size < live * 2) size <<= 1;
  return size;
}

bool SlotsEqual(const Slot* a, const Slot* b, uint32_t arity) {
  return arity == 0 ||
         std::memcmp(a, b, static_cast<size_t>(arity) * sizeof(Slot)) == 0;
}

}  // namespace

TupleStoreStats& TupleStoreStats::Global() {
  static TupleStoreStats* stats = new TupleStoreStats();  // never destroyed
  return *stats;
}

TupleStore::TupleStore(uint32_t arity) : arity_(arity) {}

TupleStore::TupleStore(const TupleStore& other)
    : arity_(other.arity_),
      slots_(other.slots_),
      hashes_(other.hashes_),
      counts_(other.counts_),
      free_(other.free_),
      table_(other.table_),
      mask_(other.mask_),
      live_(other.live_),
      tombstones_(other.tombstones_) {
  TupleStoreStats::Global().deep_copies.fetch_add(1,
                                                  std::memory_order_relaxed);
  SyncResidentBytes();
}

TupleStore& TupleStore::operator=(const TupleStore& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  slots_ = other.slots_;
  hashes_ = other.hashes_;
  counts_ = other.counts_;
  free_ = other.free_;
  table_ = other.table_;
  mask_ = other.mask_;
  live_ = other.live_;
  tombstones_ = other.tombstones_;
  TupleStoreStats::Global().deep_copies.fetch_add(1,
                                                  std::memory_order_relaxed);
  SyncResidentBytes();
  return *this;
}

TupleStore::TupleStore(TupleStore&& other) noexcept
    : arity_(other.arity_),
      slots_(std::move(other.slots_)),
      hashes_(std::move(other.hashes_)),
      counts_(std::move(other.counts_)),
      free_(std::move(other.free_)),
      table_(std::move(other.table_)),
      mask_(other.mask_),
      live_(other.live_),
      tombstones_(other.tombstones_),
      reported_bytes_(other.reported_bytes_) {
  other.mask_ = 0;
  other.live_ = 0;
  other.tombstones_ = 0;
  other.reported_bytes_ = 0;
}

TupleStore& TupleStore::operator=(TupleStore&& other) noexcept {
  if (this == &other) return *this;
  TupleStoreStats::Global().resident_bytes.fetch_sub(
      reported_bytes_, std::memory_order_relaxed);
  arity_ = other.arity_;
  slots_ = std::move(other.slots_);
  hashes_ = std::move(other.hashes_);
  counts_ = std::move(other.counts_);
  free_ = std::move(other.free_);
  table_ = std::move(other.table_);
  mask_ = other.mask_;
  live_ = other.live_;
  tombstones_ = other.tombstones_;
  reported_bytes_ = other.reported_bytes_;
  other.mask_ = 0;
  other.live_ = 0;
  other.tombstones_ = 0;
  other.reported_bytes_ = 0;
  return *this;
}

TupleStore::~TupleStore() {
  TupleStoreStats::Global().resident_bytes.fetch_sub(
      reported_bytes_, std::memory_order_relaxed);
}

size_t TupleStore::HeapBytes() const {
  return slots_.capacity() * sizeof(Slot) +
         hashes_.capacity() * sizeof(uint64_t) +
         counts_.capacity() * sizeof(int64_t) +
         free_.capacity() * sizeof(uint32_t) +
         table_.capacity() * sizeof(uint32_t);
}

void TupleStore::SyncResidentBytes() {
  const auto bytes = static_cast<int64_t>(HeapBytes());
  if (bytes == reported_bytes_) return;
  TupleStoreStats::Global().resident_bytes.fetch_add(
      bytes - reported_bytes_, std::memory_order_relaxed);
  reported_bytes_ = bytes;
}

void TupleStore::Reserve(size_t rows) {
  slots_.reserve(rows * arity_);
  hashes_.reserve(rows);
  counts_.reserve(rows);
  if (table_.empty() || rows * 4 > table_.size() * 3) Rehash(rows);
  SyncResidentBytes();
}

void TupleStore::Rehash(size_t min_live) {
  const size_t size = TableSizeFor(min_live);
  table_.assign(size, kEmpty);
  mask_ = size - 1;
  tombstones_ = 0;
  const uint32_t n = physical_rows();
  for (uint32_t row = 0; row < n; ++row) {
    if (counts_[row] == 0) continue;
    // Stored hash: the whole point — a rehash never re-reads slot bytes.
    size_t i = hashes_[row] & mask_;
    while (table_[i] != kEmpty) i = (i + 1) & mask_;
    table_[i] = row;
  }
  TupleStoreStats::Global().rehashes.fetch_add(1, std::memory_order_relaxed);
  SyncResidentBytes();
}

uint32_t TupleStore::FindRow(const Slot* slots, uint64_t hash) const {
  if (live_ == 0 || table_.empty()) return kNoRow;
  size_t i = hash & mask_;
  while (true) {
    const uint32_t entry = table_[i];
    if (entry == kEmpty) return kNoRow;
    if (entry != kTombstone && hashes_[entry] == hash &&
        SlotsEqual(row_slots(entry), slots, arity_)) {
      return entry;
    }
    i = (i + 1) & mask_;
  }
}

uint32_t TupleStore::Apply(const Slot* slots, uint64_t hash, int64_t delta) {
  if (delta == 0) return FindRow(slots, hash);
  if (table_.empty() || (live_ + tombstones_ + 1) * 4 > table_.size() * 3) {
    Rehash(live_ + 1);
  }
  // Counted at once (not batched) so the exported counter is exact at any
  // serial point — the run-report goldens depend on it.
  TupleStoreStats::Global().probes.fetch_add(1, std::memory_order_relaxed);

  size_t i = hash & mask_;
  size_t insert_at = static_cast<size_t>(-1);
  while (true) {
    const uint32_t entry = table_[i];
    if (entry == kEmpty) {
      if (insert_at == static_cast<size_t>(-1)) insert_at = i;
      break;
    }
    if (entry == kTombstone) {
      if (insert_at == static_cast<size_t>(-1)) insert_at = i;
    } else if (hashes_[entry] == hash &&
               SlotsEqual(row_slots(entry), slots, arity_)) {
      counts_[entry] += delta;
      if (counts_[entry] == 0) {
        free_.push_back(entry);
        table_[i] = kTombstone;
        ++tombstones_;
        --live_;
      }
      return entry;
    }
    i = (i + 1) & mask_;
  }

  uint32_t row;
  if (!free_.empty()) {
    row = free_.back();
    free_.pop_back();
    if (arity_ > 0) {
      std::memcpy(slots_.data() + static_cast<size_t>(row) * arity_, slots,
                  static_cast<size_t>(arity_) * sizeof(Slot));
    }
    hashes_[row] = hash;
    counts_[row] = delta;
  } else {
    row = physical_rows();
    if (arity_ > 0) slots_.insert(slots_.end(), slots, slots + arity_);
    hashes_.push_back(hash);
    counts_.push_back(delta);
    SyncResidentBytes();
  }
  if (table_[insert_at] == kTombstone) --tombstones_;
  table_[insert_at] = row;
  ++live_;
  return row;
}

// --- SlotKeyIndex -----------------------------------------------------------

SlotKeyIndex::SlotKeyIndex(uint32_t key_arity) : key_arity_(key_arity) {}

uint32_t SlotKeyIndex::FindGroup(const Slot* key, uint64_t hash) const {
  if (live_ == 0 || table_.empty()) return kNoGroup;
  size_t i = hash & mask_;
  while (true) {
    const uint32_t entry = table_[i];
    if (entry == kEmpty) return kNoGroup;
    if (entry != kTombstone && hashes_[entry] == hash &&
        SlotsEqual(keys_.data() + static_cast<size_t>(entry) * key_arity_,
                   key, key_arity_)) {
      return entry;
    }
    i = (i + 1) & mask_;
  }
}

const std::vector<SlotKeyIndex::Entry>* SlotKeyIndex::Find(
    const Slot* key, uint64_t hash) const {
  const uint32_t group = FindGroup(key, hash);
  return group == kNoGroup ? nullptr : &entries_[group];
}

void SlotKeyIndex::Rehash(size_t min_live) {
  const size_t size = TableSizeFor(min_live);
  table_.assign(size, kEmpty);
  mask_ = size - 1;
  tombstones_ = 0;
  const auto n = static_cast<uint32_t>(entries_.size());
  for (uint32_t group = 0; group < n; ++group) {
    if (entries_[group].empty()) continue;
    size_t i = hashes_[group] & mask_;
    while (table_[i] != kEmpty) i = (i + 1) & mask_;
    table_[i] = group;
  }
  TupleStoreStats::Global().rehashes.fetch_add(1, std::memory_order_relaxed);
}

void SlotKeyIndex::Patch(const Slot* key, uint64_t hash, uint32_t row,
                         int64_t delta) {
  if (delta == 0) return;
  if (table_.empty() || (live_ + tombstones_ + 1) * 4 > table_.size() * 3) {
    Rehash(live_ + 1);
  }
  size_t i = hash & mask_;
  size_t insert_at = static_cast<size_t>(-1);
  uint32_t group = kNoGroup;
  size_t group_pos = 0;
  while (true) {
    const uint32_t entry = table_[i];
    if (entry == kEmpty) {
      if (insert_at == static_cast<size_t>(-1)) insert_at = i;
      break;
    }
    if (entry == kTombstone) {
      if (insert_at == static_cast<size_t>(-1)) insert_at = i;
    } else if (hashes_[entry] == hash &&
               SlotsEqual(keys_.data() +
                              static_cast<size_t>(entry) * key_arity_,
                          key, key_arity_)) {
      group = entry;
      group_pos = i;
      break;
    }
    i = (i + 1) & mask_;
  }

  if (group == kNoGroup) {
    if (!free_.empty()) {
      group = free_.back();
      free_.pop_back();
      if (key_arity_ > 0) {
        std::memcpy(keys_.data() + static_cast<size_t>(group) * key_arity_,
                    key, static_cast<size_t>(key_arity_) * sizeof(Slot));
      }
      hashes_[group] = hash;
    } else {
      group = static_cast<uint32_t>(entries_.size());
      if (key_arity_ > 0) keys_.insert(keys_.end(), key, key + key_arity_);
      hashes_.push_back(hash);
      entries_.emplace_back();
    }
    if (table_[insert_at] == kTombstone) --tombstones_;
    table_[insert_at] = group;
    ++live_;
    entries_[group].push_back(Entry{row, delta});
    return;
  }

  std::vector<Entry>& bucket = entries_[group];
  for (size_t e = 0; e < bucket.size(); ++e) {
    if (bucket[e].row != row) continue;
    bucket[e].count += delta;
    if (bucket[e].count == 0) {
      bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(e));
      if (bucket.empty()) {
        free_.push_back(group);
        table_[group_pos] = kTombstone;
        ++tombstones_;
        --live_;
      }
    }
    return;
  }
  bucket.push_back(Entry{row, delta});
}

}  // namespace dsm
