// dsm_inspect: provider tooling — dump, audit and re-cost a saved market
// state file (see src/io/market_io.h).
//
//   dsm_inspect <state-file>     inspect a saved market
//   dsm_inspect --demo           build a demo market, save it to a
//                                temporary file, then inspect that file
//   dsm_inspect metrics [--json] run the demo workload, then dump the
//                                telemetry registry (Prometheus text by
//                                default, JSON with --json)
//   dsm_inspect trace            run the demo workload, then dump the
//                                recorded trace spans as JSON
//
// Shows the catalog, the cluster, every active sharing with its restored
// plan and reuse decisions, and the FAIRCOST bill.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cost/default_cost_model.h"
#include "costing/costing_session.h"
#include "io/market_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "online/managed_risk.h"
#include "plan/explain.h"
#include "workload/twitter.h"

namespace {

// Plans and costs a small Twitter workload so the telemetry registry and
// tracer have something to show.
int RunDemoWorkload() {
  dsm::Catalog catalog;
  const auto tables = dsm::BuildTwitterCatalog(&catalog);
  if (!tables.ok()) return 1;
  dsm::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddServer("m" + std::to_string(i));
  cluster.PlaceRoundRobin(catalog.num_tables());
  const dsm::JoinGraph graph = dsm::JoinGraph::FromCatalog(catalog);
  dsm::DefaultCostModel model(&catalog, &cluster);
  dsm::PlanEnumerator enumerator(&catalog, &cluster, &graph, &model, {});
  dsm::GlobalPlan global_plan(&cluster, &model);
  dsm::PlannerContext ctx{&catalog, &cluster,     &graph,
                          &model,   &global_plan, &enumerator};
  dsm::ManagedRiskPlanner planner(ctx);

  dsm::TwitterSequenceOptions options;
  options.num_sharings = 12;
  options.max_predicates = 1;
  options.seed = 7;
  for (const dsm::Sharing& sharing : dsm::GenerateTwitterSequence(
           catalog, *tables, cluster, options)) {
    if (!planner.ProcessSharing(sharing).ok()) return 1;
  }
  dsm::LpcCalculator lpc(&enumerator, &model);
  dsm::CostingSession costing(&global_plan, &lpc);
  return costing.Refresh().ok() ? 0 : 1;
}

int MetricsCommand(bool as_json) {
  if (RunDemoWorkload() != 0) {
    std::fprintf(stderr, "demo workload failed\n");
    return 1;
  }
  const dsm::obs::MetricsSnapshot snapshot =
      dsm::obs::MetricsRegistry::Global().Snapshot();
  if (as_json) {
    std::printf("%s\n", snapshot.ToJson().Dump(2).c_str());
  } else {
    std::printf("%s", snapshot.ToPrometheusText().c_str());
  }
  return 0;
}

int TraceCommand() {
  if (RunDemoWorkload() != 0) {
    std::fprintf(stderr, "demo workload failed\n");
    return 1;
  }
  std::printf("%s\n", dsm::obs::Tracer::Global().DumpJson(2).c_str());
  return 0;
}

int WriteDemoState(const std::string& path) {
  dsm::Catalog catalog;
  const auto tables = dsm::BuildTwitterCatalog(&catalog);
  if (!tables.ok()) return 1;
  dsm::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddServer("m" + std::to_string(i));
  cluster.PlaceRoundRobin(catalog.num_tables());
  const dsm::JoinGraph graph = dsm::JoinGraph::FromCatalog(catalog);
  dsm::DefaultCostModel model(&catalog, &cluster);
  dsm::PlanEnumerator enumerator(&catalog, &cluster, &graph, &model, {});
  dsm::GlobalPlan global_plan(&cluster, &model);
  dsm::PlannerContext ctx{&catalog, &cluster,     &graph,
                          &model,   &global_plan, &enumerator};
  dsm::ManagedRiskPlanner planner(ctx);

  dsm::TwitterSequenceOptions options;
  options.num_sharings = 8;
  options.max_predicates = 1;
  options.seed = 7;
  for (const dsm::Sharing& sharing : dsm::GenerateTwitterSequence(
           catalog, *tables, cluster, options)) {
    if (!planner.ProcessSharing(sharing).ok()) return 1;
  }

  std::ofstream out(path);
  if (!dsm::WriteMarketState(catalog, cluster, &global_plan, &out).ok()) {
    return 1;
  }
  std::printf("demo market saved to %s\n\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc >= 2 && std::string(argv[1]) == "metrics") {
    const bool as_json = argc == 3 && std::string(argv[2]) == "--json";
    return MetricsCommand(as_json);
  }
  if (argc == 2 && std::string(argv[1]) == "trace") {
    return TraceCommand();
  }
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    path = "/tmp/dsm_demo_market.txt";
    if (WriteDemoState(path) != 0) {
      std::fprintf(stderr, "failed to build demo state\n");
      return 1;
    }
  } else if (argc == 2) {
    path = argv[1];
  } else {
    std::fprintf(stderr,
                 "usage: dsm_inspect <state-file> | --demo | "
                 "metrics [--json] | trace\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const auto state = dsm::ReadMarketState(&in);
  if (!state.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 state.status().ToString().c_str());
    return 1;
  }

  std::printf("catalog: %zu tables\n", state->catalog.num_tables());
  for (dsm::TableId t = 0; t < state->catalog.num_tables(); ++t) {
    const dsm::TableDef& def = state->catalog.table(t);
    const auto home = state->cluster.HomeOf(t);
    std::printf("  %-10s %10.0f rows, %8.1f updates/unit, on %s\n",
                def.name.c_str(), def.stats.cardinality,
                def.stats.update_rate,
                home.ok()
                    ? state->cluster.server(*home).name.c_str()
                    : "<unplaced>");
  }
  std::printf("cluster: %zu servers\n\n", state->cluster.num_servers());

  // Restore the global plan and audit it.
  dsm::DefaultCostModel model(&state->catalog, &state->cluster);
  dsm::GlobalPlan global_plan(&state->cluster, &model);
  if (!dsm::RestoreGlobalPlan(*state, &global_plan).ok()) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  std::printf("%s\n", dsm::ExplainGlobalPlan(global_plan, state->cluster,
                                             state->catalog)
                          .c_str());
  for (const dsm::SharingStateEntry& entry : state->sharings) {
    std::printf("%s\n", dsm::ExplainSharing(global_plan, entry.id,
                                            state->catalog)
                            .c_str());
  }

  // Re-cost the restored market.
  const dsm::JoinGraph graph = dsm::JoinGraph::FromCatalog(state->catalog);
  dsm::PlanEnumerator enumerator(&state->catalog, &state->cluster, &graph,
                                 &model, {});
  dsm::LpcCalculator lpc(&enumerator, &model);
  dsm::CostingSession costing(&global_plan, &lpc);
  const auto snapshot = costing.Refresh();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "costing failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("bill (alpha %.3f%s): total $%.5f\n", snapshot->alpha,
              snapshot->criteria_satisfied ? "" : ", LPC-overrun fallback",
              snapshot->global_cost);
  for (const auto& [id, ac] : snapshot->ac) {
    std::printf("  sharing %-4llu AC $%.5f  (LPC $%.5f)\n",
                static_cast<unsigned long long>(id), ac,
                snapshot->lpc.at(id));
  }
  return 0;
}
