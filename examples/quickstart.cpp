// Quickstart: the paper's running example (Example 1.1) on the DataMarket
// facade. Three owners sell restaurant data (check-ins, restaurant info,
// reviews); buyer 1 purchases the three-way join; buyer 2 purchases the
// same join filtered to one city. The provider plans both sharings online,
// reuses the shared join, and attributes costs fairly.

#include <cstdio>

#include "market/data_market.h"

namespace {

dsm::TableDef MakeTable(const char* name,
                        std::initializer_list<const char*> columns,
                        double cardinality, double update_rate) {
  dsm::TableDef def;
  def.name = name;
  for (const char* c : columns) {
    dsm::ColumnDef col;
    col.name = c;
    col.distinct_values = cardinality / 10;
    col.min_value = 0;
    col.max_value = cardinality / 10;
    def.columns.push_back(col);
  }
  def.stats.cardinality = cardinality;
  def.stats.update_rate = update_rate;
  def.stats.tuple_bytes = 80;
  return def;
}

}  // namespace

int main() {
  dsm::DataMarket market;

  // The provider rents two servers from an IaaS provider.
  const dsm::ServerId s1 = market.AddServer("server-1");
  const dsm::ServerId s2 = market.AddServer("server-2");

  // Data owners register their (dynamic) tables with asking prices.
  if (!market.RegisterTable(MakeTable("CHK", {"uid", "rid"}, 1e6, 500), s1,
                            /*data_value=*/20.0)
           .ok() ||
      !market.RegisterTable(MakeTable("RES", {"rid", "city"}, 1e5, 5), s2,
                            /*data_value=*/10.0)
           .ok() ||
      !market.RegisterTable(MakeTable("REV", {"rid", "stars"}, 5e5, 200),
                            s1, /*data_value=*/8.0)
           .ok()) {
    std::fprintf(stderr, "table registration failed\n");
    return 1;
  }

  // Buyer 1: the full three-way join, delivered to server 2.
  const auto buyer1 =
      market.SubmitSharing({"CHK", "RES", "REV"}, {}, s2, "buyer-1");
  if (!buyer1.ok()) {
    std::fprintf(stderr, "%s\n", buyer1.status().ToString().c_str());
    return 1;
  }
  std::printf("buyer-1 plan: %s\n", buyer1->plan.c_str());
  std::printf("buyer-1 marginal cost: $%.4f/unit\n\n",
              buyer1->marginal_cost);

  // Buyer 2: the same join, but only one city ("city = 7" stands in for
  // "city = Seattle"). The provider reuses buyer 1's views and adds a
  // filter on top — exactly Figure 1 of the paper.
  dsm::Predicate seattle;
  seattle.table = *market.catalog().FindTable("RES");
  seattle.column = 1;
  seattle.op = dsm::CompareOp::kEq;
  seattle.value = 7;
  const auto buyer2 = market.SubmitSharing({"CHK", "RES", "REV"}, {seattle},
                                           s1, "buyer-2");
  if (!buyer2.ok()) {
    std::fprintf(stderr, "%s\n", buyer2.status().ToString().c_str());
    return 1;
  }
  std::printf("buyer-2 plan: %s\n", buyer2->plan.c_str());
  std::printf("buyer-2 marginal cost: $%.4f/unit (reuses buyer-1's join)\n\n",
              buyer2->marginal_cost);

  // Fair costing: buyer 2 must not pay more than buyer 1 despite the
  // extra filter step (criterion (3); cf. Example 1.1's discussion).
  const auto report = market.ComputeCosts();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("global plan cost: $%.4f/unit, fairness alpha = %.3f\n",
              report->total_cost, report->alpha);
  std::printf("%-10s %12s %12s %12s %12s\n", "buyer", "AC", "LPC",
              "data value", "price");
  for (const auto& cost : report->sharings) {
    std::printf("%-10s %12.4f %12.4f %12.2f %12.4f\n", cost.buyer.c_str(),
                cost.attributed_cost, cost.lpc, cost.data_value, cost.price);
  }
  return 0;
}
