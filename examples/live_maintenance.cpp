// Live maintenance: the part the paper's evaluation models analytically,
// run for real. Two purchased views over the Twitter schema are kept
// up to date by the delta engine while tweets/check-ins stream in, and the
// incremental contents are verified against from-scratch recomputation.

#include <cstdio>

#include "common/rng.h"
#include "maintain/delta_engine.h"
#include "workload/twitter.h"

int main() {
  dsm::Catalog catalog;
  const auto tables = dsm::BuildTwitterCatalog(&catalog);
  if (!tables.ok()) return 1;

  dsm::DeltaEngine engine(&catalog);
  for (const dsm::TableId t :
       {tables->users, tables->tweets, tables->foursq}) {
    if (!engine.RegisterBase(t).ok()) return 1;
  }

  // Sharing S5 (USERS ⋈ TWEETS, "tweetstats") and sharing S9
  // (FOURSQ ⋈ TWEETS, "checkoutcheckins") from Table 1.
  dsm::TableSet s5;
  s5.Add(tables->users);
  s5.Add(tables->tweets);
  dsm::TableSet s9;
  s9.Add(tables->foursq);
  s9.Add(tables->tweets);

  // S9 carries a predicate: only short tweets (len < 70).
  dsm::Predicate short_tweets;
  short_tweets.table = tables->tweets;
  short_tweets.column = 2;  // len
  short_tweets.op = dsm::CompareOp::kLt;
  short_tweets.value = 70;

  const auto v5 = engine.RegisterView(dsm::ViewKey(s5));
  const auto v9 = engine.RegisterView(dsm::ViewKey(s9, {short_tweets}));
  if (!v5.ok() || !v9.ok()) return 1;

  dsm::Rng rng(20140622);
  std::printf("%8s %14s %16s %16s\n", "batch", "work (pairs)",
              "|USERS⋈TWEETS|", "|FOURSQ⋈TWEETS σ|");
  for (int batch = 1; batch <= 10; ++batch) {
    // Each batch: 200 new users, 400 tweets, 100 check-ins; a handful of
    // tweet deletions.
    std::vector<dsm::Tuple> users, tweets, foursq;
    for (int i = 0; i < 200; ++i) {
      users.push_back(
          dsm::RandomTwitterTuple(catalog, tables->users, &rng));
    }
    for (int i = 0; i < 400; ++i) {
      tweets.push_back(
          dsm::RandomTwitterTuple(catalog, tables->tweets, &rng));
    }
    for (int i = 0; i < 100; ++i) {
      foursq.push_back(
          dsm::RandomTwitterTuple(catalog, tables->foursq, &rng));
    }
    std::vector<dsm::Tuple> deleted(tweets.begin(), tweets.begin() + 5);

    if (!engine.ApplyUpdate(tables->users, users, {}).ok() ||
        !engine.ApplyUpdate(tables->tweets, tweets, {}).ok() ||
        !engine.ApplyUpdate(tables->foursq, foursq, {}).ok() ||
        !engine.ApplyUpdate(tables->tweets, {}, deleted).ok()) {
      std::fprintf(stderr, "update failed\n");
      return 1;
    }
    std::printf("%8d %14llu %16lld %16lld\n", batch,
                static_cast<unsigned long long>(engine.work()),
                static_cast<long long>(engine.view(*v5)->TotalSize()),
                static_cast<long long>(engine.view(*v9)->TotalSize()));
  }

  // Verify the incremental views against full recomputation.
  for (const dsm::ViewId v : {*v5, *v9}) {
    const auto expected = engine.Recompute(engine.view_key(v));
    if (!expected.ok() || !engine.view(v)->BagEquals(*expected)) {
      std::fprintf(stderr, "view %zu diverged from recomputation!\n", v);
      return 1;
    }
  }
  std::printf("\nboth views verified against from-scratch recomputation ✓\n");
  return 0;
}
