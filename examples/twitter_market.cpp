// The paper's Twitter workload end to end on the library's low-level API:
// nine base relations on six machines, a sequence of sharings drawn from
// Table 1's 25 base sharings, planned online by all three algorithms, with
// the resulting global-plan costs and fair costing compared.

#include <cstdio>
#include <memory>

#include "cost/default_cost_model.h"
#include "costing/even_split.h"
#include "costing/fairness_metrics.h"
#include "costing/lpc.h"
#include "costing/savings.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "workload/twitter.h"

namespace {

struct Stack {
  dsm::Catalog catalog;
  dsm::Cluster cluster;
  dsm::TwitterTables tables;
  std::unique_ptr<dsm::JoinGraph> graph;
  std::unique_ptr<dsm::DefaultCostModel> model;
  std::unique_ptr<dsm::PlanEnumerator> enumerator;
  std::unique_ptr<dsm::GlobalPlan> global_plan;
  dsm::PlannerContext ctx;
};

std::unique_ptr<Stack> MakeStack() {
  auto stack = std::make_unique<Stack>();
  const auto tables = dsm::BuildTwitterCatalog(&stack->catalog);
  if (!tables.ok()) return nullptr;
  stack->tables = *tables;
  for (int i = 0; i < 6; ++i) {
    stack->cluster.AddServer("m" + std::to_string(i));
  }
  stack->cluster.PlaceRoundRobin(stack->catalog.num_tables());
  stack->graph = std::make_unique<dsm::JoinGraph>(
      dsm::JoinGraph::FromCatalog(stack->catalog));
  stack->model = std::make_unique<dsm::DefaultCostModel>(&stack->catalog,
                                                         &stack->cluster);
  stack->enumerator = std::make_unique<dsm::PlanEnumerator>(
      &stack->catalog, &stack->cluster, stack->graph.get(),
      stack->model.get(), dsm::EnumeratorOptions{});
  stack->global_plan = std::make_unique<dsm::GlobalPlan>(
      &stack->cluster, stack->model.get());
  stack->ctx = {&stack->catalog,       &stack->cluster,
                stack->graph.get(),    stack->model.get(),
                stack->global_plan.get(), stack->enumerator.get()};
  return stack;
}

}  // namespace

int main() {
  // One sharing sequence, three planners.
  std::printf("Twitter data market: 9 relations, 6 machines, 40 sharings "
              "(up to 2 predicates)\n\n");
  std::printf("%-12s %16s %14s\n", "planner", "global cost $", "views kept");

  double mr_cost = 0.0;
  std::unique_ptr<Stack> mr_stack;
  for (const char* which : {"Greedy", "Normalize", "ManagedRisk"}) {
    auto stack = MakeStack();
    if (stack == nullptr) return 1;
    dsm::TwitterSequenceOptions options;
    options.num_sharings = 40;
    options.max_predicates = 2;
    options.seed = 2014;
    const auto sequence = dsm::GenerateTwitterSequence(
        stack->catalog, stack->tables, stack->cluster, options);

    std::unique_ptr<dsm::OnlinePlanner> planner;
    if (std::string(which) == "Greedy") {
      planner = std::make_unique<dsm::GreedyPlanner>(stack->ctx);
    } else if (std::string(which) == "Normalize") {
      planner = std::make_unique<dsm::NormalizePlanner>(stack->ctx);
    } else {
      planner = std::make_unique<dsm::ManagedRiskPlanner>(stack->ctx);
    }
    for (const dsm::Sharing& sharing : sequence) {
      const auto choice = planner->ProcessSharing(sharing);
      if (!choice.ok()) {
        std::fprintf(stderr, "rejected: %s\n",
                     choice.status().ToString().c_str());
      }
    }
    std::printf("%-12s %16.4f %14zu\n", which,
                stack->global_plan->TotalCost(),
                stack->global_plan->num_alive_views());
    if (std::string(which) == "ManagedRisk") {
      mr_cost = stack->global_plan->TotalCost();
      mr_stack = std::move(stack);
    }
  }

  // Fair costing on MANAGEDRISK's global plan (as in Section 6.1.2).
  dsm::LpcCalculator lpc(mr_stack->enumerator.get(), mr_stack->model.get());
  const auto problem =
      dsm::BuildFairCostProblem(*mr_stack->global_plan, &lpc);
  if (!problem.ok()) return 1;
  const auto fair =
      dsm::FairCost::Compute(problem->entries, problem->global_cost);
  if (!fair.ok()) return 1;
  const auto even =
      dsm::EvenSplitCosts(*mr_stack->global_plan, problem->ids);
  if (!even.ok()) return 1;

  const dsm::FairnessReport fair_report = dsm::EvaluateFairness(
      problem->entries, problem->global_cost, fair->ac);
  const dsm::FairnessReport even_report = dsm::EvaluateFairness(
      problem->entries, problem->global_cost, *even);

  std::printf("\nfair costing over the ManagedRisk global plan ($%.4f):\n",
              mr_cost);
  std::printf("%-12s %8s %8s %10s %10s\n", "algorithm", "alpha", "LPC",
              "Identical", "Contained");
  std::printf("%-12s %8.3f %8.3f %10.3f %10.3f\n", "FairCost",
              fair_report.alpha, fair_report.lpc_fraction,
              fair_report.identical_fraction,
              fair_report.contained_fraction);
  std::printf("%-12s %8.3f %8.3f %10.3f %10.3f\n", "EvenSplit",
              even_report.alpha, even_report.lpc_fraction,
              even_report.identical_fraction,
              even_report.contained_fraction);

  std::printf("\nfirst five attributed costs (FairCost vs EvenSplit):\n");
  for (size_t i = 0; i < problem->ids.size() && i < 5; ++i) {
    std::printf("  sharing %2llu: %10.4f vs %10.4f (LPC %10.4f)\n",
                static_cast<unsigned long long>(problem->ids[i]),
                fair->ac[i], (*even)[i], problem->entries[i].lpc);
  }
  return 0;
}
