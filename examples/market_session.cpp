// A complete market session, end to end:
//   1. buyers purchase dynamic sharings over the Twitter schema,
//   2. the online planner (MANAGEDRISK) integrates them into the global
//      plan, reusing views across buyers,
//   3. FAIRCOST attributes the operational cost after every arrival
//      (a CostingSession tracks the drift),
//   4. the market then actually RUNS: tweets and check-ins stream in,
//      the delta engine keeps every purchased view fresh, and the session
//      ends with an auditable bill and verified view contents.

#include <cstdio>
#include <memory>

#include "cost/default_cost_model.h"
#include "costing/costing_session.h"
#include "market/simulation.h"
#include "online/managed_risk.h"
#include "online/recovery_planner.h"
#include "plan/explain.h"
#include "workload/twitter.h"

int main() {
  // --- Setup: catalog, six machines, planner stack --------------------
  dsm::Catalog catalog;
  const auto tables = dsm::BuildTwitterCatalog(&catalog);
  if (!tables.ok()) return 1;
  dsm::Cluster cluster;
  for (int i = 0; i < 6; ++i) cluster.AddServer("m" + std::to_string(i));
  cluster.PlaceRoundRobin(catalog.num_tables());
  const dsm::JoinGraph graph = dsm::JoinGraph::FromCatalog(catalog);
  dsm::DefaultCostModel model(&catalog, &cluster);
  dsm::PlanEnumerator enumerator(&catalog, &cluster, &graph, &model, {});
  dsm::GlobalPlan global_plan(&cluster, &model);
  dsm::PlannerContext ctx{&catalog, &cluster,     &graph,
                          &model,   &global_plan, &enumerator};
  dsm::ManagedRiskPlanner planner(ctx);
  dsm::LpcCalculator lpc(&enumerator, &model);
  dsm::CostingSession costing(&global_plan, &lpc);

  // --- Buyers arrive online -------------------------------------------
  const auto base = dsm::TwitterBaseSharings(*tables, cluster);
  const size_t picks[] = {4, 1, 5, 9, 4};  // S5, S2, S6, S10, S5 again
  std::printf("five buyers purchase sharings (S5, S2, S6, S10, S5):\n\n");
  std::vector<dsm::SharingId> ids;
  for (const size_t pick : picks) {
    const auto choice = planner.ProcessSharing(base[pick]);
    if (!choice.ok()) return 1;
    ids.push_back(choice->id);
    std::printf("buyer %llu: plan %-52s marginal $%.5f%s\n",
                static_cast<unsigned long long>(choice->id),
                choice->plan.ToString(catalog).c_str(),
                choice->marginal_cost,
                choice->reused_identical ? "  (identical; plan reused)"
                                         : "");
    if (!costing.Refresh().ok()) return 1;
  }

  std::printf("\n%s\n", dsm::ExplainGlobalPlan(global_plan, cluster,
                                               catalog)
                            .c_str());
  std::printf("%s\n", dsm::ExplainSharing(global_plan, ids[1], catalog)
                          .c_str());

  std::printf("attributed-cost history (AC per refresh; ACs drift as "
              "reuse appears, never above LPC):\n");
  for (size_t r = 0; r < costing.history().size(); ++r) {
    std::printf("  after buyer %zu:", r + 1);
    for (const auto& [id, ac] : costing.history()[r].ac) {
      std::printf(" S%llu=$%.5f", static_cast<unsigned long long>(id), ac);
    }
    std::printf("\n");
  }
  std::printf("max AC increase across refreshes: %.3f of LPC (bound: 1)\n",
              costing.MaxAcIncreaseFractionOfLpc());

  // --- Run the market: stream updates, maintain views ------------------
  // Compress value domains so the short demo stream produces join hits.
  dsm::MarketSimulation sim(&catalog, 20140622,
                            /*domain_compression=*/1e-4);
  for (const dsm::SharingId id : ids) {
    const auto* rec = global_plan.record(id);
    if (rec == nullptr) return 1;
    if (!sim.AddBuyerView(id, rec->sharing.ResultKey()).ok()) return 1;
  }
  if (!sim.Run(/*ticks=*/6, /*scale=*/0.1).ok()) return 1;

  std::printf("\nafter %d ticks (%llu update tuples streamed):\n",
              sim.ticks_elapsed(),
              static_cast<unsigned long long>(sim.updates_applied()));
  for (const dsm::SharingId id : ids) {
    std::printf("  view of sharing %llu: %lld tuples\n",
                static_cast<unsigned long long>(id),
                static_cast<long long>(sim.ViewSize(id)));
  }
  const auto verified = sim.VerifyViews();
  if (!verified.ok() || !*verified) {
    std::fprintf(stderr, "view verification FAILED\n");
    return 1;
  }
  std::printf("\nall purchased views verified against recomputation ✓\n");

  // --- A machine dies mid-stream, then comes back -----------------------
  // m4 hosts SOCNET and is the delivery destination of both S5 buyers.
  // While it is down the market degrades instead of failing: sharings with
  // a surviving alternative migrate, the rest park (their views go stale
  // and stop being billed for maintenance) until the machine returns.
  dsm::RecoveryPlanner recovery(ctx);
  sim.AttachFaultDomain(&cluster, &recovery);
  if (!sim.ScheduleServerFailure(/*tick=*/6, /*server=*/4).ok()) return 1;
  if (!sim.Run(/*ticks=*/2, /*scale=*/0.1).ok()) return 1;

  const auto& down = sim.recovery_stats();
  std::printf("\nmachine m4 died at tick 6:\n");
  std::printf("  sharings migrated to live machines: %d (extra cost "
              "$%.5f/time unit)\n",
              down.migrated, down.migration_cost_delta);
  std::printf("  sharings parked awaiting capacity:  %d (%zu views "
              "degraded)\n",
              down.parked, sim.parked_sharings());
  const auto degraded_ok = sim.VerifyViews();
  if (!degraded_ok.ok() || !*degraded_ok) {
    std::fprintf(stderr, "degraded-mode verification FAILED\n");
    return 1;
  }
  std::printf("  surviving views still verify against recomputation ✓\n");

  if (!sim.ScheduleServerRecovery(/*tick=*/8, /*server=*/4).ok()) return 1;
  if (!sim.Run(/*ticks=*/2, /*scale=*/0.1).ok()) return 1;
  const auto& up = sim.recovery_stats();
  std::printf("machine m4 returned at tick 8:\n");
  std::printf("  parked sharings re-admitted: %d (still parked: %zu)\n",
              up.readmitted, sim.parked_sharings());
  const auto recovered_ok = sim.VerifyViews();
  if (!recovered_ok.ok() || !*recovered_ok) {
    std::fprintf(stderr, "post-recovery verification FAILED\n");
    return 1;
  }
  std::printf("  all views (including re-admitted) verified ✓\n");

  // --- Final bill -------------------------------------------------------
  const auto& last = costing.history().back();
  std::printf("\nfinal bill (per time unit): total $%.5f, fairness alpha "
              "%.3f\n",
              last.global_cost, last.alpha);
  return 0;
}
