// Fair billing walk-through: reconstructs the paper's Example 5.1 numbers
// (Figure 3) and shows FAIRCOST maximizing fairness to alpha = 0.8 with
// attributed costs {3.2, 12.6, 12.6, 5, 16.6}, versus the even-split
// baseline's criterion violations.

#include <cstdio>
#include <numeric>

#include "costing/fair_cost.h"
#include "costing/fairness_metrics.h"

int main() {
  // The Example 5.1 instance: five sharings over the Figure 3 global plan
  // with cost(GP) = 50.
  //   sharing   LPC  GPC  Σ saving(r)/num(r)
  //   S1 (a,b)    4    4  saving(ab)/4          = 1
  //   S2 (abcd)  15   19  1 + saving(abc)/4 = 8
  //   S3 (abcd)  15   19  7            (its plan goes through bc, not ab)
  //   S4 (abce)   5   17  8
  //   S5 (abcf)  23   23  8
  std::vector<dsm::FairCostEntry> entries(5);
  const double lpc[] = {4, 15, 15, 5, 23};
  const double gpc[] = {4, 19, 19, 17, 23};
  const double saving[] = {1, 8, 7, 8, 8};
  for (size_t i = 0; i < 5; ++i) {
    entries[i].id = i + 1;
    entries[i].lpc = lpc[i];
    entries[i].gpc = gpc[i];
    entries[i].saving_term = saving[i];
    entries[i].identity_group = static_cast<uint32_t>(i);
  }
  entries[2].identity_group = 1;  // S2 and S3 are the same query

  const double global_cost = 50.0;
  const auto result = dsm::FairCost::Compute(entries, global_cost);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Example 5.1 (Figure 3): cost(GP) = %.1f\n", global_cost);
  std::printf("maximum fairness alpha = %.3f (paper: 0.8)\n\n",
              result->alpha);
  std::printf("%-8s %8s %8s %12s   %s\n", "sharing", "LPC", "GPC", "AC",
              "paper AC");
  const double paper_ac[] = {3.2, 12.6, 12.6, 5.0, 16.6};
  double total = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    std::printf("S%-7zu %8.1f %8.1f %12.4f   %.1f\n", i + 1, lpc[i], gpc[i],
                result->ac[i], paper_ac[i]);
    total += result->ac[i];
  }
  std::printf("%-8s %8s %8s %12.4f   50.0\n\n", "total", "", "", total);

  const dsm::FairnessReport report =
      dsm::EvaluateFairness(entries, global_cost, result->ac);
  std::printf("fairness metrics: alpha=%.3f LPC=%.2f Identical=%.2f "
              "Contained=%.2f recovery-error=%.2e\n",
              report.alpha, report.lpc_fraction, report.identical_fraction,
              report.contained_fraction, report.recovery_error);

  // What a naive even split would do here (each reused node divided among
  // its users): S2/S3 diverge and cheap sharings get overcharged.
  std::printf("\nwhy the trivial split is unfair (Example 1.1): a buyer\n"
              "whose query merely adds a filter on an existing sharing\n"
              "would be billed for the extra step, although alone her\n"
              "sharing would have been *cheaper* — FAIRCOST instead caps\n"
              "every AC at the sharing's LPC and rewards reuse.\n");
  return 0;
}
