#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dsm {
namespace {

TEST(ClusterTest, AddServers) {
  Cluster cluster;
  EXPECT_EQ(cluster.AddServer("s0"), 0u);
  EXPECT_EQ(cluster.AddServer("s1", 500.0), 1u);
  EXPECT_EQ(cluster.num_servers(), 2u);
  EXPECT_EQ(cluster.server(1).name, "s1");
  EXPECT_DOUBLE_EQ(cluster.server(1).capacity_tuples_per_unit, 500.0);
  EXPECT_TRUE(std::isinf(cluster.server(0).capacity_tuples_per_unit));
}

TEST(ClusterTest, PlaceAndLookup) {
  Cluster cluster;
  cluster.AddServer("s0");
  cluster.AddServer("s1");
  ASSERT_TRUE(cluster.PlaceTable(0, 1).ok());
  const auto home = cluster.HomeOf(0);
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(*home, 1u);
}

TEST(ClusterTest, PlaceRejectsUnknownServer) {
  Cluster cluster;
  cluster.AddServer("s0");
  EXPECT_EQ(cluster.PlaceTable(0, 5).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterTest, UnplacedTableNotFound) {
  Cluster cluster;
  cluster.AddServer("s0");
  EXPECT_EQ(cluster.HomeOf(3).status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, RoundRobinPlacement) {
  Cluster cluster;
  cluster.AddServer("s0");
  cluster.AddServer("s1");
  cluster.AddServer("s2");
  cluster.PlaceRoundRobin(7);
  for (TableId t = 0; t < 7; ++t) {
    const auto home = cluster.HomeOf(t);
    ASSERT_TRUE(home.ok());
    EXPECT_EQ(*home, t % 3);
  }
}

TEST(ClusterTest, MarkDownRevokesCapacity) {
  Cluster cluster;
  cluster.AddServer("s0", 100.0);
  cluster.AddServer("s1", 200.0);
  EXPECT_EQ(cluster.num_live_servers(), 2u);
  EXPECT_TRUE(cluster.is_up(1));
  EXPECT_DOUBLE_EQ(cluster.effective_capacity(1), 200.0);

  ASSERT_TRUE(cluster.MarkDown(1).ok());
  EXPECT_FALSE(cluster.is_up(1));
  EXPECT_DOUBLE_EQ(cluster.effective_capacity(1), 0.0);
  EXPECT_EQ(cluster.num_live_servers(), 1u);
  // The rated capacity is remembered for when the machine returns.
  EXPECT_DOUBLE_EQ(cluster.server(1).capacity_tuples_per_unit, 200.0);

  ASSERT_TRUE(cluster.MarkUp(1).ok());
  EXPECT_TRUE(cluster.is_up(1));
  EXPECT_DOUBLE_EQ(cluster.effective_capacity(1), 200.0);
  EXPECT_EQ(cluster.num_live_servers(), 2u);
}

TEST(ClusterTest, MarkDownAndUpAreIdempotent) {
  Cluster cluster;
  cluster.AddServer("s0");
  ASSERT_TRUE(cluster.MarkDown(0).ok());
  ASSERT_TRUE(cluster.MarkDown(0).ok());
  EXPECT_EQ(cluster.num_live_servers(), 0u);
  ASSERT_TRUE(cluster.MarkUp(0).ok());
  ASSERT_TRUE(cluster.MarkUp(0).ok());
  EXPECT_EQ(cluster.num_live_servers(), 1u);
}

TEST(ClusterTest, LivenessRejectsUnknownServer) {
  Cluster cluster;
  cluster.AddServer("s0");
  EXPECT_EQ(cluster.MarkDown(7).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster.MarkUp(7).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(cluster.is_up(7));
  EXPECT_DOUBLE_EQ(cluster.effective_capacity(7), 0.0);
}

TEST(ClusterTest, LiveServersListsOnlySurvivors) {
  Cluster cluster;
  cluster.AddServer("s0");
  cluster.AddServer("s1");
  cluster.AddServer("s2");
  ASSERT_TRUE(cluster.MarkDown(1).ok());
  EXPECT_EQ(cluster.live_servers(), (std::vector<ServerId>{0, 2}));
  ASSERT_TRUE(cluster.MarkUp(1).ok());
  EXPECT_EQ(cluster.live_servers(), (std::vector<ServerId>{0, 1, 2}));
}

TEST(ClusterTest, RatesDefaultAndOverride) {
  Cluster cluster;
  EXPECT_GT(cluster.rates().cpu_per_tuple, 0.0);
  CostRates rates;
  rates.cpu_per_tuple = 0.5;
  cluster.set_rates(rates);
  EXPECT_DOUBLE_EQ(cluster.rates().cpu_per_tuple, 0.5);
}

}  // namespace
}  // namespace dsm
