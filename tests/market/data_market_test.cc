#include "market/data_market.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TableDef MakeTable(const std::string& name,
                   std::initializer_list<const char*> cols,
                   double cardinality = 1000) {
  TableDef def;
  def.name = name;
  for (const char* c : cols) {
    ColumnDef col;
    col.name = c;
    col.distinct_values = cardinality;
    col.min_value = 0;
    col.max_value = cardinality;
    def.columns.push_back(col);
  }
  def.stats.cardinality = cardinality;
  def.stats.update_rate = 10;
  return def;
}

class DataMarketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s0_ = market_.AddServer("s0");
    s1_ = market_.AddServer("s1");
    ASSERT_TRUE(
        market_.RegisterTable(MakeTable("CHK", {"uid", "rid"}), s0_, 5.0)
            .ok());
    ASSERT_TRUE(
        market_.RegisterTable(MakeTable("RES", {"rid", "city"}), s1_, 3.0)
            .ok());
    ASSERT_TRUE(
        market_.RegisterTable(MakeTable("REV", {"rid", "stars"}), s0_, 2.0)
            .ok());
  }

  DataMarket market_;
  ServerId s0_ = 0, s1_ = 0;
};

TEST_F(DataMarketTest, SubmitAndCost) {
  const auto receipt =
      market_.SubmitSharing({"CHK", "RES", "REV"}, {}, s0_, "buyer1");
  ASSERT_TRUE(receipt.ok());
  EXPECT_GT(receipt->marginal_cost, 0.0);
  EXPECT_EQ(market_.num_sharings(), 1u);

  const auto report = market_.ComputeCosts();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->sharings.size(), 1u);
  const auto& cost = report->sharings[0];
  EXPECT_NEAR(cost.attributed_cost, report->total_cost, 1e-9);
  EXPECT_LE(cost.attributed_cost, cost.lpc + 1e-9);
  EXPECT_NEAR(cost.data_value, 10.0, 1e-9);  // 5 + 3 + 2
  EXPECT_NEAR(cost.price, 10.0 + 1.2 * cost.attributed_cost, 1e-9);
}

TEST_F(DataMarketTest, SeattleFilterScenario) {
  // Example 1.1: buyer 2's filtered sharing reuses buyer 1's join and
  // must not be attributed more than buyer 1.
  const auto b1 =
      market_.SubmitSharing({"CHK", "RES", "REV"}, {}, s0_, "buyer1");
  ASSERT_TRUE(b1.ok());

  Predicate city;
  city.table = *market_.catalog().FindTable("RES");
  city.column = 1;
  city.op = CompareOp::kEq;
  city.value = 42;  // "city = Seattle"
  const auto b2 = market_.SubmitSharing({"CHK", "RES", "REV"}, {city}, s1_,
                                        "buyer2");
  ASSERT_TRUE(b2.ok());
  // The filtered sharing mostly reuses buyer 1's views.
  EXPECT_LT(b2->marginal_cost, b1->marginal_cost);

  const auto report = market_.ComputeCosts();
  ASSERT_TRUE(report.ok());
  double ac1 = 0, ac2 = 0;
  for (const auto& c : report->sharings) {
    if (c.buyer == "buyer1") ac1 = c.attributed_cost;
    if (c.buyer == "buyer2") ac2 = c.attributed_cost;
  }
  EXPECT_LE(ac2, ac1 + 1e-9);
  EXPECT_NEAR(ac1 + ac2, report->total_cost, 1e-6);
}

TEST_F(DataMarketTest, IdenticalSharingsGetEqualCosts) {
  ASSERT_TRUE(
      market_.SubmitSharing({"CHK", "RES"}, {}, s0_, "buyer1").ok());
  ASSERT_TRUE(
      market_.SubmitSharing({"CHK", "RES"}, {}, s0_, "buyer2").ok());
  const auto report = market_.ComputeCosts();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->sharings.size(), 2u);
  EXPECT_NEAR(report->sharings[0].attributed_cost,
              report->sharings[1].attributed_cost, 1e-9);
}

TEST_F(DataMarketTest, CancelSharingFreesCost) {
  const auto receipt =
      market_.SubmitSharing({"CHK", "RES"}, {}, s0_, "buyer1");
  ASSERT_TRUE(receipt.ok());
  EXPECT_GT(market_.TotalOperationalCost(), 0.0);
  ASSERT_TRUE(market_.CancelSharing(receipt->id).ok());
  EXPECT_NEAR(market_.TotalOperationalCost(), 0.0, 1e-12);
  EXPECT_EQ(market_.CancelSharing(receipt->id).code(),
            StatusCode::kNotFound);
}

TEST_F(DataMarketTest, UnknownTableRejected) {
  EXPECT_EQ(
      market_.SubmitSharing({"CHK", "NOPE"}, {}, s0_, "b").status().code(),
      StatusCode::kNotFound);
}

TEST_F(DataMarketTest, UnknownDestinationRejected) {
  EXPECT_EQ(
      market_.SubmitSharing({"CHK"}, {}, 9, "b").status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(DataMarketTest, PredicateOutsideSharingRejected) {
  Predicate p;
  p.table = *market_.catalog().FindTable("REV");
  EXPECT_EQ(market_.SubmitSharing({"CHK", "RES"}, {p}, s0_, "b")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataMarketTest, TableRegistrationFrozenAfterFirstSharing) {
  ASSERT_TRUE(market_.SubmitSharing({"CHK", "RES"}, {}, s0_, "b").ok());
  EXPECT_EQ(
      market_.RegisterTable(MakeTable("LATE", {"x"}), s0_).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(DataMarketTest, CostsBeforeAnySharingRejected) {
  EXPECT_EQ(market_.ComputeCosts().status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DataMarketTest, ReplanExistingSharingsNeverRegresses) {
  ASSERT_TRUE(
      market_.SubmitSharing({"CHK", "RES", "REV"}, {}, s0_, "b1").ok());
  ASSERT_TRUE(market_.SubmitSharing({"CHK", "RES"}, {}, s1_, "b2").ok());
  const double before = market_.TotalOperationalCost();
  const auto report = market_.ReplanExistingSharings();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->cost_after, before + 1e-12);
  EXPECT_NEAR(market_.TotalOperationalCost(), report->cost_after, 1e-12);
}

TEST_F(DataMarketTest, ReplanWithoutSharingsRejected) {
  EXPECT_EQ(market_.ReplanExistingSharings().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DataMarketOwnerTest, OwnerRevenueAggregated) {
  DataMarket market;
  const ServerId s0 = market.AddServer("s0");
  ASSERT_TRUE(market
                  .RegisterTable(MakeTable("A", {"k"}), s0,
                                 /*data_value=*/5.0, "alice")
                  .ok());
  ASSERT_TRUE(market
                  .RegisterTable(MakeTable("B", {"k"}), s0,
                                 /*data_value=*/3.0, "bob")
                  .ok());
  ASSERT_TRUE(market
                  .RegisterTable(MakeTable("C", {"k"}), s0,
                                 /*data_value=*/2.0, "alice")
                  .ok());
  // Two sharings: {A,B} and {A,B,C}. alice earns 5+5+2 = 12; bob 3+3 = 6.
  ASSERT_TRUE(market.SubmitSharing({"A", "B"}, {}, s0, "x").ok());
  ASSERT_TRUE(market.SubmitSharing({"A", "B", "C"}, {}, s0, "y").ok());
  const auto report = market.ComputeCosts();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->owner_revenue.size(), 2u);
  double alice = 0, bob = 0;
  for (const auto& r : report->owner_revenue) {
    if (r.owner == "alice") alice = r.revenue;
    if (r.owner == "bob") bob = r.revenue;
  }
  EXPECT_NEAR(alice, 12.0, 1e-9);
  EXPECT_NEAR(bob, 6.0, 1e-9);
}

TEST(DataMarketConfigTest, GreedyPlannerSelectable) {
  DataMarketOptions options;
  options.planner = DataMarketOptions::Planner::kGreedy;
  DataMarket market(options);
  const ServerId s0 = market.AddServer("s0");
  ASSERT_TRUE(market.RegisterTable(MakeTable("A", {"k"}), s0).ok());
  ASSERT_TRUE(market.RegisterTable(MakeTable("B", {"k"}), s0).ok());
  EXPECT_TRUE(market.SubmitSharing({"A", "B"}, {}, s0, "b").ok());
}

TEST(DataMarketConfigTest, NoServersRejected) {
  DataMarket market;
  EXPECT_FALSE(market.SubmitSharing({"A"}, {}, 0, "b").ok());
}

}  // namespace
}  // namespace dsm
