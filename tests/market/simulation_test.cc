#include "market/simulation.h"

#include <gtest/gtest.h>

#include "workload/twitter.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

class SimulationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto tables = BuildTwitterCatalog(&catalog_);
    ASSERT_TRUE(tables.ok());
    tables_ = *tables;
  }

  Catalog catalog_;
  TwitterTables tables_;
};

TEST_F(SimulationTest, RandomTupleMatchesSchema) {
  Rng rng(5);
  const Tuple t = RandomTupleForTable(catalog_, tables_.users, &rng);
  EXPECT_EQ(t.size(), catalog_.table(tables_.users).columns.size());
}

TEST_F(SimulationTest, ViewsStayFreshUnderStreaming) {
  MarketSimulation sim(&catalog_, 77);
  ASSERT_TRUE(
      sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  ASSERT_TRUE(
      sim.AddBuyerView(2, ViewKey(TS({tables_.tweets, tables_.curloc})))
          .ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/5, /*scale=*/0.05).ok());
  EXPECT_GT(sim.updates_applied(), 0u);
  EXPECT_EQ(sim.ticks_elapsed(), 5);
  const auto verified = sim.VerifyViews();
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);
}

TEST_F(SimulationTest, DeletesHandled) {
  MarketSimulation sim(&catalog_, 78);
  ASSERT_TRUE(
      sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/8, /*scale=*/0.03,
                      /*delete_fraction=*/0.5)
                  .ok());
  const auto verified = sim.VerifyViews();
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);
  // Bases never go negative.
  for (const TableId t : {tables_.users, tables_.tweets}) {
    sim.engine().base(t)->ForEachRow(
        [](const Tuple&, int64_t count) { EXPECT_GT(count, 0); });
  }
}

TEST_F(SimulationTest, DuplicateBuyerViewRejected) {
  MarketSimulation sim(&catalog_, 79);
  const ViewKey key(TS({tables_.users, tables_.tweets}));
  ASSERT_TRUE(sim.AddBuyerView(1, key).ok());
  EXPECT_EQ(sim.AddBuyerView(1, key).code(), StatusCode::kAlreadyExists);
}

TEST_F(SimulationTest, ViewSizeReporting) {
  MarketSimulation sim(&catalog_, 80);
  ASSERT_TRUE(
      sim.AddBuyerView(7, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  EXPECT_EQ(sim.ViewSize(7), 0);
  EXPECT_EQ(sim.ViewSize(99), -1);
}

TEST_F(SimulationTest, ZeroScaleAppliesNothing) {
  MarketSimulation sim(&catalog_, 81);
  ASSERT_TRUE(
      sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  ASSERT_TRUE(sim.Run(3, 0.0).ok());
  EXPECT_EQ(sim.updates_applied(), 0u);
}

}  // namespace
}  // namespace dsm
