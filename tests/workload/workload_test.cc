#include <gtest/gtest.h>

#include <set>

#include "plan/join_graph.h"
#include "workload/adversarial.h"
#include "workload/predicate_gen.h"
#include "workload/synthetic.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

TEST(TwitterWorkloadTest, NineRelationsRegistered) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(catalog.num_tables(), 9u);
  EXPECT_TRUE(catalog.FindTable("USERS").ok());
  EXPECT_TRUE(catalog.FindTable("PHOTOS").ok());
}

TEST(TwitterWorkloadTest, TwentyFiveBaseSharings) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  for (int i = 0; i < 6; ++i) cluster.AddServer("s" + std::to_string(i));
  const auto sharings = TwitterBaseSharings(*tables, cluster);
  EXPECT_EQ(sharings.size(), 25u);
  // Spot-check Table 1: S1 = USERS ⋈ SOCNET, S20 is the 5-way join.
  EXPECT_EQ(sharings[0].tables().size(), 2);
  EXPECT_TRUE(sharings[0].tables().Contains(tables->users));
  EXPECT_TRUE(sharings[0].tables().Contains(tables->socnet));
  EXPECT_EQ(sharings[19].tables().size(), 5);
}

TEST(TwitterWorkloadTest, AllBaseSharingsAreConnectedJoins) {
  // Every Table 1 sharing must be plannable: its tables connected in the
  // natural-join graph derived from the schema.
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  cluster.AddServer("s0");
  const JoinGraph graph = JoinGraph::FromCatalog(catalog);
  for (const Sharing& s : TwitterBaseSharings(*tables, cluster)) {
    EXPECT_TRUE(graph.Connected(s.tables()))
        << "disconnected sharing " << s.buyer();
  }
}

TEST(TwitterWorkloadTest, SequenceRespectsOptions) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  for (int i = 0; i < 6; ++i) cluster.AddServer("s" + std::to_string(i));

  TwitterSequenceOptions options;
  options.num_sharings = 40;
  options.max_predicates = 2;
  options.seed = 5;
  const auto seq = GenerateTwitterSequence(catalog, *tables, cluster,
                                           options);
  ASSERT_EQ(seq.size(), 40u);
  size_t with_preds = 0;
  for (const Sharing& s : seq) {
    EXPECT_LE(static_cast<int>(s.predicates().size()), 2);
    for (const Predicate& p : s.predicates()) {
      EXPECT_TRUE(s.tables().Contains(p.table));
    }
    if (!s.predicates().empty()) ++with_preds;
    EXPECT_LT(s.destination(), cluster.num_servers());
  }
  // Roughly half carry predicates.
  EXPECT_GT(with_preds, 8u);
  EXPECT_LT(with_preds, 32u);
}

TEST(TwitterWorkloadTest, SequenceDeterministicPerSeed) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  cluster.AddServer("s0");
  TwitterSequenceOptions options;
  options.num_sharings = 10;
  options.max_predicates = 3;
  const auto a = GenerateTwitterSequence(catalog, *tables, cluster, options);
  const auto b = GenerateTwitterSequence(catalog, *tables, cluster, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].IdenticalTo(b[i]));
  }
}

TEST(TwitterWorkloadTest, RandomTupleMatchesSchema) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Rng rng(3);
  const Tuple t = RandomTwitterTuple(catalog, tables->tweets, &rng);
  EXPECT_EQ(t.size(), catalog.table(tables->tweets).columns.size());
}

TEST(PredicateGenTest, GeneratesValidPredicates) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Rng rng(11);
  TableSet ts;
  ts.Add(tables->users);
  ts.Add(tables->tweets);
  for (int i = 0; i < 50; ++i) {
    const Predicate p = RandomPredicate(catalog, ts, &rng);
    EXPECT_TRUE(ts.Contains(p.table));
    EXPECT_LT(p.column, catalog.table(p.table).columns.size());
  }
}

TEST(SyntheticWorkloadTest, StarSchemaShape) {
  Catalog catalog;
  StarSchemaOptions options;
  options.num_fact = 2;
  options.num_dim = 10;
  const auto schema = BuildStarCatalog(&catalog, options);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->facts.size(), 2u);
  EXPECT_EQ(schema->dims.size(), 10u);

  const JoinGraph graph = JoinGraph::FromCatalog(catalog);
  // Facts join every dim; dims don't join dims. (Facts technically share
  // their dimension-key columns with each other, but sharings always use
  // exactly one fact, so that edge is never exercised.)
  for (const TableId f : schema->facts) {
    for (const TableId d : schema->dims) {
      EXPECT_TRUE(graph.HasEdge(f, d));
    }
  }
  EXPECT_FALSE(graph.HasEdge(schema->dims[0], schema->dims[1]));
}

TEST(SyntheticWorkloadTest, TooManyTablesRejected) {
  Catalog catalog;
  StarSchemaOptions options;
  options.num_fact = 5;
  options.num_dim = 60;
  EXPECT_EQ(BuildStarCatalog(&catalog, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SyntheticWorkloadTest, SharingsAreStarJoins) {
  Catalog catalog;
  StarSchemaOptions schema_options;
  const auto schema = BuildStarCatalog(&catalog, schema_options);
  ASSERT_TRUE(schema.ok());
  Cluster cluster;
  cluster.AddServer("s0");
  StarSequenceOptions options;
  options.num_sharings = 100;
  options.max_tables = 5;
  const auto seq = GenerateStarSharings(*schema, cluster, options);
  ASSERT_EQ(seq.size(), 100u);
  std::set<TableId> facts(schema->facts.begin(), schema->facts.end());
  for (const Sharing& s : seq) {
    EXPECT_GE(s.tables().size(), 2);
    EXPECT_LE(s.tables().size(), 5);
    int fact_count = 0;
    for (const TableId t : s.tables().ToVector()) {
      if (facts.count(t) != 0) ++fact_count;
    }
    EXPECT_EQ(fact_count, 1);
  }
}

TEST(SyntheticWorkloadTest, ExactSizeSharings) {
  Catalog catalog;
  const auto schema = BuildStarCatalog(&catalog, {});
  ASSERT_TRUE(schema.ok());
  Cluster cluster;
  cluster.AddServer("s0");
  StarSequenceOptions options;
  options.num_sharings = 20;
  options.max_tables = 6;
  options.exact_size = true;
  for (const Sharing& s : GenerateStarSharings(*schema, cluster, options)) {
    EXPECT_EQ(s.tables().size(), 6);
  }
}

TEST(SyntheticWorkloadTest, ZipfSkewCreatesRepeats) {
  Catalog catalog;
  const auto schema = BuildStarCatalog(&catalog, {});
  ASSERT_TRUE(schema.ok());
  Cluster cluster;
  cluster.AddServer("s0");
  StarSequenceOptions options;
  options.num_sharings = 300;
  options.max_tables = 3;
  options.dim_zipf = 1.5;
  const auto seq = GenerateStarSharings(*schema, cluster, options);
  std::set<uint64_t> distinct;
  for (const Sharing& s : seq) distinct.insert(s.QueryHash());
  EXPECT_LT(distinct.size(), seq.size());  // repeats exist
}

TEST(AdversarialWorkloadTest, GreedyTrapShape) {
  const Scenario sc = MakeGreedyTrap(5);
  EXPECT_EQ(sc.catalog->num_tables(), 7u);  // a, b, c1..c5
  EXPECT_EQ(sc.sharings.size(), 5u);
  for (const Sharing& s : sc.sharings) {
    EXPECT_EQ(s.tables().size(), 3);
    EXPECT_TRUE(sc.graph->Connected(s.tables()));
  }
}

TEST(AdversarialWorkloadTest, RandomThreeWayConnected) {
  const Scenario sc = MakeRandomThreeWay(123, 20, 10);
  EXPECT_EQ(sc.sharings.size(), 20u);
  for (const Sharing& s : sc.sharings) {
    EXPECT_EQ(s.tables().size(), 3);
    EXPECT_TRUE(sc.graph->Connected(s.tables()));
  }
}

}  // namespace
}  // namespace dsm
