// Itemized cost breakdowns (cpu / network / storage).

#include <gtest/gtest.h>

#include "cost/default_cost_model.h"
#include "cost/table_cost_model.h"
#include "plan/enumerator.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

class BreakdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef r;
    r.name = "R";
    ColumnDef uid;
    uid.name = "uid";
    uid.distinct_values = 1000;
    uid.max_value = 1000;
    r.columns = {uid};
    r.stats.cardinality = 1000;
    r.stats.update_rate = 10;
    r.stats.tuple_bytes = 100;
    r_ = *catalog_.AddTable(r);
    TableDef s = r;
    s.name = "S";
    s_ = *catalog_.AddTable(s);
    cluster_.AddServer("s0");
    cluster_.AddServer("s1");
    ASSERT_TRUE(cluster_.PlaceTable(r_, 0).ok());
    ASSERT_TRUE(cluster_.PlaceTable(s_, 1).ok());
  }

  Catalog catalog_;
  Cluster cluster_;
  TableId r_ = 0, s_ = 0;
};

TEST_F(BreakdownTest, DetailSumsToScalarCost) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey out(TS({r_, s_}));
  const ViewKey l(TS({r_}));
  const ViewKey r(TS({s_}));
  const CostBreakdown detail = model.JoinCostDetail(out, 0, l, 0, r, 1);
  EXPECT_NEAR(detail.total(), model.JoinCost(out, 0, l, 0, r, 1), 1e-12);
  EXPECT_GT(detail.cpu, 0.0);
  EXPECT_GT(detail.network, 0.0);  // s is remote
  EXPECT_GT(detail.storage, 0.0);
}

TEST_F(BreakdownTest, LocalJoinHasNoNetworkTerm) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey out(TS({r_, s_}));
  const CostBreakdown detail =
      model.JoinCostDetail(out, 0, ViewKey(TS({r_})), 0, ViewKey(TS({s_})),
                           0);
  EXPECT_DOUBLE_EQ(detail.network, 0.0);
}

TEST_F(BreakdownTest, FilterCopyDetailMatches) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey key(TS({r_, s_}));
  const CostBreakdown detail = model.FilterCopyCostDetail(key, 0, key, 1);
  EXPECT_NEAR(detail.total(), model.FilterCopyCost(key, 0, key, 1), 1e-12);
  EXPECT_GT(detail.network, 0.0);
}

TEST_F(BreakdownTest, PlanBreakdownSumsNodes) {
  DefaultCostModel model(&catalog_, &cluster_);
  const JoinGraph graph = JoinGraph::FromCatalog(catalog_);
  PlanEnumerator enumerator(&catalog_, &cluster_, &graph, &model, {});
  const auto plans = enumerator.Enumerate(Sharing(TS({r_, s_}), {}, 0));
  ASSERT_TRUE(plans.ok());
  for (const SharingPlan& plan : *plans) {
    const CostBreakdown detail = PlanCostBreakdown(plan, &model);
    EXPECT_NEAR(detail.total(), PlanCost(plan, &model), 1e-9);
  }
}

TEST(BreakdownDefaultTest, BaseImplementationAttributesToCpu) {
  // Models that don't override the detail hooks report everything as cpu.
  TableDrivenCostModel model;
  model.SetJoinCost(TS({0}), TS({1}), 42.0);
  const CostBreakdown detail = model.JoinCostDetail(
      ViewKey(TS({0, 1})), 0, ViewKey(TS({0})), 0, ViewKey(TS({1})), 0);
  EXPECT_DOUBLE_EQ(detail.cpu, 42.0);
  EXPECT_DOUBLE_EQ(detail.network, 0.0);
  EXPECT_DOUBLE_EQ(detail.storage, 0.0);
}

TEST(BreakdownAlgebraTest, PlusEquals) {
  CostBreakdown a{1, 2, 3};
  const CostBreakdown b{10, 20, 30};
  a += b;
  EXPECT_DOUBLE_EQ(a.cpu, 11);
  EXPECT_DOUBLE_EQ(a.network, 22);
  EXPECT_DOUBLE_EQ(a.storage, 33);
  EXPECT_DOUBLE_EQ(a.total(), 66);
}

}  // namespace
}  // namespace dsm
