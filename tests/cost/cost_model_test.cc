#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "cost/default_cost_model.h"
#include "cost/table_cost_model.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

Predicate P(TableId t, CompareOp op, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = op;
  p.value = v;
  return p;
}

class DefaultCostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef r;
    r.name = "R";
    ColumnDef uid;
    uid.name = "uid";
    uid.distinct_values = 1000;
    uid.min_value = 0;
    uid.max_value = 1000;
    r.columns = {uid};
    r.stats.cardinality = 1000;
    r.stats.update_rate = 10;
    r.stats.tuple_bytes = 100;
    r_ = *catalog_.AddTable(r);

    TableDef s = r;
    s.name = "S";
    s.stats.cardinality = 5000;
    s.stats.update_rate = 50;
    s_ = *catalog_.AddTable(s);

    cluster_.AddServer("s0");
    cluster_.AddServer("s1");
    ASSERT_TRUE(cluster_.PlaceTable(r_, 0).ok());
    ASSERT_TRUE(cluster_.PlaceTable(s_, 1).ok());
  }

  Catalog catalog_;
  Cluster cluster_;
  TableId r_ = 0, s_ = 0;
};

TEST_F(DefaultCostModelTest, JoinCostPositive) {
  DefaultCostModel model(&catalog_, &cluster_);
  const double cost =
      model.JoinCost(ViewKey(TS({r_, s_})), 0, ViewKey(TableSet::Of(r_)), 0,
                     ViewKey(TableSet::Of(s_)), 1);
  EXPECT_GT(cost, 0.0);
}

TEST_F(DefaultCostModelTest, CrossServerJoinCostsMore) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey out(TS({r_, s_}));
  const ViewKey l(TableSet::Of(r_));
  const ViewKey r(TableSet::Of(s_));
  const double local = model.JoinCost(out, 0, l, 0, r, 0);
  const double remote = model.JoinCost(out, 0, l, 0, r, 1);
  EXPECT_GT(remote, local);
}

TEST_F(DefaultCostModelTest, FilterCopyIsFreeWhenNoop) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey key(TS({r_, s_}));
  EXPECT_DOUBLE_EQ(model.FilterCopyCost(key, 0, key, 0), 0.0);
}

TEST_F(DefaultCostModelTest, FilterCopyChargesTransfer) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey key(TS({r_, s_}));
  const double same = model.FilterCopyCost(
      key, 0, ViewKey(TS({r_, s_}), {P(r_, CompareOp::kLt, 500)}), 0);
  const double cross = model.FilterCopyCost(
      key, 0, ViewKey(TS({r_, s_}), {P(r_, CompareOp::kLt, 500)}), 1);
  EXPECT_GT(same, 0.0);
  EXPECT_GT(cross, same);
}

TEST_F(DefaultCostModelTest, UnpredicatedLeafIsFree) {
  DefaultCostModel model(&catalog_, &cluster_);
  EXPECT_DOUBLE_EQ(model.LeafCost(r_, ViewKey(TableSet::Of(r_)), 0), 0.0);
}

TEST_F(DefaultCostModelTest, PredicatedLeafCosts) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey filtered(TableSet::Of(r_), {P(r_, CompareOp::kLt, 500)});
  EXPECT_GT(model.LeafCost(r_, filtered, 0), 0.0);
}

TEST_F(DefaultCostModelTest, PercReflectsSelectivity) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey full(TS({r_, s_}));
  EXPECT_DOUBLE_EQ(model.Perc(full), 1.0);
  // uid < 500 on [0,1000]: selectivity 0.5.
  const ViewKey half(TS({r_, s_}), {P(r_, CompareOp::kLt, 500)});
  EXPECT_NEAR(model.Perc(half), 0.5, 1e-6);
}

TEST_F(DefaultCostModelTest, SelectivePredicateCheapensJoin) {
  DefaultCostModel model(&catalog_, &cluster_);
  const ViewKey out_full(TS({r_, s_}));
  const ViewKey l_full(TableSet::Of(r_));
  const ViewKey l_filt(TableSet::Of(r_), {P(r_, CompareOp::kLt, 10)});
  const ViewKey out_filt(TS({r_, s_}), {P(r_, CompareOp::kLt, 10)});
  const ViewKey rk(TableSet::Of(s_));
  const double full = model.JoinCost(out_full, 0, l_full, 0, rk, 0);
  const double filt = model.JoinCost(out_filt, 0, l_filt, 0, rk, 0);
  EXPECT_LT(filt, full);
}

TEST(TableCostModelTest, ExplicitCostsAreSymmetric) {
  TableDrivenCostModel model;
  model.SetJoinCost(TS({0}), TS({1}), 42.0);
  const ViewKey out(TS({0, 1}));
  EXPECT_DOUBLE_EQ(model.JoinCost(out, 0, ViewKey(TS({0})), 0,
                                  ViewKey(TS({1})), 0),
                   42.0);
  EXPECT_DOUBLE_EQ(model.JoinCost(out, 0, ViewKey(TS({1})), 0,
                                  ViewKey(TS({0})), 0),
                   42.0);
}

TEST(TableCostModelTest, RandomCostsMemoizedAndInRange) {
  TableDrivenCostModel::Options options;
  options.random_min = 10.0;
  options.random_max = 20.0;
  TableDrivenCostModel model(options);
  const ViewKey out(TS({2, 3}));
  const double c1 =
      model.JoinCost(out, 0, ViewKey(TS({2})), 0, ViewKey(TS({3})), 0);
  const double c2 =
      model.JoinCost(out, 0, ViewKey(TS({2})), 0, ViewKey(TS({3})), 0);
  EXPECT_DOUBLE_EQ(c1, c2);
  EXPECT_GE(c1, 10.0);
  EXPECT_LE(c1, 20.0);
}

TEST(TableCostModelTest, TransferCostApplied) {
  TableDrivenCostModel::Options options;
  options.transfer_cost = 7.0;
  TableDrivenCostModel model(options);
  model.SetJoinCost(TS({0}), TS({1}), 10.0);
  const ViewKey out(TS({0, 1}));
  EXPECT_DOUBLE_EQ(model.JoinCost(out, 0, ViewKey(TS({0})), 0,
                                  ViewKey(TS({1})), 1),
                   17.0);
  EXPECT_DOUBLE_EQ(
      model.FilterCopyCost(out, 0, out, 1), 7.0);
  EXPECT_DOUBLE_EQ(model.FilterCopyCost(out, 0, out, 0), 0.0);
}

TEST(TableCostModelTest, PercUsesPredicateSelectivity) {
  TableDrivenCostModel::Options options;
  options.predicate_selectivity = 0.5;
  TableDrivenCostModel model(options);
  EXPECT_DOUBLE_EQ(model.Perc(ViewKey(TS({0, 1}))), 1.0);
  const ViewKey one(TS({0, 1}), {P(0, CompareOp::kLt, 5)});
  EXPECT_DOUBLE_EQ(model.Perc(one), 0.5);
}

TEST(PlanCostTest, SumsNodeCosts) {
  TableDrivenCostModel model;
  model.SetJoinCost(TS({0}), TS({1}), 4.0);
  model.SetJoinCost(TS({0, 1}), TS({2}), 10.0);

  SharingPlan plan;
  PlanNode leaf_a;
  leaf_a.type = PlanNodeType::kLeaf;
  leaf_a.base_table = 0;
  leaf_a.key = ViewKey(TS({0}));
  PlanNode leaf_b = leaf_a;
  leaf_b.base_table = 1;
  leaf_b.key = ViewKey(TS({1}));
  PlanNode leaf_c = leaf_a;
  leaf_c.base_table = 2;
  leaf_c.key = ViewKey(TS({2}));
  PlanNode join_ab;
  join_ab.type = PlanNodeType::kJoin;
  join_ab.key = ViewKey(TS({0, 1}));
  join_ab.left = 0;
  join_ab.right = 1;
  PlanNode join_abc;
  join_abc.type = PlanNodeType::kJoin;
  join_abc.key = ViewKey(TS({0, 1, 2}));
  join_abc.left = 3;
  join_abc.right = 2;
  plan.nodes = {leaf_a, leaf_b, leaf_c, join_ab, join_abc};

  EXPECT_DOUBLE_EQ(PlanCost(plan, &model), 14.0);
  EXPECT_DOUBLE_EQ(PlanNodeCost(plan, 3, &model), 4.0);
  EXPECT_DOUBLE_EQ(PlanNodeCost(plan, 4, &model), 10.0);
  EXPECT_DOUBLE_EQ(PlanNodeCost(plan, 0, &model), 0.0);
  // Loads: join nodes process both children's delta streams (rate 1 each).
  EXPECT_DOUBLE_EQ(PlanNodeLoad(plan, 3, &model), 2.0);
  EXPECT_DOUBLE_EQ(PlanNodeLoad(plan, 0, &model), 0.0);
}

}  // namespace
}  // namespace dsm
