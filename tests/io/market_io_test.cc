// Round-trip persistence of market state: catalog, cluster, sharings and
// their exact plans, with the restored global plan matching the saved one
// node for node and dollar for dollar.

#include "io/market_io.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/default_cost_model.h"
#include "online/managed_risk.h"
#include "testing/rig.h"
#include "workload/adversarial.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TEST(MarketIoTest, CatalogAndClusterRoundTrip) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  cluster.AddServer("alpha", 123.5);
  cluster.AddServer("beta");
  cluster.PlaceRoundRobin(catalog.num_tables());

  const auto text = MarketStateToString(catalog, cluster, nullptr);
  ASSERT_TRUE(text.ok());
  const auto state = MarketStateFromString(*text);
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  ASSERT_EQ(state->catalog.num_tables(), catalog.num_tables());
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    const TableDef& a = catalog.table(t);
    const TableDef& b = state->catalog.table(t);
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.stats.cardinality, b.stats.cardinality);
    EXPECT_DOUBLE_EQ(a.stats.update_rate, b.stats.update_rate);
    ASSERT_EQ(a.columns.size(), b.columns.size());
    for (size_t c = 0; c < a.columns.size(); ++c) {
      EXPECT_EQ(a.columns[c].name, b.columns[c].name);
      EXPECT_DOUBLE_EQ(a.columns[c].distinct_values,
                       b.columns[c].distinct_values);
    }
    EXPECT_EQ(*state->cluster.HomeOf(t), *cluster.HomeOf(t));
  }
  ASSERT_EQ(state->cluster.num_servers(), 2u);
  EXPECT_EQ(state->cluster.server(0).name, "alpha");
  EXPECT_DOUBLE_EQ(state->cluster.server(0).capacity_tuples_per_unit,
                   123.5);
}

TEST(MarketIoTest, NamesWithSpacesEscape) {
  Catalog catalog;
  TableDef def;
  def.name = "my table";
  ColumnDef col;
  col.name = "a col";
  def.columns = {col};
  ASSERT_TRUE(catalog.AddTable(def).ok());
  Cluster cluster;
  cluster.AddServer("rack 1 / server 2");
  cluster.PlaceRoundRobin(1);

  const auto text = MarketStateToString(catalog, cluster, nullptr);
  ASSERT_TRUE(text.ok());
  const auto state = MarketStateFromString(*text);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->catalog.table(0).name, "my table");
  EXPECT_EQ(state->catalog.table(0).columns[0].name, "a col");
  EXPECT_EQ(state->cluster.server(0).name, "rack 1 / server 2");
}

TEST(MarketIoTest, GlobalPlanRoundTripPreservesCost) {
  const Scenario sc = MakeGreedyTrap(6, 20.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner planner(rig.ctx);
  for (const Sharing& sharing : sc.sharings) {
    ASSERT_TRUE(planner.ProcessSharing(sharing).ok());
  }
  const double original_cost = rig.global_plan->TotalCost();
  const size_t original_views = rig.global_plan->num_alive_views();

  const auto text =
      MarketStateToString(*sc.catalog, *sc.cluster, rig.global_plan.get());
  ASSERT_TRUE(text.ok());
  const auto state = MarketStateFromString(*text);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  ASSERT_EQ(state->sharings.size(), sc.sharings.size());

  // Replay into a fresh global plan over the same cost model.
  GlobalPlan restored(sc.cluster.get(), sc.model.get());
  ASSERT_TRUE(RestoreGlobalPlan(*state, &restored).ok());
  EXPECT_NEAR(restored.TotalCost(), original_cost, 1e-9);
  EXPECT_EQ(restored.num_alive_views(), original_views);
  for (const SharingId id : rig.global_plan->sharing_ids()) {
    EXPECT_NEAR(restored.GPC(id), rig.global_plan->GPC(id), 1e-9);
  }
}

TEST(MarketIoTest, PredicatedSharingsRoundTrip) {
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddServer("m" + std::to_string(i));
  cluster.PlaceRoundRobin(catalog.num_tables());
  const JoinGraph graph = JoinGraph::FromCatalog(catalog);
  DefaultCostModel model(&catalog, &cluster);
  PlanEnumerator enumerator(&catalog, &cluster, &graph, &model, {});
  GlobalPlan gp(&cluster, &model);
  PlannerContext ctx{&catalog, &cluster, &graph, &model, &gp, &enumerator};
  ManagedRiskPlanner planner(ctx);

  TwitterSequenceOptions options;
  options.num_sharings = 8;
  options.max_predicates = 2;
  options.seed = 99;
  for (const Sharing& sharing :
       GenerateTwitterSequence(catalog, *tables, cluster, options)) {
    ASSERT_TRUE(planner.ProcessSharing(sharing).ok());
  }

  const auto text = MarketStateToString(catalog, cluster, &gp);
  ASSERT_TRUE(text.ok());
  const auto state = MarketStateFromString(*text);
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  GlobalPlan restored(&cluster, &model);
  ASSERT_TRUE(RestoreGlobalPlan(*state, &restored).ok());
  EXPECT_NEAR(restored.TotalCost(), gp.TotalCost(), 1e-9);

  // Predicates survived (queries stay identical).
  for (size_t i = 0; i < state->sharings.size(); ++i) {
    const SharingId id = state->sharings[i].id;
    EXPECT_TRUE(state->sharings[i].sharing.IdenticalTo(
        gp.record(id)->sharing));
    EXPECT_EQ(state->sharings[i].sharing.destination(),
              gp.record(id)->sharing.destination());
  }
}

TEST(MarketIoTest, RejectsGarbage) {
  EXPECT_FALSE(MarketStateFromString("not a market\n").ok());
  EXPECT_FALSE(
      MarketStateFromString("dsm-market v1\nbogus record\n").ok());
  EXPECT_FALSE(MarketStateFromString(
                   "dsm-market v1\ncol orphan i64 1 0 1\n")
                   .ok());
}

TEST(MarketIoTest, TruncatedPlanRejected) {
  const std::string text =
      "dsm-market v1\n"
      "server s0 1e30\n"
      "sharing 1 0 buyer 3 0\n"
      "plan 2\n"
      "node 0 0 -1 -1 0 1 0\n";  // one node missing
  EXPECT_FALSE(MarketStateFromString(text).ok());
}

// A syntactically valid prefix around which the hardening tests mutate.
constexpr const char* kValidTail =
    "sharing 1 0 buyer 1 0\n"
    "plan 1\n"
    "node 0 0 -1 -1 0 1 0\n";

std::string WithHeader(const std::string& body) {
  return std::string("dsm-market v1\nserver s0 1e30\n") + body;
}

TEST(MarketIoTest, NegativeCountsRejected) {
  // Counts are read as signed and bounds-checked: "-1" must be rejected,
  // not wrapped into a huge unsigned allocation request.
  EXPECT_EQ(MarketStateFromString(
                WithHeader("table t 10 1 8 -1\n"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MarketStateFromString(
                WithHeader("sharing 1 0 buyer 1 -2\n"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MarketStateFromString(
                WithHeader("sharing 1 0 buyer 1 0\nplan -5\n"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MarketStateFromString(
                WithHeader("sharing 1 0 buyer 1 0\nplan 1\n"
                           "node 0 0 -1 -1 0 1 -3\n"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Absurdly large counts are rejected before any allocation, too.
  EXPECT_EQ(MarketStateFromString(
                WithHeader("sharing 1 0 buyer 1 0\nplan 1099511627776\n"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(MarketIoTest, OutOfRangeIdsRejected) {
  // One server exists; every id referencing beyond it must fail.
  EXPECT_FALSE(
      MarketStateFromString(WithHeader("place 0 7\n")).ok());
  EXPECT_FALSE(
      MarketStateFromString(WithHeader("place 99 0\n")).ok());
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 9 buyer 1 0\n"
                              "plan 1\nnode 0 9 -1 -1 0 1 0\n"))
                   .ok());
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 1 0\n"
                              "plan 1\nnode 0 5 -1 -1 0 1 0\n"))
                   .ok());
  // Predicate table/column beyond their domains.
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 1 1\n"
                              "pred 64 0 0 1.0\n" +
                              std::string("plan 1\n"
                                          "node 0 0 -1 -1 0 1 0\n")))
                   .ok());
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 1 1\n"
                              "pred 0 0 9 1.0\n" +
                              std::string("plan 1\n"
                                          "node 0 0 -1 -1 0 1 0\n")))
                   .ok());
}

TEST(MarketIoTest, MalformedPlanShapeRejected) {
  // Leaf with a child, join missing one, child index referencing itself.
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 1 0\n"
                              "plan 1\nnode 0 0 0 -1 0 1 0\n"))
                   .ok());
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 3 0\n"
                              "plan 2\nnode 0 0 -1 -1 0 1 0\n"
                              "node 1 0 0 -1 1 3 0\n"))
                   .ok());
  EXPECT_FALSE(MarketStateFromString(
                   WithHeader("sharing 1 0 buyer 1 0\n"
                              "plan 1\nnode 2 0 0 -1 0 1 0\n"))
                   .ok());
}

TEST(MarketIoTest, BadServerCapacityRejected) {
  EXPECT_FALSE(MarketStateFromString("dsm-market v1\nserver s0 nan\n").ok());
  EXPECT_FALSE(MarketStateFromString("dsm-market v1\nserver s0 -5\n").ok());
  EXPECT_FALSE(
      MarketStateFromString("dsm-market v1\nserver s0 12abc\n").ok());
  // "inf" (an uncapped server) stays legal.
  EXPECT_TRUE(MarketStateFromString("dsm-market v1\nserver s0 inf\n").ok());
}

TEST(MarketIoTest, ServerRecordAfterSharingsRejected) {
  EXPECT_FALSE(MarketStateFromString(WithHeader(std::string(kValidTail) +
                                                "server s1 1e30\n"))
                   .ok());
}

TEST(MarketIoTest, ParseSharingRecordChecksServerRange) {
  const auto ok = ParseSharingRecord(kValidTail, /*num_servers=*/1);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->id, 1u);
  // num_servers = 0 skips the range check entirely.
  EXPECT_TRUE(ParseSharingRecord(kValidTail, 0).ok());
  const std::string far_server =
      "sharing 1 3 buyer 1 0\nplan 1\nnode 0 3 -1 -1 0 1 0\n";
  EXPECT_FALSE(ParseSharingRecord(far_server, /*num_servers=*/2).ok());
  EXPECT_TRUE(ParseSharingRecord(far_server, /*num_servers=*/4).ok());
  // Truncation mid-block is an error here (the journal handles framing).
  EXPECT_FALSE(ParseSharingRecord("sharing 1 0 buyer 1 0\nplan 1\n", 1).ok());
}

TEST(MarketIoTest, FuzzedInputNeverCrashes) {
  // A valid serialized market, then hundreds of random truncations and
  // byte flips: every mutation must either parse or fail cleanly with a
  // status — no crash, hang, or runaway allocation.
  Catalog catalog;
  const auto tables = BuildTwitterCatalog(&catalog);
  ASSERT_TRUE(tables.ok());
  Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddServer("m" + std::to_string(i));
  cluster.PlaceRoundRobin(catalog.num_tables());
  const JoinGraph graph = JoinGraph::FromCatalog(catalog);
  DefaultCostModel model(&catalog, &cluster);
  PlanEnumerator enumerator(&catalog, &cluster, &graph, &model, {});
  GlobalPlan gp(&cluster, &model);
  PlannerContext ctx{&catalog, &cluster, &graph, &model, &gp, &enumerator};
  ManagedRiskPlanner planner(ctx);
  TwitterSequenceOptions options;
  options.num_sharings = 5;
  options.max_predicates = 2;
  options.seed = 13;
  for (const Sharing& sharing :
       GenerateTwitterSequence(catalog, *tables, cluster, options)) {
    ASSERT_TRUE(planner.ProcessSharing(sharing).ok());
  }
  const auto text = MarketStateToString(catalog, cluster, &gp);
  ASSERT_TRUE(text.ok());

  Rng rng(0xfadedbee);
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = *text;
    // Truncate at a random point...
    if (rng.Bernoulli(0.5)) {
      mutated.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()))));
    }
    // ...and/or flip a few random bytes.
    const int flips = static_cast<int>(rng.UniformInt(0, 4));
    for (int f = 0; f < flips && !mutated.empty(); ++f) {
      const auto pos = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    const auto result = MarketStateFromString(mutated);
    (void)result;  // any Status is fine; not crashing is the assertion
  }
}

TEST(MarketIoTest, RestoreRequiresEmptyPlan) {
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  const auto plans = rig.enumerator->Enumerate(sc.sharings[0]);
  ASSERT_TRUE(plans.ok());
  ASSERT_TRUE(
      rig.global_plan->AddSharing(1, sc.sharings[0], plans->front()).ok());
  MarketState state;
  EXPECT_EQ(RestoreGlobalPlan(state, rig.global_plan.get()).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dsm
