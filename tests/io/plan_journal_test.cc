// PlanJournal: append-only WAL of committed plan choices. Replay must
// tolerate any torn or corrupted tail — drop the bad suffix, report how
// much survived, never crash and never error.

#include "io/plan_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/fault.h"
#include "cost/default_cost_model.h"
#include "online/greedy.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

struct JournalRig {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> gp;
  PlannerContext ctx;
};

std::unique_ptr<JournalRig> MakeJournalRig() {
  auto rig = std::make_unique<JournalRig>();
  const auto tables = BuildTwitterCatalog(&rig->catalog);
  EXPECT_TRUE(tables.ok());
  rig->tables = *tables;
  for (int i = 0; i < 3; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  rig->cluster.PlaceRoundRobin(rig->catalog.num_tables());
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->gp = std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->ctx = PlannerContext{&rig->catalog,    &rig->cluster,
                            rig->graph.get(), rig->model.get(),
                            rig->gp.get(),    rig->enumerator.get()};
  return rig;
}

// Plans `n` Twitter base sharings and journals every committed choice.
// Choices are returned for later comparison.
std::vector<PlanChoice> PlanAndJournal(JournalRig* rig, PlanJournal* journal,
                                       size_t n) {
  GreedyPlanner planner(rig->ctx);
  std::vector<PlanChoice> choices;
  const auto base = TwitterBaseSharings(rig->tables, rig->cluster);
  for (size_t i = 0; i < n && i < base.size(); ++i) {
    const auto choice = planner.ProcessSharing(base[i]);
    EXPECT_TRUE(choice.ok());
    EXPECT_TRUE(
        journal->Append(choice->id, base[i], choice->plan).ok());
    choices.push_back(*choice);
  }
  return choices;
}

TEST(PlanJournalTest, ChecksumMatchesFnv1a64Vectors) {
  EXPECT_EQ(JournalChecksum(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(JournalChecksum("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(JournalChecksum("plan a"), JournalChecksum("plan b"));
}

TEST(PlanJournalTest, AppendBeforeOpenRejected) {
  PlanJournal journal;
  const Sharing s;
  EXPECT_EQ(journal.Append(1, s, SharingPlan{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanJournalTest, EmptyJournalReplaysToNothing) {
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  const auto replay = ReplayJournal(journal.contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_recovered, 0u);
  EXPECT_FALSE(replay->tail_dropped);
}

TEST(PlanJournalTest, MissingHeaderIsAnError) {
  EXPECT_FALSE(ReplayJournal("").ok());
  EXPECT_FALSE(ReplayJournal("not a journal\n").ok());
}

TEST(PlanJournalTest, RoundTripReplaysEveryRecord) {
  auto rig = MakeJournalRig();
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  const auto choices = PlanAndJournal(rig.get(), &journal, 3);
  ASSERT_EQ(journal.records_appended(), 3u);

  const auto replay =
      ReplayJournal(journal.contents(), rig->cluster.num_servers());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records_recovered, 3u);
  EXPECT_EQ(replay->bytes_dropped, 0u);
  EXPECT_FALSE(replay->tail_dropped);
  ASSERT_EQ(replay->entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replay->entries[i].id, choices[i].id);
    EXPECT_EQ(replay->entries[i].plan.Signature(),
              choices[i].plan.Signature());
  }
}

TEST(PlanJournalTest, TruncatedTailIsDroppedNotFatal) {
  auto rig = MakeJournalRig();
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  PlanAndJournal(rig.get(), &journal, 3);

  // Chop bytes off the end: whatever prefix of whole frames survives must
  // replay cleanly; the ragged tail is dropped and accounted for.
  const std::string& full = journal.contents();
  for (size_t cut = 1; cut < 40; cut += 7) {
    const std::string torn = full.substr(0, full.size() - cut);
    const auto replay = ReplayJournal(torn);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay->records_recovered, 2u);
    EXPECT_TRUE(replay->tail_dropped);
    EXPECT_GT(replay->bytes_dropped, 0u);
  }
}

TEST(PlanJournalTest, CorruptPayloadByteDropsSuffix) {
  auto rig = MakeJournalRig();
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  PlanAndJournal(rig.get(), &journal, 3);

  // Flip one byte in the last record: its checksum no longer matches.
  std::string damaged = journal.contents();
  damaged[damaged.size() - 2] ^= 0x20;
  auto replay = ReplayJournal(damaged);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_recovered, 2u);
  EXPECT_TRUE(replay->tail_dropped);

  // Damage in the middle invalidates everything after it: frame
  // boundaries downstream of a bad frame cannot be trusted.
  std::string early = journal.contents();
  early[early.find("rec ") + 4] = 'x';
  replay = ReplayJournal(early);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_recovered, 0u);
  EXPECT_TRUE(replay->tail_dropped);
}

TEST(PlanJournalTest, TornWriteFaultLeavesRecoverablePrefix) {
  auto rig = MakeJournalRig();
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  const auto base = TwitterBaseSharings(rig->tables, rig->cluster);
  GreedyPlanner planner(rig->ctx);
  std::vector<PlanChoice> committed;
  for (int i = 0; i < 2; ++i) {
    const auto choice = planner.ProcessSharing(base[i]);
    ASSERT_TRUE(choice.ok());
    ASSERT_TRUE(journal.Append(choice->id, base[i], choice->plan).ok());
    committed.push_back(*choice);
  }

  // The process "dies" halfway through the third append.
  const auto choice = planner.ProcessSharing(base[2]);
  ASSERT_TRUE(choice.ok());
  {
    ScopedFault crash("io/journal-append");
    EXPECT_EQ(journal.Append(choice->id, base[2], choice->plan).code(),
              StatusCode::kInternal);
  }
  EXPECT_EQ(journal.records_appended(), 2u);

  const auto replay = ReplayJournal(journal.contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_recovered, 2u);
  EXPECT_TRUE(replay->tail_dropped);
  EXPECT_GT(replay->bytes_dropped, 0u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(replay->entries[i].id, committed[i].id);
  }
}

TEST(PlanJournalTest, FileBackedJournalSurvivesReopen) {
  const std::string path =
      ::testing::TempDir() + "/dsm_plan_journal_test.log";
  std::remove(path.c_str());

  auto rig = MakeJournalRig();
  {
    PlanJournal journal(path);
    ASSERT_TRUE(journal.Open().ok());
    PlanAndJournal(rig.get(), &journal, 2);
  }
  // A new process opens the same file and keeps appending.
  PlanJournal reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  {
    const auto base = TwitterBaseSharings(rig->tables, rig->cluster);
    const auto plans = rig->enumerator->Enumerate(base[5]);
    ASSERT_TRUE(plans.ok());
    ASSERT_TRUE(reopened.Append(100, base[5], plans->front()).ok());
  }
  const auto replay = ReplayJournal(reopened.contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_recovered, 3u);
  EXPECT_EQ(replay->entries.back().id, 100u);
  std::remove(path.c_str());
}

TEST(PlanJournalTest, RecoverMarketStatePrefersSnapshotOnDuplicates) {
  auto rig = MakeJournalRig();
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  PlanAndJournal(rig.get(), &journal, 4);

  // Snapshot taken after the first two commits; the journal covers all
  // four, so recovery must add exactly the two the snapshot missed.
  GlobalPlan snapshot_gp(&rig->cluster, rig->model.get());
  {
    const auto replay = ReplayJournal(journal.contents());
    ASSERT_TRUE(replay.ok());
    for (size_t i = 0; i < 2; ++i) {
      const auto& e = replay->entries[i];
      ASSERT_TRUE(snapshot_gp.AddSharing(e.id, e.sharing, e.plan).ok());
    }
  }
  const auto snapshot =
      MarketStateToString(rig->catalog, rig->cluster, &snapshot_gp);
  ASSERT_TRUE(snapshot.ok());

  JournalReplay stats;
  const auto state =
      RecoverMarketState(*snapshot, journal.contents(), &stats);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(stats.records_recovered, 4u);
  ASSERT_EQ(state->sharings.size(), 4u);

  // The recovered state restores into the same global plan the live
  // process had after all four commits.
  GlobalPlan restored(&rig->cluster, rig->model.get());
  ASSERT_TRUE(RestoreGlobalPlan(*state, &restored).ok());
  EXPECT_NEAR(restored.TotalCost(), rig->gp->TotalCost(), 1e-9);
  EXPECT_EQ(restored.num_alive_views(), rig->gp->num_alive_views());
}

}  // namespace
}  // namespace dsm
