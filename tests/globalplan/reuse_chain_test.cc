// Regression tests for chained reuse: residual filter/copy views created
// for one sharing becoming reuse sources for later sharings, and their
// lifetime under removals.

#include <gtest/gtest.h>

#include "globalplan/global_plan.h"
#include "plan/enumerator.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

Predicate P(TableId t, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = v;
  return p;
}

class ReuseChainTest : public ::testing::Test {
 protected:
  // Greedy-trap tables a, b, c1 with c[ab]=4, c[(ab)c]=10, c[a(bc)]=8.
  ReuseChainTest() : sc_(MakeGreedyTrap(1, 4.0, 16.0, 10.0)) {
    rig_ = MakeRig(sc_);
  }

  SharingPlan RootFilterPlan(const Sharing& sharing) {
    const auto plans = rig_.enumerator->Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    for (const SharingPlan& plan : *plans) {
      if (plan.root().type == PlanNodeType::kFilterCopy &&
          plan.nodes[static_cast<size_t>(plan.root().left)]
              .key.predicates.empty()) {
        return plan;
      }
    }
    ADD_FAILURE() << "no root-filter plan";
    return plans->front();
  }

  SharingPlan AnyPlan(const Sharing& sharing) {
    const auto plans = rig_.enumerator->Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    return plans->front();
  }

  Scenario sc_;
  testing_support::Rig rig_;
};

TEST_F(ReuseChainTest, ResidualViewBecomesReuseSource) {
  // S1 materializes ab. S2 = σ(ab) via a residual filter view. S3 asks
  // for the same filtered data: it must reuse the residual view directly
  // (zero marginal), not build a second filter.
  const Sharing full(TS({0, 1}), {}, 0, "full");
  ASSERT_TRUE(rig_.global_plan->AddSharing(1, full, AnyPlan(full)).ok());
  const double base_views =
      static_cast<double>(rig_.global_plan->num_alive_views());

  const Sharing filtered(TS({0, 1}), {P(0, 100)}, 0, "filtered");
  const auto eval2 =
      rig_.global_plan->AddSharing(2, filtered, RootFilterPlan(filtered));
  ASSERT_TRUE(eval2.ok());
  const size_t views_after_2 = rig_.global_plan->num_alive_views();
  EXPECT_EQ(views_after_2, static_cast<size_t>(base_views) + 1);

  const auto eval3 =
      rig_.global_plan->AddSharing(3, filtered, RootFilterPlan(filtered));
  ASSERT_TRUE(eval3.ok());
  EXPECT_NEAR(eval3->marginal_cost, 0.0, 1e-9);
  // No new view: the residual filter itself was reused.
  EXPECT_EQ(rig_.global_plan->num_alive_views(), views_after_2);
}

TEST_F(ReuseChainTest, ResidualSurvivesItsCreatorsRemoval) {
  const Sharing full(TS({0, 1}), {}, 0, "full");
  ASSERT_TRUE(rig_.global_plan->AddSharing(1, full, AnyPlan(full)).ok());
  const Sharing filtered(TS({0, 1}), {P(0, 100)}, 0, "filtered");
  ASSERT_TRUE(rig_.global_plan
                  ->AddSharing(2, filtered, RootFilterPlan(filtered))
                  .ok());
  ASSERT_TRUE(rig_.global_plan
                  ->AddSharing(3, filtered, RootFilterPlan(filtered))
                  .ok());

  // Removing sharing 2 (which created the residual filter view) must keep
  // the view alive: sharing 3 still consumes it.
  const double cost_before = rig_.global_plan->TotalCost();
  ASSERT_TRUE(rig_.global_plan->RemoveSharing(2).ok());
  EXPECT_NEAR(rig_.global_plan->TotalCost(), cost_before, 1e-9);

  // Removing sharing 3 drops the filter view; removing sharing 1 empties
  // the plan entirely.
  ASSERT_TRUE(rig_.global_plan->RemoveSharing(3).ok());
  ASSERT_TRUE(rig_.global_plan->RemoveSharing(1).ok());
  EXPECT_EQ(rig_.global_plan->num_alive_views(), 0u);
  EXPECT_NEAR(rig_.global_plan->TotalCost(), 0.0, 1e-12);
}

TEST_F(ReuseChainTest, SubsumptionPrefersTighterSource) {
  // With both ab and σ_{x<100}(ab) materialized, a request for
  // σ_{x<100 ∧ x<50}(ab)... any subsuming source works; the evaluator
  // must pick one with minimal residual cost and stay consistent between
  // Evaluate and Add.
  const Sharing full(TS({0, 1}), {}, 0, "full");
  ASSERT_TRUE(rig_.global_plan->AddSharing(1, full, AnyPlan(full)).ok());
  const Sharing filtered(TS({0, 1}), {P(0, 100)}, 0, "filtered");
  ASSERT_TRUE(rig_.global_plan
                  ->AddSharing(2, filtered, RootFilterPlan(filtered))
                  .ok());

  const Sharing narrower(TS({0, 1}), {P(0, 100), P(0, 50)}, 0, "narrow");
  const SharingPlan plan = RootFilterPlan(narrower);
  const auto probe = rig_.global_plan->EvaluatePlan(plan);
  const auto eval = rig_.global_plan->AddSharing(3, narrower, plan);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(probe.marginal_cost, eval->marginal_cost, 1e-12);
  // Zero-cost filter in the table-driven model either way.
  EXPECT_NEAR(eval->marginal_cost, 0.0, 1e-9);
}

TEST_F(ReuseChainTest, ForbiddenKeyStillAllowsDescendantReuse) {
  // Forbidding reuse of the root key must not forbid reusing ab below it.
  const Sharing full(TS({0, 1, 2}), {}, 0, "abc");
  const auto plans = rig_.enumerator->Enumerate(full);
  ASSERT_TRUE(plans.ok());
  const SharingPlan* via_ab = nullptr;
  for (const SharingPlan& plan : *plans) {
    for (const PlanNode& n : plan.nodes) {
      if (n.is_join() && n.key.tables == TS({0, 1})) via_ab = &plan;
    }
  }
  ASSERT_NE(via_ab, nullptr);
  ASSERT_TRUE(rig_.global_plan->AddSharing(1, full, *via_ab).ok());

  GlobalPlan::AddOptions options;
  std::unordered_set<ViewKey, ViewKeyHash> forbid = {
      ViewKey(TS({0, 1, 2}))};
  options.forbid_reuse_keys = &forbid;
  const auto eval =
      rig_.global_plan->AddSharing(2, full, *via_ab, options);
  ASSERT_TRUE(eval.ok());
  // Paid: the (ab)c join afresh (10); reused: ab (4 saved).
  EXPECT_NEAR(eval->marginal_cost, 10.0, 1e-9);
}

}  // namespace
}  // namespace dsm
