// Equivalence of the indexed reuse lookup with the legacy linear scan:
// over random predicated workloads with add/remove churn and server
// liveness flips, two global plans — one with the reuse index, one with
// set_reuse_index_enabled(false) — must make bit-identical decisions for
// every candidate plan evaluated.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "cost/default_cost_model.h"
#include "globalplan/global_plan.h"
#include "plan/enumerator.h"
#include "plan/join_graph.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

struct TwinRig {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> indexed;
  std::unique_ptr<GlobalPlan> legacy;
};

std::unique_ptr<TwinRig> MakeTwinRig() {
  auto rig = std::make_unique<TwinRig>();
  const auto tables = BuildTwitterCatalog(&rig->catalog);
  EXPECT_TRUE(tables.ok());
  rig->tables = *tables;
  for (int i = 0; i < 4; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  rig->cluster.PlaceRoundRobin(rig->catalog.num_tables());
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->indexed =
      std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->legacy =
      std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->legacy->set_reuse_index_enabled(false);
  EXPECT_TRUE(rig->indexed->reuse_index_enabled());
  EXPECT_FALSE(rig->legacy->reuse_index_enabled());
  return rig;
}

void ExpectIdenticalEvaluations(const GlobalPlan::PlanEvaluation& a,
                                const GlobalPlan::PlanEvaluation& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.marginal_cost, b.marginal_cost);  // bit-identical, no tolerance
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].state, b.decisions[i].state);
    EXPECT_EQ(a.decisions[i].reuse_source, b.decisions[i].reuse_source);
    EXPECT_EQ(a.decisions[i].needs_residual, b.decisions[i].needs_residual);
    EXPECT_EQ(a.decisions[i].marginal_cost, b.decisions[i].marginal_cost);
  }
}

class ReuseIndexEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

// Every candidate plan of a long predicated sequence — over a thousand
// plans per seed — evaluates identically on both global plans, through
// add/remove churn and repeated reuse of hot subexpressions.
TEST_P(ReuseIndexEquivalenceTest, RandomPlansEvaluateIdentically) {
  auto rig = MakeTwinRig();
  TwitterSequenceOptions options;
  options.num_sharings = 120;
  options.max_predicates = 2;
  options.frac_with_predicates = 0.5;
  options.seed = GetParam();
  const std::vector<Sharing> sequence = GenerateTwitterSequence(
      rig->catalog, rig->tables, rig->cluster, options);

  Rng rng(GetParam() ^ 0xfeed);
  std::vector<SharingId> active;
  SharingId next_id = 1;
  size_t plans_compared = 0;

  for (const Sharing& sharing : sequence) {
    if (!active.empty() && rng.Bernoulli(0.25)) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(active.size()) - 1));
      ASSERT_TRUE(rig->indexed->RemoveSharing(active[pick]).ok());
      ASSERT_TRUE(rig->legacy->RemoveSharing(active[pick]).ok());
      active.erase(active.begin() + static_cast<int64_t>(pick));
    }

    const auto plans = rig->enumerator->Enumerate(sharing);
    ASSERT_TRUE(plans.ok());
    size_t best = 0;
    double best_cost = 0.0;
    for (size_t i = 0; i < plans->size(); ++i) {
      const GlobalPlan::PlanEvaluation ei =
          rig->indexed->EvaluatePlan((*plans)[i]);
      const GlobalPlan::PlanEvaluation el =
          rig->legacy->EvaluatePlan((*plans)[i]);
      ExpectIdenticalEvaluations(ei, el);
      ++plans_compared;
      if (i == 0 || ei.marginal_cost < best_cost) {
        best = i;
        best_cost = ei.marginal_cost;
      }
    }

    const auto ai =
        rig->indexed->AddSharing(next_id, sharing, (*plans)[best]);
    const auto al = rig->legacy->AddSharing(next_id, sharing, (*plans)[best]);
    ASSERT_TRUE(ai.ok());
    ASSERT_TRUE(al.ok());
    ExpectIdenticalEvaluations(*ai, *al);
    active.push_back(next_id);
    ++next_id;

    EXPECT_EQ(rig->indexed->TotalCost(), rig->legacy->TotalCost());
    EXPECT_EQ(rig->indexed->num_alive_views(),
              rig->legacy->num_alive_views());
  }
  EXPECT_GT(plans_compared, 1000u);
}

// Liveness flips invalidate the best-source cache: after MarkDown the
// indexed plan must stop proposing reuse from the dead server, and after
// MarkUp it must propose it again — both matching the legacy scan.
TEST_P(ReuseIndexEquivalenceTest, LivenessFlipsInvalidateCache) {
  auto rig = MakeTwinRig();
  TwitterSequenceOptions options;
  options.num_sharings = 40;
  options.max_predicates = 1;
  options.seed = GetParam() ^ 0xdead;
  const std::vector<Sharing> sequence = GenerateTwitterSequence(
      rig->catalog, rig->tables, rig->cluster, options);

  SharingId next_id = 1;
  Rng rng(GetParam());
  for (const Sharing& sharing : sequence) {
    // Random liveness churn on a non-home-critical server.
    if (rng.Bernoulli(0.2)) {
      const ServerId victim =
          static_cast<ServerId>(rng.UniformInt(0, 3));
      if (rig->cluster.is_up(victim) &&
          rig->cluster.num_live_servers() > 2) {
        ASSERT_TRUE(rig->cluster.MarkDown(victim).ok());
      } else if (!rig->cluster.is_up(victim)) {
        ASSERT_TRUE(rig->cluster.MarkUp(victim).ok());
      }
    }
    const auto plans = rig->enumerator->Enumerate(sharing);
    ASSERT_TRUE(plans.ok());
    for (const SharingPlan& plan : *plans) {
      ExpectIdenticalEvaluations(rig->indexed->EvaluatePlan(plan),
                                 rig->legacy->EvaluatePlan(plan));
    }
    const auto ai = rig->indexed->AddSharing(next_id, sharing,
                                             plans->front());
    const auto al = rig->legacy->AddSharing(next_id, sharing,
                                            plans->front());
    ASSERT_TRUE(ai.ok());
    ASSERT_TRUE(al.ok());
    ExpectIdenticalEvaluations(*ai, *al);
    ++next_id;
  }
  // Restore liveness for symmetry.
  for (ServerId s = 0; s < 4; ++s) {
    if (!rig->cluster.is_up(s)) ASSERT_TRUE(rig->cluster.MarkUp(s).ok());
  }
  EXPECT_EQ(rig->indexed->TotalCost(), rig->legacy->TotalCost());
}

// Flipping the toggle off and back on drops the caches but never changes
// decisions; the same plan evaluates identically before and after.
TEST_P(ReuseIndexEquivalenceTest, ToggleFlipKeepsDecisions) {
  auto rig = MakeTwinRig();
  TwitterSequenceOptions options;
  options.num_sharings = 20;
  options.max_predicates = 2;
  options.seed = GetParam() ^ 0xbeef;
  const std::vector<Sharing> sequence = GenerateTwitterSequence(
      rig->catalog, rig->tables, rig->cluster, options);
  SharingId next_id = 1;
  for (const Sharing& sharing : sequence) {
    const auto plans = rig->enumerator->Enumerate(sharing);
    ASSERT_TRUE(plans.ok());
    const GlobalPlan::PlanEvaluation before =
        rig->indexed->EvaluatePlan(plans->front());
    rig->indexed->set_reuse_index_enabled(false);
    const GlobalPlan::PlanEvaluation off =
        rig->indexed->EvaluatePlan(plans->front());
    rig->indexed->set_reuse_index_enabled(true);
    const GlobalPlan::PlanEvaluation after =
        rig->indexed->EvaluatePlan(plans->front());
    ExpectIdenticalEvaluations(before, off);
    ExpectIdenticalEvaluations(before, after);
    ASSERT_TRUE(
        rig->indexed->AddSharing(next_id, sharing, plans->front()).ok());
    ++next_id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseIndexEquivalenceTest,
                         ::testing::Values(3, 17, 91, 257));

}  // namespace
}  // namespace dsm
