#include "globalplan/global_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cost/table_cost_model.h"
#include "plan/enumerator.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

Predicate P(TableId t, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = v;
  return p;
}

// Fixture: path graph a - b - c, one server, hand-set costs
// c[ab] = 4, c[(ab)c] = 10, c[bc] = 8, c[a(bc)] = 6.
class GlobalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const char* name,
                      std::initializer_list<const char*> cols) {
      TableDef def;
      def.name = name;
      for (const char* c : cols) {
        ColumnDef col;
        col.name = c;
        col.distinct_values = 100;
        col.max_value = 100;
        def.columns.push_back(col);
      }
      def.stats.cardinality = 100;
      def.stats.update_rate = 1;
      return *catalog_.AddTable(def);
    };
    a_ = add("a", {"k1"});
    b_ = add("b", {"k1", "k2"});
    c_ = add("c", {"k2"});
    cluster_.AddServer("s0");
    cluster_.PlaceRoundRobin(catalog_.num_tables());
    graph_ = std::make_unique<JoinGraph>(JoinGraph::FromCatalog(catalog_));

    model_.SetJoinCost(TS({a_}), TS({b_}), 4.0);
    model_.SetJoinCost(TS({a_, b_}), TS({c_}), 10.0);
    model_.SetJoinCost(TS({b_}), TS({c_}), 8.0);
    model_.SetJoinCost(TS({a_}), TS({b_, c_}), 6.0);

    enumerator_ = std::make_unique<PlanEnumerator>(
        &catalog_, &cluster_, graph_.get(), &model_, EnumeratorOptions{});
    gp_ = std::make_unique<GlobalPlan>(&cluster_, &model_);
  }

  // The cheapest enumerated plan whose join order matches `want_ab_first`.
  SharingPlan PlanFor(const Sharing& sharing, bool want_ab_first) {
    const auto plans = enumerator_->Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    for (const SharingPlan& plan : *plans) {
      for (const PlanNode& node : plan.nodes) {
        if (node.is_join() && node.key.tables == TS({a_, b_}) &&
            want_ab_first) {
          return plan;
        }
        if (node.is_join() && node.key.tables == TS({b_, c_}) &&
            !want_ab_first) {
          return plan;
        }
      }
    }
    return plans->front();
  }

  Catalog catalog_;
  Cluster cluster_;
  std::unique_ptr<JoinGraph> graph_;
  TableDrivenCostModel model_;
  std::unique_ptr<PlanEnumerator> enumerator_;
  std::unique_ptr<GlobalPlan> gp_;
  TableId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(GlobalPlanTest, FreshPlanCostsItsStandaloneCost) {
  const Sharing s(TS({a_, b_, c_}), {}, 0);
  const SharingPlan plan = PlanFor(s, /*want_ab_first=*/true);
  const auto eval = gp_->AddSharing(1, s, plan);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->marginal_cost, 14.0, 1e-9);  // 4 + 10
  EXPECT_NEAR(gp_->TotalCost(), 14.0, 1e-9);
  EXPECT_NEAR(gp_->GPC(1), 14.0, 1e-9);
}

TEST_F(GlobalPlanTest, EvaluateDoesNotMutate) {
  const Sharing s(TS({a_, b_}), {}, 0);
  const SharingPlan plan = PlanFor(s, true);
  const auto eval = gp_->EvaluatePlan(plan);
  EXPECT_NEAR(eval.marginal_cost, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(gp_->TotalCost(), 0.0);
  EXPECT_EQ(gp_->num_alive_views(), 0u);
}

TEST_F(GlobalPlanTest, IdenticalPlanFullyReused) {
  const Sharing s(TS({a_, b_, c_}), {}, 0);
  const SharingPlan plan = PlanFor(s, true);
  ASSERT_TRUE(gp_->AddSharing(1, s, plan).ok());
  const auto eval2 = gp_->AddSharing(2, s, plan);
  ASSERT_TRUE(eval2.ok());
  EXPECT_NEAR(eval2->marginal_cost, 0.0, 1e-9);
  EXPECT_NEAR(gp_->TotalCost(), 14.0, 1e-9);
  // GPC still reflects the sharing's own plan edges.
  EXPECT_NEAR(gp_->GPC(2), 14.0, 1e-9);
}

TEST_F(GlobalPlanTest, SubexpressionReusedAcrossSharings) {
  // S1 = (a,b); S2 = (a,b,c) via (ab)c reuses ab.
  const Sharing s1(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());
  EXPECT_NEAR(gp_->TotalCost(), 4.0, 1e-9);

  const Sharing s2(TS({a_, b_, c_}), {}, 0);
  const auto eval = gp_->AddSharing(2, s2, PlanFor(s2, true));
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->marginal_cost, 10.0, 1e-9);  // only (ab)c
  EXPECT_NEAR(gp_->TotalCost(), 14.0, 1e-9);
}

TEST_F(GlobalPlanTest, ReuseDetectedAcrossJoinOrders) {
  // S1 materializes abc via (ab)c; S2's a(bc) plan finds abc by key.
  const Sharing s1(TS({a_, b_, c_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());
  const Sharing s2(TS({a_, b_, c_}), {}, 0);
  const auto eval = gp_->EvaluatePlan(PlanFor(s2, false));
  EXPECT_NEAR(eval.marginal_cost, 0.0, 1e-9);
}

TEST_F(GlobalPlanTest, SubsumptionAddsResidualFilter) {
  const Sharing full(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, full, PlanFor(full, true)).ok());

  const Sharing filtered(TS({a_, b_}), {P(a_, 50)}, 0);
  const auto plans = enumerator_->Enumerate(filtered);
  ASSERT_TRUE(plans.ok());
  // Pick the plan that applies the predicate at the root (pure filter on
  // top of ab, as in Example 1.1).
  const SharingPlan* root_filter = nullptr;
  for (const SharingPlan& plan : *plans) {
    if (plan.root().type == PlanNodeType::kFilterCopy &&
        plan.nodes[static_cast<size_t>(plan.root().left)]
            .key.predicates.empty()) {
      root_filter = &plan;
    }
  }
  ASSERT_NE(root_filter, nullptr);
  const auto eval = gp_->AddSharing(2, filtered, *root_filter);
  ASSERT_TRUE(eval.ok());
  // TableDrivenCostModel: same-server filter costs 0, and ab is reused.
  EXPECT_NEAR(eval->marginal_cost, 0.0, 1e-9);
  EXPECT_NEAR(gp_->TotalCost(), 4.0, 1e-9);
}

TEST_F(GlobalPlanTest, RemoveSharingDropsOrphans) {
  const Sharing s1(TS({a_, b_}), {}, 0);
  const Sharing s2(TS({a_, b_, c_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());
  ASSERT_TRUE(gp_->AddSharing(2, s2, PlanFor(s2, true)).ok());
  EXPECT_NEAR(gp_->TotalCost(), 14.0, 1e-9);

  // Removing s2 drops (ab)c but keeps ab (still used by s1).
  ASSERT_TRUE(gp_->RemoveSharing(2).ok());
  EXPECT_NEAR(gp_->TotalCost(), 4.0, 1e-9);
  EXPECT_TRUE(gp_->HasUnpredicatedView(TS({a_, b_})));
  EXPECT_FALSE(gp_->HasUnpredicatedView(TS({a_, b_, c_})));

  ASSERT_TRUE(gp_->RemoveSharing(1).ok());
  EXPECT_NEAR(gp_->TotalCost(), 0.0, 1e-9);
  EXPECT_EQ(gp_->num_alive_views(), 0u);
}

TEST_F(GlobalPlanTest, SharedNodeSurvivesProducerRemoval) {
  const Sharing s1(TS({a_, b_}), {}, 0);
  const Sharing s2(TS({a_, b_, c_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());
  ASSERT_TRUE(gp_->AddSharing(2, s2, PlanFor(s2, true)).ok());
  // Removing the producer of ab keeps ab alive: s2 still needs it.
  ASSERT_TRUE(gp_->RemoveSharing(1).ok());
  EXPECT_NEAR(gp_->TotalCost(), 14.0, 1e-9);
  EXPECT_TRUE(gp_->HasUnpredicatedView(TS({a_, b_})));
}

TEST_F(GlobalPlanTest, ForbidReuseForcesFreshComputation) {
  const Sharing s1(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());

  GlobalPlan::AddOptions options;
  std::unordered_set<ViewKey, ViewKeyHash> forbid = {ViewKey(TS({a_, b_}))};
  options.forbid_reuse_keys = &forbid;
  const auto eval = gp_->AddSharing(2, s1, PlanFor(s1, true), options);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(eval->marginal_cost, 4.0, 1e-9);
  EXPECT_NEAR(gp_->TotalCost(), 8.0, 1e-9);
}

TEST_F(GlobalPlanTest, AllowReuseFalseDisablesAllReuse) {
  const Sharing s(TS({a_, b_, c_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s, PlanFor(s, true)).ok());
  GlobalPlan::AddOptions options;
  options.allow_reuse = false;
  const auto eval = gp_->EvaluatePlan(PlanFor(s, true), options);
  EXPECT_NEAR(eval.marginal_cost, 14.0, 1e-9);
}

TEST_F(GlobalPlanTest, DuplicateIdRejected) {
  const Sharing s(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s, PlanFor(s, true)).ok());
  EXPECT_EQ(gp_->AddSharing(1, s, PlanFor(s, true)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(GlobalPlanTest, RemoveUnknownIdRejected) {
  EXPECT_EQ(gp_->RemoveSharing(99).code(), StatusCode::kNotFound);
}

TEST_F(GlobalPlanTest, ReuseStatsNumCountsAllContainingPlans) {
  // S1=(a,b) produces ab; S2=(a,b,c) reuses it via (ab)c.
  const Sharing s1(TS({a_, b_}), {}, 0);
  const Sharing s2(TS({a_, b_, c_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s1, PlanFor(s1, true)).ok());
  ASSERT_TRUE(gp_->AddSharing(2, s2, PlanFor(s2, true)).ok());

  const auto stats = gp_->ComputeReuseStats();
  const GlobalPlan::ReuseStat* ab = nullptr;
  for (const auto& st : stats) {
    if (st.key == ViewKey(TS({a_, b_}))) ab = &st;
  }
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->num, 2);
  // S2 avoided computing ab itself: saving = c[ab] = 4.
  EXPECT_NEAR(ab->saving, 4.0, 1e-9);
}

TEST_F(GlobalPlanTest, ClosureAndNodeCostExposed) {
  const Sharing s(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s, PlanFor(s, true)).ok());
  const std::vector<int>* closure = gp_->closure(1);
  ASSERT_NE(closure, nullptr);
  double total = 0.0;
  for (const int node : *closure) total += gp_->node_cost(node);
  EXPECT_NEAR(total, 4.0, 1e-9);
  EXPECT_EQ(gp_->closure(42), nullptr);
}

TEST_F(GlobalPlanTest, CapacityFeasibility) {
  // Tight capacity: the join processes 2 delta-tuples/unit but the server
  // only allows 1 -> infeasible.
  cluster_.mutable_server(0).capacity_tuples_per_unit = 1.0;
  const Sharing s(TS({a_, b_}), {}, 0);
  const auto eval = gp_->EvaluatePlan(PlanFor(s, true));
  EXPECT_FALSE(eval.feasible);

  cluster_.mutable_server(0).capacity_tuples_per_unit = 100.0;
  EXPECT_TRUE(gp_->EvaluatePlan(PlanFor(s, true)).feasible);
}

TEST_F(GlobalPlanTest, LoadAccumulatesAndFrees) {
  const Sharing s(TS({a_, b_}), {}, 0);
  ASSERT_TRUE(gp_->AddSharing(1, s, PlanFor(s, true)).ok());
  EXPECT_NEAR(gp_->ServerLoad(0), 2.0, 1e-9);  // join input rate 1+1
  ASSERT_TRUE(gp_->RemoveSharing(1).ok());
  EXPECT_NEAR(gp_->ServerLoad(0), 0.0, 1e-9);
}

}  // namespace
}  // namespace dsm
