// Property tests over the global plan under random add/remove churn:
// cost and load accounting stay exact, views are dropped exactly when the
// last referencing sharing leaves, and GPC >= the sharing's LPC.

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "globalplan/global_plan.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

class GlobalPlanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlobalPlanPropertyTest, ChurnKeepsAccountingExact) {
  const Scenario sc = MakeRandomThreeWay(GetParam(), 20, 12);
  PlanEnumerator enumerator(sc.catalog.get(), sc.cluster.get(),
                            sc.graph.get(), sc.model.get(), {});
  GlobalPlan gp(sc.cluster.get(), sc.model.get());

  Rng rng(GetParam() ^ 0x1234);
  std::map<SharingId, bool> active;
  SharingId next_id = 1;

  for (int step = 0; step < 120; ++step) {
    const bool remove = !active.empty() && rng.Bernoulli(0.4);
    if (remove) {
      auto it = active.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(active.size()) - 1));
      ASSERT_TRUE(gp.RemoveSharing(it->first).ok());
      active.erase(it);
    } else {
      const Sharing& sharing = sc.sharings[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sc.sharings.size()) - 1))];
      const auto plans = enumerator.Enumerate(sharing);
      ASSERT_TRUE(plans.ok());
      const SharingPlan& plan = (*plans)[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(plans->size()) - 1))];
      const GlobalPlan::PlanEvaluation probe = gp.EvaluatePlan(plan);
      const double before = gp.TotalCost();
      const auto eval = gp.AddSharing(next_id, sharing, plan);
      ASSERT_TRUE(eval.ok());
      // The dry run predicted the mutation exactly.
      EXPECT_NEAR(probe.marginal_cost, eval->marginal_cost, 1e-9);
      EXPECT_NEAR(gp.TotalCost(), before + eval->marginal_cost, 1e-6);
      active[next_id] = true;
      ++next_id;
    }
    EXPECT_EQ(gp.num_sharings(), active.size());
    EXPECT_GE(gp.TotalCost(), -1e-9);
  }

  // Draining everything returns the plan to an empty, zero-cost state.
  for (const auto& [id, alive] : active) {
    ASSERT_TRUE(gp.RemoveSharing(id).ok());
  }
  EXPECT_NEAR(gp.TotalCost(), 0.0, 1e-9);
  EXPECT_EQ(gp.num_alive_views(), 0u);
  EXPECT_NEAR(gp.ServerLoad(0), 0.0, 1e-9);
}

TEST_P(GlobalPlanPropertyTest, GpcAtLeastLpc) {
  const Scenario sc = MakeRandomThreeWay(GetParam() ^ 0x9e37, 12, 12);
  PlanEnumerator enumerator(sc.catalog.get(), sc.cluster.get(),
                            sc.graph.get(), sc.model.get(), {});
  GlobalPlan gp(sc.cluster.get(), sc.model.get());
  // LPCs computed standalone.
  std::vector<double> lpcs;
  for (const Sharing& sharing : sc.sharings) {
    const auto plans = enumerator.Enumerate(sharing);
    ASSERT_TRUE(plans.ok());
    double lpc = std::numeric_limits<double>::infinity();
    for (const SharingPlan& p : *plans) {
      lpc = std::min(lpc, PlanCost(p, sc.model.get()));
    }
    lpcs.push_back(lpc);
  }
  Rng rng(GetParam());
  for (size_t i = 0; i < sc.sharings.size(); ++i) {
    const auto plans = enumerator.Enumerate(sc.sharings[i]);
    ASSERT_TRUE(plans.ok());
    const SharingPlan& plan = (*plans)[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(plans->size()) - 1))];
    ASSERT_TRUE(gp.AddSharing(i + 1, sc.sharings[i], plan).ok());
    EXPECT_GE(gp.GPC(i + 1) + 1e-9, lpcs[i])
        << "GPC must dominate LPC (criterion (2) feasibility)";
  }
  // Total cost never exceeds the sum of GPCs (shared nodes counted once).
  double gpc_sum = 0.0;
  for (size_t i = 0; i < sc.sharings.size(); ++i) gpc_sum += gp.GPC(i + 1);
  EXPECT_LE(gp.TotalCost(), gpc_sum + 1e-6);
}

TEST_P(GlobalPlanPropertyTest, ReuseStatsConsistent) {
  const Scenario sc = MakeRandomThreeWay(GetParam() ^ 0x5bd1, 15, 10);
  PlanEnumerator enumerator(sc.catalog.get(), sc.cluster.get(),
                            sc.graph.get(), sc.model.get(), {});
  GlobalPlan gp(sc.cluster.get(), sc.model.get());
  for (size_t i = 0; i < sc.sharings.size(); ++i) {
    const auto plans = enumerator.Enumerate(sc.sharings[i]);
    ASSERT_TRUE(plans.ok());
    ASSERT_TRUE(gp.AddSharing(i + 1, sc.sharings[i], plans->front()).ok());
  }
  for (const GlobalPlan::ReuseStat& st : gp.ComputeReuseStats()) {
    EXPECT_GE(st.num, 1);
    EXPECT_GE(st.saving, 0.0);
    EXPECT_LE(st.num, static_cast<int>(sc.sharings.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalPlanPropertyTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace dsm
