#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TableDef MakeTable(const std::string& name,
                   const std::vector<std::string>& columns) {
  TableDef def;
  def.name = name;
  for (const std::string& c : columns) {
    ColumnDef col;
    col.name = c;
    def.columns.push_back(col);
  }
  def.stats.cardinality = 100;
  return def;
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  const auto id = catalog.AddTable(MakeTable("users", {"uid"}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(catalog.num_tables(), 1u);
  EXPECT_EQ(catalog.table(0).name, "users");
  const auto found = catalog.FindTable("users");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0u);
}

TEST(CatalogTest, RejectsDuplicateName) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeTable("t", {"a"})).ok());
  const auto dup = catalog.AddTable(MakeTable("t", {"b"}));
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsEmptyName) {
  Catalog catalog;
  EXPECT_EQ(catalog.AddTable(MakeTable("", {"a"})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, FindMissingTable) {
  Catalog catalog;
  EXPECT_EQ(catalog.FindTable("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, JoinabilityFromSharedColumnNames) {
  Catalog catalog;
  const TableId a = *catalog.AddTable(MakeTable("a", {"uid", "x"}));
  const TableId b = *catalog.AddTable(MakeTable("b", {"uid", "y"}));
  const TableId c = *catalog.AddTable(MakeTable("c", {"z"}));
  EXPECT_TRUE(catalog.Joinable(a, b));
  EXPECT_FALSE(catalog.Joinable(a, c));
  const auto shared = catalog.SharedColumns(a, b);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0], "uid");
}

TEST(CatalogTest, SixtyFourTableLimit) {
  Catalog catalog;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        catalog.AddTable(MakeTable("t" + std::to_string(i), {"k"})).ok());
  }
  EXPECT_EQ(catalog.AddTable(MakeTable("overflow", {"k"})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, AllTables) {
  Catalog catalog;
  (void)*catalog.AddTable(MakeTable("a", {"x"}));
  (void)*catalog.AddTable(MakeTable("b", {"x"}));
  EXPECT_EQ(catalog.AllTables().size(), 2);
}

TEST(TableDefTest, FindColumn) {
  const TableDef def = MakeTable("t", {"a", "b", "c"});
  EXPECT_EQ(def.FindColumn("b"), 1);
  EXPECT_EQ(def.FindColumn("nope"), -1);
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "string");
}

}  // namespace
}  // namespace dsm
