#include "catalog/table_set.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(TableSetTest, EmptyByDefault) {
  TableSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
}

TEST(TableSetTest, AddRemoveContains) {
  TableSet s;
  s.Add(3);
  s.Add(10);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.size(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(TableSetTest, OfSingleton) {
  const TableSet s = TableSet::Of(63);
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(63));
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a;
  a.Add(1);
  a.Add(2);
  TableSet b;
  b.Add(2);
  b.Add(3);
  EXPECT_EQ(a.Union(b).size(), 3);
  EXPECT_EQ(a.Intersect(b).size(), 1);
  EXPECT_TRUE(a.Intersect(b).Contains(2));
  EXPECT_EQ(a.Minus(b).size(), 1);
  EXPECT_TRUE(a.Minus(b).Contains(1));
}

TEST(TableSetTest, ContainsAllAndIntersects) {
  TableSet big;
  big.Add(1);
  big.Add(2);
  big.Add(3);
  TableSet sub;
  sub.Add(1);
  sub.Add(3);
  EXPECT_TRUE(big.ContainsAll(sub));
  EXPECT_FALSE(sub.ContainsAll(big));
  EXPECT_TRUE(big.Intersects(sub));
  EXPECT_FALSE(sub.Intersects(TableSet::Of(9)));
}

TEST(TableSetTest, ToVectorSorted) {
  TableSet s;
  s.Add(40);
  s.Add(2);
  s.Add(17);
  const std::vector<TableId> v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 2u);
  EXPECT_EQ(v[1], 17u);
  EXPECT_EQ(v[2], 40u);
}

TEST(TableSetTest, EqualityAndOrdering) {
  EXPECT_EQ(TableSet::Of(5), TableSet::Of(5));
  EXPECT_FALSE(TableSet::Of(5) == TableSet::Of(6));
  EXPECT_TRUE(TableSet::Of(5) < TableSet::Of(6));
}

TEST(TableSetTest, HashDistinguishesNearbySets) {
  TableSetHash h;
  EXPECT_NE(h(TableSet::Of(0)), h(TableSet::Of(1)));
  EXPECT_EQ(h(TableSet::Of(7)), h(TableSet::Of(7)));
}

}  // namespace
}  // namespace dsm
