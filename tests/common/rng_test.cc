#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace dsm {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Zipf(4, 0.0)];
  for (const int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(RngTest, ZipfSkewPrefersLowIndices) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.Zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(17);
  const std::vector<uint32_t> s = rng.Sample(20, 8);
  EXPECT_EQ(s.size(), 8u);
  const std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (const uint32_t v : s) EXPECT_LT(v, 20u);
}

}  // namespace
}  // namespace dsm
