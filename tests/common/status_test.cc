#include "common/status.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DSM_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  DSM_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dsm
