#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsm {
namespace {

// Every test runs against the process-wide injector; reset around each so
// armed points never leak between tests (the RAII guard is itself under
// test here).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultTest, UnarmedPointNeverFires) {
  auto& injector = FaultInjector::Global();
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.ShouldFail("never/armed"));
  }
  EXPECT_FALSE(injector.armed("never/armed"));
  EXPECT_EQ(injector.hits("never/armed"), 10);
  EXPECT_EQ(injector.fires("never/armed"), 0);
}

TEST_F(FaultTest, DefaultSpecFiresEveryHit) {
  ScopedFault fault("always");
  auto& injector = FaultInjector::Global();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(DSM_INJECT_FAULT("always"));
  }
  EXPECT_EQ(injector.hits("always"), 5);
  EXPECT_EQ(injector.fires("always"), 5);
}

TEST_F(FaultTest, FailAfterSkipsEarlyHits) {
  FaultSpec spec;
  spec.fail_after = 3;
  ScopedFault fault("third-time", spec);
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.ShouldFail("third-time"));
  EXPECT_FALSE(injector.ShouldFail("third-time"));
  EXPECT_FALSE(injector.ShouldFail("third-time"));
  EXPECT_TRUE(injector.ShouldFail("third-time"));
  EXPECT_TRUE(injector.ShouldFail("third-time"));
}

TEST_F(FaultTest, MaxFiresBoundsTheDamage) {
  FaultSpec spec;
  spec.max_fires = 2;
  ScopedFault fault("twice", spec);
  auto& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.ShouldFail("twice"));
  EXPECT_TRUE(injector.ShouldFail("twice"));
  EXPECT_FALSE(injector.ShouldFail("twice"));
  EXPECT_FALSE(injector.ShouldFail("twice"));
  EXPECT_EQ(injector.fires("twice"), 2);
  EXPECT_EQ(injector.hits("twice"), 4);
}

TEST_F(FaultTest, SingleCrashSpec) {
  // fail_after + max_fires = 1 models "exactly the N+1-th op crashes".
  FaultSpec spec;
  spec.fail_after = 2;
  spec.max_fires = 1;
  ScopedFault fault("one-crash", spec);
  auto& injector = FaultInjector::Global();
  std::vector<bool> outcomes;
  for (int i = 0; i < 6; ++i) {
    outcomes.push_back(injector.ShouldFail("one-crash"));
  }
  EXPECT_EQ(outcomes,
            (std::vector<bool>{false, false, true, false, false, false}));
}

TEST_F(FaultTest, ProbabilisticTriggerIsDeterministicUnderSeed) {
  auto& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.probability = 0.5;

  injector.Seed(42);
  injector.Arm("coin", spec);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(injector.ShouldFail("coin"));

  // Re-seeding + re-arming replays the exact same fire pattern.
  injector.Seed(42);
  injector.Arm("coin", spec);
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) second.push_back(injector.ShouldFail("coin"));

  EXPECT_EQ(first, second);
  // And p=0.5 over 64 draws fires at least once but not always.
  int fires = 0;
  for (const bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
  injector.Disarm("coin");
}

TEST_F(FaultTest, ArmReplacesSpecAndResetsCounters) {
  auto& injector = FaultInjector::Global();
  injector.Arm("p");
  EXPECT_TRUE(injector.ShouldFail("p"));
  EXPECT_EQ(injector.hits("p"), 1);
  FaultSpec never;
  never.probability = 0.0;
  injector.Arm("p", never);
  EXPECT_EQ(injector.hits("p"), 0);
  EXPECT_FALSE(injector.ShouldFail("p"));
  injector.Disarm("p");
}

TEST_F(FaultTest, DisarmStopsFiringButKeepsCounters) {
  auto& injector = FaultInjector::Global();
  injector.Arm("d");
  EXPECT_TRUE(injector.ShouldFail("d"));
  injector.Disarm("d");
  EXPECT_FALSE(injector.armed("d"));
  EXPECT_FALSE(injector.ShouldFail("d"));
  EXPECT_EQ(injector.hits("d"), 2);
  EXPECT_EQ(injector.fires("d"), 1);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
  auto& injector = FaultInjector::Global();
  {
    ScopedFault fault("scoped");
    EXPECT_TRUE(injector.armed("scoped"));
    EXPECT_TRUE(DSM_INJECT_FAULT("scoped"));
  }
  EXPECT_FALSE(injector.armed("scoped"));
  EXPECT_FALSE(DSM_INJECT_FAULT("scoped"));
}

TEST_F(FaultTest, ResetClearsEverything) {
  auto& injector = FaultInjector::Global();
  injector.Arm("r");
  EXPECT_TRUE(injector.ShouldFail("r"));
  injector.Reset();
  EXPECT_FALSE(injector.armed("r"));
  EXPECT_EQ(injector.hits("r"), 0);
  EXPECT_EQ(injector.fires("r"), 0);
  EXPECT_FALSE(injector.ShouldFail("r"));
}

}  // namespace
}  // namespace dsm
