#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dsm {
namespace {

ThreadPoolOptions Opts(int n) {
  ThreadPoolOptions options;
  options.num_threads = n;
  return options;
}

// Temporarily overrides DSM_THREADS for one test.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      unsetenv(name);
    } else {
      setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(ResolveThreadCountTest, ExplicitCountWins) {
  ScopedEnv env("DSM_THREADS", "7");
  EXPECT_EQ(ResolveThreadCount(Opts(3)), 3);
  EXPECT_EQ(ResolveThreadCount(Opts(1)), 1);
}

TEST(ResolveThreadCountTest, EnvVarUsedWhenAuto) {
  ScopedEnv env("DSM_THREADS", "5");
  EXPECT_EQ(ResolveThreadCount(Opts(0)), 5);
}

TEST(ResolveThreadCountTest, MalformedEnvStaysSerial) {
  {
    ScopedEnv env("DSM_THREADS", "banana");
    EXPECT_EQ(ResolveThreadCount(Opts(0)), 1);
  }
  {
    ScopedEnv env("DSM_THREADS", "0");
    EXPECT_EQ(ResolveThreadCount(Opts(0)), 1);
  }
  {
    ScopedEnv env("DSM_THREADS", "-2");
    EXPECT_EQ(ResolveThreadCount(Opts(0)), 1);
  }
}

TEST(ResolveThreadCountTest, AutoWithoutEnvIsAtLeastOne) {
  ScopedEnv env("DSM_THREADS", nullptr);
  EXPECT_GE(ResolveThreadCount(Opts(0)), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInSubmissionOrder) {
  ThreadPool pool(Opts(1));
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&wg, [&order, i] { order.push_back(i); });
    // Inline mode: the task has already run when Submit returns.
    ASSERT_EQ(order.size(), static_cast<size_t>(i + 1));
  }
  wg.Wait();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForFillsEverySlot) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(Opts(threads));
    std::vector<size_t> out(200, 0);
    pool.ParallelFor(out.size(), [&out](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i) << "threads=" << threads << " slot=" << i;
    }
  }
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossPoolSizes) {
  auto run = [](int threads) {
    ThreadPool pool(Opts(threads));
    std::vector<uint64_t> out(64, 0);
    pool.ParallelFor(out.size(),
                     [&out](size_t i) { out[i] = i * 2654435761u + 1; });
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, ParallelForRethrowsTaskException) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(Opts(threads));
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.ParallelFor(10,
                         [&ran](size_t i) {
                           ran.fetch_add(1);
                           if (i == 3) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The rest of the batch still ran; the pool stays usable.
    EXPECT_EQ(ran.load(), 10) << "threads=" << threads;
    std::atomic<int> after{0};
    pool.ParallelFor(4, [&after](size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 4);
  }
}

TEST(ThreadPoolTest, WaitGroupRethrowsFirstException) {
  ThreadPool pool(Opts(1));  // inline: submission order == execution order
  WaitGroup wg;
  pool.Submit(&wg, [] { throw std::runtime_error("first"); });
  pool.Submit(&wg, [] { throw std::logic_error("second"); });
  try {
    wg.Wait();
    FAIL() << "Wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(Opts(threads));
    std::vector<std::vector<size_t>> grid(6);
    pool.ParallelFor(grid.size(), [&](size_t i) {
      grid[i].assign(5, 0);
      // Re-entrant submission must not deadlock on the pool's own queue;
      // it runs inline on this worker.
      pool.ParallelFor(5, [&grid, i](size_t j) { grid[i][j] = i * 10 + j; });
    });
    for (size_t i = 0; i < grid.size(); ++i) {
      for (size_t j = 0; j < grid[i].size(); ++j) {
        EXPECT_EQ(grid[i][j], i * 10 + j) << "threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(Opts(4));
  std::atomic<uint64_t> sum{0};
  WaitGroup wg;
  for (uint64_t i = 1; i <= 1000; ++i) {
    pool.Submit(&wg, [&sum, i] { sum.fetch_add(i); });
  }
  wg.Wait();
  EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(Opts(2));
  EXPECT_FALSE(pool.OnWorkerThread());
  std::atomic<int> on_worker{0};
  pool.ParallelFor(8, [&](size_t) {
    if (pool.OnWorkerThread()) on_worker.fetch_add(1);
  });
  EXPECT_EQ(on_worker.load(), 8);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, EmptyAndSingletonBatches) {
  ThreadPool pool(Opts(4));
  pool.ParallelFor(0, [](size_t) { FAIL() << "no tasks expected"; });
  int ran = 0;
  // n == 1 runs inline on the caller: no synchronization needed.
  pool.ParallelFor(1, [&ran](size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
  WaitGroup wg;
  wg.Wait();  // nothing pending: returns immediately
}

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  ThreadPool& pool = ThreadPool::Shared();
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<int> ran{0};
  pool.ParallelFor(4, [&ran](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace dsm
