// Property tests for the compact columnar data plane (DESIGN.md §12),
// exercised against both row encodings:
//  * WithColumnOrder permute -> restore is the identity;
//  * projection commutes with natural join when the projected-away columns
//    are not join columns (bag semantics: sums distribute over products);
//  * BagEquals agrees across encodings;
//  * the pre-hashed tables stay correct under forced hash collisions
//    (probe chains, tombstones, row-id recycling);
//  * Relation::Filter on an absent column shares the row store instead of
//    copying it, and the first later mutation pays exactly one deep copy.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "maintain/relation.h"
#include "maintain/tuple_store.h"
#include "maintain/value_dict.h"

namespace dsm {
namespace {

constexpr RowEncoding kEncodings[] = {RowEncoding::kCompact,
                                      RowEncoding::kLegacy};

Value RandomValue(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return Value(rng.UniformInt(-5, 5));
    case 1:
      return Value(static_cast<double>(rng.UniformInt(-4, 4)) / 2.0);
    case 2:
      return Value(kInlineIntMax + rng.UniformInt(1, 3));  // wide-int path
    default:
      return Value("s" + std::to_string(rng.UniformInt(0, 6)));
  }
}

std::vector<std::pair<Tuple, int64_t>> RandomBag(Rng& rng, size_t arity,
                                                 int rows) {
  std::vector<std::pair<Tuple, int64_t>> bag;
  for (int i = 0; i < rows; ++i) {
    Tuple t;
    for (size_t c = 0; c < arity; ++c) t.push_back(RandomValue(rng));
    bag.emplace_back(std::move(t), rng.Bernoulli(0.25) ? 2 : 1);
  }
  return bag;
}

Relation Materialize(const std::vector<std::string>& columns,
                     const std::vector<std::pair<Tuple, int64_t>>& bag,
                     RowEncoding encoding) {
  Relation rel(columns, encoding);
  for (const auto& [tuple, count] : bag) rel.Apply(tuple, count);
  return rel;
}

class ColumnarPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarPropertyTest, PermuteThenRestoreIsIdentity) {
  Rng rng(GetParam());
  const std::vector<std::string> columns = {"a", "b", "c", "d"};
  const auto bag = RandomBag(rng, columns.size(), 60);
  for (const RowEncoding encoding : kEncodings) {
    const Relation rel = Materialize(columns, bag, encoding);
    const std::vector<std::string> permuted = {"c", "a", "d", "b"};
    const Relation round_trip =
        rel.WithColumnOrder(permuted).WithColumnOrder(columns);
    EXPECT_TRUE(round_trip.BagEquals(rel))
        << "encoding=" << static_cast<int>(encoding);
    EXPECT_EQ(round_trip.columns(), rel.columns());
  }
}

TEST_P(ColumnarPropertyTest, ProjectionCommutesWithJoin) {
  Rng rng(GetParam());
  // a(k, a1), b(k, b1): projecting a1 away before or after the join gives
  // the same bag — sums of multiplicities distribute over the join's
  // products when the dropped column is not a join column.
  const auto bag_a = RandomBag(rng, 2, 40);
  const auto bag_b = RandomBag(rng, 2, 40);
  for (const RowEncoding encoding : kEncodings) {
    const Relation a = Materialize({"k", "a1"}, bag_a, encoding);
    const Relation b = Materialize({"k", "b1"}, bag_b, encoding);
    uint64_t work_after = 0;
    const Relation project_after =
        NaturalJoin(a, b, &work_after).Project({"k", "b1"});
    uint64_t work_before = 0;
    const Relation project_before =
        NaturalJoin(a.Project({"k"}), b, &work_before);
    EXPECT_TRUE(project_after.BagEquals(project_before))
        << "encoding=" << static_cast<int>(encoding);
  }
}

TEST_P(ColumnarPropertyTest, BagEqualsAgreesAcrossEncodings) {
  Rng rng(GetParam());
  const std::vector<std::string> columns = {"x", "y", "z"};
  const auto bag = RandomBag(rng, columns.size(), 50);
  const Relation compact = Materialize(columns, bag, RowEncoding::kCompact);
  const Relation legacy = Materialize(columns, bag, RowEncoding::kLegacy);
  EXPECT_TRUE(compact.BagEquals(legacy));
  EXPECT_TRUE(legacy.BagEquals(compact));
  EXPECT_TRUE(compact.WithEncoding(RowEncoding::kLegacy).BagEquals(compact));
  EXPECT_TRUE(legacy.WithEncoding(RowEncoding::kCompact).BagEquals(legacy));

  // Any single-tuple perturbation breaks equality, in either direction.
  Relation perturbed = legacy;
  perturbed.Apply(bag.front().first, +1);
  EXPECT_FALSE(compact.BagEquals(perturbed));
  EXPECT_FALSE(perturbed.BagEquals(compact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarPropertyTest,
                         ::testing::Values(3, 17, 4242, 90210));

TEST(TupleStoreCollisionTest, ForcedCollisionsKeepTuplesDistinct) {
  // Drive 48 distinct tuples into one probe chain (same hash), through
  // several rehashes, half-deletion (tombstones) and row-id recycling. A
  // table that ever trusts the hash alone, or drops a chain across a
  // tombstone, fails this.
  TupleStore store(1);
  constexpr uint64_t kHash = 0x9e3779b97f4a7c15ull;
  constexpr uint64_t kN = 48;
  for (uint64_t i = 0; i < kN; ++i) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    store.ApplyWithHashForTest(&s, kHash, static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(store.live_rows(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    EXPECT_EQ(store.Count(&s, kHash), static_cast<int64_t>(i + 1)) << i;
  }
  // Delete the even tuples; odd survivors must stay reachable through the
  // tombstones left mid-chain.
  for (uint64_t i = 0; i < kN; i += 2) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    store.ApplyWithHashForTest(&s, kHash, -static_cast<int64_t>(i + 1));
  }
  EXPECT_EQ(store.live_rows(), kN / 2);
  for (uint64_t i = 0; i < kN; ++i) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    EXPECT_EQ(store.Count(&s, kHash),
              i % 2 == 0 ? 0 : static_cast<int64_t>(i + 1))
        << i;
  }
  // Reinsert the deleted half: recycled row ids, still all distinct.
  for (uint64_t i = 0; i < kN; i += 2) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    store.ApplyWithHashForTest(&s, kHash, 7);
  }
  EXPECT_EQ(store.live_rows(), kN);
  for (uint64_t i = 0; i < kN; i += 2) {
    const Slot s = MakeSlot(SlotTag::kInlineInt, i);
    EXPECT_EQ(store.Count(&s, kHash), 7) << i;
  }
}

Tuple T2(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

TEST(RelationCowTest, FilterOnAbsentColumnSharesTheStore) {
  Relation rel({"a", "b"}, RowEncoding::kCompact);
  for (int64_t i = 0; i < 100; ++i) rel.Apply(T2(i, i % 7), 1);

  const TupleStoreStats& stats = TupleStoreStats::Global();
  const uint64_t copies_before =
      stats.deep_copies.load(std::memory_order_relaxed);
  Relation same = rel.Filter("absent_column", CompareOp::kLt, 3.0);
  // The unfiltered result is the same store, not a copy of it.
  EXPECT_EQ(&same.store(), &rel.store());
  EXPECT_EQ(stats.deep_copies.load(std::memory_order_relaxed),
            copies_before);
  EXPECT_TRUE(same.BagEquals(rel));

  // Copy-on-write: the first mutation of the shared result pays exactly
  // one deep copy and leaves the original untouched.
  same.Apply(T2(999, 999), 1);
  EXPECT_EQ(stats.deep_copies.load(std::memory_order_relaxed),
            copies_before + 1);
  EXPECT_NE(&same.store(), &rel.store());
  EXPECT_EQ(rel.Count(T2(999, 999)), 0);
  EXPECT_EQ(same.Count(T2(999, 999)), 1);

  // Mutating the *original* after the fork is also copy-free: it is the
  // store's sole owner again.
  const uint64_t copies_after_fork =
      stats.deep_copies.load(std::memory_order_relaxed);
  rel.Apply(T2(555, 555), 1);
  EXPECT_EQ(stats.deep_copies.load(std::memory_order_relaxed),
            copies_after_fork);
  EXPECT_EQ(same.Count(T2(555, 555)), 0);
}

TEST(RelationCowTest, LegacyFilterOnAbsentColumnStillCopies) {
  // The legacy encoding has no shared store; the absent-column path must
  // still return an equal, independent relation.
  Relation rel({"a", "b"}, RowEncoding::kLegacy);
  for (int64_t i = 0; i < 20; ++i) rel.Apply(T2(i, i), 1);
  Relation same = rel.Filter("absent_column", CompareOp::kGt, 0.0);
  EXPECT_TRUE(same.BagEquals(rel));
  same.Apply(T2(999, 999), 1);
  EXPECT_EQ(rel.Count(T2(999, 999)), 0);
}

}  // namespace
}  // namespace dsm
