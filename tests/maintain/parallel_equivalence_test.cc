// Randomized equivalence suite for the parallel, cache-reusing maintenance
// engine: for random view populations and random insert/delete streams, the
// batched parallel path must leave every view bag-equal to a from-scratch
// recomputation, and results plus measured join work must be identical for
// every pool size and with the operand cache on or off.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "maintain/delta_engine.h"

namespace dsm {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (const int64_t v : values) t.emplace_back(v);
  return t;
}

// A chain schema: consecutive tables share one column, so any contiguous
// table range forms a connected join.
constexpr int kNumTables = 4;

Catalog MakeChainCatalog() {
  Catalog catalog;
  for (int i = 0; i < kNumTables; ++i) {
    TableDef def;
    def.name = "T" + std::to_string(i);
    for (const int c : {i, i + 1}) {
      ColumnDef col;
      col.name = "c" + std::to_string(c);
      col.distinct_values = 8;
      col.min_value = 0;
      col.max_value = 8;
      def.columns.push_back(col);
    }
    *catalog.AddTable(def);
  }
  return catalog;
}

struct Scenario {
  std::vector<ViewKey> views;
  // Outer: rounds handed to one ApplyUpdates call. A round may contain
  // several entries for the same table (exercises coalescing).
  std::vector<std::vector<TableUpdate>> rounds;
};

Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario scenario;

  const int num_views = 2 + static_cast<int>(rng.UniformInt(0, 4));
  for (int v = 0; v < num_views; ++v) {
    const int lo = static_cast<int>(rng.UniformInt(0, kNumTables - 2));
    const int hi =
        lo + 1 +
        static_cast<int>(rng.UniformInt(0, kNumTables - lo - 2));
    TableSet tables;
    for (int t = lo; t <= hi; ++t) tables.Add(static_cast<TableId>(t));
    std::vector<Predicate> preds;
    while (rng.Bernoulli(0.5) && preds.size() < 2) {
      Predicate p;
      p.table = static_cast<TableId>(
          rng.UniformInt(lo, hi));
      p.column = static_cast<uint16_t>(rng.UniformInt(0, 1));
      p.op = rng.Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kGt;
      p.value = static_cast<double>(rng.UniformInt(1, 6));
      preds.push_back(p);
    }
    scenario.views.emplace_back(tables, preds);
  }

  std::vector<std::vector<Tuple>> live(kNumTables);
  const int num_rounds = 10;
  for (int round = 0; round < num_rounds; ++round) {
    std::vector<TableUpdate> updates;
    for (int t = 0; t < kNumTables; ++t) {
      if (!rng.Bernoulli(0.8)) continue;
      // Occasionally split one table's round into two batch entries.
      const int entries = rng.Bernoulli(0.25) ? 2 : 1;
      for (int e = 0; e < entries; ++e) {
        TableUpdate update;
        update.table = static_cast<TableId>(t);
        const int ops = 1 + static_cast<int>(rng.UniformInt(0, 4));
        for (int i = 0; i < ops; ++i) {
          if (!live[static_cast<size_t>(t)].empty() && rng.Bernoulli(0.3)) {
            auto& pool = live[static_cast<size_t>(t)];
            const size_t idx = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
            update.deletes.push_back(pool[idx]);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
          } else {
            const Tuple tuple =
                T({rng.UniformInt(0, 7), rng.UniformInt(0, 7)});
            live[static_cast<size_t>(t)].push_back(tuple);
            update.inserts.push_back(tuple);
          }
        }
        updates.push_back(std::move(update));
      }
    }
    if (!updates.empty()) scenario.rounds.push_back(std::move(updates));
  }
  return scenario;
}

struct RunOutcome {
  std::vector<Relation> views;
  uint64_t work = 0;
  size_t cached_operands = 0;
};

RunOutcome Replay(const Catalog& catalog, const Scenario& scenario,
                  int pool_threads, bool operand_cache) {
  DeltaEngineOptions options;
  options.pool.num_threads = pool_threads;
  options.operand_cache = operand_cache;
  DeltaEngine engine(&catalog, options);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    EXPECT_TRUE(engine.RegisterBase(t).ok());
  }
  std::vector<ViewId> ids;
  for (const ViewKey& key : scenario.views) {
    const auto id = engine.RegisterView(key);
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (const std::vector<TableUpdate>& round : scenario.rounds) {
    EXPECT_TRUE(engine.ApplyUpdates(round).ok());
  }
  RunOutcome outcome;
  outcome.work = engine.work();
  outcome.cached_operands = engine.num_cached_operands();
  for (const ViewId id : ids) {
    // Every incrementally maintained view matches the from-scratch oracle.
    const auto expected = engine.Recompute(engine.view_key(id));
    EXPECT_TRUE(expected.ok());
    EXPECT_TRUE(engine.view(id)->BagEquals(*expected))
        << "view " << id << " diverged (threads=" << pool_threads
        << ", cache=" << operand_cache << ")";
    outcome.views.push_back(*engine.view(id));
  }
  return outcome;
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalenceTest, PoolSizesAndCacheModesAgree) {
  const Catalog catalog = MakeChainCatalog();
  const Scenario scenario = MakeScenario(GetParam());
  ASSERT_FALSE(scenario.rounds.empty());

  const RunOutcome reference =
      Replay(catalog, scenario, /*pool_threads=*/1, /*operand_cache=*/true);
  EXPECT_GT(reference.cached_operands, 0u);

  for (const int threads : {2, 8}) {
    for (const bool cache : {true, false}) {
      const RunOutcome outcome = Replay(catalog, scenario, threads, cache);
      ASSERT_EQ(outcome.views.size(), reference.views.size());
      for (size_t v = 0; v < outcome.views.size(); ++v) {
        EXPECT_TRUE(outcome.views[v].BagEquals(reference.views[v]))
            << "view " << v << " differs from serial reference (threads="
            << threads << ", cache=" << cache << ")";
      }
      // Join work is content-determined: caching changes where operands
      // come from and threading changes who probes, never which tuple
      // pairs meet.
      EXPECT_EQ(outcome.work, reference.work)
          << "threads=" << threads << ", cache=" << cache;
      if (!cache) {
        EXPECT_EQ(outcome.cached_operands, 0u);
      }
    }
  }
}

TEST_P(ParallelEquivalenceTest, BatchedMatchesSequentialApplyUpdate) {
  const Catalog catalog = MakeChainCatalog();
  const Scenario scenario = MakeScenario(GetParam());

  const RunOutcome batched =
      Replay(catalog, scenario, /*pool_threads=*/8, /*operand_cache=*/true);

  DeltaEngineOptions options;
  options.pool.num_threads = 1;
  DeltaEngine sequential(&catalog, options);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    ASSERT_TRUE(sequential.RegisterBase(t).ok());
  }
  std::vector<ViewId> ids;
  for (const ViewKey& key : scenario.views) {
    ids.push_back(*sequential.RegisterView(key));
  }
  for (const std::vector<TableUpdate>& round : scenario.rounds) {
    for (const TableUpdate& update : round) {
      ASSERT_TRUE(
          sequential.ApplyUpdate(update.table, update.inserts, update.deletes)
              .ok());
    }
  }
  ASSERT_EQ(ids.size(), batched.views.size());
  for (size_t v = 0; v < ids.size(); ++v) {
    EXPECT_TRUE(sequential.view(ids[v])->BagEquals(batched.views[v]))
        << "view " << v << ": batched and per-update paths diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 8675309));

}  // namespace
}  // namespace dsm
