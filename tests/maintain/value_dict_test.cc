// Unit tests for the process-wide value dictionary and the tagged 8-byte
// slot encoding (maintain/value_dict.h): round trips across the whole
// Value domain, canonical interning (equal Values <=> equal slots), the
// no-intern Find path, and SlotSatisfies/ValueSatisfies agreement.

#include "maintain/value_dict.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "maintain/value.h"

namespace dsm {
namespace {

TEST(SlotEncodingTest, InlineIntRoundTrip) {
  ValueDict& dict = ValueDict::Global();
  const std::vector<int64_t> ints = {
      0, 1, -1, 42, -42, 1 << 20, -(1 << 20), kInlineIntMax, kInlineIntMin,
      kInlineIntMax - 1, kInlineIntMin + 1};
  for (const int64_t v : ints) {
    const Slot s = dict.Encode(Value(v));
    EXPECT_EQ(GetSlotTag(s), SlotTag::kInlineInt) << v;
    EXPECT_EQ(InlineIntValue(s), v);
    EXPECT_EQ(dict.Decode(s), Value(v));
  }
}

TEST(SlotEncodingTest, WideIntTakesDictionaryPath) {
  ValueDict& dict = ValueDict::Global();
  const std::vector<int64_t> wides = {
      kInlineIntMax + 1, kInlineIntMin - 1,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min()};
  for (const int64_t v : wides) {
    const Slot s = dict.Encode(Value(v));
    EXPECT_EQ(GetSlotTag(s), SlotTag::kWideInt) << v;
    EXPECT_EQ(dict.Decode(s), Value(v));
    // Canonical: re-encoding yields the identical slot.
    EXPECT_EQ(dict.Encode(Value(v)), s);
  }
}

TEST(SlotEncodingTest, DoubleRoundTripAndNegativeZeroCanonical) {
  ValueDict& dict = ValueDict::Global();
  for (const double v : {3.25, -3.25, 0.5, 1e300, -1e-300, 0.0}) {
    const Slot s = dict.Encode(Value(v));
    EXPECT_EQ(GetSlotTag(s), SlotTag::kDouble) << v;
    EXPECT_EQ(dict.Decode(s), Value(v));
  }
  // -0.0 == +0.0 as Values, so they must share one slot.
  EXPECT_EQ(dict.Encode(Value(-0.0)), dict.Encode(Value(0.0)));
}

TEST(SlotEncodingTest, IntAndDoubleOfSameMagnitudeStayDistinct) {
  ValueDict& dict = ValueDict::Global();
  // Value(5) != Value(5.0) (different variant alternatives); the slots
  // must differ too, or bags would merge rows the legacy store keeps apart.
  EXPECT_NE(dict.Encode(Value(int64_t{5})), dict.Encode(Value(5.0)));
}

TEST(SlotEncodingTest, StringRoundTripAndCanonicalInterning) {
  ValueDict& dict = ValueDict::Global();
  const Slot a1 = dict.Encode(Value(std::string("alpha")));
  const Slot a2 = dict.Encode(Value(std::string("alpha")));
  const Slot b = dict.Encode(Value(std::string("beta")));
  const Slot empty = dict.Encode(Value(std::string()));
  EXPECT_EQ(GetSlotTag(a1), SlotTag::kString);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, empty);
  EXPECT_EQ(dict.Decode(a1), Value(std::string("alpha")));
  EXPECT_EQ(dict.Decode(empty), Value(std::string()));
}

TEST(SlotEncodingTest, FindDoesNotIntern) {
  ValueDict& dict = ValueDict::Global();
  const size_t before = dict.num_entries();
  Slot out = 0;
  // A never-encoded value is not found and does not grow the dictionary.
  EXPECT_FALSE(
      dict.Find(Value(std::string("value-dict-test-never-interned")), &out));
  EXPECT_EQ(dict.num_entries(), before);
  // Inline ints need no dictionary and always resolve.
  EXPECT_TRUE(dict.Find(Value(int64_t{17}), &out));
  EXPECT_EQ(InlineIntValue(out), 17);
  // Once encoded, Find returns the canonical slot.
  const Slot interned =
      dict.Encode(Value(std::string("value-dict-test-interned")));
  EXPECT_TRUE(
      dict.Find(Value(std::string("value-dict-test-interned")), &out));
  EXPECT_EQ(out, interned);
}

TEST(SlotEncodingTest, SlotNumericMatchesValueKind) {
  ValueDict& dict = ValueDict::Global();
  double out = 0.0;
  EXPECT_TRUE(dict.SlotNumeric(dict.Encode(Value(int64_t{-7})), &out));
  EXPECT_EQ(out, -7.0);
  EXPECT_TRUE(dict.SlotNumeric(dict.Encode(Value(2.5)), &out));
  EXPECT_EQ(out, 2.5);
  EXPECT_TRUE(
      dict.SlotNumeric(dict.Encode(Value(kInlineIntMax + 2)), &out));
  EXPECT_EQ(out, static_cast<double>(kInlineIntMax + 2));
  EXPECT_FALSE(dict.SlotNumeric(dict.Encode(Value(std::string("x"))), &out));
}

TEST(SlotEncodingTest, SlotSatisfiesAgreesWithValueSatisfies) {
  ValueDict& dict = ValueDict::Global();
  const std::vector<Value> values = {
      Value(int64_t{0}),  Value(int64_t{3}),  Value(int64_t{-3}),
      Value(3.0),         Value(2.5),         Value(-0.0),
      Value(kInlineIntMax), Value(kInlineIntMin - 1),
      Value(std::string("str")), Value(std::string())};
  const std::vector<double> constants = {-3.0, 0.0, 2.5, 3.0, 100.0};
  for (const Value& v : values) {
    const Slot s = dict.Encode(v);
    for (const CompareOp op :
         {CompareOp::kLt, CompareOp::kGt, CompareOp::kEq}) {
      for (const double c : constants) {
        EXPECT_EQ(SlotSatisfies(s, op, c), ValueSatisfies(v, op, c))
            << ValueToString(v) << " op=" << static_cast<int>(op)
            << " c=" << c;
      }
    }
  }
}

TEST(TupleHashTest, MixSeparatesPermutationsAndConcatenations) {
  const TupleHash hash;
  // Order matters.
  EXPECT_NE(hash(Tuple{Value(int64_t{1}), Value(int64_t{2})}),
            hash(Tuple{Value(int64_t{2}), Value(int64_t{1})}));
  // Variant alternative matters: int 5 vs double 5.0.
  EXPECT_NE(hash(Tuple{Value(int64_t{5})}), hash(Tuple{Value(5.0)}));
  // String boundaries matter: ("ab","c") vs ("a","bc") — the per-value
  // tag mixed between fields breaks concatenation ambiguity, a collision
  // family the pre-seeded mix was vulnerable to.
  EXPECT_NE(hash(Tuple{Value(std::string("ab")), Value(std::string("c"))}),
            hash(Tuple{Value(std::string("a")), Value(std::string("bc"))}));
  // Zero-ish values don't all collapse onto one hash.
  EXPECT_NE(hash(Tuple{Value(int64_t{0})}), hash(Tuple{}));
  EXPECT_NE(hash(Tuple{Value(int64_t{0})}),
            hash(Tuple{Value(int64_t{0}), Value(int64_t{0})}));
}

}  // namespace
}  // namespace dsm
