#include "maintain/delta_engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dsm {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (const int64_t v : values) t.emplace_back(v);
  return t;
}

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

class DeltaEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const char* name,
                      std::initializer_list<const char*> cols) {
      TableDef def;
      def.name = name;
      for (const char* c : cols) {
        ColumnDef col;
        col.name = c;
        col.distinct_values = 10;
        col.min_value = 0;
        col.max_value = 10;
        def.columns.push_back(col);
      }
      return *catalog_.AddTable(def);
    };
    users_ = add("USERS", {"uid", "age"});
    tweets_ = add("TWEETS", {"tid", "uid"});
    tags_ = add("TAGS", {"tid", "tag"});
  }

  Catalog catalog_;
  TableId users_ = 0, tweets_ = 0, tags_ = 0;
};

TEST_F(DeltaEngineTest, RegisterBaseOnce) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  EXPECT_EQ(engine.RegisterBase(users_).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.RegisterBase(99).code(), StatusCode::kInvalidArgument);
  ASSERT_NE(engine.base(users_), nullptr);
  EXPECT_EQ(engine.base(users_)->columns().size(), 2u);
  EXPECT_EQ(engine.base(tweets_), nullptr);
}

TEST_F(DeltaEngineTest, ViewOverExistingDataInitialized) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30})}, {}).ok());
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1})}, {}).ok());

  const auto view = engine.RegisterView(ViewKey(TS({users_, tweets_})));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(engine.view(*view)->TotalSize(), 1);
}

TEST_F(DeltaEngineTest, InsertPropagatesToView) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  const ViewId v = *engine.RegisterView(ViewKey(TS({users_, tweets_})));

  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30}), T({2, 40})}, {}).ok());
  EXPECT_EQ(engine.view(v)->TotalSize(), 0);  // no tweets yet
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1}), T({101, 1})}, {}).ok());
  EXPECT_EQ(engine.view(v)->TotalSize(), 2);  // uid 1 joined twice
}

TEST_F(DeltaEngineTest, DeletePropagatesToView) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  const ViewId v = *engine.RegisterView(ViewKey(TS({users_, tweets_})));
  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30})}, {}).ok());
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1})}, {}).ok());
  ASSERT_EQ(engine.view(v)->TotalSize(), 1);

  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {}, {T({100, 1})}).ok());
  EXPECT_EQ(engine.view(v)->TotalSize(), 0);
}

TEST_F(DeltaEngineTest, PredicatedViewFiltersUpdates) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  Predicate p;
  p.table = users_;
  p.column = 1;  // age
  p.op = CompareOp::kGt;
  p.value = 35;
  const ViewId v =
      *engine.RegisterView(ViewKey(TS({users_, tweets_}), {p}));
  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30}), T({2, 40})}, {}).ok());
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1}), T({101, 2})}, {}).ok());
  // Only uid 2 (age 40) passes the filter.
  EXPECT_EQ(engine.view(v)->TotalSize(), 1);
}

TEST_F(DeltaEngineTest, ThreeWayViewMaintained) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  ASSERT_TRUE(engine.RegisterBase(tags_).ok());
  const ViewId v =
      *engine.RegisterView(ViewKey(TS({users_, tweets_, tags_})));
  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30})}, {}).ok());
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1})}, {}).ok());
  ASSERT_TRUE(engine.ApplyUpdate(tags_, {T({100, 7}), T({100, 8})}, {}).ok());
  EXPECT_EQ(engine.view(v)->TotalSize(), 2);
}

TEST_F(DeltaEngineTest, ViewOverUnregisteredBaseFails) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  EXPECT_EQ(
      engine.RegisterView(ViewKey(TS({users_, tweets_}))).status().code(),
      StatusCode::kNotFound);
}

TEST_F(DeltaEngineTest, UpdateToUnregisteredBaseFails) {
  DeltaEngine engine(&catalog_);
  EXPECT_EQ(engine.ApplyUpdate(users_, {T({1, 2})}, {}).code(),
            StatusCode::kNotFound);
}

TEST_F(DeltaEngineTest, WorkCounterAdvances) {
  DeltaEngine engine(&catalog_);
  ASSERT_TRUE(engine.RegisterBase(users_).ok());
  ASSERT_TRUE(engine.RegisterBase(tweets_).ok());
  (void)*engine.RegisterView(ViewKey(TS({users_, tweets_})));
  ASSERT_TRUE(engine.ApplyUpdate(users_, {T({1, 30})}, {}).ok());
  const uint64_t before = engine.work();
  ASSERT_TRUE(engine.ApplyUpdate(tweets_, {T({100, 1})}, {}).ok());
  EXPECT_GT(engine.work(), before);
}

// Property: after any random interleaving of inserts and deletes, the
// incrementally maintained view matches a from-scratch recomputation.
class DeltaEnginePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaEnginePropertyTest, IncrementalMatchesRecompute) {
  Catalog catalog;
  auto add = [&catalog](const char* name,
                        std::initializer_list<const char*> cols) {
    TableDef def;
    def.name = name;
    for (const char* c : cols) {
      ColumnDef col;
      col.name = c;
      def.columns.push_back(col);
    }
    return *catalog.AddTable(def);
  };
  const TableId r = add("R", {"k", "x"});
  const TableId s = add("S", {"k", "y"});
  const TableId t = add("T", {"y", "z"});

  DeltaEngine engine(&catalog);
  ASSERT_TRUE(engine.RegisterBase(r).ok());
  ASSERT_TRUE(engine.RegisterBase(s).ok());
  ASSERT_TRUE(engine.RegisterBase(t).ok());

  Predicate p;
  p.table = r;
  p.column = 1;  // x
  p.op = CompareOp::kLt;
  p.value = 4;
  TableSet rs;
  rs.Add(r);
  rs.Add(s);
  TableSet rst = rs;
  rst.Add(t);
  const ViewId v2 = *engine.RegisterView(ViewKey(rs));
  const ViewId v3 = *engine.RegisterView(ViewKey(rst, {p}));

  Rng rng(GetParam());
  // Track inserted tuples so deletes remove real rows.
  std::vector<std::vector<Tuple>> live(3);
  const TableId tables[] = {r, s, t};
  for (int step = 0; step < 120; ++step) {
    const size_t which = static_cast<size_t>(rng.UniformInt(0, 2));
    const TableId table = tables[which];
    if (!live[which].empty() && rng.Bernoulli(0.3)) {
      const size_t idx = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(live[which].size()) - 1));
      ASSERT_TRUE(
          engine.ApplyUpdate(table, {}, {live[which][idx]}).ok());
      live[which].erase(live[which].begin() +
                        static_cast<std::ptrdiff_t>(idx));
    } else {
      const Tuple tuple = T({rng.UniformInt(0, 5), rng.UniformInt(0, 5)});
      ASSERT_TRUE(engine.ApplyUpdate(table, {tuple}, {}).ok());
      live[which].push_back(tuple);
    }
  }

  const auto expect2 = engine.Recompute(engine.view_key(v2));
  ASSERT_TRUE(expect2.ok());
  EXPECT_TRUE(engine.view(v2)->BagEquals(*expect2));
  const auto expect3 = engine.Recompute(engine.view_key(v3));
  ASSERT_TRUE(expect3.ok());
  EXPECT_TRUE(engine.view(v3)->BagEquals(*expect3));
  // Views never go negative.
  engine.view(v3)->ForEachRow(
      [](const Tuple&, int64_t count) { EXPECT_GT(count, 0); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEnginePropertyTest,
                         ::testing::Values(1, 7, 42, 99, 1234, 777, 31337,
                                           2718, 1618, 555));

}  // namespace
}  // namespace dsm
