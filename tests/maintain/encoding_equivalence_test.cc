// Randomized equivalence suite for the compact columnar data plane: for
// random view populations over a string-keyed chain schema and random
// insert/delete churn, the compact engine (DeltaEngineOptions::compact_rows)
// must produce views bag-equal to the legacy row store's, with identical
// measured join work, for every pool size {1, 2, 8} and with the operand
// cache on or off. This is the toggle matrix of DESIGN.md §12.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "maintain/delta_engine.h"

namespace dsm {
namespace {

// A chain schema: consecutive tables share one integer column, plus one
// table-local attribute column holding strings / doubles / wide ints, so
// churn exercises every dictionary path (and join outputs carry interned
// values through projections and merges).
constexpr int kNumTables = 3;

Catalog MakeChainCatalog() {
  Catalog catalog;
  for (int i = 0; i < kNumTables; ++i) {
    TableDef def;
    def.name = "T" + std::to_string(i);
    for (const int c : {i, i + 1}) {
      ColumnDef col;
      col.name = "c" + std::to_string(c);
      col.distinct_values = 8;
      col.min_value = 0;
      col.max_value = 8;
      def.columns.push_back(col);
    }
    ColumnDef attr;
    attr.name = "attr" + std::to_string(i);
    attr.distinct_values = 16;
    attr.min_value = 0;
    attr.max_value = 16;
    def.columns.push_back(attr);
    *catalog.AddTable(def);
  }
  return catalog;
}

Value RandomAttr(Rng& rng) {
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return Value("user-" + std::to_string(rng.UniformInt(0, 9)));
    case 1:
      return Value(static_cast<double>(rng.UniformInt(0, 6)) + 0.5);
    case 2:
      return Value((int64_t{1} << 62) + rng.UniformInt(0, 3));  // wide int
    default:
      return Value(rng.UniformInt(0, 9));
  }
}

struct Scenario {
  std::vector<ViewKey> views;
  std::vector<std::vector<TableUpdate>> rounds;
};

Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario scenario;

  const int num_views = 2 + static_cast<int>(rng.UniformInt(0, 3));
  for (int v = 0; v < num_views; ++v) {
    const int lo = static_cast<int>(rng.UniformInt(0, kNumTables - 2));
    const int hi =
        lo + 1 + static_cast<int>(rng.UniformInt(0, kNumTables - lo - 2));
    TableSet tables;
    for (int t = lo; t <= hi; ++t) tables.Add(static_cast<TableId>(t));
    std::vector<Predicate> preds;
    while (rng.Bernoulli(0.5) && preds.size() < 2) {
      Predicate p;
      p.table = static_cast<TableId>(rng.UniformInt(lo, hi));
      p.column = static_cast<uint16_t>(rng.UniformInt(0, 1));
      p.op = rng.Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kGt;
      p.value = static_cast<double>(rng.UniformInt(1, 6));
      preds.push_back(p);
    }
    scenario.views.emplace_back(tables, preds);
  }

  std::vector<std::vector<Tuple>> live(kNumTables);
  const int num_rounds = 8;
  for (int round = 0; round < num_rounds; ++round) {
    std::vector<TableUpdate> updates;
    for (int t = 0; t < kNumTables; ++t) {
      if (!rng.Bernoulli(0.8)) continue;
      TableUpdate update;
      update.table = static_cast<TableId>(t);
      const int ops = 1 + static_cast<int>(rng.UniformInt(0, 4));
      for (int i = 0; i < ops; ++i) {
        auto& pool = live[static_cast<size_t>(t)];
        if (!pool.empty() && rng.Bernoulli(0.35)) {
          const size_t idx = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
          update.deletes.push_back(pool[idx]);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
          Tuple tuple = {Value(rng.UniformInt(0, 7)),
                         Value(rng.UniformInt(0, 7)), RandomAttr(rng)};
          pool.push_back(tuple);
          update.inserts.push_back(std::move(tuple));
        }
      }
      updates.push_back(std::move(update));
    }
    if (!updates.empty()) scenario.rounds.push_back(std::move(updates));
  }
  return scenario;
}

struct RunOutcome {
  std::vector<Relation> views;
  uint64_t work = 0;
};

RunOutcome Replay(const Catalog& catalog, const Scenario& scenario,
                  bool compact_rows, int pool_threads, bool operand_cache) {
  DeltaEngineOptions options;
  options.compact_rows = compact_rows;
  options.pool.num_threads = pool_threads;
  options.operand_cache = operand_cache;
  DeltaEngine engine(&catalog, options);
  for (TableId t = 0; t < catalog.num_tables(); ++t) {
    EXPECT_TRUE(engine.RegisterBase(t).ok());
  }
  std::vector<ViewId> ids;
  for (const ViewKey& key : scenario.views) {
    const auto id = engine.RegisterView(key);
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (const std::vector<TableUpdate>& round : scenario.rounds) {
    EXPECT_TRUE(engine.ApplyUpdates(round).ok());
  }
  RunOutcome outcome;
  outcome.work = engine.work();
  for (const ViewId id : ids) {
    // Each engine also matches its own from-scratch oracle.
    const auto expected = engine.Recompute(engine.view_key(id));
    EXPECT_TRUE(expected.ok());
    EXPECT_TRUE(engine.view(id)->BagEquals(*expected))
        << "view " << id << " diverged from recompute (compact="
        << compact_rows << ", threads=" << pool_threads
        << ", cache=" << operand_cache << ")";
    outcome.views.push_back(*engine.view(id));
  }
  return outcome;
}

class EncodingEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingEquivalenceTest, CompactMatchesLegacyAcrossToggleMatrix) {
  const Catalog catalog = MakeChainCatalog();
  const Scenario scenario = MakeScenario(GetParam());
  ASSERT_FALSE(scenario.rounds.empty());

  // The reference: legacy row store, serial, cache on.
  const RunOutcome legacy = Replay(catalog, scenario, /*compact_rows=*/false,
                                   /*pool_threads=*/1,
                                   /*operand_cache=*/true);

  for (const int threads : {1, 2, 8}) {
    for (const bool cache : {true, false}) {
      const RunOutcome compact =
          Replay(catalog, scenario, /*compact_rows=*/true, threads, cache);
      ASSERT_EQ(compact.views.size(), legacy.views.size());
      for (size_t v = 0; v < compact.views.size(); ++v) {
        // Cross-encoding comparison: the compact view must hold the exact
        // bag the legacy engine computed.
        EXPECT_TRUE(compact.views[v].BagEquals(legacy.views[v]))
            << "view " << v << " (threads=" << threads
            << ", cache=" << cache << ")";
      }
      // Work counters are a property of the bags, not the encoding, the
      // pool size or the cache mode.
      EXPECT_EQ(compact.work, legacy.work)
          << "threads=" << threads << ", cache=" << cache;
    }
  }

  // Legacy with the full toggle matrix agrees with itself too (the toggle
  // must not have perturbed the reference path).
  const RunOutcome legacy_parallel =
      Replay(catalog, scenario, /*compact_rows=*/false, /*pool_threads=*/8,
             /*operand_cache=*/false);
  ASSERT_EQ(legacy_parallel.views.size(), legacy.views.size());
  for (size_t v = 0; v < legacy_parallel.views.size(); ++v) {
    EXPECT_TRUE(legacy_parallel.views[v].BagEquals(legacy.views[v]));
  }
  EXPECT_EQ(legacy_parallel.work, legacy.work);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingEquivalenceTest,
                         ::testing::Values(11, 23, 4711, 31337));

}  // namespace
}  // namespace dsm
