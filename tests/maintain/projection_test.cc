// Projection support: bag-semantics projection on relations and projected
// materialized views maintained incrementally (the general case of
// Section 4.5 mentions sharings with projections).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "maintain/delta_engine.h"

namespace dsm {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (const int64_t v : values) t.emplace_back(v);
  return t;
}

TEST(ProjectionTest, ProjectSumsMultiplicities) {
  Relation r({"a", "b"});
  r.Apply(T({1, 10}), 1);
  r.Apply(T({1, 20}), 2);
  r.Apply(T({2, 30}), 1);
  const Relation p = r.Project({"a"});
  ASSERT_EQ(p.columns().size(), 1u);
  EXPECT_EQ(p.Count(T({1})), 3);
  EXPECT_EQ(p.Count(T({2})), 1);
}

TEST(ProjectionTest, ProjectReordersColumns) {
  Relation r({"a", "b", "c"});
  r.Apply(T({1, 2, 3}), 1);
  const Relation p = r.Project({"c", "a"});
  ASSERT_EQ(p.columns().size(), 2u);
  EXPECT_EQ(p.columns()[0], "c");
  EXPECT_EQ(p.Count(T({3, 1})), 1);
}

TEST(ProjectionTest, UnknownColumnsDropped) {
  Relation r({"a"});
  r.Apply(T({1}), 1);
  const Relation p = r.Project({"a", "zzz"});
  EXPECT_EQ(p.columns().size(), 1u);
}

TEST(ProjectionTest, NegativeCountsProject) {
  Relation delta({"a", "b"});
  delta.Apply(T({1, 10}), -1);
  delta.Apply(T({1, 20}), 1);
  const Relation p = delta.Project({"a"});
  EXPECT_EQ(p.Count(T({1})), 0);  // -1 + 1 cancels
}

class ProjectedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const char* name,
                      std::initializer_list<const char*> cols) {
      TableDef def;
      def.name = name;
      for (const char* c : cols) {
        ColumnDef col;
        col.name = c;
        def.columns.push_back(col);
      }
      return *catalog_.AddTable(def);
    };
    r_ = add("R", {"k", "x"});
    s_ = add("S", {"k", "y"});
    engine_ = std::make_unique<DeltaEngine>(&catalog_);
    ASSERT_TRUE(engine_->RegisterBase(r_).ok());
    ASSERT_TRUE(engine_->RegisterBase(s_).ok());
  }

  TableSet RS() const {
    TableSet t;
    t.Add(r_);
    t.Add(s_);
    return t;
  }

  Catalog catalog_;
  TableId r_ = 0, s_ = 0;
  std::unique_ptr<DeltaEngine> engine_;
};

TEST_F(ProjectedViewTest, ProjectedViewMaintained) {
  const ViewId v = *engine_->RegisterView(ViewKey(RS()), {"k", "y"});
  ASSERT_TRUE(engine_->ApplyUpdate(r_, {T({1, 7}), T({1, 8})}, {}).ok());
  ASSERT_TRUE(engine_->ApplyUpdate(s_, {T({1, 5})}, {}).ok());
  // Two (k,x) rows join one (k,y) row: projected view has (1,5) twice.
  EXPECT_EQ(engine_->view(v)->Count(T({1, 5})), 2);
}

TEST_F(ProjectedViewTest, ProjectedViewHandlesDeletes) {
  const ViewId v = *engine_->RegisterView(ViewKey(RS()), {"k", "y"});
  ASSERT_TRUE(engine_->ApplyUpdate(r_, {T({1, 7}), T({1, 8})}, {}).ok());
  ASSERT_TRUE(engine_->ApplyUpdate(s_, {T({1, 5})}, {}).ok());
  ASSERT_TRUE(engine_->ApplyUpdate(r_, {}, {T({1, 7})}).ok());
  // Only (1,8) remains on the R side.
  EXPECT_EQ(engine_->view(v)->Count(T({1, 5})), 1);
}

TEST_F(ProjectedViewTest, IncrementalMatchesRecomputeUnderChurn) {
  const ViewId v = *engine_->RegisterView(ViewKey(RS()), {"y"});
  Rng rng(99);
  std::vector<Tuple> live_r, live_s;
  for (int step = 0; step < 150; ++step) {
    const bool use_r = rng.Bernoulli(0.5);
    auto& live = use_r ? live_r : live_s;
    const TableId table = use_r ? r_ : s_;
    if (!live.empty() && rng.Bernoulli(0.35)) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(engine_->ApplyUpdate(table, {}, {live[i]}).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const Tuple t = T({rng.UniformInt(0, 4), rng.UniformInt(0, 4)});
      ASSERT_TRUE(engine_->ApplyUpdate(table, {t}, {}).ok());
      live.push_back(t);
    }
  }
  const auto expected = engine_->Recompute(ViewKey(RS()), {"y"});
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(engine_->view(v)->BagEquals(*expected));
}

}  // namespace
}  // namespace dsm
