#include "maintain/relation.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

Tuple T(std::initializer_list<int64_t> values) {
  Tuple t;
  for (const int64_t v : values) t.emplace_back(v);
  return t;
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(2.5)), "2.5");
  EXPECT_EQ(ValueToString(Value(std::string("x"))), "x");
}

TEST(ValueTest, SatisfiesNumeric) {
  EXPECT_TRUE(ValueSatisfies(Value(int64_t{5}), CompareOp::kLt, 10));
  EXPECT_FALSE(ValueSatisfies(Value(int64_t{15}), CompareOp::kLt, 10));
  EXPECT_TRUE(ValueSatisfies(Value(3.5), CompareOp::kGt, 3));
  EXPECT_TRUE(ValueSatisfies(Value(int64_t{7}), CompareOp::kEq, 7));
  EXPECT_FALSE(ValueSatisfies(Value(std::string("7")), CompareOp::kEq, 7));
}

TEST(TupleHashTest, EqualTuplesHashEqual) {
  TupleHash h;
  EXPECT_EQ(h(T({1, 2, 3})), h(T({1, 2, 3})));
  EXPECT_NE(h(T({1, 2, 3})), h(T({3, 2, 1})));
}

TEST(RelationTest, ApplyAndCount) {
  Relation r({"a", "b"});
  r.Apply(T({1, 2}), 1);
  r.Apply(T({1, 2}), 2);
  r.Apply(T({3, 4}), 1);
  EXPECT_EQ(r.Count(T({1, 2})), 3);
  EXPECT_EQ(r.Count(T({3, 4})), 1);
  EXPECT_EQ(r.Count(T({9, 9})), 0);
  EXPECT_EQ(r.DistinctSize(), 2u);
  EXPECT_EQ(r.TotalSize(), 4);
}

TEST(RelationTest, ZeroCountsErased) {
  Relation r({"a"});
  r.Apply(T({1}), 2);
  r.Apply(T({1}), -2);
  EXPECT_EQ(r.DistinctSize(), 0u);
  EXPECT_EQ(r.Count(T({1})), 0);
}

TEST(RelationTest, NegativeCountsForDeltas) {
  Relation r({"a"});
  r.Apply(T({1}), -1);
  EXPECT_EQ(r.Count(T({1})), -1);
  EXPECT_EQ(r.TotalSize(), -1);
}

TEST(RelationTest, BagEquality) {
  Relation r({"a"});
  Relation s({"a"});
  r.Apply(T({1}), 2);
  s.Apply(T({1}), 2);
  EXPECT_TRUE(r.BagEquals(s));
  s.Apply(T({1}), 1);
  EXPECT_FALSE(r.BagEquals(s));
}

TEST(RelationTest, FilterByColumn) {
  Relation r({"a", "b"});
  r.Apply(T({1, 10}), 1);
  r.Apply(T({2, 20}), 2);
  r.Apply(T({3, 30}), 1);
  const Relation f = r.Filter("b", CompareOp::kGt, 15);
  EXPECT_EQ(f.Count(T({2, 20})), 2);
  EXPECT_EQ(f.Count(T({3, 30})), 1);
  EXPECT_EQ(f.Count(T({1, 10})), 0);
}

TEST(RelationTest, FilterUnknownColumnIsNoop) {
  Relation r({"a"});
  r.Apply(T({1}), 1);
  const Relation f = r.Filter("zzz", CompareOp::kLt, 0);
  EXPECT_TRUE(f.BagEquals(r));
}

TEST(NaturalJoinTest, JoinsOnSharedColumns) {
  Relation r({"uid", "x"});
  r.Apply(T({1, 100}), 1);
  r.Apply(T({2, 200}), 1);
  Relation s({"uid", "y"});
  s.Apply(T({1, 11}), 1);
  s.Apply(T({1, 12}), 1);
  s.Apply(T({3, 13}), 1);
  const Relation j = NaturalJoin(r, s, nullptr);
  ASSERT_EQ(j.columns().size(), 3u);  // uid, x, y
  EXPECT_EQ(j.Count(T({1, 100, 11})), 1);
  EXPECT_EQ(j.Count(T({1, 100, 12})), 1);
  EXPECT_EQ(j.DistinctSize(), 2u);
}

TEST(NaturalJoinTest, MultiplicitiesMultiply) {
  Relation r({"k"});
  r.Apply(T({1}), 2);
  Relation s({"k"});
  s.Apply(T({1}), 3);
  const Relation j = NaturalJoin(r, s, nullptr);
  EXPECT_EQ(j.Count(T({1})), 6);
}

TEST(NaturalJoinTest, NegativeDeltasPropagate) {
  // Counting algorithm: a deleted left tuple joins with count -1.
  Relation delta({"k", "x"});
  delta.Apply(T({1, 10}), -1);
  Relation s({"k", "y"});
  s.Apply(T({1, 5}), 2);
  const Relation j = NaturalJoin(delta, s, nullptr);
  EXPECT_EQ(j.Count(T({1, 10, 5})), -2);
}

TEST(NaturalJoinTest, NoSharedColumnsIsCrossProduct) {
  Relation r({"a"});
  r.Apply(T({1}), 1);
  r.Apply(T({2}), 1);
  Relation s({"b"});
  s.Apply(T({7}), 1);
  const Relation j = NaturalJoin(r, s, nullptr);
  EXPECT_EQ(j.DistinctSize(), 2u);
  EXPECT_EQ(j.Count(T({1, 7})), 1);
}

TEST(NaturalJoinTest, WorkCounterCountsProbedPairs) {
  Relation r({"k"});
  r.Apply(T({1}), 1);
  r.Apply(T({2}), 1);
  Relation s({"k"});
  s.Apply(T({1}), 1);
  uint64_t work = 0;
  (void)NaturalJoin(r, s, &work);
  EXPECT_EQ(work, 1u);
}

TEST(NaturalJoinTest, MultipleSharedColumns) {
  Relation r({"a", "b", "x"});
  r.Apply(T({1, 2, 9}), 1);
  Relation s({"a", "b", "y"});
  s.Apply(T({1, 2, 8}), 1);
  s.Apply(T({1, 3, 7}), 1);
  const Relation j = NaturalJoin(r, s, nullptr);
  EXPECT_EQ(j.DistinctSize(), 1u);
  EXPECT_EQ(j.Count(T({1, 2, 9, 8})), 1);
}

}  // namespace
}  // namespace dsm
