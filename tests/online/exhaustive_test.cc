#include "online/exhaustive.h"

#include <gtest/gtest.h>

#include "online/greedy.h"
#include "online/managed_risk.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;
using testing_support::RunSequence;

TEST(ExhaustiveTest, FindsTheSharedSubexpressionOptimum) {
  // Example 4.1 with 5 sharings: the optimum computes ab once (cost 100)
  // plus eps per sharing, while GREEDY pays 10 per sharing (50).
  const Scenario sc = MakeGreedyTrap(5, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ExhaustivePlanner exhaustive(rig.ctx);
  const auto result = exhaustive.Solve(sc.sharings);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  // Optimum here: 5 sharings at 10 each (50) beats 100 + 5 eps; with
  // risky=40 it would flip. Verify exhaustive picks min(10n, 100 + n*eps).
  EXPECT_NEAR(result->total_cost, std::min(50.0, 100.0 + 5 * 1e-3), 1e-6);
}

TEST(ExhaustiveTest, TakesRiskWhenItPays) {
  const Scenario sc = MakeGreedyTrap(5, /*risky_cost=*/20.0,
                                     /*alt_cost=*/10.0, 1e-3);
  auto rig = MakeRig(sc);
  ExhaustivePlanner exhaustive(rig.ctx);
  const auto result = exhaustive.Solve(sc.sharings);
  ASSERT_TRUE(result.ok());
  // 20 + 5 eps beats 50.
  EXPECT_NEAR(result->total_cost, 20.0 + 5 * 1e-3, 1e-6);
}

TEST(ExhaustiveTest, NeverWorseThanOnlinePlanners) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Scenario sc = MakeRandomThreeWay(seed, 4, 8);
    auto rig_e = MakeRig(sc);
    ExhaustivePlanner exhaustive(rig_e.ctx);
    const auto result = exhaustive.Solve(sc.sharings);
    ASSERT_TRUE(result.ok());

    auto rig_g = MakeRig(sc);
    GreedyPlanner greedy(rig_g.ctx);
    const double greedy_cost = RunSequence(&greedy, sc);

    auto rig_m = MakeRig(sc);
    ManagedRiskPlanner mr(rig_m.ctx);
    const double mr_cost = RunSequence(&mr, sc);

    EXPECT_LE(result->total_cost, greedy_cost + 1e-6) << "seed " << seed;
    EXPECT_LE(result->total_cost, mr_cost + 1e-6) << "seed " << seed;
  }
}

TEST(ExhaustiveTest, PlanAssignmentReproducesCost) {
  const Scenario sc = MakeRandomThreeWay(9, 4, 8);
  auto rig = MakeRig(sc);
  ExhaustivePlanner exhaustive(rig.ctx);
  const auto result = exhaustive.Solve(sc.sharings);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->plans.size(), sc.sharings.size());

  // Replaying the chosen plans yields exactly the reported total.
  GlobalPlan replay(sc.cluster.get(), sc.model.get());
  for (size_t i = 0; i < sc.sharings.size(); ++i) {
    ASSERT_TRUE(
        replay.AddSharing(i + 1, sc.sharings[i], result->plans[i]).ok());
  }
  EXPECT_NEAR(replay.TotalCost(), result->total_cost, 1e-9);
}

TEST(ExhaustiveTest, PlanCapLimitsSearch) {
  const Scenario sc = MakeRandomThreeWay(11, 3, 8);
  ExhaustiveOptions options;
  options.max_plans_per_sharing = 1;
  auto rig = MakeRig(sc);
  ExhaustivePlanner capped(rig.ctx, options);
  const auto capped_result = capped.Solve(sc.sharings);
  ASSERT_TRUE(capped_result.ok());

  auto rig_full = MakeRig(sc);
  ExhaustivePlanner full(rig_full.ctx);
  const auto full_result = full.Solve(sc.sharings);
  ASSERT_TRUE(full_result.ok());
  EXPECT_LE(full_result->total_cost, capped_result->total_cost + 1e-9);
}

TEST(ExhaustiveTest, InfeasibleWhenCapacityTooSmall) {
  Scenario sc = MakeGreedyTrap(2);
  sc.cluster->mutable_server(0).capacity_tuples_per_unit = 0.5;
  auto rig = MakeRig(sc);
  ExhaustivePlanner exhaustive(rig.ctx);
  EXPECT_EQ(exhaustive.Solve(sc.sharings).status().code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace dsm
