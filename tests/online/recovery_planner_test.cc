// RecoveryPlanner: replanning after server loss. Sharings whose surviving
// alternatives fit migrate (with reported cost deltas); sharings whose
// destination or base-table homes died park with exponential backoff and
// are re-admitted when the machine returns.

#include "online/recovery_planner.h"

#include <gtest/gtest.h>

#include <memory>

#include "cost/default_cost_model.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

struct RecoveryRig {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> gp;
  PlannerContext ctx;
};

// Three machines over the Twitter schema. With `spare_server` the nine
// base tables all live on m0/m1, so m2 holds only materialized views
// (destination roots, reuse sources): losing it exercises migration rather
// than a dead base table. Without it, placement is the usual round-robin.
std::unique_ptr<RecoveryRig> MakeRecoveryRig(bool spare_server) {
  auto rig = std::make_unique<RecoveryRig>();
  const auto tables = BuildTwitterCatalog(&rig->catalog);
  EXPECT_TRUE(tables.ok());
  rig->tables = *tables;
  for (int i = 0; i < 3; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  if (spare_server) {
    for (TableId t = 0; t < rig->catalog.num_tables(); ++t) {
      EXPECT_TRUE(rig->cluster.PlaceTable(t, t % 2).ok());
    }
  } else {
    rig->cluster.PlaceRoundRobin(rig->catalog.num_tables());
  }
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->gp = std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->ctx = PlannerContext{&rig->catalog,    &rig->cluster,
                            rig->graph.get(), rig->model.get(),
                            rig->gp.get(),    rig->enumerator.get()};
  return rig;
}

// Integrates `sharing` under the cheapest feasible plan (Algorithm 2 with
// the GREEDY criterion) and returns its marginal cost.
double AddCheapest(RecoveryRig* rig, SharingId id, const Sharing& sharing) {
  const auto plans = rig->enumerator->Enumerate(sharing);
  EXPECT_TRUE(plans.ok());
  const SharingPlan* best = nullptr;
  double best_cost = 0.0;
  for (const SharingPlan& plan : *plans) {
    const auto eval = rig->gp->EvaluatePlan(plan);
    if (!eval.feasible) continue;
    if (best == nullptr || eval.marginal_cost < best_cost) {
      best = &plan;
      best_cost = eval.marginal_cost;
    }
  }
  EXPECT_NE(best, nullptr);
  EXPECT_TRUE(rig->gp->AddSharing(id, sharing, *best).ok());
  return best_cost;
}

// A plan whose join is materialized directly at the destination (no copy
// node): the sharing's only working view then sits on the dest server.
const SharingPlan* JoinAtDestinationPlan(const std::vector<SharingPlan>& plans,
                                         ServerId dest) {
  for (const SharingPlan& plan : plans) {
    if (plan.nodes.size() == 3 && plan.root().is_join() &&
        plan.root().server == dest) {
      return &plan;
    }
  }
  return nullptr;
}

// A two-table star schema built so that view reuse dominates recomputation:
// a heavily-updated fact table (m0) keyed against a small, nearly-static
// dimension (m1). The key-key join output is tiny (~|dim| tuples), so the
// materialized join's delta stream is ~1000x cheaper to copy across the
// network than the fact table's raw update stream is to re-probe. m2 holds
// no base table — it can only ever carry materialized views.
ColumnDef Col(const std::string& name, DataType type, double distinct,
              double min_value, double max_value) {
  ColumnDef col;
  col.name = name;
  col.type = type;
  col.distinct_values = distinct;
  col.min_value = min_value;
  col.max_value = max_value;
  return col;
}

std::unique_ptr<RecoveryRig> MakeStarRig() {
  auto rig = std::make_unique<RecoveryRig>();
  TableDef fact;
  fact.name = "fact";
  fact.columns = {Col("k", DataType::kInt64, 1e6, 0.0, 1e6),
                  Col("v", DataType::kDouble, 1e4, 0.0, 1e4)};
  fact.stats = {/*cardinality=*/1e6, /*update_rate=*/1e5,
                /*tuple_bytes=*/64.0};
  TableDef dim;
  dim.name = "dim";
  dim.columns = {Col("k", DataType::kInt64, 1e3, 0.0, 1e6),
                 Col("label", DataType::kString, 1e3, 0.0, 1.0)};
  dim.stats = {/*cardinality=*/1e3, /*update_rate=*/1.0,
               /*tuple_bytes=*/64.0};
  EXPECT_TRUE(rig->catalog.AddTable(fact).ok());
  EXPECT_TRUE(rig->catalog.AddTable(dim).ok());
  for (int i = 0; i < 3; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  EXPECT_TRUE(rig->cluster.PlaceTable(0, 0).ok());
  EXPECT_TRUE(rig->cluster.PlaceTable(1, 1).ok());
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->gp = std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->ctx = PlannerContext{&rig->catalog,    &rig->cluster,
                            rig->graph.get(), rig->model.get(),
                            rig->gp.get(),    rig->enumerator.get()};
  return rig;
}

TEST(RecoveryPlannerTest, MigratesReuseVictimAndParksDeadDestination) {
  auto rig = MakeStarRig();

  // Sharing 1: FACT ⋈ DIM delivered to m2, joined directly there — the
  // only view of that join in the market lives on m2.
  const Sharing a(TS({0, 1}), {}, /*destination=*/2, "alice");
  const auto a_plans = rig->enumerator->Enumerate(a);
  ASSERT_TRUE(a_plans.ok());
  const SharingPlan* a_plan = JoinAtDestinationPlan(*a_plans, 2);
  ASSERT_NE(a_plan, nullptr);
  ASSERT_TRUE(rig->gp->AddSharing(1, a, *a_plan).ok());

  // Sharing 2: the same join, filtered, delivered to m0. The cheapest plan
  // reuses m2's view (a residual filter/copy of the tiny join delta beats
  // re-probing the fact table's update stream), so sharing 2's closure
  // reaches onto m2 as well.
  Predicate pred;
  pred.table = 0;
  pred.column = 1;
  pred.op = CompareOp::kLt;
  pred.value = 5000.0;
  const Sharing b(TS({0, 1}), {pred}, /*destination=*/0, "bob");
  const double b_cost_before = AddCheapest(rig.get(), 2, b);
  ASSERT_EQ(rig->gp->SharingsTouchingServer(2),
            (std::vector<SharingId>{1, 2}));

  ASSERT_TRUE(rig->cluster.MarkDown(2).ok());
  RecoveryPlanner recovery(rig->ctx);
  const auto report = recovery.OnServerDown(2, /*now_tick=*/0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Sharing 1's destination died with the server: parked. Sharing 2 can be
  // served from m0/m1 alone: migrated, at a higher price (its cheap reuse
  // is gone).
  EXPECT_EQ(report->server, 2u);
  ASSERT_EQ(report->parked, std::vector<SharingId>{1});
  ASSERT_EQ(report->migrated.size(), 1u);
  EXPECT_EQ(report->migrated[0].id, 2u);
  EXPECT_TRUE(report->migrated[0].was_active);
  EXPECT_DOUBLE_EQ(report->migrated[0].cost_before, b_cost_before);
  EXPECT_GT(report->migrated[0].cost_after,
            report->migrated[0].cost_before);

  // The global plan no longer touches the dead machine anywhere.
  EXPECT_TRUE(rig->gp->SharingsTouchingServer(2).empty());
  EXPECT_EQ(rig->gp->record(1), nullptr);
  const auto* closure = rig->gp->closure(2);
  ASSERT_NE(closure, nullptr);
  for (const int node : *closure) {
    EXPECT_NE(rig->gp->node_server(node), 2u);
  }
  EXPECT_EQ(recovery.num_parked(), 1u);
  EXPECT_EQ(recovery.parked()[0].id, 1u);
}

TEST(RecoveryPlannerTest, DeadBaseTableHomeParksSharing) {
  auto rig = MakeRecoveryRig(/*spare_server=*/false);
  // TWEETS is homed on m1 (round-robin): losing m1 leaves nowhere to read
  // its delta stream from, so the sharing cannot be migrated.
  const Sharing s(TS({rig->tables.users, rig->tables.tweets}), {},
                  /*destination=*/0, "carol");
  AddCheapest(rig.get(), 7, s);

  ASSERT_TRUE(rig->cluster.MarkDown(1).ok());
  RecoveryPlanner recovery(rig->ctx);
  const auto report = recovery.OnServerDown(1, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->parked, std::vector<SharingId>{7});
  EXPECT_TRUE(report->migrated.empty());
  EXPECT_EQ(rig->gp->num_sharings(), 0u);

  // The machine returns; a forced retry re-admits the sharing.
  ASSERT_TRUE(rig->cluster.MarkUp(1).ok());
  const auto readmitted = recovery.RetryParked(5, /*force=*/true);
  ASSERT_TRUE(readmitted.ok());
  ASSERT_EQ(readmitted->size(), 1u);
  EXPECT_EQ((*readmitted)[0].id, 7u);
  EXPECT_FALSE((*readmitted)[0].was_active);
  EXPECT_EQ(recovery.num_parked(), 0u);
  ASSERT_NE(rig->gp->record(7), nullptr);
}

TEST(RecoveryPlannerTest, UnaffectedSharingsKeepTheirPlans) {
  auto rig = MakeRecoveryRig(/*spare_server=*/true);
  const Sharing safe(TS({rig->tables.curloc, rig->tables.loc}), {},
                     /*destination=*/1, "dora");
  AddCheapest(rig.get(), 3, safe);
  const Sharing doomed(TS({rig->tables.users, rig->tables.tweets}), {},
                       /*destination=*/2, "eve");
  AddCheapest(rig.get(), 4, doomed);

  const double safe_gpc = rig->gp->GPC(3);
  ASSERT_TRUE(rig->cluster.MarkDown(2).ok());
  RecoveryPlanner recovery(rig->ctx);
  const auto report = recovery.OnServerDown(2, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->parked, std::vector<SharingId>{4});

  // Sharing 3 never touched m2: untouched record, unchanged GPC.
  ASSERT_NE(rig->gp->record(3), nullptr);
  EXPECT_DOUBLE_EQ(rig->gp->GPC(3), safe_gpc);
}

TEST(RecoveryPlannerTest, ParkedSharingBacksOffExponentially) {
  auto rig = MakeRecoveryRig(/*spare_server=*/true);
  const Sharing s(TS({rig->tables.users, rig->tables.tweets}), {},
                  /*destination=*/2, "frank");
  AddCheapest(rig.get(), 9, s);
  ASSERT_TRUE(rig->cluster.MarkDown(2).ok());

  RecoveryOptions options;
  options.initial_backoff_ticks = 1;
  options.max_backoff_ticks = 4;
  RecoveryPlanner recovery(rig->ctx, options);
  ASSERT_TRUE(recovery.OnServerDown(2, /*now_tick=*/10).ok());
  ASSERT_EQ(recovery.num_parked(), 1u);
  EXPECT_EQ(recovery.parked()[0].next_retry_tick, 11);

  // Not yet due: no attempt is burned.
  auto r = recovery.RetryParked(10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(recovery.parked()[0].attempts, 0);

  // Due retries fail while the server is down; backoff doubles, capped.
  ASSERT_TRUE(recovery.RetryParked(11).ok());
  EXPECT_EQ(recovery.parked()[0].attempts, 1);
  EXPECT_EQ(recovery.parked()[0].backoff_ticks, 2);
  EXPECT_EQ(recovery.parked()[0].next_retry_tick, 13);
  ASSERT_TRUE(recovery.RetryParked(13).ok());
  EXPECT_EQ(recovery.parked()[0].backoff_ticks, 4);
  EXPECT_EQ(recovery.parked()[0].next_retry_tick, 17);
  ASSERT_TRUE(recovery.RetryParked(17).ok());
  EXPECT_EQ(recovery.parked()[0].backoff_ticks, 4);  // capped
  EXPECT_EQ(recovery.parked()[0].next_retry_tick, 21);

  // Capacity returns mid-backoff: an unforced retry still waits...
  ASSERT_TRUE(rig->cluster.MarkUp(2).ok());
  r = recovery.RetryParked(18);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  // ...but a forced one (the recovery event) re-admits immediately.
  r = recovery.RetryParked(18, /*force=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].id, 9u);
  EXPECT_EQ(recovery.num_parked(), 0u);
  ASSERT_NE(rig->gp->record(9), nullptr);
}

}  // namespace
}  // namespace dsm
