// Behaviour shared by all online planners: the identical-sharing fast
// path, capacity-aware plan selection and rejection (Algorithm 2), and
// NORMALIZE's occurrence counting.

#include <gtest/gtest.h>

#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(OnlinePlannerTest, AssignsIncreasingIds) {
  const Scenario sc = MakeGreedyTrap(3);
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  for (size_t i = 0; i < sc.sharings.size(); ++i) {
    const auto choice = planner.ProcessSharing(sc.sharings[i]);
    ASSERT_TRUE(choice.ok());
    EXPECT_EQ(choice->id, i + 1);
  }
}

TEST(OnlinePlannerTest, IdenticalSharingFastPath) {
  const Scenario sc = MakeGreedyTrap(2);
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  const auto first = planner.ProcessSharing(sc.sharings[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->reused_identical);

  const auto second = planner.ProcessSharing(sc.sharings[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->reused_identical);
  EXPECT_NEAR(second->marginal_cost, 0.0, 1e-9);
}

TEST(OnlinePlannerTest, SameQueryDifferentDestinationNotFastPathed) {
  Scenario sc = MakeGreedyTrap(1);
  sc.cluster->AddServer("s1");
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  ASSERT_TRUE(planner.ProcessSharing(sc.sharings[0]).ok());
  const Sharing moved(sc.sharings[0].tables(), {}, /*destination=*/1,
                      "other");
  const auto choice = planner.ProcessSharing(moved);
  ASSERT_TRUE(choice.ok());
  EXPECT_FALSE(choice->reused_identical);
}

TEST(OnlinePlannerTest, GreedyPicksCheapestMarginalPlan) {
  const Scenario sc = MakeGreedyTrap(1, /*risky_cost=*/100.0,
                                     /*alt_cost=*/10.0, 1e-3);
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  const auto choice = planner.ProcessSharing(sc.sharings[0]);
  ASSERT_TRUE(choice.ok());
  EXPECT_NEAR(choice->marginal_cost, 10.0, 1e-6);
  EXPECT_EQ(choice->plans_considered, 2u);
}

TEST(OnlinePlannerTest, CapacityForcesSecondBestPlan) {
  // One server too small for anything: rejection (Algorithm 2's branch).
  Scenario sc = MakeGreedyTrap(1);
  sc.cluster->mutable_server(0).capacity_tuples_per_unit = 0.5;
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  const auto choice = planner.ProcessSharing(sc.sharings[0]);
  EXPECT_EQ(choice.status().code(), StatusCode::kCapacityExceeded);
}

TEST(OnlinePlannerTest, CapacityRejectionLeavesGlobalPlanUntouched) {
  Scenario sc = MakeGreedyTrap(1);
  sc.cluster->mutable_server(0).capacity_tuples_per_unit = 0.5;
  auto rig = MakeRig(sc);
  ManagedRiskPlanner planner(rig.ctx);
  ASSERT_FALSE(planner.ProcessSharing(sc.sharings[0]).ok());
  EXPECT_DOUBLE_EQ(rig.global_plan->TotalCost(), 0.0);
  EXPECT_EQ(rig.global_plan->num_sharings(), 0u);
}

TEST(OnlinePlannerTest, CapacityAdmitsUntilFull) {
  // Each integrated 3-way join loads the single server with 4 delta
  // tuples/unit (two joins × two inputs); capacity 10 admits two sharings
  // (8) and rejects the third (12 > 10).
  Scenario sc = MakeGreedyTrap(3);
  sc.cluster->mutable_server(0).capacity_tuples_per_unit = 10.0;
  auto rig = MakeRig(sc);
  GreedyPlanner planner(rig.ctx);
  EXPECT_TRUE(planner.ProcessSharing(sc.sharings[0]).ok());
  EXPECT_TRUE(planner.ProcessSharing(sc.sharings[1]).ok());
  EXPECT_EQ(planner.ProcessSharing(sc.sharings[2]).status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(NormalizePlannerTest, CountsContainedSubexpressions) {
  const Scenario sc = MakeGreedyTrap(3);
  auto rig = MakeRig(sc);
  NormalizePlanner planner(rig.ctx);
  ASSERT_TRUE(planner.ProcessSharing(sc.sharings[0]).ok());
  ASSERT_TRUE(planner.ProcessSharing(sc.sharings[1]).ok());
  // ab is contained in both sharings seen so far.
  EXPECT_EQ(planner.OccurrenceCount(TS({0, 1})), 2);
  // bc_1 only in the first.
  EXPECT_EQ(planner.OccurrenceCount(TS({1, 2})), 1);
  // Never-seen subexpression.
  EXPECT_EQ(planner.OccurrenceCount(TS({0, 3})), 0);
}

TEST(OnlinePlannerTest, PlannerNamesAreDistinct) {
  const Scenario sc = MakeGreedyTrap(1);
  auto r1 = MakeRig(sc);
  auto r2 = MakeRig(sc);
  auto r3 = MakeRig(sc);
  GreedyPlanner g(r1.ctx);
  NormalizePlanner n(r2.ctx);
  ManagedRiskPlanner m(r3.ctx);
  EXPECT_STREQ(g.name(), "Greedy");
  EXPECT_STREQ(n.name(), "Normalize");
  EXPECT_STREQ(m.name(), "ManagedRisk");
}

}  // namespace
}  // namespace dsm
