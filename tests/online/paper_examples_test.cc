// Golden tests reproducing the arithmetic of the paper's worked examples:
// Example 4.1 (GREEDY unbounded), Example 4.2 (NORMALIZE unbounded) and
// Example 4.3 (MANAGEDRISK's behaviour on both sequences).

#include <gtest/gtest.h>

#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;
using testing_support::RunSequence;

constexpr double kEps = 1e-3;

TEST(Example41, GreedyNeverTakesTheRisk) {
  // c[ab] = 100, C[a(bc_x)] = 10, c[(ab)c_x] = eps: GREEDY pays 10 per
  // sharing forever (Example 4.1's 10n).
  const int n = 40;
  const Scenario sc = MakeGreedyTrap(n, 100.0, 10.0, kEps);
  auto rig = MakeRig(sc);
  GreedyPlanner greedy(rig.ctx);
  const double cost = RunSequence(&greedy, sc);
  EXPECT_NEAR(cost, 10.0 * n, 0.5);
  // The shared subexpression is never materialized.
  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  EXPECT_FALSE(rig.global_plan->HasUnpredicatedView(ab));
}

TEST(Example43, ManagedRiskSwitchesAtTheEleventhSharing) {
  // With c[ab] = 100 and alt cost 10, the pending regret reaches 100 after
  // ten sharings; MANAGEDRISK then pays for ab and all later sharings cost
  // ~eps (Example 4.3's walk-through).
  const int n = 40;
  const Scenario sc = MakeGreedyTrap(n, 100.0, 10.0, kEps);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);

  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mr.ProcessSharing(sc.sharings[static_cast<size_t>(i)]).ok());
    EXPECT_FALSE(rig.global_plan->HasUnpredicatedView(ab))
        << "risk taken too early at sharing " << i + 1;
  }
  ASSERT_TRUE(mr.ProcessSharing(sc.sharings[10]).ok());
  EXPECT_TRUE(rig.global_plan->HasUnpredicatedView(ab))
      << "the 11th sharing should take the risk (rg = 100)";

  for (int i = 11; i < n; ++i) {
    const auto choice = mr.ProcessSharing(sc.sharings[static_cast<size_t>(i)]);
    ASSERT_TRUE(choice.ok());
    EXPECT_LT(choice->marginal_cost, 1.0)
        << "post-switch sharings should reuse ab";
  }

  // "The cost of MANAGEDRISK is no more than twice the optimal cost."
  const double optimal = 100.0 + n * kEps;
  EXPECT_LE(rig.global_plan->TotalCost(), 2.0 * optimal + 10.0 + 1.0);
}

TEST(Example41, ManagedRiskBeatsGreedyOnLongSequences) {
  const int n = 60;
  const Scenario sc = MakeGreedyTrap(n, 10.0, 10.0, kEps);
  auto rig_g = MakeRig(sc);
  GreedyPlanner greedy(rig_g.ctx);
  const double greedy_cost = RunSequence(&greedy, sc);

  auto rig_m = MakeRig(sc);
  ManagedRiskPlanner mr(rig_m.ctx);
  const double mr_cost = RunSequence(&mr, sc);

  EXPECT_NEAR(greedy_cost, 10.0 * n, 0.5);
  EXPECT_LT(mr_cost, 25.0);  // ~ 2 * c[ab]
  EXPECT_GT(greedy_cost / mr_cost, 20.0);  // the unbounded-ratio shape
}

TEST(Example41, NormalizeEventuallySwitches) {
  // NORMALIZE divides c[ab] by the occurrence count and switches once
  // c[ab]/x beats the alternative; its cost stays bounded here.
  const int n = 40;
  const Scenario sc = MakeGreedyTrap(n, 100.0, 10.0, kEps);
  auto rig = MakeRig(sc);
  NormalizePlanner norm(rig.ctx);
  const double cost = RunSequence(&norm, sc);
  // Switch at the 11th sharing (100/11 < 10): 10 early payments + 100.
  EXPECT_LT(cost, 10.0 * 11 + 100.0 + 5.0);
  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  EXPECT_TRUE(rig.global_plan->HasUnpredicatedView(ab));
}

TEST(Example42, NormalizeTakesTheUnrewardedRisk) {
  // c[ab] = n; the last sharing's normalized cost lures NORMALIZE into
  // computing ab with no future sharing to amortize it (Example 4.2).
  const int n = 30;
  const Scenario sc = MakeNormalizeTrap(n, 0.01);
  auto rig = MakeRig(sc);
  NormalizePlanner norm(rig.ctx);
  const double cost = RunSequence(&norm, sc);
  // n + n*eps versus the optimal 1 + (n+1)*eps.
  EXPECT_GT(cost, 0.8 * n);
  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  EXPECT_TRUE(rig.global_plan->HasUnpredicatedView(ab));
}

TEST(Example43, ManagedRiskDeclinesTheUnrewardedRisk) {
  // rg_n(ab) = (n-1)*eps is far below c[ab] = n: MANAGEDRISK keeps the
  // cheap plan and is optimal on Example 4.2's sequence.
  const int n = 30;
  const double eps = 0.01;
  const Scenario sc = MakeNormalizeTrap(n, eps);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);
  const double cost = RunSequence(&mr, sc);
  const double optimal = (n - 1) * eps + 1.0 + 2 * eps;
  EXPECT_NEAR(cost, optimal, 0.05);
  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  EXPECT_FALSE(rig.global_plan->HasUnpredicatedView(ab));
}

TEST(Example42, GreedyIsOptimalWhenRiskDoesNotPay) {
  const int n = 30;
  const double eps = 0.01;
  const Scenario sc = MakeNormalizeTrap(n, eps);
  auto rig = MakeRig(sc);
  GreedyPlanner greedy(rig.ctx);
  const double cost = RunSequence(&greedy, sc);
  EXPECT_NEAR(cost, (n - 1) * eps + 1.0 + 2 * eps, 0.05);
}

TEST(Example42, NormalizeVersusManagedRiskRatioGrowsWithN) {
  for (const int n : {10, 30, 60}) {
    const Scenario sc = MakeNormalizeTrap(n, 0.01);
    auto rig_n = MakeRig(sc);
    NormalizePlanner norm(rig_n.ctx);
    const double norm_cost = RunSequence(&norm, sc);
    auto rig_m = MakeRig(sc);
    ManagedRiskPlanner mr(rig_m.ctx);
    const double mr_cost = RunSequence(&mr, sc);
    EXPECT_GT(norm_cost / mr_cost, 0.5 * n);
  }
}

TEST(ManagedRiskAblation, DisablingRegretSubtractionOverRisks) {
  // Without the "- Σ rg_j(s')" subtraction (Eq. 1) consumed incentives are
  // double counted; the planner keeps growing regret after taking risks.
  // On Example 4.2's trap the ablated planner must not do better, and the
  // full algorithm stays optimal.
  const int n = 30;
  const Scenario sc = MakeNormalizeTrap(n, 0.01);
  ManagedRiskOptions ablated;
  ablated.subtract_consumed_regret = false;
  auto rig_a = MakeRig(sc);
  ManagedRiskPlanner planner_a(rig_a.ctx, ablated);
  const double ablated_cost = RunSequence(&planner_a, sc);

  auto rig_f = MakeRig(sc);
  ManagedRiskPlanner planner_f(rig_f.ctx);
  const double full_cost = RunSequence(&planner_f, sc);
  EXPECT_LE(full_cost, ablated_cost + 1e-9);
}

}  // namespace
}  // namespace dsm
