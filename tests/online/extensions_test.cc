// Tests for the implemented future-work extensions (Section 7): the
// replanner (change existing sharings' plans when new ones arrive) and the
// speculative-view advisor (materialize views no sharing owns yet).

#include <gtest/gtest.h>

#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/replanner.h"
#include "online/speculative.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;
using testing_support::RunSequence;

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(ReplannerTest, RepairsGreedyMistakes) {
  // After GREEDY runs Example 4.1 badly, replanning can move early
  // sharings onto the (ab)c_x plans once ab exists... but ab never exists
  // under GREEDY. Seed the improvement by running MANAGEDRISK's sequence
  // with GREEDY, then replanning: the first replan round materializes
  // nothing new, so total cost must not increase.
  const Scenario sc = MakeGreedyTrap(12, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  GreedyPlanner greedy(rig.ctx);
  const double before = RunSequence(&greedy, sc);

  Replanner replanner(rig.ctx);
  const auto report = replanner.Improve();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->cost_after, report->cost_before + 1e-9);
  EXPECT_NEAR(report->cost_before, before, 1e-9);
  EXPECT_NEAR(rig.global_plan->TotalCost(), report->cost_after, 1e-9);
}

TEST(ReplannerTest, MovesSharingsOntoExistingViews) {
  // Two sharings settle on their a(bc_x) plans (10 each); a later
  // provider-owned ab view appears; replanning moves both onto (ab)c_x
  // (eps each), cutting the bill from 40 to ~20.
  const Scenario sc2 = MakeGreedyTrap(2, 20.0, 10.0, 1e-3);
  auto rig2 = MakeRig(sc2);
  GreedyPlanner greedy2(rig2.ctx);
  ASSERT_TRUE(greedy2.ProcessSharing(sc2.sharings[0]).ok());  // a(bc1): 10
  ASSERT_TRUE(greedy2.ProcessSharing(sc2.sharings[1]).ok());  // a(bc2): 10
  const double before = rig2.global_plan->TotalCost();
  EXPECT_NEAR(before, 20.0, 1e-6);

  // Force ab into the plan via a direct two-table sharing, then replan.
  const Sharing ab_sharing(TS({0, 1}), {}, 0, "provider");
  const auto plans = rig2.enumerator->Enumerate(ab_sharing);
  ASSERT_TRUE(plans.ok());
  ASSERT_TRUE(
      rig2.global_plan->AddSharing(99, ab_sharing, plans->front()).ok());
  EXPECT_NEAR(rig2.global_plan->TotalCost(), 40.0, 1e-6);

  Replanner replanner(rig2.ctx);
  const auto report = replanner.Improve();
  ASSERT_TRUE(report.ok());
  // Both three-way sharings move onto (ab)c_x (eps each): 20 + 2 eps.
  EXPECT_NEAR(report->cost_after, 20.0 + 2e-3, 1e-6);
  EXPECT_GE(report->plans_changed, 2);
}

TEST(ReplannerTest, NoChangeOnAlreadyOptimalPlan) {
  const Scenario sc = MakeNormalizeTrap(5, 0.01);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);
  const double before = RunSequence(&mr, sc);
  Replanner replanner(rig.ctx);
  const auto report = replanner.Improve();
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->cost_after, before, 1e-9);
}

TEST(SpeculativeTest, MaterializesHighRegretViews) {
  // Greedy-trap economics: pending regret on ab reaches risky_cost after
  // enough sharings; with regret_multiple=1 the advisor builds ab.
  const Scenario sc = MakeGreedyTrap(12, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);
  SpeculativeOptions options;
  options.regret_multiple = 0.5;
  SpeculativeViewAdvisor advisor(&mr, options);

  int created = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mr.ProcessSharing(sc.sharings[static_cast<size_t>(i)]).ok());
    const auto report = advisor.MaybeSpeculate();
    ASSERT_TRUE(report.ok());
    created += report->views_created;
  }
  EXPECT_GE(created, 1);
  EXPECT_TRUE(rig.global_plan->HasUnpredicatedView(TS({0, 1})));
  // Later sharings reuse the speculative view: near-zero marginal.
  const auto choice = mr.ProcessSharing(sc.sharings[7]);
  ASSERT_TRUE(choice.ok());
  EXPECT_LT(choice->marginal_cost, 1.0);
}

TEST(SpeculativeTest, RespectsViewBudget) {
  const Scenario sc = MakeGreedyTrap(12, 1.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);
  SpeculativeOptions options;
  options.regret_multiple = 0.0;  // build anything pending
  options.max_views = 1;
  SpeculativeViewAdvisor advisor(&mr, options);
  ASSERT_TRUE(mr.ProcessSharing(sc.sharings[0]).ok());
  ASSERT_TRUE(advisor.MaybeSpeculate().ok());
  ASSERT_TRUE(mr.ProcessSharing(sc.sharings[1]).ok());
  ASSERT_TRUE(advisor.MaybeSpeculate().ok());
  EXPECT_LE(advisor.num_views(), 1u);
}

TEST(SpeculativeTest, NoSpeculationWithoutRegret) {
  const Scenario sc = MakeGreedyTrap(3, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner mr(rig.ctx);
  SpeculativeViewAdvisor advisor(&mr);  // regret_multiple = 2
  const auto report = advisor.MaybeSpeculate();  // before any sharing
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->views_created, 0);
}

}  // namespace
}  // namespace dsm
