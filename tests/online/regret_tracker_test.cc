#include "online/regret_tracker.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

class RegretTrackerTest : public ::testing::Test {
 protected:
  RegretTrackerTest() : graph_(4), tracker_(&graph_) {
    // Path 0-1-2-3.
    graph_.AddEdge(0, 1);
    graph_.AddEdge(1, 2);
    graph_.AddEdge(2, 3);
  }

  JoinGraph graph_;
  RegretTracker tracker_;
};

TEST_F(RegretTrackerTest, StartsAtZero) {
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 0.0);
  EXPECT_FALSE(tracker_.Produced(TS({0, 1})));
}

TEST_F(RegretTrackerTest, ResidualAccruesToContainedSubexpressions) {
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, /*marginal_cost=*/10.0, /*consumed_regret=*/0.0,
                        /*produced_full=*/{TS({1, 2}), TS({0, 1, 2})},
                        /*produced_partial=*/{});
  // {0,1} is contained in the sharing and unproduced: it accrues 10.
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 10.0);
  // Produced sets accrue nothing and report zero regret.
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({1, 2})), 0.0);
  EXPECT_TRUE(tracker_.Produced(TS({1, 2})));
  // {2,3} is not contained in the sharing.
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({2, 3})), 0.0);
}

TEST_F(RegretTrackerTest, RegretDividesByJoinsMinusOne) {
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, 12.0, 0.0, {TS({1, 2}), TS({0, 1, 2})}, {});
  // #join = 2 -> divisor 1; #join = 3 -> divisor 2.
  EXPECT_DOUBLE_EQ(tracker_.Regret(TS({0, 1}), 2), 12.0);
  EXPECT_DOUBLE_EQ(tracker_.Regret(TS({0, 1}), 3), 6.0);
  // Single-join sharings use divisor 1, not 0.
  EXPECT_DOUBLE_EQ(tracker_.Regret(TS({0, 1}), 1), 12.0);
}

TEST_F(RegretTrackerTest, ConsumedRegretReducesResidual) {
  const Sharing s1(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s1, 10.0, 0.0, {TS({1, 2}), TS({0, 1, 2})}, {});
  ASSERT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 10.0);
  // A second sharing pays 12 while consuming the accrued regret of 10 (it
  // produces {0,1}): residual 2 accrues to the still-unproduced subsets.
  const Sharing s2(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s2, 12.0, 10.0, {TS({0, 1})}, {});
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 0.0);
  EXPECT_TRUE(tracker_.Produced(TS({0, 1})));
}

TEST_F(RegretTrackerTest, ProductionZeroesRegretForever) {
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, 10.0, 0.0, {TS({1, 2}), TS({0, 1, 2})}, {});
  EXPECT_GT(tracker_.Pending(TS({0, 1})), 0.0);
  tracker_.MarkProduced(TS({0, 1}));
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 0.0);
  // Later sharings containing {0,1} no longer accrue regret for it.
  tracker_.OnPlanChosen(s, 10.0, 0.0, {}, {});
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 0.0);
}

TEST_F(RegretTrackerTest, PartialProductionScalesPending) {
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, 10.0, 0.0, {TS({1, 2}), TS({0, 1, 2})}, {});
  ASSERT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 10.0);
  // A plan materializes 40% of {0,1}: pending scales by (1 - 0.4) before
  // the new residual accrues.
  tracker_.OnPlanChosen(s, 4.0, 0.0, {}, {{TS({0, 1}), 0.4}});
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 10.0 * 0.6 + 4.0);
}

TEST_F(RegretTrackerTest, PendingSetsListsOnlyUnproduced) {
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, 10.0, 0.0, {TS({0, 1, 2})}, {});
  const auto pending = tracker_.PendingSets();
  // {0,1} and {1,2} accrued; the produced root didn't.
  EXPECT_EQ(pending.size(), 2u);
  for (const auto& [set, value] : pending) {
    EXPECT_DOUBLE_EQ(value, 10.0);
    EXPECT_FALSE(tracker_.Produced(set));
  }
}

TEST_F(RegretTrackerTest, NegativeResidualAllowed) {
  // When consumed regret exceeds the marginal cost the residual is
  // negative, shrinking (not growing) pending regret.
  const Sharing s(TS({0, 1, 2}), {}, 0);
  tracker_.OnPlanChosen(s, 10.0, 0.0, {TS({0, 1, 2})}, {});
  tracker_.OnPlanChosen(s, 1.0, 5.0, {}, {});
  EXPECT_DOUBLE_EQ(tracker_.Pending(TS({0, 1})), 10.0 - 4.0);
}

}  // namespace
}  // namespace dsm
