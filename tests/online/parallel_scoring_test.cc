// Parallel candidate scoring must be invisible in the results: for pool
// sizes {1, 2, 8} every PlanChoice of a planning run — chosen plan, score,
// marginal cost — is byte-identical to the serial (no pool) run. Also the
// identical-plan fast path's collision regression: a forced 64-bit key
// collision must degrade to a cache miss, never reuse another query's plan.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "cost/default_cost_model.h"
#include "globalplan/global_plan.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "plan/enumerator.h"
#include "plan/join_graph.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

struct Stack {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> global_plan;
  PlannerContext ctx;
};

std::unique_ptr<Stack> MakeStack() {
  auto stack = std::make_unique<Stack>();
  const auto tables = BuildTwitterCatalog(&stack->catalog);
  EXPECT_TRUE(tables.ok());
  stack->tables = *tables;
  for (int i = 0; i < 4; ++i) {
    stack->cluster.AddServer("m" + std::to_string(i));
  }
  stack->cluster.PlaceRoundRobin(stack->catalog.num_tables());
  stack->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(stack->catalog));
  stack->model =
      std::make_unique<DefaultCostModel>(&stack->catalog, &stack->cluster);
  stack->enumerator = std::make_unique<PlanEnumerator>(
      &stack->catalog, &stack->cluster, stack->graph.get(),
      stack->model.get(), EnumeratorOptions{});
  stack->global_plan =
      std::make_unique<GlobalPlan>(&stack->cluster, stack->model.get());
  stack->ctx = {&stack->catalog,          &stack->cluster,
                stack->graph.get(),       stack->model.get(),
                stack->global_plan.get(), stack->enumerator.get()};
  return stack;
}

std::vector<Sharing> MakeSequence(const Stack& stack, uint64_t seed) {
  TwitterSequenceOptions options;
  options.num_sharings = 40;
  options.max_predicates = 2;
  options.seed = seed;
  return GenerateTwitterSequence(stack.catalog, stack.tables, stack.cluster,
                                 options);
}

enum class Algo { kGreedy, kNormalize, kManagedRisk };

std::unique_ptr<OnlinePlanner> MakePlanner(Algo algo,
                                           const PlannerContext& ctx) {
  switch (algo) {
    case Algo::kGreedy:
      return std::make_unique<GreedyPlanner>(ctx);
    case Algo::kNormalize:
      return std::make_unique<NormalizePlanner>(ctx);
    case Algo::kManagedRisk:
      return std::make_unique<ManagedRiskPlanner>(ctx);
  }
  return nullptr;
}

struct ChoiceRecord {
  bool ok = false;
  SharingId id = 0;
  std::string plan;
  double marginal_cost = 0.0;
  double score = 0.0;
  size_t plans_considered = 0;
  bool reused_identical = false;
};

std::vector<ChoiceRecord> RunWithPool(Algo algo,
                                      const std::vector<Sharing>& sequence,
                                      ThreadPool* pool) {
  auto stack = MakeStack();
  stack->ctx.scoring_pool = pool;
  auto planner = MakePlanner(algo, stack->ctx);
  std::vector<ChoiceRecord> records;
  for (const Sharing& sharing : sequence) {
    const auto choice = planner->ProcessSharing(sharing);
    ChoiceRecord rec;
    rec.ok = choice.ok();
    if (choice.ok()) {
      rec.id = choice->id;
      rec.plan = choice->plan.ToString(stack->catalog);
      rec.marginal_cost = choice->marginal_cost;
      rec.score = choice->score;
      rec.plans_considered = choice->plans_considered;
      rec.reused_identical = choice->reused_identical;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

void ExpectSameRun(const std::vector<ChoiceRecord>& serial,
                   const std::vector<ChoiceRecord>& pooled,
                   int pool_size) {
  ASSERT_EQ(serial.size(), pooled.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("pool=" + std::to_string(pool_size) + " sharing #" +
                 std::to_string(i));
    EXPECT_EQ(serial[i].ok, pooled[i].ok);
    EXPECT_EQ(serial[i].id, pooled[i].id);
    EXPECT_EQ(serial[i].plan, pooled[i].plan);
    // Bit-identical, not approximately equal: the parallel path must be
    // invisible.
    EXPECT_EQ(serial[i].marginal_cost, pooled[i].marginal_cost);
    EXPECT_EQ(serial[i].score, pooled[i].score);
    EXPECT_EQ(serial[i].plans_considered, pooled[i].plans_considered);
    EXPECT_EQ(serial[i].reused_identical, pooled[i].reused_identical);
  }
}

class ParallelScoringTest
    : public ::testing::TestWithParam<std::tuple<Algo, uint64_t>> {};

TEST_P(ParallelScoringTest, PoolSizesMatchSerial) {
  const auto [algo, seed] = GetParam();
  const auto seq_stack = MakeStack();
  const std::vector<Sharing> sequence = MakeSequence(*seq_stack, seed);

  const std::vector<ChoiceRecord> serial =
      RunWithPool(algo, sequence, nullptr);
  size_t planned = 0;
  for (const ChoiceRecord& r : serial) planned += r.ok ? 1 : 0;
  ASSERT_GT(planned, 0u);

  for (const int pool_size : {1, 2, 8}) {
    ThreadPoolOptions options;
    options.num_threads = pool_size;
    ThreadPool pool(options);
    ExpectSameRun(serial, RunWithPool(algo, sequence, &pool), pool_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndSeeds, ParallelScoringTest,
    ::testing::Combine(::testing::Values(Algo::kGreedy, Algo::kNormalize,
                                         Algo::kManagedRisk),
                       ::testing::Values(11u, 42u)));

// Forces every sharing onto one identical-plan cache key. The planner must
// detect that the colliding entries are *not* identical queries and fall
// back to full planning — reusing the first sharing's plan for a different
// query would deliver wrong data.
class CollidingKeyPlanner : public GreedyPlanner {
 public:
  explicit CollidingKeyPlanner(PlannerContext context)
      : GreedyPlanner(context) {}

 protected:
  uint64_t IdenticalKey(const Sharing&) const override { return 42; }
};

TEST(IdenticalPlanCollisionTest, CollisionDoesNotReuseWrongPlan) {
  auto stack = MakeStack();
  CollidingKeyPlanner planner(stack->ctx);

  const std::vector<Sharing> base =
      TwitterBaseSharings(stack->tables, stack->cluster);
  ASSERT_GE(base.size(), 3u);

  // Three pairwise-different queries, all hashed onto key 42.
  const auto c1 = planner.ProcessSharing(base[0]);
  ASSERT_TRUE(c1.ok());
  EXPECT_FALSE(c1->reused_identical);

  const auto c2 = planner.ProcessSharing(base[1]);
  ASSERT_TRUE(c2.ok());
  // Key collides with base[0]'s entry, but the stored sharing differs, so
  // the fast path must not fire.
  EXPECT_FALSE(c2->reused_identical);
  EXPECT_NE(c2->plan.ToString(stack->catalog),
            c1->plan.ToString(stack->catalog));

  // A genuinely identical resubmission still reuses (the collision check
  // compares real queries, not hashes) — base[1] now owns key 42.
  const auto c3 = planner.ProcessSharing(base[1]);
  ASSERT_TRUE(c3.ok());
  EXPECT_TRUE(c3->reused_identical);
  EXPECT_EQ(c3->plan.ToString(stack->catalog),
            c2->plan.ToString(stack->catalog));
}

}  // namespace
}  // namespace dsm
