// Quantitative tests for Eq. (1)'s two correction terms on the dedicated
// trap scenario (MakeEquationOneTrap): disabling either reintroduces the
// over-risking behaviour Section 4.4 warns about.

#include <gtest/gtest.h>

#include "online/managed_risk.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;
using testing_support::RunSequence;

double RunWith(const Scenario& scenario, const ManagedRiskOptions& options) {
  auto rig = MakeRig(scenario);
  ManagedRiskPlanner planner(rig.ctx, options);
  return RunSequence(&planner, scenario);
}

TEST(EquationOneTrap, FullManagedRiskTimesTheRiskWell) {
  // With both terms active: eight cheap sharings (3 each), the bc/abc risk
  // at the ninth (26), reuse afterwards (1), and the tail declined (3).
  const Scenario sc = MakeEquationOneTrap(10, /*include_tail=*/true);
  const double cost = RunWith(sc, ManagedRiskOptions{});
  EXPECT_NEAR(cost, 8 * 3.0 + 26.0 + 1.0 + 3.0, 0.5);
}

TEST(EquationOneTrap, NoSubtractionTakesTheUnrewardedTailRisk) {
  // Without the consumed-regret subtraction, the risk-taking sharing's
  // full 26-dollar cost inflates ab's pending regret, and the tail sharing
  // computes ab (35.1) although nothing ever reuses it.
  const Scenario sc = MakeEquationOneTrap(10, /*include_tail=*/true);
  ManagedRiskOptions ablated;
  ablated.subtract_consumed_regret = false;
  const double ablated_cost = RunWith(sc, ablated);
  const double full_cost = RunWith(sc, ManagedRiskOptions{});
  EXPECT_GT(ablated_cost, full_cost + 20.0);
  // The ab view exists only in the ablated run.
  auto rig_full = MakeRig(sc);
  ManagedRiskPlanner full(rig_full.ctx);
  (void)RunSequence(&full, sc);
  TableSet ab;
  ab.Add(0);
  ab.Add(1);
  EXPECT_FALSE(rig_full.global_plan->HasUnpredicatedView(ab));

  auto rig_ablated = MakeRig(sc);
  ManagedRiskPlanner ablated_planner(rig_ablated.ctx, ablated);
  (void)RunSequence(&ablated_planner, sc);
  EXPECT_TRUE(rig_ablated.global_plan->HasUnpredicatedView(ab));
}

TEST(EquationOneTrap, NoDivisionRisksTooEarly) {
  // Short sequence (7 sharings, no tail): the full algorithm never finds
  // the bc/abc risk worthwhile (cost 21); without the 1/(m-1) damping the
  // doubled incentive triggers the 26-dollar risk around the fifth sharing.
  const Scenario sc = MakeEquationOneTrap(7, /*include_tail=*/false);
  const double full_cost = RunWith(sc, ManagedRiskOptions{});
  EXPECT_NEAR(full_cost, 7 * 3.0, 0.5);

  ManagedRiskOptions ablated;
  ablated.divide_by_joins = false;
  const double ablated_cost = RunWith(sc, ablated);
  EXPECT_GT(ablated_cost, full_cost + 10.0);
}

TEST(EquationOneTrap, LongSequencesRewardTheRisk) {
  // Sanity: on long sequences the risk pays off and full MANAGEDRISK ends
  // up cheaper per sharing than an algorithm that never risks (GREEDY).
  const Scenario sc = MakeEquationOneTrap(40, /*include_tail=*/false);
  const double mr = RunWith(sc, ManagedRiskOptions{});
  // GREEDY pays the 3-dollar plan forever: 120 total. MR pays 26 once and
  // ~1 afterwards.
  EXPECT_LT(mr, 40 * 3.0);
}

}  // namespace
}  // namespace dsm
