// Fault-tolerance integration: a server dies mid-simulation while buyers'
// views are being maintained, the market migrates or parks the affected
// sharings and keeps every surviving view verifiable; afterwards a crash
// restart replays snapshot + journal into the same global plan DAG the
// provider had committed before the failure.

#include <gtest/gtest.h>

#include <memory>

#include "common/fault.h"
#include "cost/default_cost_model.h"
#include "io/plan_journal.h"
#include "market/simulation.h"
#include "online/managed_risk.h"
#include "online/recovery_planner.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

struct MarketRig {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> gp;
  PlannerContext ctx;
};

std::unique_ptr<MarketRig> MakeMarketRig() {
  auto rig = std::make_unique<MarketRig>();
  const auto tables = BuildTwitterCatalog(&rig->catalog);
  EXPECT_TRUE(tables.ok());
  rig->tables = *tables;
  for (int i = 0; i < 3; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  rig->cluster.PlaceRoundRobin(rig->catalog.num_tables());
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->gp = std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->ctx = PlannerContext{&rig->catalog,    &rig->cluster,
                            rig->graph.get(), rig->model.get(),
                            rig->gp.get(),    rig->enumerator.get()};
  return rig;
}

// Two global plans are the same DAG for our purposes when they serve the
// same sharings, with identical individual plans, at identical cost.
void ExpectSamePlan(const GlobalPlan& a, const GlobalPlan& b) {
  EXPECT_NEAR(a.TotalCost(), b.TotalCost(), 1e-9);
  EXPECT_EQ(a.num_alive_views(), b.num_alive_views());
  ASSERT_EQ(a.sharing_ids(), b.sharing_ids());
  for (const SharingId id : a.sharing_ids()) {
    const auto* ra = a.record(id);
    const auto* rb = b.record(id);
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(ra->plan.Signature(), rb->plan.Signature());
    EXPECT_NEAR(a.GPC(id), b.GPC(id), 1e-9);
    EXPECT_NEAR(ra->marginal_cost, rb->marginal_cost, 1e-9);
  }
}

TEST(FailureRecoveryTest, ServerDeathMidRunMigratesAndRestartRestores) {
  auto rig = MakeMarketRig();
  ManagedRiskPlanner planner(rig->ctx);
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());

  // Buyers purchase four sharings; every committed choice is journaled and
  // its view registered for live maintenance.
  MarketSimulation sim(&rig->catalog, /*seed=*/20140622,
                       /*domain_compression=*/1e-4);
  const auto base = TwitterBaseSharings(rig->tables, rig->cluster);
  for (size_t i = 0; i < 4; ++i) {
    const auto choice = planner.ProcessSharing(base[i]);
    ASSERT_TRUE(choice.ok()) << choice.status().ToString();
    ASSERT_TRUE(journal.Append(choice->id, base[i], choice->plan).ok());
    ASSERT_TRUE(sim.AddBuyerView(choice->id, base[i].ResultKey()).ok());
  }
  // The provider's committed state, before any machine trouble.
  const auto pre_failure =
      MarketStateToString(rig->catalog, rig->cluster, rig->gp.get());
  ASSERT_TRUE(pre_failure.ok());
  const auto snapshot =
      MarketStateToString(rig->catalog, rig->cluster, nullptr);
  ASSERT_TRUE(snapshot.ok());

  // m1 dies at tick 1, mid-stream.
  RecoveryPlanner recovery(rig->ctx);
  sim.AttachFaultDomain(&rig->cluster, &recovery);
  ASSERT_TRUE(sim.ScheduleServerFailure(1, 1).ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/2, /*scale=*/0.03).ok());

  const auto& stats = sim.recovery_stats();
  EXPECT_EQ(stats.failures, 1);
  // S2's destination is m1 and three base tables are homed there: at least
  // one sharing must have been hit, and none may still touch the corpse.
  EXPECT_GT(stats.migrated + stats.parked, 0);
  EXPECT_GE(stats.parked, 1);
  EXPECT_EQ(sim.parked_sharings(), static_cast<size_t>(stats.parked));
  EXPECT_TRUE(rig->gp->SharingsTouchingServer(1).empty());
  // Every surviving view still matches a from-scratch recomputation.
  auto verified = sim.VerifyViews();
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);

  // The machine returns at tick 2: parked sharings are re-admitted and
  // their views recomputed.
  ASSERT_TRUE(sim.ScheduleServerRecovery(2, 1).ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/2, /*scale=*/0.03).ok());
  EXPECT_EQ(sim.recovery_stats().recoveries, 1);
  EXPECT_EQ(sim.recovery_stats().readmitted, stats.parked);
  EXPECT_EQ(sim.parked_sharings(), 0u);
  verified = sim.VerifyViews();
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);

  // Crash restart: replaying snapshot + journal on fresh machines yields
  // exactly the global plan DAG that was committed before the failure.
  const auto recovered = RecoverMarketState(*snapshot, journal.contents());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->sharings.size(), 4u);
  DefaultCostModel recovered_model(&recovered->catalog,
                                   &recovered->cluster);
  GlobalPlan restored(&recovered->cluster, &recovered_model);
  ASSERT_TRUE(RestoreGlobalPlan(*recovered, &restored).ok());

  const auto reference_state = MarketStateFromString(*pre_failure);
  ASSERT_TRUE(reference_state.ok());
  DefaultCostModel reference_model(&reference_state->catalog,
                                   &reference_state->cluster);
  GlobalPlan reference(&reference_state->cluster, &reference_model);
  ASSERT_TRUE(RestoreGlobalPlan(*reference_state, &reference).ok());
  ExpectSamePlan(restored, reference);
}

TEST(FailureRecoveryTest, CrashDuringAppendLosesOnlyTheTornRecord) {
  auto rig = MakeMarketRig();
  ManagedRiskPlanner planner(rig->ctx);
  PlanJournal journal;
  ASSERT_TRUE(journal.Open().ok());
  const auto snapshot =
      MarketStateToString(rig->catalog, rig->cluster, nullptr);
  ASSERT_TRUE(snapshot.ok());

  TwitterSequenceOptions options;
  options.num_sharings = 6;
  options.max_predicates = 1;
  options.seed = 41;
  const auto sequence = GenerateTwitterSequence(rig->catalog, rig->tables,
                                                rig->cluster, options);
  std::vector<PlanChoice> committed;
  for (size_t i = 0; i < 5; ++i) {
    const auto choice = planner.ProcessSharing(sequence[i]);
    ASSERT_TRUE(choice.ok());
    ASSERT_TRUE(
        journal.Append(choice->id, sequence[i], choice->plan).ok());
    committed.push_back(*choice);
  }

  // The process dies halfway through journaling the sixth commit.
  const auto last = planner.ProcessSharing(sequence[5]);
  ASSERT_TRUE(last.ok());
  {
    ScopedFault crash("io/journal-append");
    EXPECT_EQ(journal.Append(last->id, sequence[5], last->plan).code(),
              StatusCode::kInternal);
  }

  JournalReplay stats;
  const auto recovered =
      RecoverMarketState(*snapshot, journal.contents(), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(stats.records_recovered, 5u);
  EXPECT_TRUE(stats.tail_dropped);
  EXPECT_GT(stats.bytes_dropped, 0u);
  ASSERT_EQ(recovered->sharings.size(), 5u);

  // The restored DAG is identical to the pre-crash plan for every fully
  // journaled sharing: same plan, same GPC, same marginal cost.
  DefaultCostModel recovered_model(&recovered->catalog,
                                   &recovered->cluster);
  GlobalPlan restored(&recovered->cluster, &recovered_model);
  ASSERT_TRUE(RestoreGlobalPlan(*recovered, &restored).ok());
  EXPECT_EQ(restored.num_sharings(), 5u);
  for (const PlanChoice& choice : committed) {
    const auto* rec = restored.record(choice.id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->plan.Signature(), choice.plan.Signature());
    EXPECT_NEAR(rec->marginal_cost, choice.marginal_cost, 1e-9);
    EXPECT_NEAR(restored.GPC(choice.id), rig->gp->GPC(choice.id), 1e-9);
  }
  // The torn sixth record is gone — lost, not corrupted.
  EXPECT_EQ(restored.record(last->id), nullptr);
}

}  // namespace
}  // namespace dsm
