// Cross-planner invariants over randomized scenarios: properties every
// online planner must satisfy regardless of scoring rule.

#include <gtest/gtest.h>

#include "online/exhaustive.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;
using testing_support::RunSequence;

struct Case {
  uint64_t seed;
  int algo;  // 0 greedy, 1 normalize, 2 managed-risk
};

class PlannerInvariantTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {
 protected:
  std::unique_ptr<OnlinePlanner> Make(const PlannerContext& ctx) const {
    switch (std::get<1>(GetParam())) {
      case 0:
        return std::make_unique<GreedyPlanner>(ctx);
      case 1:
        return std::make_unique<NormalizePlanner>(ctx);
      default:
        return std::make_unique<ManagedRiskPlanner>(ctx);
    }
  }
  uint64_t seed() const { return std::get<0>(GetParam()); }
};

TEST_P(PlannerInvariantTest, GlobalCostNeverExceedsSumOfStandalonePlans) {
  // Reuse can only help: the online global plan costs at most the sum of
  // the cheapest standalone plans... not guaranteed for risk-taking
  // planners mid-sequence, but it IS bounded by the sum of the *chosen*
  // plans' standalone costs.
  const Scenario sc = MakeRandomThreeWay(seed(), 12, 10);
  auto rig = MakeRig(sc);
  const auto planner = Make(rig.ctx);
  double standalone_sum = 0.0;
  for (const Sharing& sharing : sc.sharings) {
    const auto choice = planner->ProcessSharing(sharing);
    ASSERT_TRUE(choice.ok());
    standalone_sum += PlanCost(choice->plan, sc.model.get());
  }
  EXPECT_LE(rig.global_plan->TotalCost(), standalone_sum + 1e-6);
}

TEST_P(PlannerInvariantTest, MarginalCostsSumToGlobalCost) {
  const Scenario sc = MakeRandomThreeWay(seed() ^ 0xf00d, 15, 10);
  auto rig = MakeRig(sc);
  const auto planner = Make(rig.ctx);
  double marginal_sum = 0.0;
  for (const Sharing& sharing : sc.sharings) {
    const auto choice = planner->ProcessSharing(sharing);
    ASSERT_TRUE(choice.ok());
    marginal_sum += choice->marginal_cost;
  }
  EXPECT_NEAR(rig.global_plan->TotalCost(), marginal_sum, 1e-6);
}

TEST_P(PlannerInvariantTest, DeterministicAcrossRuns) {
  const Scenario sc = MakeRandomThreeWay(seed() ^ 0xcafe, 10, 10);
  double costs[2];
  for (int run = 0; run < 2; ++run) {
    auto rig = MakeRig(sc);
    const auto planner = Make(rig.ctx);
    costs[run] = RunSequence(planner.get(), sc);
  }
  EXPECT_DOUBLE_EQ(costs[0], costs[1]);
}

TEST_P(PlannerInvariantTest, NeverBelowOfflineOptimum) {
  // Small instances only: the exhaustive optimum lower-bounds every
  // online planner.
  const Scenario sc = MakeRandomThreeWay(seed() ^ 0xd1ce, 4, 8);
  auto rig_online = MakeRig(sc);
  const auto planner = Make(rig_online.ctx);
  const double online_cost = RunSequence(planner.get(), sc);

  auto rig_ex = MakeRig(sc);
  ExhaustivePlanner exhaustive(rig_ex.ctx);
  const auto optimum = exhaustive.Solve(sc.sharings);
  ASSERT_TRUE(optimum.ok());
  EXPECT_GE(online_cost + 1e-9, optimum->total_cost);
}

TEST_P(PlannerInvariantTest, RepeatedQueryIsFree) {
  const Scenario sc = MakeRandomThreeWay(seed() ^ 0xabba, 3, 10);
  auto rig = MakeRig(sc);
  const auto planner = Make(rig.ctx);
  ASSERT_TRUE(planner->ProcessSharing(sc.sharings[0]).ok());
  const double before = rig.global_plan->TotalCost();
  const auto repeat = planner->ProcessSharing(sc.sharings[0]);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->reused_identical);
  EXPECT_NEAR(rig.global_plan->TotalCost(), before, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByAlgo, PlannerInvariantTest,
    ::testing::Combine(::testing::Values(11ull, 22ull, 33ull, 44ull),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace dsm
