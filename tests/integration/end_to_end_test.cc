// Integration tests across the whole stack: Twitter workload -> online
// planning -> global plan -> fair costing, plus planner/costing/maintenance
// interplay on realistic sequences.

#include <gtest/gtest.h>

#include <set>

#include "cost/default_cost_model.h"
#include "costing/even_split.h"
#include "costing/fairness_metrics.h"
#include "costing/lpc.h"
#include "costing/savings.h"
#include "maintain/delta_engine.h"
#include "online/greedy.h"
#include "online/managed_risk.h"
#include "online/normalize.h"
#include "workload/twitter.h"

namespace dsm {
namespace {

struct TwitterRig {
  Catalog catalog;
  Cluster cluster;
  TwitterTables tables;
  std::unique_ptr<JoinGraph> graph;
  std::unique_ptr<DefaultCostModel> model;
  std::unique_ptr<PlanEnumerator> enumerator;
  std::unique_ptr<GlobalPlan> global_plan;
  PlannerContext ctx;
};

std::unique_ptr<TwitterRig> MakeTwitterRig(size_t num_machines = 6) {
  auto rig = std::make_unique<TwitterRig>();
  const auto tables = BuildTwitterCatalog(&rig->catalog);
  EXPECT_TRUE(tables.ok());
  rig->tables = *tables;
  for (size_t i = 0; i < num_machines; ++i) {
    rig->cluster.AddServer("m" + std::to_string(i));
  }
  rig->cluster.PlaceRoundRobin(rig->catalog.num_tables());
  rig->graph =
      std::make_unique<JoinGraph>(JoinGraph::FromCatalog(rig->catalog));
  rig->model =
      std::make_unique<DefaultCostModel>(&rig->catalog, &rig->cluster);
  rig->enumerator = std::make_unique<PlanEnumerator>(
      &rig->catalog, &rig->cluster, rig->graph.get(), rig->model.get(),
      EnumeratorOptions{});
  rig->global_plan =
      std::make_unique<GlobalPlan>(&rig->cluster, rig->model.get());
  rig->ctx.catalog = &rig->catalog;
  rig->ctx.cluster = &rig->cluster;
  rig->ctx.graph = rig->graph.get();
  rig->ctx.model = rig->model.get();
  rig->ctx.global_plan = rig->global_plan.get();
  rig->ctx.enumerator = rig->enumerator.get();
  return rig;
}

std::vector<Sharing> Sequence(const TwitterRig& rig, size_t n,
                              int max_preds, uint64_t seed) {
  TwitterSequenceOptions options;
  options.num_sharings = n;
  options.max_predicates = max_preds;
  options.seed = seed;
  return GenerateTwitterSequence(rig.catalog, rig.tables, rig.cluster,
                                 options);
}

TEST(EndToEndTest, AllTwitterBaseSharingsPlannable) {
  auto rig = MakeTwitterRig();
  ManagedRiskPlanner planner(rig->ctx);
  for (const Sharing& s : TwitterBaseSharings(rig->tables, rig->cluster)) {
    const auto choice = planner.ProcessSharing(s);
    ASSERT_TRUE(choice.ok()) << s.ToString(rig->catalog) << ": "
                             << choice.status().ToString();
    EXPECT_GE(choice->marginal_cost, 0.0);
  }
  EXPECT_EQ(rig->global_plan->num_sharings(), 25u);
  EXPECT_GT(rig->global_plan->TotalCost(), 0.0);
}

TEST(EndToEndTest, ReuseMakesGlobalPlanSublinear) {
  // 30 sharings drawn from 25 bases share many subexpressions: the global
  // plan must cost less than the sum of standalone plans.
  auto rig = MakeTwitterRig();
  ManagedRiskPlanner planner(rig->ctx);
  double standalone_sum = 0.0;
  for (const Sharing& s : Sequence(*rig, 30, 0, 17)) {
    const auto choice = planner.ProcessSharing(s);
    ASSERT_TRUE(choice.ok());
    standalone_sum += PlanCost(choice->plan, rig->model.get());
  }
  EXPECT_LT(rig->global_plan->TotalCost(), 0.8 * standalone_sum);
}

TEST(EndToEndTest, FairCostBeatsEvenSplitOnFairness) {
  // The Figure 7 comparison in miniature: FAIRCOST achieves metric 1.0
  // everywhere; the even-split baseline generally does not.
  auto rig = MakeTwitterRig();
  ManagedRiskPlanner planner(rig->ctx);
  for (const Sharing& s : Sequence(*rig, 40, 2, 23)) {
    ASSERT_TRUE(planner.ProcessSharing(s).ok());
  }

  LpcCalculator lpc(rig->enumerator.get(), rig->model.get());
  const auto problem = BuildFairCostProblem(*rig->global_plan, &lpc);
  ASSERT_TRUE(problem.ok());

  const auto fair = FairCost::Compute(problem->entries,
                                      problem->global_cost);
  ASSERT_TRUE(fair.ok());
  const FairnessReport fair_report =
      EvaluateFairness(problem->entries, problem->global_cost, fair->ac);
  EXPECT_DOUBLE_EQ(fair_report.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(fair_report.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(fair_report.contained_fraction, 1.0);
  EXPECT_NEAR(fair_report.recovery_error, 0.0, 1e-6);

  const auto even = EvenSplitCosts(*rig->global_plan, problem->ids);
  ASSERT_TRUE(even.ok());
  const FairnessReport even_report =
      EvaluateFairness(problem->entries, problem->global_cost, *even);
  EXPECT_NEAR(even_report.recovery_error, 0.0, 1e-6);
  EXPECT_GE(fair_report.alpha, even_report.alpha - 1e-9);
}

TEST(EndToEndTest, AttributedCostsNeverExceedLpc) {
  auto rig = MakeTwitterRig();
  GreedyPlanner planner(rig->ctx);
  for (const Sharing& s : Sequence(*rig, 25, 1, 31)) {
    ASSERT_TRUE(planner.ProcessSharing(s).ok());
  }
  LpcCalculator lpc(rig->enumerator.get(), rig->model.get());
  const auto problem = BuildFairCostProblem(*rig->global_plan, &lpc);
  ASSERT_TRUE(problem.ok());
  const auto fair =
      FairCost::Compute(problem->entries, problem->global_cost);
  ASSERT_TRUE(fair.ok());
  for (size_t i = 0; i < fair->ac.size(); ++i) {
    EXPECT_LE(fair->ac[i], problem->entries[i].lpc * (1 + 1e-9) + 1e-9);
  }
}

TEST(EndToEndTest, ThreePlannersProduceComparableCosts) {
  // Section 6.2.1: "On average, the global plans generated by the three
  // algorithms have similar costs" — within a small factor here.
  std::vector<double> costs;
  for (int which = 0; which < 3; ++which) {
    auto rig = MakeTwitterRig();
    std::unique_ptr<OnlinePlanner> planner;
    if (which == 0) planner = std::make_unique<GreedyPlanner>(rig->ctx);
    if (which == 1) planner = std::make_unique<NormalizePlanner>(rig->ctx);
    if (which == 2) {
      planner = std::make_unique<ManagedRiskPlanner>(rig->ctx);
    }
    for (const Sharing& s : Sequence(*rig, 30, 0, 47)) {
      ASSERT_TRUE(planner->ProcessSharing(s).ok());
    }
    costs.push_back(rig->global_plan->TotalCost());
  }
  const double lo = std::min({costs[0], costs[1], costs[2]});
  const double hi = std::max({costs[0], costs[1], costs[2]});
  EXPECT_LT(hi / lo, 3.0);
}

TEST(EndToEndTest, PlannedViewMaintainedByDeltaEngine) {
  // Close the loop: plan a sharing, then actually maintain its view.
  auto rig = MakeTwitterRig();
  ManagedRiskPlanner planner(rig->ctx);
  const auto base = TwitterBaseSharings(rig->tables, rig->cluster);
  const Sharing& s5 = base[4];  // USERS ⋈ TWEETS
  ASSERT_TRUE(planner.ProcessSharing(s5).ok());

  DeltaEngine engine(&rig->catalog);
  ASSERT_TRUE(engine.RegisterBase(rig->tables.users).ok());
  ASSERT_TRUE(engine.RegisterBase(rig->tables.tweets).ok());
  const auto view = engine.RegisterView(s5.ResultKey());
  ASSERT_TRUE(view.ok());

  Rng rng(71);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .ApplyUpdate(rig->tables.users,
                                 {RandomTwitterTuple(
                                     rig->catalog, rig->tables.users, &rng)},
                                 {})
                    .ok());
    ASSERT_TRUE(
        engine
            .ApplyUpdate(rig->tables.tweets,
                         {RandomTwitterTuple(rig->catalog,
                                             rig->tables.tweets, &rng)},
                         {})
            .ok());
  }
  const auto expected = engine.Recompute(s5.ResultKey());
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(engine.view(*view)->BagEquals(*expected));
}

}  // namespace
}  // namespace dsm
