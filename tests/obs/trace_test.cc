#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dsm {
namespace obs {
namespace {

TEST(TracerTest, RecordsSpansOldestFirst) {
  Tracer tracer(/*capacity=*/8);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span;
    span.id = tracer.NextSpanId();
    span.name = "span" + std::to_string(i);
    tracer.Record(std::move(span));
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span0");
  EXPECT_EQ(spans[2].name, "span2");
  EXPECT_EQ(tracer.total_recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, RingBufferWraparoundKeepsNewest) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span;
    span.id = tracer.NextSpanId();
    span.name = "s" + std::to_string(i);
    tracer.Record(std::move(span));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first reconstruction across the wrap point: s6..s9 survive.
  EXPECT_EQ(spans[0].name, "s6");
  EXPECT_EQ(spans[3].name, "s9");
}

TEST(TracerTest, ClearEmptiesBufferAndCounters) {
  Tracer tracer(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span;
    span.id = tracer.NextSpanId();
    span.name = "x";
    tracer.Record(std::move(span));
  }
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ScopedSpanTest, NestingTracksParentAndDepth) {
  Tracer tracer(/*capacity=*/16);
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      inner.Annotate("key", "value");
    }
  }
  // Spans are recorded on destruction, so inner lands before outer.
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan& inner = spans[0];
  const TraceSpan& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(inner.depth, 1);
  ASSERT_EQ(inner.annotations.size(), 1u);
  EXPECT_EQ(inner.annotations[0].first, "key");
  EXPECT_EQ(inner.annotations[0].second, "value");
}

TEST(ScopedSpanTest, SiblingsShareParent) {
  Tracer tracer(/*capacity=*/16);
  {
    ScopedSpan parent(&tracer, "parent");
    { ScopedSpan a(&tracer, "a"); }
    { ScopedSpan b(&tracer, "b"); }
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[2].name, "parent");
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  // After the first child closed, the second must not parent under it.
  EXPECT_NE(spans[1].parent_id, spans[0].id);
}

TEST(ScopedSpanTest, AnnotateCurrentTargetsInnermostOpenSpan) {
  Tracer tracer(/*capacity=*/16);
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
      ScopedSpan::AnnotateCurrent("who", "inner");
    }
    ScopedSpan::AnnotateCurrent("who", "outer");
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].second, "inner");
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].second, "outer");
}

TEST(ScopedSpanTest, DurationIsMeasured) {
  Tracer tracer(/*capacity=*/4);
  { ScopedSpan span(&tracer, "timed"); }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  // Timestamps are relative to the tracer's epoch; neither the start nor
  // the measured duration can exceed "now".
  EXPECT_LE(spans[0].start_ns, tracer.NowNanos());
  EXPECT_LE(spans[0].duration_ns, tracer.NowNanos());
}

TEST(TracerJsonTest, RoundTripThroughParseSpansJson) {
  Tracer tracer(/*capacity=*/8);
  {
    ScopedSpan outer(&tracer, "plan/enumerate");
    outer.Annotate("plans", "12");
    { ScopedSpan inner(&tracer, "plan/prune"); }
  }
  const std::string text = tracer.DumpJson(2);
  const auto parsed = ParseSpansJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<TraceSpan>& spans = *parsed;
  const std::vector<TraceSpan> original = tracer.spans();
  ASSERT_EQ(spans.size(), original.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, original[i].id);
    EXPECT_EQ(spans[i].parent_id, original[i].parent_id);
    EXPECT_EQ(spans[i].depth, original[i].depth);
    EXPECT_EQ(spans[i].name, original[i].name);
    EXPECT_EQ(spans[i].start_ns, original[i].start_ns);
    EXPECT_EQ(spans[i].duration_ns, original[i].duration_ns);
    EXPECT_EQ(spans[i].annotations, original[i].annotations);
  }
}

TEST(TracerJsonTest, ToJsonCarriesBookkeeping) {
  Tracer tracer(/*capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    TraceSpan span;
    span.id = tracer.NextSpanId();
    span.name = "n";
    tracer.Record(std::move(span));
  }
  const JsonValue doc = tracer.ToJson();
  ASSERT_TRUE(doc.Has("capacity"));
  ASSERT_TRUE(doc.Has("total_recorded"));
  ASSERT_TRUE(doc.Has("dropped"));
  ASSERT_TRUE(doc.Has("spans"));
  EXPECT_EQ(doc.Find("capacity")->int_value(), 2);
  EXPECT_EQ(doc.Find("total_recorded")->int_value(), 3);
  EXPECT_EQ(doc.Find("dropped")->int_value(), 1);
  EXPECT_EQ(doc.Find("spans")->items().size(), 2u);
}

TEST(TracerJsonTest, ParseAcceptsBareArray) {
  const auto parsed = ParseSpansJson(
      R"([{"id":1,"parent_id":0,"depth":0,"name":"x","start_ns":5,)"
      R"("duration_ns":2,"annotations":{"plans":"3"}}])");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "x");
  EXPECT_EQ((*parsed)[0].start_ns, 5u);
  ASSERT_EQ((*parsed)[0].annotations.size(), 1u);
  EXPECT_EQ((*parsed)[0].annotations[0].first, "plans");
  EXPECT_EQ((*parsed)[0].annotations[0].second, "3");
}

TEST(TracerJsonTest, ParseRejectsMalformedSpans) {
  EXPECT_FALSE(ParseSpansJson("{}").ok());             // no "spans"
  EXPECT_FALSE(ParseSpansJson(R"({"spans":1})").ok()); // not an array
  EXPECT_FALSE(ParseSpansJson(R"([{"id":1}])").ok());  // missing name
  EXPECT_FALSE(ParseSpansJson(R"([{"name":"x"}])").ok());  // missing id
}

}  // namespace
}  // namespace obs
}  // namespace dsm
