#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <string>

#include "market/simulation.h"
#include "obs/trace.h"
#include "workload/twitter.h"

namespace dsm {
namespace obs {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

class RunReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto tables = BuildTwitterCatalog(&catalog_);
    ASSERT_TRUE(tables.ok());
    tables_ = *tables;
  }

  // Runs a fresh, identically-configured simulation and returns its report
  // text. The global registry accumulates across the whole process, so it
  // is reset first — a report is only reproducible from a clean registry.
  std::string SeededReportText(uint64_t seed, bool include_timings) {
    MetricsRegistry::Global().Reset();
    Tracer::Global().Clear();
    MarketSimulation sim(&catalog_, seed);
    EXPECT_TRUE(
        sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
            .ok());
    EXPECT_TRUE(
        sim.AddBuyerView(2, ViewKey(TS({tables_.tweets, tables_.curloc})))
            .ok());
    EXPECT_TRUE(sim.Run(/*ticks=*/6, /*scale=*/0.05).ok());
    RunReportOptions options;
    options.include_timings = include_timings;
    return sim.BuildRunReport().ToJsonText(options);
  }

  Catalog catalog_;
  TwitterTables tables_;
};

TEST_F(RunReportTest, ReportCarriesSimulationOutcome) {
  MetricsRegistry::Global().Reset();
  MarketSimulation sim(&catalog_, 91);
  ASSERT_TRUE(
      sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/4, /*scale=*/0.05).ok());
  const RunReport report = sim.BuildRunReport();
  EXPECT_EQ(report.schema_version, 1);
  EXPECT_EQ(report.seed, 91u);
  EXPECT_EQ(report.epoch, 1);
  EXPECT_EQ(report.ticks, 4);
  EXPECT_EQ(report.updates_applied, sim.updates_applied());
  ASSERT_EQ(report.view_sizes.size(), 1u);
  EXPECT_EQ(report.view_sizes[0].first, 1u);
  EXPECT_GE(report.view_sizes[0].second, 0);
#ifndef DSM_DISABLE_TELEMETRY
  // The instrumented delta engine must have counted every delta tuple the
  // simulation streamed (registry was reset just before this run).
  ASSERT_TRUE(report.metrics.counters.count("dsm.maintain.delta_tuples"));
  EXPECT_EQ(report.metrics.counters.at("dsm.maintain.delta_tuples"),
            sim.updates_applied());
#endif
}

TEST_F(RunReportTest, EpochCountsCompletedRuns) {
  MarketSimulation sim(&catalog_, 92);
  ASSERT_TRUE(
      sim.AddBuyerView(1, ViewKey(TS({tables_.users, tables_.tweets})))
          .ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/2, /*scale=*/0.05).ok());
  ASSERT_TRUE(sim.Run(/*ticks=*/2, /*scale=*/0.05).ok());
  EXPECT_EQ(sim.epoch(), 2);
  EXPECT_EQ(sim.BuildRunReport().epoch, 2);
}

TEST_F(RunReportTest, JsonValidatesAgainstSchema) {
  const std::string text = SeededReportText(123, /*include_timings=*/true);
  const Status status = ValidateRunReportJson(text);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(RunReportTest, GoldenReportIsByteStableAcrossIdenticalRuns) {
  // Timing histograms are the only nondeterministic content; with them
  // excluded, two identically-seeded runs serialize byte-for-byte equal.
  const std::string first = SeededReportText(777, /*include_timings=*/false);
  const std::string second = SeededReportText(777, /*include_timings=*/false);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(ValidateRunReportJson(first).ok());
  // Sanity: the stable document still carries real content.
  const auto doc = ParseJson(first);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("seed")->int_value(), 777);
  EXPECT_GT(doc->Find("updates_applied")->int_value(), 0);
  EXPECT_EQ(doc->Find("views")->items().size(), 2u);
  EXPECT_FALSE(doc->Find("telemetry")->Has("histograms"));
}

TEST_F(RunReportTest, DifferentSeedsDiverge) {
  const std::string a = SeededReportText(1001, /*include_timings=*/false);
  const std::string b = SeededReportText(1002, /*include_timings=*/false);
  EXPECT_NE(a, b);
}

TEST_F(RunReportTest, TimingsIncludedByDefault) {
  const std::string text = SeededReportText(55, /*include_timings=*/true);
  const auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
#ifndef DSM_DISABLE_TELEMETRY
  const JsonValue* telemetry = doc->Find("telemetry");
  ASSERT_TRUE(telemetry->Has("histograms"));
  // The delta engine's apply timer must have fired during the run.
  EXPECT_TRUE(telemetry->Find("histograms")->Has("dsm.maintain.apply_ms"));
#endif
}

TEST(RunReportSchemaTest, CostingSectionIsOptionalButSerialized) {
  RunReport report;
  report.seed = 5;
  EXPECT_FALSE(report.ToJson().Has("costing"));

  RunReport::Costing costing;
  costing.alpha = 0.5;
  costing.global_cost = 12.0;
  costing.criteria_satisfied = false;
  costing.sharings.emplace_back(7, 8.0, 9.0);
  report.SetCosting(costing);
  const JsonValue doc = report.ToJson();
  ASSERT_TRUE(doc.Has("costing"));
  const JsonValue* cj = doc.Find("costing");
  EXPECT_EQ(cj->Find("alpha")->number(), 0.5);
  EXPECT_FALSE(cj->Find("criteria_satisfied")->bool_value());
  ASSERT_EQ(cj->Find("sharings")->items().size(), 1u);
  EXPECT_EQ(cj->Find("sharings")->items()[0].Find("sharing_id")->int_value(),
            7);
  // The attached bill keeps the report schema-valid.
  EXPECT_TRUE(ValidateRunReportJson(report.ToJsonText()).ok());
}

TEST(RunReportSchemaTest, ValidatorRejectsMissingKeys) {
  EXPECT_FALSE(ValidateRunReportJson("not json").ok());
  EXPECT_FALSE(ValidateRunReportJson("{}").ok());
  EXPECT_FALSE(ValidateRunReportJson("[1,2]").ok());
  // Strip one required key from an otherwise-valid report.
  RunReport report;
  JsonValue doc = report.ToJson();
  doc.members().erase("recovery");
  EXPECT_FALSE(ValidateRunReportJson(doc.Dump()).ok());
}

TEST(RunReportSchemaTest, BenchValidatorChecksSections) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", 1);
  doc.Set("bench", "demo");
  doc.Set("full_scale", true);
  doc.Set("smoke", false);
  JsonValue telemetry = JsonValue::Object();
  telemetry.Set("counters", JsonValue::Object());
  telemetry.Set("gauges", JsonValue::Object());
  doc.Set("telemetry", std::move(telemetry));

  JsonValue section = JsonValue::Object();
  section.Set("name", "s1");
  section.Set("rows", JsonValue::Array());
  JsonValue sections = JsonValue::Array();
  sections.Append(std::move(section));
  doc.Set("sections", std::move(sections));
  EXPECT_TRUE(ValidateBenchReportJson(doc.Dump()).ok())
      << ValidateBenchReportJson(doc.Dump()).ToString();

  // A section without rows is rejected.
  JsonValue bad_section = JsonValue::Object();
  bad_section.Set("name", "s2");
  doc.members()["sections"].Append(std::move(bad_section));
  EXPECT_FALSE(ValidateBenchReportJson(doc.Dump()).ok());
}

}  // namespace
}  // namespace obs
}  // namespace dsm
