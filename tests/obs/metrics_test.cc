#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dsm {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("dsm.test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& th : threads) th.join();
  // Sharded atomics must still produce an exact (not approximate) sum.
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, AddAndReset) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("dsm.test.add");
  counter->Add(5);
  counter->Add(7);
  EXPECT_EQ(counter->value(), 12u);
  counter->Reset();
  EXPECT_EQ(counter->value(), 0u);
}

TEST(GaugeTest, SetOverwrites) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("dsm.test.gauge");
  gauge->Set(3.5);
  gauge->Set(-2.0);
  EXPECT_EQ(gauge->value(), -2.0);
  gauge->Reset();
  EXPECT_EQ(gauge->value(), 0.0);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("dsm.x"), registry.GetCounter("dsm.x"));
  EXPECT_EQ(registry.GetGauge("dsm.y"), registry.GetGauge("dsm.y"));
  EXPECT_EQ(registry.GetHistogram("dsm.z"), registry.GetHistogram("dsm.z"));
  EXPECT_NE(registry.GetCounter("dsm.x"),
            registry.GetCounter("dsm.x2"));
}

TEST(HistogramTest, BucketBoundaries) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("dsm.test.hist", {1.0, 10.0, 100.0});
  ASSERT_EQ(h->num_buckets(), 4u);  // 3 bounds -> 3 finite + overflow
  h->Observe(0.5);    // < 1.0              -> bucket 0
  h->Observe(1.0);    // == bound is inclusive (le semantics) -> bucket 0
  h->Observe(1.5);    // (1, 10]            -> bucket 1
  h->Observe(10.0);   //                    -> bucket 1
  h->Observe(99.9);   // (10, 100]          -> bucket 2
  h->Observe(100.5);  // > last bound       -> overflow bucket
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 100.5);
  EXPECT_EQ(h->min(), 0.5);
  EXPECT_EQ(h->max(), 100.5);
}

TEST(HistogramTest, ConcurrentObservesKeepExactCountAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("dsm.test.conc_hist", {5.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), kThreads * kPerThread * 1.0);
  EXPECT_EQ(h->bucket_count(0), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(SnapshotTest, CapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("dsm.test.c")->Add(3);
  registry.GetGauge("dsm.test.g")->Set(1.5);
  registry.GetHistogram("dsm.test.h", {1.0})->Observe(0.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.counters.count("dsm.test.c"));
  EXPECT_EQ(snapshot.counters.at("dsm.test.c"), 3u);
  ASSERT_TRUE(snapshot.gauges.count("dsm.test.g"));
  EXPECT_EQ(snapshot.gauges.at("dsm.test.g"), 1.5);
  ASSERT_TRUE(snapshot.histograms.count("dsm.test.h"));
  EXPECT_EQ(snapshot.histograms.at("dsm.test.h").count, 1u);
}

TEST(SnapshotTest, SnapshotIsDecoupledFromLiveRegistry) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dsm.test.decoupled");
  c->Add(1);
  const MetricsSnapshot before = registry.Snapshot();
  c->Add(41);
  EXPECT_EQ(before.counters.at("dsm.test.decoupled"), 1u);
  EXPECT_EQ(registry.Snapshot().counters.at("dsm.test.decoupled"), 42u);
}

TEST(SnapshotTest, ResetZeroesValuesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dsm.test.reset");
  Histogram* h = registry.GetHistogram("dsm.test.reset_h", {1.0});
  c->Add(9);
  h->Observe(0.5);
  registry.Reset();
  // Handles cached by DSM_METRIC_* call sites must survive a Reset.
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Add(2);
  EXPECT_EQ(registry.Snapshot().counters.at("dsm.test.reset"), 2u);
  // The name stays registered with a zero value.
  EXPECT_TRUE(registry.Snapshot().histograms.count("dsm.test.reset_h"));
}

TEST(SnapshotTest, HistogramPercentiles) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("dsm.test.pct", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) h->Observe(0.5);  // bucket le 1.0
  for (int i = 0; i < 10; ++i) h->Observe(3.0);  // bucket le 4.0
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot& hs = snapshot.histograms.at("dsm.test.pct");
  EXPECT_LE(hs.Percentile(0.5), 1.0);
  EXPECT_GT(hs.Percentile(0.95), 2.0);
  EXPECT_LE(hs.Percentile(0.95), 4.0);
  EXPECT_DOUBLE_EQ(hs.mean(), (90 * 0.5 + 10 * 3.0) / 100.0);
}

TEST(SnapshotTest, JsonOmitsHistogramsWhenTimingsExcluded) {
  MetricsRegistry registry;
  registry.GetCounter("dsm.test.c")->Add(1);
  registry.GetHistogram("dsm.test.ms")->Observe(1.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const JsonValue with = snapshot.ToJson(/*include_timings=*/true);
  const JsonValue without = snapshot.ToJson(/*include_timings=*/false);
  EXPECT_TRUE(with.Has("histograms"));
  EXPECT_FALSE(without.Has("histograms"));
  EXPECT_TRUE(without.Has("counters"));
  EXPECT_TRUE(without.Has("gauges"));
}

TEST(SnapshotTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("dsm.plan.enumerations")->Add(4);
  registry.GetGauge("dsm.globalplan.total_cost")->Set(12.5);
  registry.GetHistogram("dsm.plan.enumerate_ms", {1.0})->Observe(0.5);
  const std::string text = registry.Snapshot().ToPrometheusText();
  // Dots are not legal in Prometheus metric names; expect underscores.
  EXPECT_NE(text.find("dsm_plan_enumerations 4"), std::string::npos);
  EXPECT_NE(text.find("dsm_globalplan_total_cost 12.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dsm_plan_enumerations counter"),
            std::string::npos);
  EXPECT_NE(text.find("dsm_plan_enumerate_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(ScopedLatencyTimerTest, ObservesOnDestruction) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("dsm.test.timer_ms");
  {
    ScopedLatencyTimer timer(h);
  }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->sum(), 0.0);
}

TEST(MacroTest, MacrosFeedGlobalRegistry) {
  // Macros are compiled out under DSM_DISABLE_TELEMETRY; the registry API
  // itself must keep working either way.
#ifndef DSM_DISABLE_TELEMETRY
  Counter* c =
      MetricsRegistry::Global().GetCounter("dsm.test.macro_counter");
  const uint64_t before = c->value();
  DSM_METRIC_COUNTER_ADD("dsm.test.macro_counter", 3);
  EXPECT_EQ(c->value(), before + 3);
#else
  DSM_METRIC_COUNTER_ADD("dsm.test.macro_counter", 3);
  DSM_METRIC_GAUGE_SET("dsm.test.macro_gauge", 1.0);
  SUCCEED();
#endif
}

}  // namespace
}  // namespace obs
}  // namespace dsm
