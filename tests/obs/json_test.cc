#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace dsm {
namespace obs {
namespace {

TEST(JsonValueTest, ScalarTypes) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(7).is_number());
  EXPECT_TRUE(JsonValue(3.5).is_number());
  EXPECT_TRUE(JsonValue("hi").is_string());
  EXPECT_TRUE(JsonValue::Array().is_array());
  EXPECT_TRUE(JsonValue::Object().is_object());
}

TEST(JsonValueTest, CompactDump) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", 2);
  obj.Set("a", 1);
  JsonValue arr = JsonValue::Array();
  arr.Append("x");
  arr.Append(false);
  arr.Append(JsonValue());
  obj.Set("list", std::move(arr));
  // Members print sorted by key regardless of insertion order.
  EXPECT_EQ(obj.Dump(), R"({"a":1,"b":2,"list":["x",false,null]})");
}

TEST(JsonValueTest, PrettyDump) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", 1);
  EXPECT_EQ(obj.Dump(2), "{\n  \"k\": 1\n}");
}

TEST(JsonValueTest, DumpIsDeterministic) {
  auto build = [](bool reversed) {
    JsonValue obj = JsonValue::Object();
    if (reversed) {
      obj.Set("zeta", 1.25);
      obj.Set("alpha", "v");
    } else {
      obj.Set("alpha", "v");
      obj.Set("zeta", 1.25);
    }
    return obj.Dump(2);
  };
  EXPECT_EQ(build(false), build(true));
}

TEST(JsonValueTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("\n\t"), "\\n\\t");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonValueTest, DoubleFormatting) {
  // Integral-valued doubles and true fractions both round-trip.
  EXPECT_EQ(FormatJsonDouble(0.25), "0.25");
  const std::string text = FormatJsonDouble(1.0 / 3.0);
  EXPECT_EQ(std::stod(text), 1.0 / 3.0);
  // JSON has no inf/nan: non-finite values are clamped, never "null"/"inf".
  EXPECT_EQ(FormatJsonDouble(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(FormatJsonDouble(std::nan("")), "0");
}

TEST(JsonParseTest, RoundTripsEmittedDocument) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", "dsm.plan.enumerate_ms");
  obj.Set("count", static_cast<uint64_t>(42));
  obj.Set("negative", -17);
  obj.Set("ratio", 0.125);
  obj.Set("ok", true);
  obj.Set("missing", JsonValue());
  JsonValue arr = JsonValue::Array();
  for (int i = 0; i < 3; ++i) arr.Append(i);
  obj.Set("buckets", std::move(arr));

  for (const int indent : {-1, 0, 2, 4}) {
    const auto parsed = ParseJson(obj.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Re-dumping the parse result reproduces the compact form exactly.
    EXPECT_EQ(parsed->Dump(), obj.Dump());
  }
}

TEST(JsonParseTest, StringEscapes) {
  const auto parsed = ParseJson(R"({"s":"a\"b\\c\nA"})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string_value(), "a\"b\\c\nA");
}

TEST(JsonParseTest, BareArrayAndScalars) {
  const auto arr = ParseJson("[1, 2.5, \"x\", null, false]");
  ASSERT_TRUE(arr.ok());
  ASSERT_EQ(arr->items().size(), 5u);
  EXPECT_EQ(arr->items()[0].int_value(), 1);
  EXPECT_EQ(arr->items()[1].number(), 2.5);
  EXPECT_EQ(arr->items()[2].string_value(), "x");
  EXPECT_TRUE(arr->items()[3].is_null());
  EXPECT_FALSE(arr->items()[4].bool_value());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  // Trailing garbage after a complete document is an error.
  EXPECT_FALSE(ParseJson("{} extra").ok());
}

TEST(JsonParseTest, FindOnNonObjectReturnsNull) {
  const auto arr = ParseJson("[1]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(arr->Find("k"), nullptr);
  JsonValue obj = JsonValue::Object();
  obj.Set("k", 1);
  EXPECT_NE(obj.Find("k"), nullptr);
  EXPECT_EQ(obj.Find("absent"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace dsm
