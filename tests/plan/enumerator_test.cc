#include "plan/enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cost/table_cost_model.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TableDef SimpleTable(const std::string& name, const std::string& key) {
  TableDef def;
  def.name = name;
  ColumnDef col;
  col.name = key;
  col.distinct_values = 100;
  col.min_value = 0;
  col.max_value = 100;
  def.columns = {col};
  def.stats.cardinality = 100;
  def.stats.update_rate = 1;
  return def;
}

class EnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Path graph a - b - c on one server.
    a_ = *catalog_.AddTable(SimpleTable("a", "k1"));
    b_ = *catalog_.AddTable(SimpleTable("b", "k1"));
    c_ = *catalog_.AddTable(SimpleTable("c", "k2"));
    // b also has k2 so b-c joinable; rebuild b with both columns.
    catalog_.mutable_table(b_).columns.push_back(
        SimpleTable("x", "k2").columns[0]);
    cluster_.AddServer("s0");
    cluster_.PlaceRoundRobin(catalog_.num_tables());
    graph_ = std::make_unique<JoinGraph>(JoinGraph::FromCatalog(catalog_));
  }

  PlanEnumerator MakeEnumerator(EnumeratorOptions options = {}) {
    return PlanEnumerator(&catalog_, &cluster_, graph_.get(), &model_,
                          options);
  }

  Catalog catalog_;
  Cluster cluster_;
  std::unique_ptr<JoinGraph> graph_;
  TableDrivenCostModel model_;
  TableId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(EnumeratorTest, PathGraphHasTwoJoinOrders) {
  // (a,b,c) over a-b-c admits exactly (ab)c and a(bc); (ac)b is not
  // connected. Single server, no predicates -> exactly 2 plans.
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_, b_, c_}), {}, 0));
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);
  for (const SharingPlan& p : *plans) {
    EXPECT_EQ(p.root().key.tables, TS({a_, b_, c_}));
    EXPECT_EQ(p.root().server, 0u);
  }
}

TEST_F(EnumeratorTest, TwoTableSharingHasOnePlan) {
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_, b_}), {}, 0));
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
  EXPECT_EQ((*plans)[0].nodes.size(), 3u);  // two leaves + join
}

TEST_F(EnumeratorTest, SingleTableSharing) {
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_}), {}, 0));
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  // Leaf only: already at the destination with no predicates.
  EXPECT_EQ((*plans)[0].nodes.size(), 1u);
}

TEST_F(EnumeratorTest, DisconnectedSharingRejected) {
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_, c_}), {}, 0));
  EXPECT_EQ(plans.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EnumeratorTest, PredicatePlacementDoublesPlans) {
  Predicate p;
  p.table = a_;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = 50;
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_, b_}), {p}, 0));
  ASSERT_TRUE(plans.ok());
  // Pushdown to the leaf vs applied at the root.
  EXPECT_EQ(plans->size(), 2u);
}

TEST_F(EnumeratorTest, PredicatePlacementDisabled) {
  Predicate p;
  p.table = a_;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = 50;
  EnumeratorOptions options;
  options.predicate_placement = false;
  const PlanEnumerator e = MakeEnumerator(options);
  const auto plans = e.Enumerate(Sharing(TS({a_, b_}), {p}, 0));
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
}

TEST_F(EnumeratorTest, AllPlansDeliverResultKeyAtDestination) {
  Predicate p;
  p.table = b_;
  p.column = 0;
  p.op = CompareOp::kGt;
  p.value = 10;
  const Sharing sharing(TS({a_, b_, c_}), {p}, 0);
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(sharing);
  ASSERT_TRUE(plans.ok());
  ASSERT_FALSE(plans->empty());
  for (const SharingPlan& plan : *plans) {
    EXPECT_EQ(plan.root().key, sharing.ResultKey());
    EXPECT_EQ(plan.root().server, sharing.destination());
  }
}

TEST_F(EnumeratorTest, MaxPlansCap) {
  Predicate p;
  p.table = a_;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = 50;
  EnumeratorOptions options;
  options.max_plans = 1;
  const PlanEnumerator e = MakeEnumerator(options);
  const auto plans = e.Enumerate(Sharing(TS({a_, b_, c_}), {p}, 0));
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 1u);
}

TEST_F(EnumeratorTest, BeamRequiresCostModel) {
  EnumeratorOptions options;
  options.per_subset_cap = 1;
  PlanEnumerator e(&catalog_, &cluster_, graph_.get(), nullptr, options);
  const auto plans = e.Enumerate(Sharing(TS({a_, b_}), {}, 0));
  EXPECT_EQ(plans.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EnumeratorTest, BeamKeepsCheapestPlan) {
  // Make a(bc) far cheaper than (ab)c and beam to one fragment per subset.
  model_.SetJoinCost(TS({a_}), TS({b_}), 1000.0);
  model_.SetJoinCost(TS({a_, b_}), TS({c_}), 1000.0);
  model_.SetJoinCost(TS({b_}), TS({c_}), 1.0);
  model_.SetJoinCost(TS({a_}), TS({b_, c_}), 1.0);
  EnumeratorOptions options;
  options.per_subset_cap = 1;
  const PlanEnumerator e = MakeEnumerator(options);
  const auto plans = e.Enumerate(Sharing(TS({a_, b_, c_}), {}, 0));
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 1u);
  EXPECT_NEAR(PlanCost((*plans)[0], &model_), 2.0, 1e-9);
}

TEST_F(EnumeratorTest, EmptySharingRejected) {
  const PlanEnumerator e = MakeEnumerator();
  EXPECT_EQ(e.Enumerate(Sharing(TableSet(), {}, 0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EnumeratorTest, ManyPredicatesKeepFullPushdownMask) {
  // With > 12 predicates the enumerator falls back to the two extreme
  // placements. The all-pushed-down choice must cover *every* predicate —
  // a narrow mask would silently leave predicates 13+ at the root.
  std::vector<Predicate> preds;
  for (int i = 0; i < 14; ++i) {
    Predicate p;
    p.table = a_;
    p.column = 0;
    p.op = CompareOp::kLt;
    p.value = 99 - i;
    preds.push_back(p);
  }
  const PlanEnumerator e = MakeEnumerator();
  const auto plans = e.Enumerate(Sharing(TS({a_, b_}), preds, 0));
  ASSERT_TRUE(plans.ok());
  size_t max_leaf_preds = 0;
  for (const SharingPlan& plan : *plans) {
    for (const PlanNode& n : plan.nodes) {
      if (n.type == PlanNodeType::kLeaf && n.base_table == a_) {
        max_leaf_preds = std::max(max_leaf_preds, n.key.predicates.size());
      }
    }
  }
  EXPECT_EQ(max_leaf_preds, preds.size());
}

TEST_F(EnumeratorTest, ParallelEnumerationMatchesSerial) {
  // Three predicates -> 8 pushdown choices to fan out across. Model-free
  // enumeration (the only parallel configuration) must emit exactly the
  // serial plan list, in the same order.
  std::vector<Predicate> preds;
  for (int i = 0; i < 3; ++i) {
    Predicate p;
    p.table = i == 2 ? b_ : a_;
    p.column = 0;
    p.op = i == 1 ? CompareOp::kGt : CompareOp::kLt;
    p.value = 10 + 30 * i;
    preds.push_back(p);
  }
  const Sharing sharing(TS({a_, b_, c_}), preds, 0);
  auto run = [&](int threads) {
    EnumeratorOptions options;
    options.num_threads = threads;
    PlanEnumerator e(&catalog_, &cluster_, graph_.get(), nullptr, options);
    const auto plans = e.Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    std::vector<uint64_t> sigs;
    for (const SharingPlan& plan : *plans) sigs.push_back(plan.Signature());
    return sigs;
  };
  const std::vector<uint64_t> serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run(8), serial);
  EXPECT_EQ(run(2), serial);
}

TEST(EnumeratorMultiServerTest, ServerPlacementsEnumerated) {
  // Two tables on different servers, destination on a third: the join can
  // run at either home or the destination -> 3 plans.
  Catalog catalog;
  TableDef a = SimpleTable("a", "k");
  TableDef b = SimpleTable("b", "k");
  Cluster cluster;
  cluster.AddServer("s0");
  cluster.AddServer("s1");
  cluster.AddServer("s2");
  const TableId ta = *catalog.AddTable(a);
  const TableId tb = *catalog.AddTable(b);
  ASSERT_TRUE(cluster.PlaceTable(ta, 0).ok());
  ASSERT_TRUE(cluster.PlaceTable(tb, 1).ok());
  const JoinGraph graph = JoinGraph::FromCatalog(catalog);
  TableDrivenCostModel model;
  PlanEnumerator e(&catalog, &cluster, &graph, &model, {});
  const auto plans = e.Enumerate(Sharing(TS({ta, tb}), {}, 2));
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 3u);
  // Every plan ends at the destination server.
  for (const SharingPlan& p : *plans) {
    EXPECT_EQ(p.root().server, 2u);
  }
}

}  // namespace
}  // namespace dsm
