// Property tests over the plan enumerator: every plan returned for a
// random sharing must be structurally valid, deliver the right result,
// and be unique.

#include <gtest/gtest.h>

#include <set>

#include "plan/enumerator.h"
#include "testing/rig.h"
#include "workload/adversarial.h"
#include "workload/predicate_gen.h"

namespace dsm {
namespace {

class EnumeratorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Structural validity of one plan for `sharing`.
void CheckPlan(const SharingPlan& plan, const Sharing& sharing,
               const JoinGraph& graph) {
  ASSERT_FALSE(plan.empty());
  std::vector<bool> used(plan.nodes.size(), false);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& n = plan.nodes[i];
    switch (n.type) {
      case PlanNodeType::kLeaf:
        EXPECT_EQ(n.left, -1);
        EXPECT_EQ(n.right, -1);
        EXPECT_EQ(n.key.tables, TableSet::Of(n.base_table));
        break;
      case PlanNodeType::kJoin: {
        // Children precede the node (topological order).
        ASSERT_GE(n.left, 0);
        ASSERT_GE(n.right, 0);
        ASSERT_LT(n.left, static_cast<int>(i));
        ASSERT_LT(n.right, static_cast<int>(i));
        const PlanNode& l = plan.nodes[static_cast<size_t>(n.left)];
        const PlanNode& r = plan.nodes[static_cast<size_t>(n.right)];
        // Disjoint inputs, connected via a join edge, union key.
        EXPECT_FALSE(l.key.tables.Intersects(r.key.tables));
        EXPECT_TRUE(graph.Joinable(l.key.tables, r.key.tables));
        EXPECT_EQ(n.key.tables, l.key.tables.Union(r.key.tables));
        used[static_cast<size_t>(n.left)] = true;
        used[static_cast<size_t>(n.right)] = true;
        break;
      }
      case PlanNodeType::kFilterCopy: {
        ASSERT_GE(n.left, 0);
        ASSERT_LT(n.left, static_cast<int>(i));
        const PlanNode& src = plan.nodes[static_cast<size_t>(n.left)];
        EXPECT_EQ(n.key.tables, src.key.tables);
        // The source must subsume what the node produces.
        EXPECT_TRUE(src.key.Subsumes(n.key));
        used[static_cast<size_t>(n.left)] = true;
        break;
      }
    }
    // Every node's predicates are a subset of the sharing's.
    EXPECT_TRUE(PredicateSubset(n.key.predicates, sharing.predicates()));
  }
  // The root delivers the sharing's result at its destination, and every
  // non-root node feeds exactly one parent (tree shape).
  EXPECT_EQ(plan.root().key, sharing.ResultKey());
  EXPECT_EQ(plan.root().server, sharing.destination());
  for (size_t i = 0; i + 1 < plan.nodes.size(); ++i) {
    EXPECT_TRUE(used[i]) << "orphan node " << i;
  }
}

TEST_P(EnumeratorPropertyTest, AllPlansValidAndUnique) {
  const Scenario sc = MakeRandomThreeWay(GetParam(), 6, 12);
  Rng rng(GetParam() ^ 0x777);
  PlanEnumerator enumerator(sc.catalog.get(), sc.cluster.get(),
                            sc.graph.get(), sc.model.get(), {});
  for (const Sharing& base : sc.sharings) {
    // Attach 0-2 random predicates.
    std::vector<Predicate> preds = RandomPredicates(
        *sc.catalog, base.tables(), static_cast<int>(rng.UniformInt(0, 2)),
        &rng);
    const Sharing sharing(base.tables(), std::move(preds),
                          base.destination());
    const auto plans = enumerator.Enumerate(sharing);
    ASSERT_TRUE(plans.ok());
    ASSERT_FALSE(plans->empty());
    std::set<uint64_t> signatures;
    for (const SharingPlan& plan : *plans) {
      CheckPlan(plan, sharing, *sc.graph);
      EXPECT_TRUE(signatures.insert(plan.Signature()).second)
          << "duplicate plan returned";
    }
  }
}

TEST_P(EnumeratorPropertyTest, BeamPlansAreSubsetQuality) {
  // The beam's best plan is never better than the exhaustive best (it
  // searches a subset) and the exhaustive best is never better than ...
  // the beam can only lose: LPC(beam) >= LPC(exhaustive).
  const Scenario sc = MakeRandomThreeWay(GetParam() ^ 0xbeef, 4, 12);
  PlanEnumerator full(sc.catalog.get(), sc.cluster.get(), sc.graph.get(),
                      sc.model.get(), {});
  EnumeratorOptions beam_options;
  beam_options.per_subset_cap = 1;
  PlanEnumerator beam(sc.catalog.get(), sc.cluster.get(), sc.graph.get(),
                      sc.model.get(), beam_options);
  for (const Sharing& sharing : sc.sharings) {
    const auto full_plans = full.Enumerate(sharing);
    const auto beam_plans = beam.Enumerate(sharing);
    ASSERT_TRUE(full_plans.ok());
    ASSERT_TRUE(beam_plans.ok());
    ASSERT_FALSE(beam_plans->empty());
    EXPECT_LE(beam_plans->size(), full_plans->size());
    auto cheapest = [&](const std::vector<SharingPlan>& plans) {
      double best = 1e300;
      for (const SharingPlan& p : plans) {
        best = std::min(best, PlanCost(p, sc.model.get()));
      }
      return best;
    };
    EXPECT_GE(cheapest(*beam_plans) + 1e-9, cheapest(*full_plans));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorPropertyTest,
                         ::testing::Values(3, 14, 15, 92, 65, 35, 89, 79));

}  // namespace
}  // namespace dsm
