#include "plan/explain.h"

#include <gtest/gtest.h>

#include "cost/table_cost_model.h"
#include "plan/enumerator.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TEST(ExplainTest, PlanTreeContainsEveryOperator) {
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  const auto plans = rig.enumerator->Enumerate(sc.sharings[0]);
  ASSERT_TRUE(plans.ok());
  const std::string text =
      ExplainPlan(plans->front(), *sc.catalog, sc.model.get());
  EXPECT_NE(text.find("Join"), std::string::npos);
  EXPECT_NE(text.find("Leaf a"), std::string::npos);
  EXPECT_NE(text.find("Leaf b"), std::string::npos);
  EXPECT_NE(text.find("@s0"), std::string::npos);
  EXPECT_NE(text.find('$'), std::string::npos);
}

TEST(ExplainTest, EmptyPlan) {
  SharingPlan plan;
  Catalog catalog;
  TableDrivenCostModel model;
  EXPECT_EQ(ExplainPlan(plan, catalog, &model), "<empty plan>\n");
}

TEST(ExplainTest, SharingShowsReuseDecisions) {
  const Scenario sc = MakeGreedyTrap(2, 5.0, 100.0, 0.5);
  auto rig = MakeRig(sc);
  // Both sharings use the (ab)c_x plan; the second reuses ab.
  for (size_t i = 0; i < 2; ++i) {
    const auto plans = rig.enumerator->Enumerate(sc.sharings[i]);
    ASSERT_TRUE(plans.ok());
    const SharingPlan* with_ab = nullptr;
    for (const SharingPlan& p : *plans) {
      for (const PlanNode& n : p.nodes) {
        TableSet ab;
        ab.Add(0);
        ab.Add(1);
        if (n.is_join() && n.key.tables == ab) with_ab = &p;
      }
    }
    ASSERT_NE(with_ab, nullptr);
    ASSERT_TRUE(
        rig.global_plan->AddSharing(i + 1, sc.sharings[i], *with_ab).ok());
  }
  const std::string text = ExplainSharing(*rig.global_plan, 2, *sc.catalog);
  EXPECT_NE(text.find("reused"), std::string::npos);
  EXPECT_NE(text.find("fresh"), std::string::npos);
  EXPECT_NE(text.find("sharing 2"), std::string::npos);
}

TEST(ExplainTest, UnknownSharing) {
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  EXPECT_EQ(ExplainSharing(*rig.global_plan, 42, *sc.catalog),
            "<unknown sharing>\n");
}

TEST(ExplainTest, GlobalPlanSummary) {
  const Scenario sc = MakeGreedyTrap(2);
  auto rig = MakeRig(sc);
  const auto plans = rig.enumerator->Enumerate(sc.sharings[0]);
  ASSERT_TRUE(plans.ok());
  ASSERT_TRUE(
      rig.global_plan->AddSharing(1, sc.sharings[0], plans->front()).ok());
  const std::string text =
      ExplainGlobalPlan(*rig.global_plan, *sc.cluster, *sc.catalog);
  EXPECT_NE(text.find("1 sharings"), std::string::npos);
  EXPECT_NE(text.find("server 0"), std::string::npos);
  EXPECT_NE(text.find("load"), std::string::npos);
}

}  // namespace
}  // namespace dsm
