#include "plan/join_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(JoinGraphTest, EdgesAreSymmetric) {
  JoinGraph g(4);
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(JoinGraphTest, JoinableAcrossSets) {
  JoinGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.Joinable(TS({0}), TS({1, 3})));
  EXPECT_FALSE(g.Joinable(TS({0}), TS({2, 3})));
  EXPECT_TRUE(g.Joinable(TS({0, 2}), TS({3})));
}

TEST(JoinGraphTest, ConnectedPath) {
  JoinGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.Connected(TS({0, 1, 2, 3})));
  EXPECT_TRUE(g.Connected(TS({1, 2})));
  EXPECT_FALSE(g.Connected(TS({0, 2})));   // 1 missing breaks the path
  EXPECT_FALSE(g.Connected(TS({0, 4})));   // 4 isolated
  EXPECT_TRUE(g.Connected(TS({4})));       // singleton
  EXPECT_TRUE(g.Connected(TableSet()));    // empty
}

TEST(JoinGraphTest, ConnectedSubsetsOfPath) {
  // Path 0-1-2: connected subsets of size >= 2 are {01},{12},{012}.
  JoinGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto subsets = g.ConnectedSubsets(TS({0, 1, 2}), 2);
  std::sort(subsets.begin(), subsets.end());
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_EQ(subsets[0], TS({0, 1}));
  EXPECT_EQ(subsets[1], TS({1, 2}));
  EXPECT_EQ(subsets[2], TS({0, 1, 2}));
}

TEST(JoinGraphTest, ConnectedSubsetsOfClique) {
  JoinGraph g(4);
  for (TableId a = 0; a < 4; ++a) {
    for (TableId b = a + 1; b < 4; ++b) g.AddEdge(a, b);
  }
  // All 2^4 - 4 - 1 = 11 subsets of size >= 2 are connected in a clique.
  EXPECT_EQ(g.ConnectedSubsets(TS({0, 1, 2, 3}), 2).size(), 11u);
}

TEST(JoinGraphTest, ConnectedSubsetsOfStar) {
  // Star: hub 0, spokes 1..3. Connected subsets of size >= 2 must include
  // the hub: {01},{02},{03},{012},{013},{023},{0123} = 7.
  JoinGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.ConnectedSubsets(TS({0, 1, 2, 3}), 2).size(), 7u);
}

TEST(JoinGraphTest, MinSizeFilter) {
  JoinGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.ConnectedSubsets(TS({0, 1, 2}), 1).size(), 6u);  // +3 singletons
  EXPECT_EQ(g.ConnectedSubsets(TS({0, 1, 2}), 3).size(), 1u);
}

TEST(JoinGraphTest, FromCatalogUsesSharedColumns) {
  Catalog catalog;
  auto add = [&catalog](const char* name,
                        std::initializer_list<const char*> cols) {
    TableDef def;
    def.name = name;
    for (const char* c : cols) {
      ColumnDef col;
      col.name = c;
      def.columns.push_back(col);
    }
    return *catalog.AddTable(def);
  };
  const TableId users = add("USERS", {"uid"});
  const TableId tweets = add("TWEETS", {"tid", "uid"});
  const TableId urls = add("URLS", {"tid"});
  const JoinGraph g = JoinGraph::FromCatalog(catalog);
  EXPECT_TRUE(g.HasEdge(users, tweets));
  EXPECT_TRUE(g.HasEdge(tweets, urls));
  EXPECT_FALSE(g.HasEdge(users, urls));
}

}  // namespace
}  // namespace dsm
