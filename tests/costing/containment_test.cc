// Containment DAG construction plus the Figure-3 reconstruction: building
// Example 5.1's global plan from real plans and checking saving(r)/num(r)
// (Definition 5.1) and the end-to-end FAIRCOST pipeline on it.

#include "costing/containment_dag.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cost/table_cost_model.h"
#include "costing/fairness_metrics.h"
#include "costing/lpc.h"
#include "costing/savings.h"
#include "globalplan/global_plan.h"
#include "plan/enumerator.h"
#include "workload/predicate_gen.h"

namespace dsm {
namespace {

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

Predicate P(TableId t, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = v;
  return p;
}

TEST(ContainmentDagTest, IdenticalGrouping) {
  const Sharing a(TS({0, 1}), {}, 0);
  const Sharing b(TS({0, 1}), {}, 2);  // same query, other destination
  const Sharing c(TS({0, 2}), {}, 0);
  const ContainmentDag dag =
      BuildContainmentDag({a, b, c}, {4.0, 4.0, 7.0});
  EXPECT_EQ(dag.identity_group[0], dag.identity_group[1]);
  EXPECT_NE(dag.identity_group[0], dag.identity_group[2]);
}

TEST(ContainmentDagTest, ContainmentArcsRespectLpc) {
  const Sharing filtered(TS({0, 1}), {P(0, 5)}, 0);
  const Sharing full(TS({0, 1}), {}, 0);
  {
    // LPC(filtered) <= LPC(full): arc exists.
    const ContainmentDag dag =
        BuildContainmentDag({filtered, full}, {3.0, 10.0});
    ASSERT_EQ(dag.containers[0].size(), 1u);
    EXPECT_EQ(dag.containers[0][0], 1);
    EXPECT_TRUE(dag.containers[1].empty());
  }
  {
    // LPC(filtered) > LPC(full): criterion (3) does not apply.
    const ContainmentDag dag =
        BuildContainmentDag({filtered, full}, {12.0, 10.0});
    EXPECT_TRUE(dag.containers[0].empty());
  }
}

TEST(ContainmentDagTest, IdenticalPairsGetNoArc) {
  const Sharing a(TS({0, 1}), {P(0, 5)}, 0);
  const Sharing b(TS({0, 1}), {P(0, 5)}, 1);
  const ContainmentDag dag = BuildContainmentDag({a, b}, {3.0, 3.0});
  EXPECT_TRUE(dag.containers[0].empty());
  EXPECT_TRUE(dag.containers[1].empty());
}

// ---------------------------------------------------------------------------
// Figure 3 reconstruction.
//
// Tables a,b,c,d,e,f with join path a-b-c and c-{d,e,f}. Costs from the
// figure: ab=4, (ab)c=10, bc=8, a(bc)=6, (abc)d=5, (abc)e=3, (abc)f=9.
// Plans: S1=ab; S2=(ab)c then d (reusing S1's ab); S3=a(bc) then d
// (reusing abc, computing its own (abc)d); S4=(ab)c then e (reusing abc);
// S5=(ab)c then f computing everything itself.
// ---------------------------------------------------------------------------
class Figure3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [this](const char* name,
                      std::initializer_list<const char*> cols) {
      TableDef def;
      def.name = name;
      for (const char* c : cols) {
        ColumnDef col;
        col.name = c;
        col.distinct_values = 100;
        col.max_value = 100;
        def.columns.push_back(col);
      }
      def.stats.cardinality = 100;
      def.stats.update_rate = 1;
      return *catalog_.AddTable(def);
    };
    a_ = add("a", {"k1"});
    b_ = add("b", {"k1", "k2"});
    c_ = add("c", {"k2", "k3"});
    d_ = add("d", {"k3"});
    e_ = add("e", {"k3"});
    f_ = add("f", {"k3"});
    cluster_.AddServer("s0");
    cluster_.PlaceRoundRobin(catalog_.num_tables());
    graph_ = std::make_unique<JoinGraph>(JoinGraph::FromCatalog(catalog_));

    // Unset join pairs are prohibitively expensive so LPC plans stay
    // within the figure's plan space.
    TableDrivenCostModel::Options options;
    options.random_min = 1e6;
    options.random_max = 1e6;
    model_ = std::make_unique<TableDrivenCostModel>(options);
    auto set = [this](TableSet x, TableSet y, double cost) {
      model_->SetJoinCost(x, y, cost);
    };
    set(TS({a_}), TS({b_}), 4);
    set(TS({a_, b_}), TS({c_}), 10);
    set(TS({b_}), TS({c_}), 8);
    set(TS({a_}), TS({b_, c_}), 6);
    set(TS({a_, b_, c_}), TS({d_}), 5);
    set(TS({a_, b_, c_}), TS({e_}), 3);
    set(TS({a_, b_, c_}), TS({f_}), 9);

    enumerator_ = std::make_unique<PlanEnumerator>(
        &catalog_, &cluster_, graph_.get(), model_.get(),
        EnumeratorOptions{});
    gp_ = std::make_unique<GlobalPlan>(&cluster_, model_.get());
  }

  // The plan for `sharing` whose join nodes are exactly `joins` — pinning
  // down one chain of Figure 3(a).
  SharingPlan PlanVia(const Sharing& sharing,
                      std::vector<TableSet> joins) {
    const auto plans = enumerator_->Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    std::sort(joins.begin(), joins.end());
    for (const SharingPlan& plan : *plans) {
      std::vector<TableSet> found;
      for (const PlanNode& node : plan.nodes) {
        if (node.is_join()) found.push_back(node.key.tables);
      }
      std::sort(found.begin(), found.end());
      if (found == joins) return plan;
    }
    ADD_FAILURE() << "no plan with the requested join chain";
    return plans->front();
  }

  void BuildFigure3() {
    const Sharing s1(TS({a_, b_}), {}, 0, "S1");
    const Sharing s2(TS({a_, b_, c_, d_}), {}, 0, "S2");
    const Sharing s3(TS({a_, b_, c_, d_}), {}, 0, "S3");
    const Sharing s4(TS({a_, b_, c_, e_}), {}, 0, "S4");
    const Sharing s5(TS({a_, b_, c_, f_}), {}, 0, "S5");

    const TableSet ab = TS({a_, b_});
    const TableSet bc = TS({b_, c_});
    const TableSet abc = TS({a_, b_, c_});
    ASSERT_TRUE(gp_->AddSharing(1, s1, PlanVia(s1, {ab})).ok());
    ASSERT_TRUE(gp_->AddSharing(
                       2, s2, PlanVia(s2, {ab, abc, TS({a_, b_, c_, d_})}))
                    .ok());

    // S3 reuses abc but computes its own (abc)d, as in the figure.
    GlobalPlan::AddOptions no_root;
    std::unordered_set<ViewKey, ViewKeyHash> forbid_root = {
        ViewKey(TS({a_, b_, c_, d_}))};
    no_root.forbid_reuse_keys = &forbid_root;
    ASSERT_TRUE(gp_->AddSharing(3, s3,
                                PlanVia(s3, {bc, abc, TS({a_, b_, c_, d_})}),
                                no_root)
                    .ok());

    ASSERT_TRUE(gp_->AddSharing(
                       4, s4, PlanVia(s4, {ab, abc, TS({a_, b_, c_, e_})}))
                    .ok());

    // S5 computes its own ab and (ab)c (the figure's right-hand chain).
    GlobalPlan::AddOptions no_reuse;
    no_reuse.allow_reuse = false;
    ASSERT_TRUE(gp_->AddSharing(5, s5,
                                PlanVia(s5, {ab, abc, TS({a_, b_, c_, f_})}),
                                no_reuse)
                    .ok());
  }

  Catalog catalog_;
  Cluster cluster_;
  std::unique_ptr<JoinGraph> graph_;
  std::unique_ptr<TableDrivenCostModel> model_;
  std::unique_ptr<PlanEnumerator> enumerator_;
  std::unique_ptr<GlobalPlan> gp_;
  TableId a_ = 0, b_ = 0, c_ = 0, d_ = 0, e_ = 0, f_ = 0;
};

TEST_F(Figure3Test, GlobalPlanCostIsFifty) {
  BuildFigure3();
  EXPECT_NEAR(gp_->TotalCost(), 50.0, 1e-9);
}

TEST_F(Figure3Test, GpcMatchesTheFigure) {
  BuildFigure3();
  EXPECT_NEAR(gp_->GPC(1), 4.0, 1e-9);
  EXPECT_NEAR(gp_->GPC(2), 19.0, 1e-9);
  EXPECT_NEAR(gp_->GPC(3), 19.0, 1e-9);
  EXPECT_NEAR(gp_->GPC(4), 17.0, 1e-9);
  EXPECT_NEAR(gp_->GPC(5), 23.0, 1e-9);
}

TEST_F(Figure3Test, SavingsMatchDefinition51) {
  BuildFigure3();
  const auto stats = gp_->ComputeReuseStats();
  const GlobalPlan::ReuseStat* ab = nullptr;
  const GlobalPlan::ReuseStat* abc = nullptr;
  for (const auto& st : stats) {
    if (st.key == ViewKey(TS({a_, b_}))) ab = &st;
    if (st.key == ViewKey(TS({a_, b_, c_}))) abc = &st;
  }
  ASSERT_NE(ab, nullptr);
  ASSERT_NE(abc, nullptr);
  // "If we remove the red arrow ... the cost of the global plan increases
  // by 4" — S2 recomputes ab.
  EXPECT_NEAR(ab->saving, 4.0, 1e-9);
  EXPECT_EQ(ab->num, 4);  // S1, S2, S4, S5 contain ab in their plans
  // "If we remove the two green arrows ... increases by 28" — S3 pays
  // bc + a(bc) = 14, S4 pays ab + (ab)c = 14.
  EXPECT_NEAR(abc->saving, 28.0, 1e-9);
  EXPECT_EQ(abc->num, 4);  // S2, S3, S4, S5
}

TEST_F(Figure3Test, EndToEndFairCostSatisfiesAllCriteria) {
  BuildFigure3();
  LpcCalculator lpc(enumerator_.get(), model_.get());
  const auto problem = BuildFairCostProblem(*gp_, &lpc);
  ASSERT_TRUE(problem.ok());
  EXPECT_NEAR(problem->global_cost, 50.0, 1e-9);

  const auto result = FairCost::Compute(problem->entries, 50.0);
  ASSERT_TRUE(result.ok());
  const FairnessReport report =
      EvaluateFairness(problem->entries, 50.0, result->ac);
  EXPECT_DOUBLE_EQ(report.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.contained_fraction, 1.0);
  EXPECT_NEAR(report.recovery_error, 0.0, 1e-9);
  // S2 and S3 are identical sharings: equal attributed costs.
  double ac2 = -1, ac3 = -1;
  for (size_t i = 0; i < problem->ids.size(); ++i) {
    if (problem->ids[i] == 2) ac2 = result->ac[i];
    if (problem->ids[i] == 3) ac3 = result->ac[i];
  }
  EXPECT_NEAR(ac2, ac3, 1e-9);
}

}  // namespace
}  // namespace dsm
