// FAIRCOST golden tests, centered on the paper's worked Example 5.1:
// five sharings, saving(ab) = 4 with num = 4, saving(abc) = 28 with
// num = 4, maximum fairness α = 0.8 and attributed costs
// {3.2, 12.6, 12.6, 5, 16.6} summing to cost(GP) = 50.

#include "costing/fair_cost.h"

#include <gtest/gtest.h>

#include <numeric>

#include "costing/fairness_metrics.h"

namespace dsm {
namespace {

// The Example 5.1 numbers, fed directly into the numeric core:
//   LPC  = {4, 15, 15, 5, 23}
//   GPC  = {4, 19, 19, 17, 23}
//   Σ_r saving(r)/num(r) = {1, 8, 7, 8, 8}   (S3's plan lacks ab)
//   S2 and S3 are identical sharings.
std::vector<FairCostEntry> Example51Entries() {
  std::vector<FairCostEntry> entries(5);
  const double lpc[] = {4, 15, 15, 5, 23};
  const double gpc[] = {4, 19, 19, 17, 23};
  const double sav[] = {1, 8, 7, 8, 8};
  for (size_t i = 0; i < 5; ++i) {
    entries[i].id = i + 1;
    entries[i].lpc = lpc[i];
    entries[i].gpc = gpc[i];
    entries[i].saving_term = sav[i];
    entries[i].identity_group = static_cast<uint32_t>(i);
  }
  entries[2].identity_group = 1;  // S3 identical to S2
  return entries;
}

TEST(FairCostExample51, AlphaIsPointEight) {
  const auto result = FairCost::Compute(Example51Entries(), 50.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->alpha, 0.8, 1e-6);
}

TEST(FairCostExample51, AttributedCostsMatchThePaper) {
  const auto result = FairCost::Compute(Example51Entries(), 50.0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->ac.size(), 5u);
  EXPECT_NEAR(result->ac[0], 3.2, 1e-5);
  EXPECT_NEAR(result->ac[1], 12.6, 1e-5);
  EXPECT_NEAR(result->ac[2], 12.6, 1e-5);
  EXPECT_NEAR(result->ac[3], 5.0, 1e-5);
  EXPECT_NEAR(result->ac[4], 16.6, 1e-5);
}

TEST(FairCostExample51, CostRecoveredExactly) {
  const auto result = FairCost::Compute(Example51Entries(), 50.0);
  ASSERT_TRUE(result.ok());
  const double total =
      std::accumulate(result->ac.begin(), result->ac.end(), 0.0);
  EXPECT_NEAR(total, 50.0, 1e-9);
}

TEST(FairCostExample51, AllFairnessMetricsPerfect) {
  const auto entries = Example51Entries();
  const auto result = FairCost::Compute(entries, 50.0);
  ASSERT_TRUE(result.ok());
  const FairnessReport report = EvaluateFairness(entries, 50.0, result->ac);
  EXPECT_NEAR(report.alpha, 0.8, 1e-5);
  EXPECT_DOUBLE_EQ(report.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.contained_fraction, 1.0);
  EXPECT_NEAR(report.recovery_error, 0.0, 1e-9);
}

TEST(FairCostExample51, HigherAlphaWouldUndershoot) {
  // The paper: "A higher value of α would mean the attributed costs of
  // S1, S2, S3 and S5 all need to be reduced, which is not possible".
  // Bounds at α = 0.9 sum below 50.
  const auto entries = Example51Entries();
  double sum = 0.0;
  for (const FairCostEntry& e : entries) {
    sum += std::min(e.lpc, e.gpc - 0.9 * e.saving_term);
  }
  EXPECT_LT(sum, 50.0);
}

TEST(FairCostTest, OverrunFallbackScalesLpcsUp) {
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 3;
  entries[0].gpc = 10;
  entries[0].identity_group = 0;
  entries[1].lpc = 5;
  entries[1].gpc = 10;
  entries[1].identity_group = 1;
  FairCost::Options options;
  options.lpc_overrun_fallback = true;
  // cost(GP) = 12 > Σ LPC = 8: overrun factor 1.5.
  const auto result = FairCost::Compute(entries, 12.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->criteria_satisfied);
  EXPECT_DOUBLE_EQ(result->alpha, 0.0);
  EXPECT_NEAR(result->ac[0], 4.5, 1e-9);
  EXPECT_NEAR(result->ac[1], 7.5, 1e-9);
}

TEST(FairCostTest, FallbackUnusedWhenFeasible) {
  std::vector<FairCostEntry> entries(1);
  entries[0].lpc = 10;
  entries[0].gpc = 10;
  FairCost::Options options;
  options.lpc_overrun_fallback = true;
  const auto result = FairCost::Compute(entries, 10.0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->criteria_satisfied);
}

TEST(FairCostTest, InfeasibleWhenLpcSumBelowGlobalCost) {
  // Lemma 5.2: satisfiable iff Σ LPC >= cost(GP).
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 3;
  entries[0].gpc = 10;
  entries[0].identity_group = 0;
  entries[1].lpc = 4;
  entries[1].gpc = 10;
  entries[1].identity_group = 1;
  const auto result = FairCost::Compute(entries, 8.0);
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(FairCostTest, ExactLpcSumIsFeasible) {
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 3;
  entries[0].gpc = 10;
  entries[0].identity_group = 0;
  entries[1].lpc = 5;
  entries[1].gpc = 10;
  entries[1].identity_group = 1;
  const auto result = FairCost::Compute(entries, 8.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ac[0] + result->ac[1], 8.0, 1e-9);
  EXPECT_NEAR(result->ac[0], 3.0, 1e-6);
  EXPECT_NEAR(result->ac[1], 5.0, 1e-6);
}

TEST(FairCostTest, SlackAtFullFairnessScalesDown) {
  // Savings small, LPCs generous: even α = 1 leaves slack; ACs scale down
  // proportionally to recover the global cost exactly.
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 10;
  entries[0].gpc = 12;
  entries[0].saving_term = 1;
  entries[0].identity_group = 0;
  entries[1].lpc = 10;
  entries[1].gpc = 12;
  entries[1].saving_term = 1;
  entries[1].identity_group = 1;
  const auto result = FairCost::Compute(entries, 15.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->alpha, 1.0, 1e-9);
  EXPECT_TRUE(result->scaled_down);
  EXPECT_NEAR(result->ac[0] + result->ac[1], 15.0, 1e-9);
  EXPECT_NEAR(result->ac[0], 7.5, 1e-9);
}

TEST(FairCostTest, IdenticalSharingsShareTheTighterBound) {
  // Identical queries with different GPCs (different plans chosen by the
  // provider) must get equal ACs — the tighter (smaller) bound wins.
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 20;
  entries[0].gpc = 30;
  entries[0].saving_term = 10;
  entries[0].identity_group = 0;
  entries[1].lpc = 20;
  entries[1].gpc = 25;
  entries[1].saving_term = 10;
  entries[1].identity_group = 0;
  const auto result = FairCost::Compute(entries, 30.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ac[0], result->ac[1], 1e-9);
}

TEST(FairCostTest, ContainmentCapsTheContainedSharing) {
  // Entry 0 contained in entry 1 (lower LPC): AC(0) <= AC(1) even though
  // 0's own bounds would allow more.
  std::vector<FairCostEntry> entries(2);
  entries[0].lpc = 9;
  entries[0].gpc = 20;
  entries[0].saving_term = 0;
  entries[0].identity_group = 0;
  entries[0].containers = {1};
  entries[1].lpc = 10;
  entries[1].gpc = 12;
  entries[1].saving_term = 8;  // strong α pressure on the container
  entries[1].identity_group = 1;
  const auto result = FairCost::Compute(entries, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->ac[0], result->ac[1] + 1e-9);
}

TEST(FairCostTest, EmptyInputRejected) {
  EXPECT_EQ(FairCost::Compute({}, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FairCostTest, SingleSharingPaysEverything) {
  std::vector<FairCostEntry> entries(1);
  entries[0].lpc = 10;
  entries[0].gpc = 10;
  const auto result = FairCost::Compute(entries, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ac[0], 10.0, 1e-9);
  EXPECT_NEAR(result->alpha, 1.0, 1e-9);
}

}  // namespace
}  // namespace dsm
