// IncrementalContainmentIndex must reproduce BuildContainmentDag exactly —
// identity groups and container lists — after arbitrary interleavings of
// sharing arrivals and removals. Populations are drawn from small pools of
// table sets and predicates so identity twins and containment chains
// actually occur.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "costing/containment_dag.h"
#include "costing/incremental_containment.h"
#include "sharing/sharing.h"

namespace dsm {
namespace {

// The pool: 3 table sets × nested predicate lists (plus a no-predicate
// variant each), so ContainedIn holds along each chain and IdenticalTo
// across repeated draws.
std::vector<Sharing> MakeSharingPool() {
  std::vector<Sharing> pool;
  const std::vector<TableSet> tables = {
      TableSet(0b0011), TableSet(0b0111), TableSet(0b1101)};
  for (const TableSet ts : tables) {
    const TableId t = ts.ToVector().front();
    const Predicate p1{t, 0, CompareOp::kGt, 10.0};
    const Predicate p2{t, 1, CompareOp::kLt, 99.0};
    const Predicate p3{t, 2, CompareOp::kEq, 7.0};
    pool.emplace_back(ts, std::vector<Predicate>{}, 0);
    pool.emplace_back(ts, std::vector<Predicate>{p1}, 0);
    pool.emplace_back(ts, std::vector<Predicate>{p1, p2}, 1);
    pool.emplace_back(ts, std::vector<Predicate>{p1, p2, p3}, 1);
    pool.emplace_back(ts, std::vector<Predicate>{p3}, 2);
  }
  return pool;
}

void ExpectSameDag(const ContainmentDag& scratch, const ContainmentDag& inc,
                   int step) {
  ASSERT_EQ(scratch.identity_group.size(), inc.identity_group.size())
      << "step " << step;
  EXPECT_EQ(scratch.identity_group, inc.identity_group) << "step " << step;
  ASSERT_EQ(scratch.containers.size(), inc.containers.size())
      << "step " << step;
  for (size_t i = 0; i < scratch.containers.size(); ++i) {
    EXPECT_EQ(scratch.containers[i], inc.containers[i])
        << "step " << step << " sharing index " << i;
  }
}

class IncrementalDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalDagTest, MatchesScratchUnderChurn) {
  const std::vector<Sharing> pool = MakeSharingPool();
  Rng rng(GetParam());

  struct Live {
    SharingId id;
    Sharing sharing;
    double lpc;
  };
  std::vector<Live> population;
  SharingId next_id = 1;
  IncrementalContainmentIndex index;

  for (int step = 0; step < 200; ++step) {
    const bool remove = !population.empty() && rng.Bernoulli(0.35);
    if (remove) {
      const size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(population.size()) - 1));
      population.erase(population.begin() + static_cast<int64_t>(pick));
    } else {
      const Sharing& s = pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
      // A few distinct LPC magnitudes so the lpc[i] <= lpc[j] edge
      // condition cuts both ways, including exact ties.
      const double lpc =
          static_cast<double>(rng.UniformInt(1, 4)) * 10.0;
      population.push_back(Live{next_id++, s, lpc});
    }

    std::vector<SharingId> ids;
    std::vector<Sharing> sharings;
    std::vector<double> lpcs;
    for (const Live& l : population) {
      ids.push_back(l.id);
      sharings.push_back(l.sharing);
      lpcs.push_back(l.lpc);
    }
    const ContainmentDag scratch = BuildContainmentDag(sharings, lpcs);
    const ContainmentDag inc = index.Update(ids, sharings, lpcs);
    ExpectSameDag(scratch, inc, step);
    EXPECT_EQ(index.num_members(), population.size());
  }
}

// A changed LPC for a surviving sharing (re-billing after replanning) must
// not leave stale edges behind: the member is re-indexed.
TEST_P(IncrementalDagTest, LpcChangeReindexesMember) {
  const std::vector<Sharing> pool = MakeSharingPool();
  std::vector<SharingId> ids = {1, 2, 3};
  std::vector<Sharing> sharings = {pool[1], pool[2], pool[3]};
  std::vector<double> lpcs = {10.0, 20.0, 30.0};

  IncrementalContainmentIndex index;
  ExpectSameDag(BuildContainmentDag(sharings, lpcs),
                index.Update(ids, sharings, lpcs), 0);

  // Invert the LPC order: every containment edge direction flips.
  lpcs = {30.0, 20.0, 10.0};
  ExpectSameDag(BuildContainmentDag(sharings, lpcs),
                index.Update(ids, sharings, lpcs), 1);
}

TEST_P(IncrementalDagTest, ResetStartsClean) {
  const std::vector<Sharing> pool = MakeSharingPool();
  std::vector<SharingId> ids = {1, 2};
  std::vector<Sharing> sharings = {pool[0], pool[1]};
  std::vector<double> lpcs = {5.0, 5.0};
  IncrementalContainmentIndex index;
  index.Update(ids, sharings, lpcs);
  index.Reset();
  EXPECT_EQ(index.num_members(), 0u);
  ExpectSameDag(BuildContainmentDag(sharings, lpcs),
                index.Update(ids, sharings, lpcs), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDagTest,
                         ::testing::Values(1, 13, 77, 501, 9001));

}  // namespace
}  // namespace dsm
