// The even-split baseline: recovers cost(GP) by construction but violates
// the fairness criteria — exactly the contrast Figure 7 plots.

#include "costing/even_split.h"

#include <gtest/gtest.h>

#include "cost/table_cost_model.h"
#include "plan/enumerator.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

// Shared fixture: greedy-trap tables a, b, c1, c2 with
// c[ab]=4, c[(ab)c_x]=10, c[bc_x]=8/2, c[a(bc_x)]=...
class EvenSplitTest : public ::testing::Test {
 protected:
  EvenSplitTest() : scenario_(MakeGreedyTrap(2, 4.0, 16.0, 10.0)) {
    rig_ = MakeRig(scenario_);
  }

  SharingPlan PlanWith(const Sharing& sharing, TableSet wanted_join) {
    const auto plans = rig_.enumerator->Enumerate(sharing);
    EXPECT_TRUE(plans.ok());
    for (const SharingPlan& plan : *plans) {
      for (const PlanNode& node : plan.nodes) {
        if (node.is_join() && node.key.tables == wanted_join) return plan;
      }
    }
    return plans->front();
  }

  Scenario scenario_;
  testing_support::Rig rig_;
};

TEST_F(EvenSplitTest, SplitsSharedNodeEvenly) {
  // S1 = (a,b) and S2 = (a,b,c1) via (ab)c1: ab (cost 4) is shared, the
  // (ab)c1 join (cost 10) is S2's alone. Even split: S1 = 2, S2 = 2 + 10.
  const Sharing s1(TS({0, 1}), {}, 0, "s1");
  const Sharing s2(TS({0, 1, 2}), {}, 0, "s2");
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(1, s1, PlanWith(s1, TS({0, 1}))).ok());
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(2, s2, PlanWith(s2, TS({0, 1}))).ok());

  const auto ac = EvenSplitCosts(*rig_.global_plan, {1, 2});
  ASSERT_TRUE(ac.ok());
  EXPECT_NEAR((*ac)[0], 2.0, 1e-9);
  EXPECT_NEAR((*ac)[1], 12.0, 1e-9);
}

TEST_F(EvenSplitTest, RecoversGlobalCost) {
  const Sharing s1(TS({0, 1}), {}, 0, "s1");
  const Sharing s2(TS({0, 1, 2}), {}, 0, "s2");
  const Sharing s3(TS({0, 1, 3}), {}, 0, "s3");
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(1, s1, PlanWith(s1, TS({0, 1}))).ok());
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(2, s2, PlanWith(s2, TS({0, 1}))).ok());
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(3, s3, PlanWith(s3, TS({0, 1}))).ok());
  const auto ac = EvenSplitCosts(*rig_.global_plan, {1, 2, 3});
  ASSERT_TRUE(ac.ok());
  const double total = (*ac)[0] + (*ac)[1] + (*ac)[2];
  EXPECT_NEAR(total, rig_.global_plan->TotalCost(), 1e-9);
}

TEST_F(EvenSplitTest, ViolatesIdenticalCriterion) {
  // Two identical sharings whose plans differ (e.g. due to past capacity
  // limits) get different even-split charges — violating criterion (1),
  // which FAIRCOST enforces by construction.
  const Sharing s2a(TS({0, 1, 2}), {}, 0, "first");
  const Sharing s2b(TS({0, 1, 2}), {}, 0, "second");
  ASSERT_TRUE(
      rig_.global_plan->AddSharing(1, s2a, PlanWith(s2a, TS({0, 1}))).ok());
  // Same query, forced to compute its own chain via the other join order
  // (reuse of the shared result is forbidden to pin the plans apart).
  GlobalPlan::AddOptions options;
  std::unordered_set<ViewKey, ViewKeyHash> forbid = {
      ViewKey(TS({0, 1, 2}))};
  options.forbid_reuse_keys = &forbid;
  ASSERT_TRUE(rig_.global_plan
                  ->AddSharing(2, s2b, PlanWith(s2b, TS({1, 2})), options)
                  .ok());
  const auto ac = EvenSplitCosts(*rig_.global_plan, {1, 2});
  ASSERT_TRUE(ac.ok());
  EXPECT_GT(std::abs((*ac)[0] - (*ac)[1]), 1e-6);
}

TEST_F(EvenSplitTest, UnknownIdRejected) {
  EXPECT_EQ(EvenSplitCosts(*rig_.global_plan, {7}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dsm
