// Property tests for FAIRCOST over randomized inputs (parameterized by
// seed): every returned assignment must satisfy all five fairness
// criteria, feasibility must match Lemma 5.2, and α must not increase as
// the cost to recover grows.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "costing/fair_cost.h"
#include "costing/fairness_metrics.h"

namespace dsm {
namespace {

std::vector<FairCostEntry> RandomEntries(Rng* rng, size_t n) {
  std::vector<FairCostEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    const double lpc = rng->UniformDouble(1.0, 100.0);
    entries[i].id = i + 1;
    entries[i].lpc = lpc;
    entries[i].gpc = lpc + rng->UniformDouble(0.0, 50.0);
    // Realistic saving terms stay well below the GPC (every saving(r)/num
    // summand derives from a fraction of the plan's own subtree costs).
    entries[i].saving_term = rng->UniformDouble(0.0, 0.8 * entries[i].gpc);
    entries[i].identity_group = static_cast<uint32_t>(i);
  }
  // Random identical pairs: merge ~20% of entries into an earlier group.
  for (size_t i = 1; i < n; ++i) {
    if (rng->Bernoulli(0.2)) {
      const size_t j = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(i) - 1));
      entries[i].identity_group = entries[j].identity_group;
      entries[i].lpc = entries[j].lpc;  // identical queries share an LPC
      entries[i].saving_term = entries[j].saving_term;
      // GPC and saving terms are plan-dependent and may differ between
      // identical sharings, but GPC never drops below the LPC.
      entries[i].gpc = entries[i].lpc + rng->UniformDouble(0.0, 50.0);
      entries[i].saving_term =
          rng->UniformDouble(0.0, 0.8 * entries[i].gpc);
    }
  }
  // Random containment arcs respecting the LPC precondition.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j ||
          entries[i].identity_group == entries[j].identity_group) {
        continue;
      }
      if (entries[i].lpc <= entries[j].lpc && rng->Bernoulli(0.1)) {
        entries[i].containers.push_back(static_cast<int>(j));
      }
    }
  }
  return entries;
}

class FairCostPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FairCostPropertyTest, OutputSatisfiesAllCriteria) {
  Rng rng(GetParam());
  const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 18));
  const auto entries = RandomEntries(&rng, n);
  double lpc_sum = 0.0;
  for (const auto& e : entries) lpc_sum += e.lpc;
  const double global_cost = rng.UniformDouble(0.2, 1.0) * lpc_sum;

  const auto result = FairCost::Compute(entries, global_cost);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->alpha, 0.0);
  EXPECT_LE(result->alpha, 1.0);

  const FairnessReport report =
      EvaluateFairness(entries, global_cost, result->ac);
  EXPECT_DOUBLE_EQ(report.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.contained_fraction, 1.0);
  EXPECT_NEAR(report.recovery_error, 0.0, 1e-6);
  // The achievable α of the assignment is at least the reported one.
  EXPECT_GE(report.alpha, result->alpha - 1e-6);
}

TEST_P(FairCostPropertyTest, AlphaMonotoneInGlobalCost) {
  Rng rng(GetParam() ^ 0x5555);
  const auto entries = RandomEntries(&rng, 10);
  double lpc_sum = 0.0;
  for (const auto& e : entries) lpc_sum += e.lpc;

  double prev_alpha = 1.0;
  for (const double frac : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    const auto result = FairCost::Compute(entries, frac * lpc_sum);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->alpha, prev_alpha + 1e-9)
        << "alpha must not increase with the cost to recover";
    prev_alpha = result->alpha;
  }
}

TEST_P(FairCostPropertyTest, InfeasibleJustAboveLpcSum) {
  Rng rng(GetParam() ^ 0xaaaa);
  const auto entries = RandomEntries(&rng, 8);
  double lpc_sum = 0.0;
  for (const auto& e : entries) lpc_sum += e.lpc;
  EXPECT_EQ(FairCost::Compute(entries, lpc_sum * 1.01).status().code(),
            StatusCode::kInfeasible);
  EXPECT_TRUE(FairCost::Compute(entries, lpc_sum * 0.99).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairCostPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

}  // namespace
}  // namespace dsm
