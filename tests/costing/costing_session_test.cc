// CostingSession: attributed costs drift as new sharings arrive but never
// exceed LPC (the paper's Section 5 stability argument), and every
// refresh recovers the then-current global cost.

#include "costing/costing_session.h"

#include <gtest/gtest.h>

#include "online/managed_risk.h"
#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TEST(CostingSessionTest, RefreshPerArrivalTracksHistory) {
  const Scenario sc = MakeGreedyTrap(8, 10.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner planner(rig.ctx);
  LpcCalculator lpc(rig.enumerator.get(), rig.ctx.model);
  CostingSession session(rig.global_plan.get(), &lpc);

  for (const Sharing& sharing : sc.sharings) {
    ASSERT_TRUE(planner.ProcessSharing(sharing).ok());
    const auto snapshot = session.Refresh();
    ASSERT_TRUE(snapshot.ok());
    // Criterion (5): every refresh recovers the current global cost.
    double total = 0.0;
    for (const auto& [id, ac] : snapshot->ac) total += ac;
    EXPECT_NEAR(total, rig.global_plan->TotalCost(), 1e-6);
    // Criterion (2) whenever satisfiable; during the transient where the
    // planner's risk exceeds Σ LPC (Lemma 5.2), the fallback charges a
    // uniform overrun factor instead.
    if (snapshot->criteria_satisfied) {
      for (const auto& [id, ac] : snapshot->ac) {
        EXPECT_LE(ac, snapshot->lpc.at(id) * (1 + 1e-9) + 1e-9);
      }
    } else {
      const double overrun =
          snapshot->global_cost / (total > 0 ? total : 1.0);
      EXPECT_NEAR(overrun, 1.0, 1e-6);  // recovery is still exact
    }
  }
  EXPECT_EQ(session.num_refreshes(), sc.sharings.size());
  // The paper's stability bound: no AC ever grew by more than ~its LPC.
  EXPECT_LE(session.MaxAcIncreaseFractionOfLpc(), 1.1);
}

TEST(CostingSessionTest, AcsChangeWhenReuseAppears) {
  // The first sharing pays for everything; once a second identical
  // sharing arrives, the cost is split — the first sharing's AC drops.
  const Scenario sc = MakeGreedyTrap(2, 10.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  ManagedRiskPlanner planner(rig.ctx);
  LpcCalculator lpc(rig.enumerator.get(), rig.ctx.model);
  CostingSession session(rig.global_plan.get(), &lpc);

  ASSERT_TRUE(planner.ProcessSharing(sc.sharings[0]).ok());
  ASSERT_TRUE(session.Refresh().ok());
  const double first_alone = session.CurrentAc(1);

  // The same query again (identical): the pie is split two ways.
  ASSERT_TRUE(planner.ProcessSharing(sc.sharings[0]).ok());
  ASSERT_TRUE(session.Refresh().ok());
  const double first_shared = session.CurrentAc(1);
  const double second_shared = session.CurrentAc(2);
  EXPECT_LT(first_shared, first_alone);
  EXPECT_NEAR(first_shared, second_shared, 1e-9);
}

TEST(CostingSessionTest, CurrentAcUnknownBeforeRefresh) {
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), rig.ctx.model);
  CostingSession session(rig.global_plan.get(), &lpc);
  EXPECT_DOUBLE_EQ(session.CurrentAc(1), -1.0);
}

}  // namespace
}  // namespace dsm
