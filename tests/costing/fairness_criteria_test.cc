// Lemma 5.1: the five fairness conditions are non-redundant — for each
// condition there is a cost assignment satisfying the other four but not
// it. These tests construct exactly such assignments and check that the
// fairness metrics flag only the intended violation.

#include <gtest/gtest.h>

#include "costing/fair_cost.h"
#include "costing/fairness_metrics.h"

namespace dsm {
namespace {

// Two independent sharings plus an identical pair and a contained pair.
//   0: lpc 10, gpc 14, saving 2
//   1: identical to 0 (same query)
//   2: contained in 3, lpc 6
//   3: container,      lpc 8
std::vector<FairCostEntry> BaseEntries() {
  std::vector<FairCostEntry> entries(4);
  entries[0].lpc = 10;
  entries[0].gpc = 14;
  entries[0].saving_term = 2;
  entries[0].identity_group = 0;
  entries[1].lpc = 10;
  entries[1].gpc = 14;
  entries[1].saving_term = 2;
  entries[1].identity_group = 0;  // identical to entry 0
  entries[2].lpc = 6;
  entries[2].gpc = 9;
  entries[2].identity_group = 1;
  entries[2].containers = {3};
  entries[3].lpc = 8;
  entries[3].gpc = 9;
  entries[3].identity_group = 2;
  return entries;
}

// An assignment satisfying all five conditions (α = 1 achievable).
TEST(FairnessCriteria, AllSatisfiable) {
  const auto entries = BaseEntries();
  // Bounds at α=1: {min(10,12)=10, 10, 6, 8} -> choose global cost 34.
  const std::vector<double> ac = {10, 10, 6, 8};
  const FairnessReport r = EvaluateFairness(entries, 34.0, ac);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_DOUBLE_EQ(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
  EXPECT_NEAR(r.recovery_error, 0.0, 1e-12);
}

TEST(FairnessCriteria, ViolateOnlyIdentical) {
  const auto entries = BaseEntries();
  const std::vector<double> ac = {9.5, 10, 6, 8};  // 0 and 1 differ
  const FairnessReport r = EvaluateFairness(entries, 33.5, ac);
  EXPECT_LT(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_NEAR(r.recovery_error, 0.0, 1e-12);
}

TEST(FairnessCriteria, ViolateOnlyLpc) {
  const auto entries = BaseEntries();
  // Entry 2 charged above its LPC; orderings and identities intact.
  const std::vector<double> ac = {10, 10, 7, 8};
  const FairnessReport r = EvaluateFairness(entries, 35.0, ac);
  EXPECT_LT(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
  EXPECT_NEAR(r.recovery_error, 0.0, 1e-12);
}

TEST(FairnessCriteria, ViolateOnlyContained) {
  const auto entries = BaseEntries();
  // The contained sharing (2) pays more than its container (3).
  const std::vector<double> ac = {10, 10, 6, 5};
  const FairnessReport r = EvaluateFairness(entries, 31.0, ac);
  EXPECT_LT(r.contained_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_NEAR(r.recovery_error, 0.0, 1e-12);
}

TEST(FairnessCriteria, ViolateOnlySavingAward) {
  // Entries with generous LPCs so only the α bound binds: charging 13 of
  // a GPC of 14 awards just 0.5 of the saving term 2 -> α = 0.5.
  auto entries = BaseEntries();
  entries[0].lpc = 14;
  entries[1].lpc = 14;
  const std::vector<double> ac = {13, 13, 6, 8};
  const FairnessReport r = EvaluateFairness(entries, 40.0, ac);
  EXPECT_NEAR(r.alpha, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
  EXPECT_NEAR(r.recovery_error, 0.0, 1e-12);
}

TEST(FairnessCriteria, ViolateOnlyRecovery) {
  const auto entries = BaseEntries();
  const std::vector<double> ac = {10, 10, 6, 8};  // sums to 34
  const FairnessReport r = EvaluateFairness(entries, 40.0, ac);
  EXPECT_GT(r.recovery_error, 0.1);
  EXPECT_DOUBLE_EQ(r.lpc_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
}

TEST(FairnessCriteria, AlphaClampedToZero) {
  std::vector<FairCostEntry> entries(1);
  entries[0].lpc = 100;
  entries[0].gpc = 10;
  entries[0].saving_term = 5;
  const std::vector<double> ac = {50};  // above GPC: negative raw alpha
  const FairnessReport r = EvaluateFairness(entries, 50.0, ac);
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
}

TEST(FairnessCriteria, EmptyInputIsVacuouslyFair) {
  const FairnessReport r = EvaluateFairness({}, 0.0, {});
  EXPECT_DOUBLE_EQ(r.identical_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.contained_fraction, 1.0);
}

}  // namespace
}  // namespace dsm
