#include "costing/lpc.h"

#include <gtest/gtest.h>

#include "testing/rig.h"
#include "workload/adversarial.h"

namespace dsm {
namespace {

using testing_support::MakeRig;

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(LpcTest, PicksTheCheapestPlan) {
  // Greedy trap: plans cost risky+eps (=100.001) and alt (=10).
  const Scenario sc = MakeGreedyTrap(1, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), sc.model.get());
  const auto value = lpc.Lpc(sc.sharings[0]);
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, 10.0, 1e-9);
}

TEST(LpcTest, MemoizedAcrossCalls) {
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), sc.model.get());
  const auto first = lpc.Lpc(sc.sharings[0]);
  const auto second = lpc.Lpc(sc.sharings[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(*first, *second);
}

TEST(LpcTest, IndependentOfGlobalPlanState) {
  // LPC is the *standalone* optimum: integrating other sharings first
  // must not change it (no reuse is considered).
  const Scenario sc = MakeGreedyTrap(3, 100.0, 10.0, 1e-3);
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), sc.model.get());
  const auto before = lpc.Lpc(sc.sharings[1]);
  const auto plans = rig.enumerator->Enumerate(sc.sharings[0]);
  ASSERT_TRUE(plans.ok());
  ASSERT_TRUE(
      rig.global_plan->AddSharing(1, sc.sharings[0], plans->front()).ok());
  LpcCalculator fresh(rig.enumerator.get(), sc.model.get());
  const auto after = fresh.Lpc(sc.sharings[1]);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(*before, *after);
}

TEST(LpcTest, PredicatesNeverRaiseLpcAboveUnfiltered) {
  // With the analytical model, filtering can only shrink intermediate
  // results: LPC(filtered) <= LPC(unfiltered) + filter overhead.
  const Scenario sc = MakeGreedyTrap(1);
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), sc.model.get());
  const Sharing plain(TS({0, 1, 2}), {}, 0);
  Predicate p;
  p.table = 0;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = 500;
  const Sharing filtered(TS({0, 1, 2}), {p}, 0);
  const auto lp = lpc.Lpc(plain);
  const auto lf = lpc.Lpc(filtered);
  ASSERT_TRUE(lp.ok());
  ASSERT_TRUE(lf.ok());
  // TableDrivenCostModel ignores predicates entirely: equal here.
  EXPECT_NEAR(*lf, *lp, 1e-9);
}

TEST(LpcTest, DistinctDestinationsCachedSeparately) {
  Scenario sc = MakeGreedyTrap(1);
  sc.cluster->AddServer("s1");
  auto rig = MakeRig(sc);
  LpcCalculator lpc(rig.enumerator.get(), sc.model.get());
  const Sharing here(sc.sharings[0].tables(), {}, 0);
  const Sharing there(sc.sharings[0].tables(), {}, 1);
  ASSERT_TRUE(lpc.Lpc(here).ok());
  ASSERT_TRUE(lpc.Lpc(there).ok());
  // Same query, different delivery target: both computable (values may
  // coincide under the zero-transfer table model, but must not collide in
  // the cache and crash or cross-contaminate).
  EXPECT_TRUE(lpc.Lpc(here).ok());
}

}  // namespace
}  // namespace dsm
