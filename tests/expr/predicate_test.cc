#include "expr/predicate.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

Predicate P(TableId t, uint16_t c, CompareOp op, double v) {
  Predicate p;
  p.table = t;
  p.column = c;
  p.op = op;
  p.value = v;
  return p;
}

TEST(PredicateTest, EqualityAndOrdering) {
  const Predicate a = P(0, 1, CompareOp::kLt, 5.0);
  const Predicate b = P(0, 1, CompareOp::kLt, 5.0);
  const Predicate c = P(0, 1, CompareOp::kLt, 6.0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
}

TEST(PredicateTest, NormalizeSortsAndDedupes) {
  std::vector<Predicate> preds = {P(1, 0, CompareOp::kEq, 2.0),
                                  P(0, 0, CompareOp::kLt, 1.0),
                                  P(1, 0, CompareOp::kEq, 2.0)};
  NormalizePredicates(&preds);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].table, 0u);
  EXPECT_EQ(preds[1].table, 1u);
}

TEST(PredicateTest, PredicatesOnTables) {
  std::vector<Predicate> preds = {P(0, 0, CompareOp::kLt, 1.0),
                                  P(2, 0, CompareOp::kGt, 2.0),
                                  P(5, 0, CompareOp::kEq, 3.0)};
  NormalizePredicates(&preds);
  TableSet tables;
  tables.Add(0);
  tables.Add(5);
  const auto sub = PredicatesOnTables(preds, tables);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].table, 0u);
  EXPECT_EQ(sub[1].table, 5u);
}

TEST(PredicateTest, SubsetAndDifference) {
  std::vector<Predicate> small = {P(0, 0, CompareOp::kLt, 1.0)};
  std::vector<Predicate> big = {P(0, 0, CompareOp::kLt, 1.0),
                                P(1, 1, CompareOp::kGt, 2.0)};
  NormalizePredicates(&small);
  NormalizePredicates(&big);
  EXPECT_TRUE(PredicateSubset(small, big));
  EXPECT_FALSE(PredicateSubset(big, small));
  EXPECT_TRUE(PredicateSubset(small, small));
  const auto diff = PredicateDifference(small, big);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].table, 1u);
}

TEST(PredicateTest, ToStringUsesCatalogNames) {
  Catalog catalog;
  TableDef def;
  def.name = "RES";
  ColumnDef col;
  col.name = "city";
  def.columns = {col};
  (void)*catalog.AddTable(def);
  const Predicate p = P(0, 0, CompareOp::kEq, 42.0);
  EXPECT_EQ(p.ToString(catalog), "RES.city = 42");
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "=");
}

}  // namespace
}  // namespace dsm
