#include "expr/view_key.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

Predicate P(TableId t, double v) {
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kEq;
  p.value = v;
  return p;
}

TableSet TS(std::initializer_list<TableId> ids) {
  TableSet s;
  for (const TableId id : ids) s.Add(id);
  return s;
}

TEST(ViewKeyTest, OrderIndependentIdentity) {
  // (ab)c and a(bc) produce the same data: identity is the table set.
  const ViewKey k1(TS({0, 1, 2}));
  const ViewKey k2(TS({2, 1, 0}));
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(ViewKeyHash()(k1), ViewKeyHash()(k2));
}

TEST(ViewKeyTest, PredicateOrderNormalized) {
  const ViewKey k1(TS({0, 1}), {P(0, 1.0), P(1, 2.0)});
  const ViewKey k2(TS({0, 1}), {P(1, 2.0), P(0, 1.0)});
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(ViewKeyHash()(k1), ViewKeyHash()(k2));
}

TEST(ViewKeyTest, DifferentPredicatesDiffer) {
  const ViewKey k1(TS({0, 1}), {P(0, 1.0)});
  const ViewKey k2(TS({0, 1}), {P(0, 2.0)});
  EXPECT_FALSE(k1 == k2);
}

TEST(ViewKeyTest, SubsumptionRequiresSameTables) {
  const ViewKey wide(TS({0, 1}));
  const ViewKey other(TS({0, 2}));
  EXPECT_FALSE(wide.Subsumes(other));
}

TEST(ViewKeyTest, UnpredicatedSubsumesPredicated) {
  // The full join result can serve any filtered version of itself
  // (Example 1.1: reuse the join, add "city = Seattle" on top).
  const ViewKey full(TS({0, 1}));
  const ViewKey filtered(TS({0, 1}), {P(0, 1.0)});
  EXPECT_TRUE(full.Subsumes(filtered));
  EXPECT_FALSE(filtered.Subsumes(full));
  EXPECT_TRUE(full.Subsumes(full));
  EXPECT_TRUE(filtered.Subsumes(filtered));
}

TEST(ViewKeyTest, PartialPredicateSubsumption) {
  const ViewKey one(TS({0, 1}), {P(0, 1.0)});
  const ViewKey two(TS({0, 1}), {P(0, 1.0), P(1, 2.0)});
  EXPECT_TRUE(one.Subsumes(two));
  EXPECT_FALSE(two.Subsumes(one));
}

TEST(ViewKeyTest, UnpredicatedFlag) {
  EXPECT_TRUE(ViewKey(TS({0})).unpredicated());
  EXPECT_FALSE(ViewKey(TS({0}), {P(0, 1.0)}).unpredicated());
}

}  // namespace
}  // namespace dsm
