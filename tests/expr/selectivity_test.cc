#include "expr/selectivity.h"

#include <gtest/gtest.h>

namespace dsm {
namespace {

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // R(uid, v): 1000 rows, uid 1000 distinct; S(uid, w): 5000 rows,
    // uid 1000 distinct (each uid ~5 rows in S).
    TableDef r;
    r.name = "R";
    ColumnDef uid;
    uid.name = "uid";
    uid.distinct_values = 1000;
    uid.min_value = 0;
    uid.max_value = 1000;
    ColumnDef v;
    v.name = "v";
    v.distinct_values = 100;
    v.min_value = 0;
    v.max_value = 100;
    r.columns = {uid, v};
    r.stats.cardinality = 1000;
    r.stats.update_rate = 10;
    r.stats.tuple_bytes = 50;
    r_ = *catalog_.AddTable(r);

    TableDef s;
    s.name = "S";
    ColumnDef w;
    w.name = "w";
    w.distinct_values = 10;
    w.min_value = 0;
    w.max_value = 10;
    s.columns = {uid, w};
    s.stats.cardinality = 5000;
    s.stats.update_rate = 50;
    s.stats.tuple_bytes = 30;
    s_ = *catalog_.AddTable(s);
  }

  Catalog catalog_;
  TableId r_ = 0;
  TableId s_ = 0;
};

TEST_F(SelectivityTest, EqualityPredicateSelectivity) {
  StatsEstimator est(&catalog_);
  Predicate p;
  p.table = r_;
  p.column = 1;  // v: 100 distinct
  p.op = CompareOp::kEq;
  p.value = 7;
  EXPECT_NEAR(est.PredicateSelectivity(p), 0.01, 1e-12);
}

TEST_F(SelectivityTest, RangePredicateSelectivity) {
  StatsEstimator est(&catalog_);
  Predicate p;
  p.table = r_;
  p.column = 1;  // v in [0, 100]
  p.op = CompareOp::kLt;
  p.value = 25;
  EXPECT_NEAR(est.PredicateSelectivity(p), 0.25, 1e-12);
  p.op = CompareOp::kGt;
  EXPECT_NEAR(est.PredicateSelectivity(p), 0.75, 1e-12);
}

TEST_F(SelectivityTest, RangePredicateClamped) {
  StatsEstimator est(&catalog_);
  Predicate p;
  p.table = r_;
  p.column = 1;
  p.op = CompareOp::kLt;
  p.value = 1e9;  // beyond max
  EXPECT_NEAR(est.PredicateSelectivity(p), 1.0, 1e-9);
  p.value = -5;  // below min: clamped to the positive floor
  EXPECT_LE(est.PredicateSelectivity(p), 1e-6 + 1e-12);
}

TEST_F(SelectivityTest, CombinedSelectivityIsProduct) {
  StatsEstimator est(&catalog_);
  Predicate a;
  a.table = r_;
  a.column = 1;
  a.op = CompareOp::kLt;
  a.value = 50;  // 0.5
  Predicate b;
  b.table = s_;
  b.column = 1;
  b.op = CompareOp::kEq;
  b.value = 3;  // 0.1
  EXPECT_NEAR(est.CombinedSelectivity({a, b}), 0.05, 1e-12);
}

TEST_F(SelectivityTest, JoinCardinalityContainment) {
  StatsEstimator est(&catalog_);
  TableSet both;
  both.Add(r_);
  both.Add(s_);
  // |R ⋈ S| = |R| * |S| / max(V(R,uid), V(S,uid)) = 1000*5000/1000 = 5000.
  EXPECT_NEAR(est.Cardinality(ViewKey(both)), 5000.0, 1e-6);
}

TEST_F(SelectivityTest, SingleTableCardinality) {
  StatsEstimator est(&catalog_);
  EXPECT_NEAR(est.Cardinality(ViewKey(TableSet::Of(r_))), 1000.0, 1e-9);
}

TEST_F(SelectivityTest, PredicateScalesCardinality) {
  StatsEstimator est(&catalog_);
  Predicate p;
  p.table = r_;
  p.column = 1;
  p.op = CompareOp::kLt;
  p.value = 10;  // 0.1
  EXPECT_NEAR(est.Cardinality(ViewKey(TableSet::Of(r_), {p})), 100.0, 1e-6);
}

TEST_F(SelectivityTest, DeltaRateScalesWithFanout) {
  StatsEstimator est(&catalog_);
  TableSet both;
  both.Add(r_);
  both.Add(s_);
  // view card 5000; an R update touches 5000/1000 = 5 outputs; an S update
  // 5000/5000 = 1. rate = 10*5 + 50*1 = 100.
  EXPECT_NEAR(est.DeltaRate(ViewKey(both)), 100.0, 1e-6);
}

TEST_F(SelectivityTest, TupleBytesAdds) {
  StatsEstimator est(&catalog_);
  TableSet both;
  both.Add(r_);
  both.Add(s_);
  EXPECT_NEAR(est.TupleBytes(both), 80.0, 1e-9);
}

TEST_F(SelectivityTest, CacheInvalidation) {
  StatsEstimator est(&catalog_);
  const ViewKey key(TableSet::Of(r_));
  EXPECT_NEAR(est.Cardinality(key), 1000.0, 1e-9);
  catalog_.mutable_table(r_).stats.cardinality = 2000;
  EXPECT_NEAR(est.Cardinality(key), 1000.0, 1e-9);  // stale (memoized)
  est.InvalidateCache();
  EXPECT_NEAR(est.Cardinality(key), 2000.0, 1e-9);
}

}  // namespace
}  // namespace dsm
