#include "expr/histogram.h"

#include <gtest/gtest.h>

#include "expr/selectivity.h"

namespace dsm {
namespace {

TEST(HistogramTest, EmptyIsNeutral) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kLt, 5.0), 1.0);
}

TEST(HistogramTest, UniformDataMatchesUniformModel) {
  Histogram h(0.0, 100.0, 10);
  for (int v = 0; v < 100; ++v) h.Add(v + 0.5);
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, 25.0), 0.25, 0.02);
  EXPECT_NEAR(h.Selectivity(CompareOp::kGt, 25.0), 0.75, 0.02);
}

TEST(HistogramTest, SkewCaptured) {
  // 90% of the mass in [0,10), the rest spread over [10,100).
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 900; ++i) h.Add(5.0);
  for (int i = 0; i < 100; ++i) h.Add(10.0 + (i % 90));
  EXPECT_GT(h.Selectivity(CompareOp::kLt, 10.0), 0.85);
  EXPECT_LT(h.Selectivity(CompareOp::kGt, 50.0), 0.1);
}

TEST(HistogramTest, BoundaryFractions) {
  Histogram h(0.0, 10.0, 1);  // single bucket
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i));
  // Linear interpolation inside the bucket.
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, 2.5), 0.25, 1e-9);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  Histogram h(0.0, 10.0, 2);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_NEAR(h.Selectivity(CompareOp::kLt, 5.0), 0.5, 1e-9);
}

TEST(HistogramTest, EqualitySelectivityBounded) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(3.5);
  const double sel = h.Selectivity(CompareOp::kEq, 3.5);
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 1.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kEq, 7.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Selectivity(CompareOp::kEq, -1.0), 0.0);
}

TEST(HistogramTest, FromValues) {
  const Histogram h = Histogram::FromValues({1, 2, 3, 4, 100}, 4);
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_GT(h.Selectivity(CompareOp::kLt, 50.0), 0.7);
}

TEST(HistogramTest, FromEmptyValues) {
  const Histogram h = Histogram::FromValues({}, 4);
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, EstimatorPrefersHistogramOverUniform) {
  Catalog catalog;
  TableDef def;
  def.name = "T";
  ColumnDef col;
  col.name = "v";
  col.distinct_values = 100;
  col.min_value = 0;
  col.max_value = 100;  // uniform model would say sel(v < 10) = 0.1
  auto histogram = std::make_shared<Histogram>(0.0, 100.0, 10);
  for (int i = 0; i < 95; ++i) histogram->Add(5.0);  // heavy skew low
  for (int i = 0; i < 5; ++i) histogram->Add(55.0);
  col.histogram = histogram;
  def.columns = {col};
  def.stats.cardinality = 100;
  const TableId t = *catalog.AddTable(def);

  StatsEstimator est(&catalog);
  Predicate p;
  p.table = t;
  p.column = 0;
  p.op = CompareOp::kLt;
  p.value = 10;
  EXPECT_GT(est.PredicateSelectivity(p), 0.9);  // histogram, not 0.1
}

}  // namespace
}  // namespace dsm
